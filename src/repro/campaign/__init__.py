"""repro.campaign — the streaming, checkpointed, resumable sweep engine.

One engine, three frontends: :mod:`repro.fault` campaigns,
:mod:`repro.adversary` fuzzing, and :mod:`repro.analysis` batteries all
describe their sweeps as :class:`CampaignSpec` grids and let
:class:`CampaignEngine` stream the cases through workers into the
:class:`~repro.obs.ledger.RunLedger`.  See :mod:`repro.campaign.engine`
for the determinism/checkpoint contract and ``python -m repro.campaign``
for the CLI (``run`` / ``merge`` / ``digest`` / ``status``).
"""

from .engine import (
    CampaignEngine,
    CampaignRunResult,
    CampaignSpec,
    FailureKeeper,
    OutcomeCounter,
    PredicateCounter,
    RowCollector,
    Shard,
    SignatureDedup,
    Stage,
    read_spill,
)

__all__ = [
    "CampaignEngine",
    "CampaignRunResult",
    "CampaignSpec",
    "FailureKeeper",
    "MetricsStage",
    "OutcomeCounter",
    "PredicateCounter",
    "RowCollector",
    "Shard",
    "SignatureDedup",
    "Stage",
    "read_spill",
]
