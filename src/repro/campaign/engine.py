"""The streaming campaign engine: sweep, classify, checkpoint, resume.

Every large sweep in this repo has the same skeleton: a deterministic
grid of cases, a pure per-case evaluation fanned out over
:class:`~repro.perf.parallel.ParallelBatteryRunner` workers, a
classification reduced in case order, and a report.  The fault campaign
(:mod:`repro.fault.campaign`), the interleaving fuzzer
(:mod:`repro.adversary.fuzz`) and the analysis batteries each used to
re-implement that skeleton with one fatal shared flaw: results
accumulated in an in-memory list, so a sweep could never outgrow RAM or
survive a killed process.

This module is the one engine they are all thin frontends to now:

* **Lazy grids** — a :class:`CampaignSpec` describes its case grid as a
  pure function ``task(index)`` of the case index (seeded, closed-form),
  so a million-case sweep materializes one checkpoint chunk of tasks at
  a time, never the whole matrix.
* **Streaming results** — classified rows append incrementally to the
  :class:`~repro.obs.ledger.RunLedger` (plus an optional JSONL spill);
  per-case results are discarded as soon as the stages have seen them
  unless a stage chooses to retain them.
* **Checkpoints and exact resume** — after each chunk the engine commits
  the chunk's ledger rows *and* the shard's advanced checkpoint (last
  durably-committed case position, config fingerprint, resumable stage
  state) in one SQLite transaction
  (:meth:`~repro.obs.ledger.RunLedger.append_with_checkpoint`).  A
  SIGKILL at any instant therefore loses at most the uncommitted chunk;
  resuming re-runs exactly the missing cases, and the final ledger
  :meth:`~repro.obs.ledger.RunLedger.digest` is byte-identical to an
  uninterrupted run's.
* **Sharding** — shard ``i/N`` owns the case indices ``index % N == i``.
  Shards may append to one shared WAL-mode ledger or to per-shard files
  merged afterwards (:meth:`~repro.obs.ledger.RunLedger.merge_from`);
  either way the union of rows hashes identically to a one-shard run.
* **Pluggable stages** — classification counting, schedule-signature
  dedup, failure retention and metrics are :class:`Stage` objects that
  observe results strictly in case order; stages that implement
  ``state_dict``/``load_state`` have their state carried inside the
  checkpoint, so streamed counts survive a crash too.

Determinism contract: ``task(index)`` and the evaluation callable must
be pure functions of the index and the spec config (per-case seeds
derived via ``zlib.crc32``-style hashing, never ``hash()``), so any
worker count, shard split, chunk size, or kill/resume history yields the
same classified rows.
"""

from __future__ import annotations

import hashlib
import json
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, IO, Iterator, List, Optional, Sequence, Tuple

from ..errors import CampaignError
from ..obs import flight
from ..obs.ledger import (
    CHECKPOINT_SCHEMA_VERSION,
    Checkpoint,
    LedgerRow,
    RunLedger,
    open_ledger,
)

__all__ = [
    "CampaignEngine",
    "CampaignRunResult",
    "CampaignSpec",
    "FailureKeeper",
    "MetricsStage",
    "OutcomeCounter",
    "PredicateCounter",
    "RowCollector",
    "Shard",
    "SignatureDedup",
    "Stage",
    "read_spill",
]


# ---------------------------------------------------------------------------
# Stages: in-order observers of the classified result stream
# ---------------------------------------------------------------------------


class Stage:
    """One observer of the result stream.

    ``observe`` is called exactly once per case, strictly in case-index
    order within the shard, *before* the case's chunk commits.  A stage
    that wants its accumulated state to survive a kill/resume implements
    ``state_dict``/``load_state`` (JSON-serializable payloads only); the
    engine persists that state inside the shard's checkpoint, atomically
    with the rows the state reflects.
    """

    name = "stage"

    def observe(self, index: int, result: Any) -> None:  # pragma: no cover
        raise NotImplementedError

    def state_dict(self) -> Optional[Dict[str, Any]]:
        """JSON state to checkpoint, or ``None`` for stateless stages."""
        return None

    def load_state(self, state: Dict[str, Any]) -> None:
        pass


class OutcomeCounter(Stage):
    """Streamed classification histogram over a result attribute."""

    name = "outcomes"

    def __init__(self, attr: str = "outcome"):
        self.attr = attr
        self.counts: Dict[str, int] = {}

    def observe(self, index: int, result: Any) -> None:
        key = str(getattr(result, self.attr))
        self.counts[key] = self.counts.get(key, 0) + 1

    def state_dict(self) -> Dict[str, Any]:
        return {"counts": dict(self.counts)}

    def load_state(self, state: Dict[str, Any]) -> None:
        self.counts = {k: int(v) for k, v in state.get("counts", {}).items()}


class PredicateCounter(Stage):
    """Streamed count of results satisfying a predicate (e.g. audit
    failures), checkpointed so resumed totals stay exact."""

    def __init__(self, name: str, predicate: Callable[[Any], bool]):
        self.name = name
        self.predicate = predicate
        self.count = 0

    def observe(self, index: int, result: Any) -> None:
        if self.predicate(result):
            self.count += 1

    def state_dict(self) -> Dict[str, Any]:
        return {"count": self.count}

    def load_state(self, state: Dict[str, Any]) -> None:
        self.count = int(state.get("count", 0))


class SignatureDedup(Stage):
    """Schedule-signature dedup as a stage: flags each result's first
    appearance on ``flag`` and keeps distinct/duplicate counts.

    The seen-set is checkpointed (signatures are short hex strings), so a
    resumed sweep continues deduplicating against everything the killed
    run already committed — the fuzzer's coverage counters don't reset.
    With shards the dedup is per shard (cross-shard dedup would need the
    merge step; the ledger rows carry no dedup column, so digests are
    unaffected either way).
    """

    name = "dedup"

    def __init__(self, attr: str = "signature", flag: str = "distinct"):
        self.attr = attr
        self.flag = flag
        self.seen: set = set()
        self.distinct = 0
        self.duplicates = 0

    def observe(self, index: int, result: Any) -> None:
        signature = getattr(result, self.attr)
        fresh = signature not in self.seen
        self.seen.add(signature)
        setattr(result, self.flag, fresh)
        if fresh:
            self.distinct += 1
        else:
            self.duplicates += 1

    def state_dict(self) -> Dict[str, Any]:
        return {"seen": sorted(self.seen)}

    def load_state(self, state: Dict[str, Any]) -> None:
        self.seen = set(state.get("seen", ()))
        self.distinct = len(self.seen)
        # Duplicates among the committed prefix are recoverable from the
        # outcome counter's total minus |seen|; the engine re-derives them
        # when it knows the resumed case count.

    def resync_duplicates(self, observed_total: int) -> None:
        self.duplicates = max(0, observed_total - self.distinct)


class FailureKeeper(Stage):
    """Retain (a bounded number of) failing results for post-processing
    (reports, ddmin minimization) without keeping the whole sweep alive."""

    name = "failures"

    def __init__(self, predicate: Callable[[Any], bool], limit: int = 1024):
        self.predicate = predicate
        self.limit = limit
        self.kept: List[Any] = []
        self.dropped = 0

    def observe(self, index: int, result: Any) -> None:
        if self.predicate(result):
            if len(self.kept) < self.limit:
                self.kept.append(result)
            else:
                self.dropped += 1


class RowCollector(Stage):
    """Retain every result (legacy in-memory report mode).  Deliberately
    NOT checkpoint-persisted: collecting defeats streaming, so resumable
    runs should use :class:`FailureKeeper` + the ledger instead."""

    name = "collect"

    def __init__(self) -> None:
        self.rows: List[Any] = []

    def observe(self, index: int, result: Any) -> None:
        self.rows.append(result)


class MetricsStage(Stage):
    """Feed each result to a metrics hook (always-enabled collectors)."""

    name = "metrics"

    def __init__(self, hook: Callable[[Any], None]):
        self.hook = hook

    def observe(self, index: int, result: Any) -> None:
        self.hook(result)


# ---------------------------------------------------------------------------
# Spec: what a campaign is
# ---------------------------------------------------------------------------


class CampaignSpec:
    """A deterministic case grid plus its evaluation and classification.

    Subclasses define a sweep entirely through pure functions of the case
    index so the engine can generate cases lazily, shard them, and replay
    any suffix after a crash:

    * ``kind`` / ``campaign`` — the ledger coordinates all rows share.
      ``campaign`` must be a pure function of the sweep config (never of
      worker count, shard, or wall clock): shard digests only merge
      cleanly because every shard writes the same campaign id.
    * ``total`` — grid size.
    * ``task(index)`` — the picklable task tuple for one case.
    * ``evaluate`` — a **module-level** picklable callable mapping a task
      to a classified result object (runs inside pool workers).
    * ``ledger_row(index, result)`` — the persistent projection of one
      result (coordinator-side; every column except ``wall_ms`` must be
      deterministic in the config so digests are reproducible).
    * ``stages()`` — the in-order observers; build them in ``__init__``
      and keep references if the frontend reads them afterwards.
    """

    #: Ledger ``kind`` column and checkpoint namespace.
    kind: str = "campaign"
    #: Flight-recorder span name for one case.
    span_name: str = "campaign.case"
    #: Ledger ``campaign`` column; set by ``__init__`` of subclasses.
    campaign: str = ""

    @property
    def total(self) -> int:
        raise NotImplementedError

    def task(self, index: int) -> Any:
        raise NotImplementedError

    @property
    def evaluate(self) -> Callable[[Any], Any]:
        raise NotImplementedError

    def context(self, index: int) -> Optional["flight.TraceContext"]:
        """Deterministic per-case trace context (None: no flight spans)."""
        return None

    def ledger_row(self, index: int, result: Any) -> Optional[LedgerRow]:
        return None

    def spill_record(self, index: int, result: Any) -> Optional[Dict[str, Any]]:
        """JSONL spill projection of one result (None: skip the case)."""
        to_dict = getattr(result, "to_dict", None)
        record = to_dict() if callable(to_dict) else {"result": repr(result)}
        record.setdefault("case_index", index)
        return record

    def case_failed(self, result: Any) -> bool:
        """Does this case fail the campaign (drives the exit code)?"""
        return False

    def stages(self) -> Sequence[Stage]:
        return ()

    def summarize(self, stages: Sequence[Stage]) -> Dict[str, Any]:
        """Extra JSON-stable keys merged into the run result's ``to_dict``.

        Called once after the run with the stage list the engine folded
        (checkpoint-restored state included), so frontends can project
        their own stage counters — e.g. the Byzantine campaign's
        per-power detection table — into ``--json`` output.
        """
        return {}

    def render_summary(self, extras: Dict[str, Any]) -> Optional[str]:
        """Human-readable block for ``summarize`` output (None: skip)."""
        return None

    def describe(self) -> Dict[str, Any]:
        """The JSON-stable configuration the fingerprint hashes."""
        return {"kind": self.kind, "campaign": self.campaign}


# ---------------------------------------------------------------------------
# Shard addressing
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Shard:
    """``index/count`` shard address: this worker owns the case indices
    congruent to ``index`` modulo ``count``."""

    index: int = 0
    count: int = 1

    def __post_init__(self) -> None:
        if self.count < 1 or not (0 <= self.index < self.count):
            raise CampaignError(
                f"shard must satisfy 0 <= index < count, got "
                f"{self.index}/{self.count}"
            )

    @classmethod
    def parse(cls, text: str) -> "Shard":
        """Parse the CLI's ``i/N`` form (e.g. ``0/2``)."""
        try:
            index_text, count_text = str(text).split("/", 1)
            return cls(index=int(index_text), count=int(count_text))
        except (ValueError, TypeError):
            raise CampaignError(
                f"shard spec must look like i/N (e.g. 0/2), got {text!r}"
            ) from None

    def __str__(self) -> str:
        return f"{self.index}/{self.count}"


# ---------------------------------------------------------------------------
# The engine
# ---------------------------------------------------------------------------


@dataclass
class CampaignRunResult:
    """What one engine invocation did (and, via the ledger, knows)."""

    kind: str
    campaign: str
    shard: Shard
    #: Effective grid size after ``max_cases`` (all shards together).
    total: int
    #: Cases owned by this shard.
    scheduled: int
    #: Cases evaluated by THIS invocation.
    processed: int
    #: Cases skipped because a checkpoint already covered them.
    resumed: int
    #: Failing cases observed by this invocation (``spec.case_failed``).
    failed: int
    #: Streamed classification counts (checkpoint-accurate across resume).
    counts: Dict[str, int] = field(default_factory=dict)
    elapsed: float = 0.0
    #: ``ledger.digest(kind, campaign)`` after the run (None: no ledger).
    digest: Optional[str] = None
    ledger_rows: Optional[int] = None
    #: Frontend-specific summary keys (``spec.summarize``), merged into
    #: ``to_dict`` and rendered via ``summary_text``.
    extras: Dict[str, Any] = field(default_factory=dict)
    summary_text: Optional[str] = None

    @property
    def complete(self) -> bool:
        return self.resumed + self.processed >= self.scheduled

    @property
    def ok(self) -> bool:
        return self.failed == 0

    def to_dict(self) -> Dict[str, Any]:
        return {
            "kind": self.kind,
            "campaign": self.campaign,
            "shard": str(self.shard),
            "total": self.total,
            "scheduled": self.scheduled,
            "processed": self.processed,
            "resumed": self.resumed,
            "failed": self.failed,
            "counts": dict(self.counts),
            "elapsed": round(self.elapsed, 3),
            "digest": self.digest,
            "ledger_rows": self.ledger_rows,
            "complete": self.complete,
            "ok": self.ok,
            **self.extras,
        }

    def render(self) -> str:
        lines = [
            f"campaign {self.campaign} [shard {self.shard}]: "
            f"{self.processed} evaluated, {self.resumed} resumed, "
            f"{self.scheduled} scheduled of {self.total} total "
            f"({self.elapsed:.1f}s)"
        ]
        for name in sorted(self.counts):
            lines.append(f"  {name:>22}: {self.counts[name]}")
        if self.digest is not None:
            lines.append(f"  ledger rows={self.ledger_rows}  digest={self.digest}")
        if self.summary_text:
            lines.append(self.summary_text)
        lines.append(
            "verdict: "
            + ("OK" if self.ok else f"FAILED ({self.failed} failing cases)")
        )
        return "\n".join(lines)


class CampaignEngine:
    """Drive one shard of a :class:`CampaignSpec` to completion.

    Parameters
    ----------
    spec:
        The campaign definition (grid + evaluation + stages).
    ledger:
        A :class:`~repro.obs.ledger.RunLedger`, a path, or ``None``.
        With a ledger the run is checkpointed and resumable; without one
        it still streams (stages see every result) but cannot resume.
    workers:
        :class:`~repro.perf.parallel.ParallelBatteryRunner` fan-out.
    shard:
        This process's :class:`Shard` address.
    checkpoint_every:
        Chunk size: cases evaluated between durable commits.  Also the
        upper bound on re-done work after a kill.
    max_cases:
        Truncate the grid to its first ``max_cases`` indices (applied
        before sharding, so every shard agrees on the index set).
    spill:
        Optional JSONL path appending one record per case.  At-least-once
        across crashes (a chunk interrupted between spill write and
        ledger commit is re-run): consumers dedup by ``case_index``, or
        use :func:`read_spill`.
    """

    def __init__(
        self,
        spec: CampaignSpec,
        ledger: Optional[Any] = None,
        workers: Optional[int] = 1,
        shard: Shard = Shard(),
        checkpoint_every: int = 64,
        max_cases: Optional[int] = None,
        spill: Optional[str] = None,
    ):
        if checkpoint_every < 1:
            raise CampaignError(
                f"checkpoint_every must be >= 1, got {checkpoint_every}"
            )
        if max_cases is not None and max_cases < 0:
            raise CampaignError(f"max_cases must be >= 0, got {max_cases}")
        self.spec = spec
        self.ledger = ledger
        self.workers = workers
        self.shard = shard
        self.checkpoint_every = checkpoint_every
        self.max_cases = max_cases
        self.spill = spill

    # -- derived grid geometry -------------------------------------------

    @property
    def total(self) -> int:
        total = self.spec.total
        if self.max_cases is not None:
            total = min(total, self.max_cases)
        return total

    def positions(self) -> range:
        """This shard's case indices, in order."""
        return range(self.shard.index, self.total, self.shard.count)

    def fingerprint(self) -> str:
        """Hash of everything that defines the case grid: spec config,
        effective total, and the checkpoint schema itself."""
        payload = dict(self.spec.describe())
        payload["__total__"] = self.total
        payload["__checkpoint_version__"] = CHECKPOINT_SCHEMA_VERSION
        encoded = json.dumps(payload, sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(encoded.encode("utf-8")).hexdigest()[:32]

    # -- the run ----------------------------------------------------------

    def run(self, resume: bool = False) -> CampaignRunResult:
        from ..perf.parallel import ParallelBatteryRunner

        spec = self.spec
        positions = self.positions()
        fingerprint = self.fingerprint()
        stages = list(spec.stages())

        led: Optional[RunLedger] = None
        owns_ledger = False
        if self.ledger is not None:
            led = open_ledger(self.ledger)
            owns_ledger = led is not self.ledger
        start_pos = self._load_checkpoint(led, fingerprint, stages, resume)

        counter = next(
            (s for s in stages if isinstance(s, OutcomeCounter)), None
        )
        dedup = next((s for s in stages if isinstance(s, SignatureDedup)), None)
        if dedup is not None and start_pos:
            dedup.resync_duplicates(start_pos)

        runner = ParallelBatteryRunner(workers=self.workers)
        spill_fh: Optional[IO[str]] = None
        processed = 0
        failed = 0
        started = time.perf_counter()
        try:
            if self.spill is not None:
                spill_fh = open(self.spill, "a", encoding="utf-8")
            for chunk in self._chunks(positions, start_pos):
                results = self._evaluate_chunk(runner, chunk)
                chunk_wall = getattr(self, "_last_chunk_wall", 0.0)
                wall_each = (
                    round(chunk_wall / len(chunk) * 1000.0, 3) if chunk else 0.0
                )
                rows: List[LedgerRow] = []
                for index, result in zip(chunk, results):
                    for stage in stages:
                        stage.observe(index, result)
                    if spec.case_failed(result):
                        failed += 1
                    if led is not None:
                        row = spec.ledger_row(index, result)
                        if row is not None:
                            row.wall_ms = wall_each
                            rows.append(row)
                    if spill_fh is not None:
                        record = spec.spill_record(index, result)
                        if record is not None:
                            spill_fh.write(
                                json.dumps(
                                    record, sort_keys=True, separators=(",", ":")
                                )
                                + "\n"
                            )
                if spill_fh is not None:
                    spill_fh.flush()
                processed += len(chunk)
                if led is not None:
                    state = {}
                    for stage in stages:
                        stage_state = stage.state_dict()
                        if stage_state is not None:
                            state[stage.name] = stage_state
                    led.append_with_checkpoint(
                        rows,
                        Checkpoint(
                            kind=spec.kind,
                            campaign=spec.campaign,
                            shard_index=self.shard.index,
                            shard_count=self.shard.count,
                            done=start_pos + processed,
                            fingerprint=fingerprint,
                            state=state,
                        ),
                    )
        finally:
            runner.close()
            if spill_fh is not None:
                spill_fh.close()
            elapsed = time.perf_counter() - started
            digest = ledger_rows = None
            if led is not None:
                try:
                    digest = led.digest(spec.kind, spec.campaign)
                    ledger_rows = led.count(spec.kind, spec.campaign)
                finally:
                    if owns_ledger:
                        led.close()
        extras = spec.summarize(stages)
        return CampaignRunResult(
            kind=spec.kind,
            campaign=spec.campaign,
            shard=self.shard,
            total=self.total,
            scheduled=len(positions),
            processed=processed,
            resumed=start_pos,
            failed=failed,
            counts=dict(counter.counts) if counter is not None else {},
            elapsed=elapsed,
            digest=digest,
            ledger_rows=ledger_rows,
            extras=extras,
            summary_text=spec.render_summary(extras) if extras else None,
        )

    # -- internals --------------------------------------------------------

    def _load_checkpoint(
        self,
        led: Optional[RunLedger],
        fingerprint: str,
        stages: Sequence[Stage],
        resume: bool,
    ) -> int:
        if led is None:
            if resume:
                raise CampaignError(
                    "resume requires a ledger (the checkpoint lives there)"
                )
            return 0
        checkpoint = led.checkpoint(
            self.spec.kind,
            self.spec.campaign,
            self.shard.index,
            self.shard.count,
        )
        if checkpoint is None:
            return 0
        if not resume:
            raise CampaignError(
                f"ledger {led.path!r} already holds a checkpoint for "
                f"campaign {self.spec.campaign!r} shard {self.shard} "
                f"({checkpoint.done} cases committed); pass resume=True "
                "to continue it, or point the run at a fresh ledger"
            )
        if checkpoint.fingerprint != fingerprint:
            raise CampaignError(
                f"checkpoint fingerprint mismatch for campaign "
                f"{self.spec.campaign!r} shard {self.shard}: the ledger "
                f"was written by a different grid configuration "
                f"({checkpoint.fingerprint} != {fingerprint}); refusing "
                "to mix sweeps"
            )
        for stage in stages:
            if stage.name in checkpoint.state:
                stage.load_state(checkpoint.state[stage.name])
        return checkpoint.done

    def _chunks(
        self, positions: range, start_pos: int
    ) -> Iterator[List[int]]:
        remaining = positions[start_pos:]
        for start in range(0, len(remaining), self.checkpoint_every):
            yield list(remaining[start : start + self.checkpoint_every])

    def _evaluate_chunk(self, runner: Any, chunk: List[int]) -> List[Any]:
        spec = self.spec
        tasks = [spec.task(index) for index in chunk]
        started = time.perf_counter()
        if flight.recording():
            contexts = [spec.context(index) for index in chunk]
            if all(ctx is not None for ctx in contexts):
                results = flight.map_with_flight(
                    runner, spec.evaluate, tasks, spec.span_name, contexts
                )
                self._last_chunk_wall = time.perf_counter() - started
                return results
        results = runner.map(spec.evaluate, tasks)
        self._last_chunk_wall = time.perf_counter() - started
        return results


def read_spill(path: str) -> List[Dict[str, Any]]:
    """Read a JSONL spill, deduplicating re-run chunks.

    Spill writes happen before the chunk's ledger commit, so a killed run
    may leave duplicate records for its torn chunk; the FIRST record per
    ``case_index`` wins (records are deterministic, so any winner is the
    same record).  Returns records sorted by case index.
    """
    by_index: Dict[int, Dict[str, Any]] = {}
    with open(path, "r", encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            record = json.loads(line)
            index = int(record.get("case_index", record.get("index", -1)))
            if index not in by_index:
                by_index[index] = record
    return [by_index[index] for index in sorted(by_index)]
