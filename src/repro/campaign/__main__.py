"""Run, resume, shard, merge and inspect campaigns from the command line.

Usage::

    # one shard of a sharded fuzz sweep, checkpointed into its own ledger
    python -m repro.campaign run fuzz --runs 100000 --ledger shard0.db \
        --shard 0/4 --workers 4 --checkpoint-every 256

    # the same invocation again after a crash: continues where it stopped
    python -m repro.campaign run fuzz --runs 100000 --ledger shard0.db \
        --shard 0/4 --workers 4 --checkpoint-every 256 --resume

    # merge the shard ledgers and check the union digest
    python -m repro.campaign merge merged.db shard0.db shard1.db ...
    python -m repro.campaign digest merged.db --kind fuzz

    # what lives in a ledger, including per-shard resume checkpoints
    python -m repro.campaign status shard0.db

Exit codes: 0 — sweep ok; 1 — sweep completed with failing cases
(silent wrong answers, schedule failures, audit failures); 2 — campaign
misconfiguration (bad shard spec, checkpoint/fingerprint mismatch,
re-run without ``--resume``).
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Any, List, Optional

from ..errors import CampaignError, ReproError
from ..obs.ledger import RunLedger
from .engine import CampaignEngine, CampaignSpec, Shard

#: The frontends ``run`` can drive, by name.
FRONTENDS = ("fault", "fuzz", "battery", "byzantine")


def _parse_powers(text: str) -> tuple:
    try:
        powers = tuple(int(p) for p in str(text).split(",") if p != "")
    except ValueError:
        raise CampaignError(
            f"--powers must be comma-separated ints (e.g. 0,1,2,3), "
            f"got {text!r}"
        ) from None
    if not powers or any(p < 0 for p in powers):
        raise CampaignError(f"--powers needs non-negative powers, got {text!r}")
    return powers


def _build_spec(args: argparse.Namespace) -> CampaignSpec:
    """Build the chosen frontend's spec (streaming shape: no collector)."""
    if args.frontend == "fault":
        from ..fault.campaign import CampaignConfig, FaultCampaignSpec

        return FaultCampaignSpec(
            pairs=args.pairs,
            config=CampaignConfig(seed=args.seed),
            quick=args.quick,
        )
    if args.frontend == "byzantine":
        from ..fault.byzantine_campaign import (
            ByzantineCampaignSpec,
            ByzantineConfig,
        )

        return ByzantineCampaignSpec(
            cases=args.cases,
            powers=_parse_powers(args.powers),
            config=ByzantineConfig(
                seed=args.seed,
                strictness=args.strictness,
                abort=args.abort_on_detect,
            ),
            quick=args.quick,
        )
    if args.frontend == "fuzz":
        from ..adversary.fuzz import FuzzCampaignSpec, FuzzConfig

        return FuzzCampaignSpec(
            runs=args.runs,
            config=FuzzConfig(seed=args.seed, fault_every=args.fault_every),
            quick=args.quick,
        )
    from ..analysis.campaign import BatteryCampaignSpec

    return BatteryCampaignSpec(
        battery=args.battery,
        repetitions=args.reps,
        seed=args.seed,
    )


def _cmd_run(args: argparse.Namespace) -> int:
    spec = _build_spec(args)
    engine = CampaignEngine(
        spec,
        ledger=args.ledger,
        workers=args.workers,
        shard=Shard.parse(args.shard),
        checkpoint_every=args.checkpoint_every,
        max_cases=args.max_cases,
        spill=args.spill,
    )
    result = engine.run(resume=args.resume)
    if args.json:
        print(json.dumps(result.to_dict(), indent=2, sort_keys=True))
    else:
        print(result.render())
    return 0 if result.ok else 1


def _cmd_merge(args: argparse.Namespace) -> int:
    dest = RunLedger(args.dest)
    try:
        total = 0
        for source in args.sources:
            copied = dest.merge_from(source)
            total += copied
            print(f"merged {copied} rows from {source}")
        print(f"{args.dest}: {dest.count()} rows total (+{total})")
    finally:
        dest.close()
    return 0


def _cmd_digest(args: argparse.Namespace) -> int:
    ledger = RunLedger(args.ledger)
    try:
        digest = ledger.digest(kind=args.kind, campaign=args.campaign)
        rows = ledger.count(kind=args.kind, campaign=args.campaign)
        print(f"{digest}  rows={rows}")
    finally:
        ledger.close()
    return 0


def _cmd_status(args: argparse.Namespace) -> int:
    ledger = RunLedger(args.ledger)
    try:
        payload = {
            "stats": ledger.stats(),
            "checkpoints": ledger.checkpoints(),
        }
        if args.json:
            print(json.dumps(payload, indent=2, sort_keys=True))
            return 0
        print(f"{args.ledger}: {payload['stats']['rows']} rows")
        for group in payload["stats"]["campaigns"]:
            print(
                f"  {group['kind']}/{group['campaign']}: {group['rows']} rows"
                f"  outcomes={group['outcomes']}"
            )
        if not payload["checkpoints"]:
            print("  no checkpoints")
        for cp in payload["checkpoints"]:
            print(
                f"  checkpoint {cp['kind']}/{cp['campaign']} shard "
                f"{cp['shard_index']}/{cp['shard_count']}: "
                f"{cp['done']} cases committed "
                f"(fingerprint {cp['fingerprint'][:12]}…)"
            )
    finally:
        ledger.close()
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.campaign",
        description="Streaming, checkpointed, resumable campaign sweeps.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run = sub.add_parser(
        "run", help="run one shard of a campaign into a ledger"
    )
    run.add_argument(
        "frontend", choices=FRONTENDS, help="which sweep family to run"
    )
    run.add_argument(
        "--ledger",
        required=True,
        help="SQLite ledger path (rows + resume checkpoint live here)",
    )
    run.add_argument("--seed", type=int, default=0, help="campaign seed")
    run.add_argument(
        "--workers", type=int, default=1, help="parallel worker processes"
    )
    run.add_argument(
        "--shard",
        default="0/1",
        metavar="i/N",
        help="this process's shard: it owns case indices ≡ i (mod N)",
    )
    run.add_argument(
        "--resume",
        action="store_true",
        help="continue from the ledger's checkpoint for this shard",
    )
    run.add_argument(
        "--max-cases",
        type=int,
        default=None,
        help="truncate the grid to its first N indices (before sharding)",
    )
    run.add_argument(
        "--checkpoint-every",
        type=int,
        default=64,
        metavar="N",
        help="cases per durable commit (also the max re-done work on kill)",
    )
    run.add_argument(
        "--spill",
        default=None,
        metavar="PATH",
        help="also append one JSONL record per case to PATH",
    )
    run.add_argument(
        "--quick",
        action="store_true",
        help="trimmed instance battery (fault/fuzz frontends)",
    )
    run.add_argument(
        "--json", action="store_true", help="machine-readable result"
    )
    run.add_argument(
        "--pairs", type=int, default=208, help="fault frontend: matrix size"
    )
    run.add_argument(
        "--runs", type=int, default=200, help="fuzz frontend: grid size"
    )
    run.add_argument(
        "--fault-every",
        type=int,
        default=0,
        help="fuzz frontend: pair a fault plan with every Nth case",
    )
    run.add_argument(
        "--battery",
        default="quantitative",
        help="battery frontend: named instance battery",
    )
    run.add_argument(
        "--cases",
        type=int,
        default=512,
        help="byzantine frontend: grid size",
    )
    run.add_argument(
        "--powers",
        default="0,1,2,3",
        metavar="P,P,...",
        help="byzantine frontend: adversary powers to sweep",
    )
    run.add_argument(
        "--strictness",
        type=int,
        default=2,
        choices=(1, 2, 3),
        help="byzantine frontend: cheat-detector strictness",
    )
    run.add_argument(
        "--abort-on-detect",
        action="store_true",
        help="byzantine frontend: abort runs on fresh cheat evidence",
    )
    run.add_argument(
        "--reps",
        type=int,
        default=1,
        help="battery frontend: schedule seeds per instance",
    )
    run.set_defaults(func=_cmd_run)

    merge = sub.add_parser(
        "merge", help="merge shard ledgers into one (rows only)"
    )
    merge.add_argument("dest", help="destination ledger (created if absent)")
    merge.add_argument("sources", nargs="+", help="shard ledgers to copy in")
    merge.set_defaults(func=_cmd_merge)

    digest = sub.add_parser(
        "digest", help="print a ledger's deterministic content digest"
    )
    digest.add_argument("ledger")
    digest.add_argument("--kind", default=None)
    digest.add_argument("--campaign", default=None)
    digest.set_defaults(func=_cmd_digest)

    status = sub.add_parser(
        "status", help="rows, campaigns and resume checkpoints in a ledger"
    )
    status.add_argument("ledger")
    status.add_argument("--json", action="store_true")
    status.set_defaults(func=_cmd_status)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return args.func(args)
    except CampaignError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
