"""Canonical forms and a total order for bi-colored digraphs (Lemma 3.1).

Lemma 3.1 needs a deterministic total order ``≺`` on (isomorphism classes
of) bi-colored digraphs: the paper sketches a brute-force minimum over all
``n!`` adjacency-matrix permutations.  We implement the equivalent but
practical *individualization–refinement* canonical form:

1. compute the coarsest **equitable partition** of the digraph refining the
   node coloring (signatures use both out- and in-neighbor class multisets);
2. while some cell is non-singleton, individualize each member of the first
   such cell in turn and recurse;
3. every leaf yields a discrete ordering and hence a matrix encoding; the
   canonical encoding is the minimum over leaves.

The encoding is invariant under digraph isomorphism and distinguishes
non-isomorphic digraphs, so the lexicographic order on encodings induces the
required total order ``≺``.  Keys returned by :func:`canonical_key` sort
first by node count (as the paper's order does), then by encoding.

Nothing here is agent-visible magic: protocol ELECT's agents each run this
deterministic procedure on their own locally-drawn map, and because the maps
are isomorphic the computed *class order* is identical for all agents.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Dict, FrozenSet, Hashable, List, Optional, Sequence, Set, Tuple

from ..errors import GraphError
from ..perf import cache as _cache
from ..perf.kernel import DigraphKernel, resolve_kernel

if False:  # pragma: no cover - typing only
    from .network import AnonymousNetwork

CanonicalKey = Tuple[int, Tuple[int, ...], bytes]

#: Version tag mixed into :func:`canonical_hash`.  Bump whenever the
#: canonical encoding changes shape: persisted stores keyed by the hash
#: (``repro.serve.store``) must never serve values computed under a
#: different encoding.
CANONICAL_HASH_VERSION = 1


@dataclass(frozen=True)
class Digraph:
    """A small directed graph with hashable node colors.

    ``out_edges[i]`` is the set of successors of node ``i``.  Parallel arcs
    are not modeled (Definition 3.1 surroundings never produce them); a
    2-cycle ``x → y → x`` represents the "equidistant" double arc.
    """

    num_nodes: int
    colors: Tuple[Hashable, ...]
    out_edges: Tuple[FrozenSet[int], ...]

    def __post_init__(self) -> None:
        if len(self.colors) != self.num_nodes:
            raise GraphError("color count must equal node count")
        if len(self.out_edges) != self.num_nodes:
            raise GraphError("out_edges count must equal node count")
        for i, succ in enumerate(self.out_edges):
            for j in succ:
                if not 0 <= j < self.num_nodes:
                    raise GraphError(f"arc {i}->{j} out of range")

    @staticmethod
    def build(
        num_nodes: int,
        arcs: Sequence[Tuple[int, int]],
        colors: Optional[Sequence[Hashable]] = None,
    ) -> "Digraph":
        """Construct from an arc list (duplicates collapse)."""
        out: List[Set[int]] = [set() for _ in range(num_nodes)]
        for u, v in arcs:
            out[u].add(v)
        palette = tuple(colors) if colors is not None else tuple([0] * num_nodes)
        return Digraph(num_nodes, palette, tuple(frozenset(s) for s in out))

    def in_edges(self) -> Tuple[FrozenSet[int], ...]:
        """Predecessor sets (computed on demand)."""
        preds: List[Set[int]] = [set() for _ in range(self.num_nodes)]
        for u, succ in enumerate(self.out_edges):
            for v in succ:
                preds[v].add(u)
        return tuple(frozenset(s) for s in preds)

    def relabeled(self, perm: Sequence[int]) -> "Digraph":
        """Digraph with node ``i`` renamed ``perm[i]``."""
        if sorted(perm) != list(range(self.num_nodes)):
            raise GraphError("relabeling must be a bijection")
        colors: List[Hashable] = [None] * self.num_nodes
        out: List[Set[int]] = [set() for _ in range(self.num_nodes)]
        for i in range(self.num_nodes):
            colors[perm[i]] = self.colors[i]
            out[perm[i]] = {perm[j] for j in self.out_edges[i]}
        return Digraph(
            self.num_nodes, tuple(colors), tuple(frozenset(s) for s in out)
        )


def _normalize_palette(colors: Sequence[Hashable]) -> List[int]:
    """Map node colors to dense ints in an isomorphism-invariant way.

    Integer colors (the bi-colored 0/1 palette of the paper) are used as-is.
    Other hashable palettes are ranked by ``repr`` string, which is
    deterministic across processes for value-like colors; callers that need
    full rigor should pre-normalize to ints.
    """
    if all(isinstance(c, int) for c in colors):
        return [int(c) for c in colors]
    palette = set(colors)
    by_repr: Dict[str, Hashable] = {}
    for c in palette:
        other = by_repr.setdefault(repr(c), c)
        if other is not c:
            raise GraphError(
                f"ambiguous digraph color palette: distinct colors {other!r} "
                f"and {c!r} share a repr; pre-normalize the palette to ints"
            )
    ranked = {c: i for i, c in enumerate(sorted(palette, key=repr))}
    return [ranked[c] for c in colors]


def digraph_refinement(
    g: Digraph, initial: Sequence[int], kernel: Optional[str] = None
) -> List[int]:
    """Coarsest equitable partition of a digraph refining ``initial``.

    Node signature = (class, sorted out-neighbor classes, sorted in-neighbor
    classes).  New class ids are assigned by sorted signature so the result
    is isomorphism-invariant: isomorphic digraphs (with matching initial
    colorings) receive identical class-id structures.

    ``kernel`` selects the backend (:data:`repro.perf.kernel.KERNELS`):
    the numpy kernel reproduces this function's numbering bit-for-bit, so
    canonical encodings — and the pinned ``canonical_hash`` goldens — are
    identical under every backend.  ``"worklist"`` and ``"baseline"`` both
    mean this Python reference (there is no splitter-queue variant here).
    """
    if resolve_kernel(kernel) == "numpy":
        return DigraphKernel(g).refine(initial)
    return _digraph_refinement_python(g, initial)


def _digraph_refinement_python(g: Digraph, initial: Sequence[int]) -> List[int]:
    """The per-node tuple/sort reference implementation (parity oracle)."""
    classes = list(initial)
    preds = g.in_edges()
    while True:
        sigs = []
        for x in range(g.num_nodes):
            sigs.append(
                (
                    classes[x],
                    tuple(sorted(classes[y] for y in g.out_edges[x])),
                    tuple(sorted(classes[y] for y in preds[x])),
                )
            )
        ordered = sorted(set(sigs))
        palette = {sig: i for i, sig in enumerate(ordered)}
        new_classes = [palette[sig] for sig in sigs]
        if new_classes == classes:
            return classes
        classes = new_classes


def _encode_ordering(g: Digraph, order: Sequence[int]) -> Tuple[Tuple[int, ...], bytes]:
    """Encoding of g under a node ordering: (colors row, adjacency bitstring).

    ``order[i]`` = node placed at position i.  The adjacency component packs
    the row-major boolean matrix into bytes (the paper's w(M) word).
    """
    n = g.num_nodes
    palette = _normalize_palette(g.colors)
    colors_row = tuple(palette[order[i]] for i in range(n))
    bits = bytearray((n * n + 7) // 8)
    position = {node: i for i, node in enumerate(order)}
    for u in range(n):
        pu = position[u]
        base = pu * n
        for v in g.out_edges[u]:
            idx = base + position[v]
            bits[idx >> 3] |= 1 << (idx & 7)
    return colors_row, bytes(bits)


def _make_refiner(g: Digraph, kernel: Optional[str]):
    """One refinement callable for a whole individualization–refinement
    search: the numpy backend prebuilds the flat digraph buffers once and
    reuses them across the hundreds of re-refinements the recursion makes.
    """
    if resolve_kernel(kernel) == "numpy":
        return DigraphKernel(g).refine
    return lambda classes: _digraph_refinement_python(g, classes)


def canonical_encoding(
    g: Digraph, kernel: Optional[str] = None
) -> Tuple[Tuple[int, ...], bytes]:
    """Minimum encoding over all refinement-consistent orderings.

    Implements individualization–refinement; leaves are discrete partitions,
    each giving a candidate encoding, and the minimum is canonical.  The
    result is backend-independent (the kernels agree bit-for-bit).
    """
    base_colors = _normalize_palette(g.colors)
    refine = _make_refiner(g, kernel)
    best: List[Optional[Tuple[Tuple[int, ...], bytes]]] = [None]

    def recurse(classes: List[int]) -> None:
        classes = refine(classes)
        cells: Dict[int, List[int]] = {}
        for node, cid in enumerate(classes):
            cells.setdefault(cid, []).append(node)
        target_cell = None
        for cid in sorted(cells):
            if len(cells[cid]) > 1:
                target_cell = cells[cid]
                break
        if target_cell is None:
            # Discrete: class ids are a permutation of 0..n-1; order by id.
            order = sorted(range(g.num_nodes), key=lambda x: classes[x])
            enc = _encode_ordering(g, order)
            if best[0] is None or enc < best[0]:
                best[0] = enc
            return
        next_id = g.num_nodes  # a fresh class id, strictly above existing ones
        for node in target_cell:
            child = list(classes)
            child[node] = next_id
            recurse(child)

    recurse(base_colors)
    assert best[0] is not None
    return best[0]


def canonical_key(g: Digraph) -> CanonicalKey:
    """Total-order key: (node count, canonical colors row, canonical matrix).

    ``canonical_key(g1) == canonical_key(g2)`` iff the colored digraphs are
    isomorphic; keys of non-isomorphic digraphs compare consistently in
    every process, giving the ``≺`` of Lemma 3.1.

    Memoized on the (hashable, immutable) digraph itself: the
    individualization–refinement search is by far the most expensive step
    of the Lemma 3.1 ordering, and the batteries ask for the same
    surrounding digraphs repeatedly.
    """
    return _cache.memo_value(
        "canonical_key", g, lambda: (g.num_nodes, *canonical_encoding(g))
    )


def canonical_node_order(g: Digraph, kernel: Optional[str] = None) -> List[int]:
    """A canonical ordering of the nodes (the argmin ordering).

    Ties across automorphic nodes are broken arbitrarily but consistently:
    any two runs on isomorphic inputs produce orderings related by an
    isomorphism.  Used to pick canonical representatives deterministically.
    """
    base_colors = _normalize_palette(g.colors)
    refine = _make_refiner(g, kernel)
    best: List[Optional[Tuple[Tuple[Tuple[int, ...], bytes], Tuple[int, ...]]]] = [None]

    def recurse(classes: List[int]) -> None:
        classes = refine(classes)
        cells: Dict[int, List[int]] = {}
        for node, cid in enumerate(classes):
            cells.setdefault(cid, []).append(node)
        target_cell = None
        for cid in sorted(cells):
            if len(cells[cid]) > 1:
                target_cell = cells[cid]
                break
        if target_cell is None:
            order = sorted(range(g.num_nodes), key=lambda x: classes[x])
            enc = _encode_ordering(g, order)
            if best[0] is None or enc < best[0][0]:
                best[0] = (enc, tuple(order))
            return
        next_id = g.num_nodes
        for node in target_cell:
            child = list(classes)
            child[node] = next_id
            recurse(child)

    recurse(base_colors)
    assert best[0] is not None
    return list(best[0][1])


def digraphs_isomorphic(a: Digraph, b: Digraph) -> bool:
    """Colored-digraph isomorphism via canonical keys."""
    if a.num_nodes != b.num_nodes:
        return False
    return canonical_key(a) == canonical_key(b)


# ----------------------------------------------------------------------
# Content-addressed network hashing (the persistent-cache key)
# ----------------------------------------------------------------------


def underlying_digraph(network: "AnonymousNetwork", node_colors: Optional[Sequence[Hashable]] = None) -> Digraph:
    """The node-colored underlying graph of a network, as a :class:`Digraph`.

    Every undirected edge becomes a 2-cycle of arcs; port labels are
    dropped.  This is exactly the object Definition 2.1 quantifies over:
    equivalence classes, surroundings, free-automorphism certificates and
    the Theorem 4.1 regular-subgroup criterion are all functions of it, so
    its isomorphism class determines every feasibility-layer answer.

    Simple networks only (as everywhere in the canonical machinery).
    """
    if not network.is_simple:
        raise GraphError("underlying_digraph requires a simple network")
    colors: Sequence[Hashable]
    if node_colors is None:
        colors = tuple([0] * network.num_nodes)
    else:
        if len(node_colors) != network.num_nodes:
            raise GraphError(
                f"node coloring has {len(node_colors)} entries for "
                f"{network.num_nodes} nodes"
            )
        colors = tuple(node_colors)
    arcs: List[Tuple[int, int]] = []
    for (u, _, v, _) in network.edges():
        arcs.append((u, v))
        arcs.append((v, u))
    return Digraph.build(network.num_nodes, arcs, colors)


def canonical_form_bytes(
    network: "AnonymousNetwork", node_colors: Optional[Sequence[Hashable]] = None
) -> bytes:
    """Deterministic byte serialization of the canonical form.

    The layout is ``version | n | canonical colors row | canonical
    adjacency bits``, each length-prefixed, so distinct canonical forms
    never serialize to the same bytes.
    """
    n, colors_row, bits = canonical_key(underlying_digraph(network, node_colors))
    head = f"repro-canonical-v{CANONICAL_HASH_VERSION}|{n}|".encode("ascii")
    palette = ",".join(map(str, colors_row)).encode("ascii")
    return head + str(len(palette)).encode("ascii") + b"|" + palette + b"|" + bits


def canonical_hash(
    network: "AnonymousNetwork", node_colors: Optional[Sequence[Hashable]] = None
) -> str:
    """SHA-256 content address of the colored underlying graph.

    Two networks share a hash iff their node-colored underlying graphs are
    isomorphic — the hash is invariant under node relabeling
    (``with_nodes_permuted``, with the coloring permuted alongside) and
    under arbitrary port relabelings (``with_ports_relabeled``), and stable
    across processes and machines (no ``PYTHONHASHSEED`` dependence).

    This is the cache key of :mod:`repro.serve.store`: every query the
    service answers is a pure function of exactly this isomorphism class
    (pass the placement's bicoloring as ``node_colors``), so persisted
    answers can be shared between all isomorphic copies of an instance.
    """
    return hashlib.sha256(canonical_form_bytes(network, node_colors)).hexdigest()
