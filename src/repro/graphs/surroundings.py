"""Surroundings (Definition 3.1) and the class ordering of COMPUTE & ORDER.

The *surrounding* of node ``u`` in a bi-colored network ``(G, p)`` is the
digraph ``S(u)`` on the same nodes and coloring with arcs

    ``(x, y)``  iff  ``{x, y} ∈ E`` and ``d(u, x) ≤ d(u, y)``.

Equidistant neighbors get arcs in both directions; ``u`` is the unique node
of in-degree 0.  Lemma 3.1's pivotal facts, both verified by the test suite:

* ``u ~ v``  (Definition 2.1)  ⇔  ``S(u)`` and ``S(v)`` are isomorphic as
  colored digraphs;
* canonical keys of surroundings therefore yield a **total order on the
  equivalence classes** that every agent computes identically from its own
  map — the order protocol ELECT reduces classes in.
"""

from __future__ import annotations

from typing import Hashable, List, Optional, Sequence, Tuple

from ..errors import GraphError
from ..perf import cache as _cache
from ..perf.kernel import resolve_kernel, surrounding_arcs_numpy
from .canonical import CanonicalKey, Digraph, canonical_key, digraph_refinement
from .network import AnonymousNetwork
from .views import _colors_key, _normalize_colors

NodeColoring = Sequence[Hashable]


def surrounding(
    network: AnonymousNetwork,
    u: int,
    node_colors: Optional[NodeColoring] = None,
    kernel: Optional[str] = None,
) -> Digraph:
    """The surrounding ``S(u)`` as a colored :class:`Digraph`.

    Requires a simple network (Definition 3.1 is stated for simple graphs;
    the surrounding of a multigraph would need arc multiplicities).
    Memoized per ``(network, u, coloring)``: :func:`surrounding_profile`
    and :func:`surrounding_key` both start from this digraph, and the
    returned :class:`Digraph` is immutable so sharing is safe.  The
    ``kernel`` selector picks how the arc list is computed (flat-array BFS
    vs the per-edge Python loop); every backend produces the same digraph,
    so the memo key is backend-free.
    """
    return _cache.memo(
        network,
        "surrounding",
        (u, _colors_key(node_colors)),
        lambda: _surrounding(network, u, node_colors, kernel),
    )


def _surrounding(
    network: AnonymousNetwork,
    u: int,
    node_colors: Optional[NodeColoring],
    kernel: Optional[str] = None,
) -> Digraph:
    if not network.is_simple:
        raise GraphError("surroundings are defined for simple networks")
    colors = _normalize_colors(network, node_colors)
    if resolve_kernel(kernel) == "numpy":
        arcs = surrounding_arcs_numpy(network, u)
    else:
        dist = network.distances_from(u)
        arcs = []
        for (x, _, y, _) in network.edges():
            if dist[x] <= dist[y]:
                arcs.append((x, y))
            if dist[y] <= dist[x]:
                arcs.append((y, x))
    return Digraph.build(network.num_nodes, arcs, colors)


def surrounding_key(
    network: AnonymousNetwork,
    u: int,
    node_colors: Optional[NodeColoring] = None,
) -> CanonicalKey:
    """Canonical key of ``S(u)`` — the per-node sort key of Lemma 3.1.

    Memoized per ``(network, u, coloring)``; the underlying
    :func:`canonical_key` is additionally memoized on the digraph, so even
    a cold per-node entry is cheap when an isomorphic surrounding was
    keyed before.
    """
    return _cache.memo(
        network,
        "surrounding_key",
        (u, _colors_key(node_colors)),
        lambda: canonical_key(surrounding(network, u, node_colors)),
    )


def in_degree_zero_nodes(g: Digraph) -> List[int]:
    """Nodes of in-degree zero (for ``S(u)`` this is exactly ``[u]``)."""
    preds = g.in_edges()
    return [x for x in range(g.num_nodes) if not preds[x]]


def surrounding_profile(
    network: AnonymousNetwork,
    u: int,
    node_colors: Optional[NodeColoring] = None,
) -> Tuple:
    """A cheap isomorphism-invariant of ``S(u)`` (refinement fingerprint).

    Distinct profiles certify non-isomorphic surroundings; equal profiles
    are inconclusive.  Used to avoid the expensive canonical form when the
    fingerprint already separates two classes.  Memoized per
    ``(network, u, coloring)`` alongside :func:`surrounding_key`.
    """
    return _cache.memo(
        network,
        "surrounding_profile",
        (u, _colors_key(node_colors)),
        lambda: _surrounding_profile(network, u, node_colors),
    )


def _surrounding_profile(
    network: AnonymousNetwork,
    u: int,
    node_colors: Optional[NodeColoring],
) -> Tuple:
    g = surrounding(network, u, node_colors)
    palette = _normalize_colors(network, node_colors)
    refined = digraph_refinement(g, palette)
    return (g.num_nodes, tuple(sorted(refined)))


def order_equivalence_classes(
    network: AnonymousNetwork,
    classes: Sequence[Sequence[int]],
    node_colors: Optional[NodeColoring] = None,
) -> List[List[int]]:
    """Sort equivalence classes by the canonical key of their surroundings.

    ``classes`` must be the Definition 2.1 equivalence classes of
    ``(network, node_colors)``.  All members of a class have isomorphic
    surroundings (Lemma 3.1), hence identical keys; a representative's key
    orders the class.  A duplicate key across two *distinct* classes would
    contradict Lemma 3.1 and raises :class:`GraphError`.

    Two-tier comparison for speed: classes are first separated by the cheap
    refinement fingerprint of their surroundings; the expensive canonical
    form is computed only among fingerprint ties.  The resulting order is
    deterministic and isomorphism-invariant either way.

    Returns a new list of classes (each sorted internally) in ``≺`` order.
    """
    reps: List[Tuple[Tuple, List[int]]] = []
    for cls in classes:
        members = sorted(cls)
        if not members:
            raise GraphError("empty equivalence class")
        profile = surrounding_profile(network, members[0], node_colors)
        reps.append((profile, members))

    profile_counts: dict = {}
    for profile, _ in reps:
        profile_counts[profile] = profile_counts.get(profile, 0) + 1

    keyed: List[Tuple[Tuple, CanonicalKey, List[int]]] = []
    empty_key: CanonicalKey = (0, (), b"")
    for profile, members in reps:
        if profile_counts[profile] > 1:
            key = surrounding_key(network, members[0], node_colors)
        else:
            key = empty_key  # never compared against an equal profile
        keyed.append((profile, key, members))
    keyed.sort(key=lambda item: (item[0], item[1]))
    for (p1, k1, c1), (p2, k2, c2) in zip(keyed, keyed[1:]):
        if p1 == p2 and k1 == k2:
            raise GraphError(
                f"two distinct classes {c1} and {c2} share a surrounding key; "
                "input classes are not the Definition 2.1 classes"
            )
    return [members for (_, _, members) in keyed]


def class_signature(
    network: AnonymousNetwork,
    node_colors: Optional[NodeColoring] = None,
) -> List[CanonicalKey]:
    """Per-node surrounding keys (diagnostic: nodes sharing a key *may* be
    equivalent; nodes with distinct keys are certainly not)."""
    return [
        surrounding_key(network, u, node_colors) for u in network.nodes()
    ]
