"""Standard network builders: paths, cycles, Petersen, grids, random graphs.

Each builder produces the unlabeled structure and delegates port labeling to
a strategy from :mod:`repro.graphs.labelings` (default: deterministic integer
ports, the classical convention).  The special fixtures of the paper's
Figure 2 are built with their exact published labelings.
"""

from __future__ import annotations

import random
from typing import Callable, List, Optional, Sequence, Tuple

import networkx as nx

from ..colors import Color, ColorSpace
from ..errors import GraphError
from .labelings import LabelingStrategy, integer_labeling
from .network import AnonymousNetwork

Pairs = List[Tuple[int, int]]


def _build(
    num_nodes: int,
    pairs: Pairs,
    labeling: Optional[LabelingStrategy],
    name: str,
) -> AnonymousNetwork:
    strategy = labeling or integer_labeling
    net = strategy(num_nodes, pairs)
    # Strategies name networks themselves only when asked; stamp the family name.
    return AnonymousNetwork(num_nodes, net.edges(), name=name)


def path_graph(
    n: int, labeling: Optional[LabelingStrategy] = None
) -> AnonymousNetwork:
    """The path ``P_n`` on ``n`` nodes."""
    if n < 2:
        raise GraphError("a path needs at least 2 nodes")
    pairs = [(i, i + 1) for i in range(n - 1)]
    return _build(n, pairs, labeling, f"P_{n}")


def cycle_graph(
    n: int, labeling: Optional[LabelingStrategy] = None
) -> AnonymousNetwork:
    """The cycle ``C_n`` (``n >= 3``)."""
    if n < 3:
        raise GraphError("a cycle needs at least 3 nodes")
    pairs = [(i, (i + 1) % n) for i in range(n)]
    return _build(n, pairs, labeling, f"C_{n}")


def complete_graph(
    n: int, labeling: Optional[LabelingStrategy] = None
) -> AnonymousNetwork:
    """The complete graph ``K_n`` (``K_2`` is the paper's universality
    counterexample)."""
    if n < 2:
        raise GraphError("a complete graph needs at least 2 nodes")
    pairs = [(i, j) for i in range(n) for j in range(i + 1, n)]
    return _build(n, pairs, labeling, f"K_{n}")


def star_graph(
    leaves: int, labeling: Optional[LabelingStrategy] = None
) -> AnonymousNetwork:
    """A star with a center (node 0) and ``leaves`` leaves.

    The paper notes election is trivial on stars: all agents race to the
    center's whiteboard.
    """
    if leaves < 1:
        raise GraphError("a star needs at least one leaf")
    pairs = [(0, i) for i in range(1, leaves + 1)]
    return _build(leaves + 1, pairs, labeling, f"Star_{leaves}")


def complete_bipartite_graph(
    a: int, b: int, labeling: Optional[LabelingStrategy] = None
) -> AnonymousNetwork:
    """``K_{a,b}`` with parts ``0..a-1`` and ``a..a+b-1``."""
    if a < 1 or b < 1:
        raise GraphError("both parts must be non-empty")
    pairs = [(i, a + j) for i in range(a) for j in range(b)]
    return _build(a + b, pairs, labeling, f"K_{a},{b}")


def grid_graph(
    rows: int, cols: int, labeling: Optional[LabelingStrategy] = None
) -> AnonymousNetwork:
    """The ``rows × cols`` open (non-wrapped) grid."""
    if rows < 1 or cols < 1:
        raise GraphError("grid dimensions must be positive")
    if rows * cols < 2:
        raise GraphError("grid needs at least 2 nodes")

    def nid(r: int, c: int) -> int:
        return r * cols + c

    pairs: Pairs = []
    for r in range(rows):
        for c in range(cols):
            if c + 1 < cols:
                pairs.append((nid(r, c), nid(r, c + 1)))
            if r + 1 < rows:
                pairs.append((nid(r, c), nid(r + 1, c)))
    return _build(rows * cols, pairs, labeling, f"Grid_{rows}x{cols}")


def petersen_graph(
    labeling: Optional[LabelingStrategy] = None,
) -> AnonymousNetwork:
    """The Petersen graph — the paper's Section 4 counterexample substrate.

    Nodes 0–4 form the outer 5-cycle, nodes 5–9 the inner pentagram;
    spoke ``i ↔ i+5``.  Vertex-transitive but **not** a Cayley graph.
    """
    outer = [(i, (i + 1) % 5) for i in range(5)]
    inner = [(5 + i, 5 + (i + 2) % 5) for i in range(5)]
    spokes = [(i, i + 5) for i in range(5)]
    return _build(10, outer + inner + spokes, labeling, "Petersen")


def binary_tree(
    depth: int, labeling: Optional[LabelingStrategy] = None
) -> AnonymousNetwork:
    """A complete binary tree of the given depth (depth 0 = single edge pair)."""
    if depth < 1:
        raise GraphError("tree depth must be >= 1")
    n = 2 ** (depth + 1) - 1
    pairs = [(i, 2 * i + 1) for i in range((n - 1) // 2)]
    pairs += [(i, 2 * i + 2) for i in range((n - 1) // 2)]
    return _build(n, pairs, labeling, f"BinTree_{depth}")


def random_connected_graph(
    n: int,
    edge_prob: float,
    rng: Optional[random.Random] = None,
    labeling: Optional[LabelingStrategy] = None,
    max_tries: int = 200,
) -> AnonymousNetwork:
    """A connected Erdős–Rényi ``G(n, p)`` sample (resampled until connected).

    A uniform spanning-tree backbone is *not* forced; instead the sample is
    rejected until connected, so the distribution is exactly ``G(n,p)``
    conditioned on connectivity.
    """
    if n < 2:
        raise GraphError("need at least 2 nodes")
    rng = rng or random.Random()
    for _ in range(max_tries):
        pairs = [
            (i, j)
            for i in range(n)
            for j in range(i + 1, n)
            if rng.random() < edge_prob
        ]
        g = nx.Graph(pairs)
        g.add_nodes_from(range(n))
        if nx.is_connected(g):
            return _build(n, pairs, labeling, f"GNP_{n}_{edge_prob}")
    raise GraphError(
        f"could not sample a connected G({n},{edge_prob}) in {max_tries} tries"
    )


def from_networkx(
    graph: nx.Graph,
    labeling: Optional[LabelingStrategy] = None,
    name: Optional[str] = None,
) -> AnonymousNetwork:
    """Wrap any simple connected networkx graph as an anonymous network."""
    nodes = sorted(graph.nodes())
    index = {v: i for i, v in enumerate(nodes)}
    pairs = [(index[u], index[v]) for u, v in graph.edges()]
    return _build(
        len(nodes), pairs, labeling, name or f"NX_{len(nodes)}"
    )


def generalized_petersen_graph(
    n: int, k: int, labeling: Optional[LabelingStrategy] = None
) -> AnonymousNetwork:
    """The generalized Petersen graph GP(n, k).

    Outer cycle ``0..n-1``, inner nodes ``n..2n-1`` with inner steps of
    ``k``, spokes ``i ↔ n+i``.  GP(5, 2) is the Petersen graph; the family
    mixes Cayley members (e.g. GP(4, 1), the cube) with vertex-transitive
    non-Cayley members (GP(5, 2)) and non-vertex-transitive ones — ideal
    test material for the recognition machinery.
    """
    if n < 3 or not 1 <= k < n / 2:
        raise GraphError("GP(n,k) requires n >= 3 and 1 <= k < n/2")
    outer = [(i, (i + 1) % n) for i in range(n)]
    inner = [(n + i, n + (i + k) % n) for i in range(n)]
    spokes = [(i, n + i) for i in range(n)]
    return _build(2 * n, outer + inner + spokes, labeling, f"GP_{n}_{k}")


# ----------------------------------------------------------------------
# Exact fixtures from the paper's Figure 2
# ----------------------------------------------------------------------


def figure2a_quantitative_path() -> AnonymousNetwork:
    """Figure 2(a): the path x–y–z with the paper's integer labeling.

    ``ℓ_x({x,y}) = 1, ℓ_y({x,y}) = 1, ℓ_y({y,z}) = 2, ℓ_z({y,z}) = 1``.
    Nodes: x=0, y=1, z=2.  All three views differ and are orderable, so the
    quantitative world can elect here.
    """
    edges = [(0, 1, 1, 1), (1, 2, 2, 1)]
    return AnonymousNetwork(3, edges, name="Fig2a")


def figure2b_qualitative_path() -> Tuple[AnonymousNetwork, Tuple[Color, Color, Color]]:
    """Figure 2(b): the same path with incomparable symbols ``*, ∘, •``.

    ``ℓ_x = *, ℓ_y({x,y}) = ∘, ℓ_y({y,z}) = •, ℓ_z = *``.  The views are all
    distinct, yet the two end agents' *first-seen integer encodings* of their
    walks coincide (both read ``1,2,3,1``), so view-sorting cannot elect.
    Returns the network and the three symbols ``(*, ∘, •)``.
    """
    space = ColorSpace(prefix="fig2b")
    star = space.fresh("*")
    circ = space.fresh("o")
    bullet = space.fresh(".")
    edges = [(0, star, 1, circ), (1, bullet, 2, star)]
    return AnonymousNetwork(3, edges, name="Fig2b"), (star, circ, bullet)


def figure2c_view_counterexample() -> AnonymousNetwork:
    """Figure 2(c): three nodes where all views coincide but ``~lab`` classes
    are singletons — the converse of Equation (1) fails.

    Structure: a directed-feeling 3-ring labeled 1 (clockwise) / 2
    (counter-clockwise), plus a "mess": two parallel edges between x and y
    with crossed labels 3/4, and a loop at z labeled 3 and 4.  The network is
    a multigraph; the views from x, y, z are label-isomorphic although no
    label-preserving automorphism moves z.
    """
    x, y, z = 0, 1, 2
    edges = [
        # the 3-ring: ports 1 go clockwise, ports 2 counter-clockwise
        (x, 1, y, 2),
        (y, 1, z, 2),
        (z, 1, x, 2),
        # the mess: e1 and e2 between x and y with crossed 3/4 labels
        (x, 3, y, 4),
        (x, 4, y, 3),
        # the loop f at z with extremities 3 and 4
        (z, 3, z, 4),
    ]
    return AnonymousNetwork(3, edges, name="Fig2c")
