"""The paper's literal Lemma 3.1 ordering machinery: hairs and extensions.

Lemma 3.1's proof orders bi-colored digraphs in three stages:

1. by the number of vertices;
2. by the maximum length of their *hairs* — a hair is a maximal path
   ``x_0, x_1, …, x_k`` with ``deg(x_i) = 2`` for ``0 < i < k`` and
   ``deg(x_k) = 1``;
3. bi-colored digraphs tying on both are transformed into *uni-colored*
   digraphs by replacing every black node with a white node carrying a
   fresh white path of length ``k + 1`` (strictly longer than any existing
   hair, so the attachments are recognisable), and the uni-colored
   canonical order decides.

The shipped :mod:`repro.graphs.canonical` order handles colors natively and
is what the protocols use; this module implements the paper's construction
*literally* so the reproduction can verify its key property — the extension
is injective on isomorphism classes — and compare both orders.

Degrees and hairs are computed on the *undirected shadow* (the paper's
construction is stated for graphs; surroundings contain 2-cycles for
equidistant neighbors which the shadow treats as single edges).
"""

from __future__ import annotations

from typing import Dict, List, Set, Tuple

from ..errors import GraphError
from .canonical import CanonicalKey, Digraph, canonical_key


def undirected_shadow(g: Digraph) -> List[Set[int]]:
    """Adjacency sets of the undirected shadow of a digraph."""
    adj: List[Set[int]] = [set() for _ in range(g.num_nodes)]
    for u in range(g.num_nodes):
        for v in g.out_edges[u]:
            adj[u].add(v)
            adj[v].add(u)
    return adj


def max_hair_length(g: Digraph) -> int:
    """The maximum hair length of the digraph's undirected shadow.

    A hair is a maximal path ``x_0, …, x_k`` whose interior nodes have
    shadow-degree 2 and whose tip ``x_k`` has degree 1; its length is ``k``.
    Returns 0 when there is no node of degree 1.
    """
    adj = undirected_shadow(g)
    best = 0
    for tip in range(g.num_nodes):
        if len(adj[tip]) != 1:
            continue
        # Walk inward from the tip while interior degree stays 2.
        length = 0
        prev, cur = tip, next(iter(adj[tip]))
        length += 1
        while len(adj[cur]) == 2:
            nxt = next(x for x in adj[cur] if x != prev)
            prev, cur = cur, nxt
            length += 1
        best = max(best, length)
    return best


def hair_extension(g: Digraph) -> Digraph:
    """The paper's bi-colored → uni-colored transformation.

    Every black node becomes white and receives a pendant path of
    ``k + 1`` fresh white nodes, where ``k`` is the maximum hair length of
    ``g`` (so the new hairs are strictly longer than any pre-existing one
    and the black positions remain recoverable).  Path edges are added as
    2-cycles (arcs both ways), keeping the result a digraph.

    Raises :class:`GraphError` if the coloring is not black/white (1/0).
    """
    colors = set(g.colors)
    if not colors <= {0, 1}:
        raise GraphError("hair extension is defined for bi-colored digraphs")
    k = max_hair_length(g)
    path_len = k + 1

    arcs: List[Tuple[int, int]] = [
        (u, v) for u in range(g.num_nodes) for v in g.out_edges[u]
    ]
    total = g.num_nodes
    for node in range(g.num_nodes):
        if g.colors[node] != 1:
            continue
        previous = node
        for _ in range(path_len):
            fresh = total
            total += 1
            arcs.append((previous, fresh))
            arcs.append((fresh, previous))
            previous = fresh
    return Digraph.build(total, arcs, colors=[0] * total)


def paper_order_key(g: Digraph) -> Tuple[int, int, CanonicalKey]:
    """Lemma 3.1's literal total-order key for bi-colored digraphs.

    ``(number of vertices, max hair length, canonical key of the
    uni-colored hair extension)``.  Equal keys ⇔ isomorphic bi-colored
    digraphs (the injectivity the proof requires; property-tested).
    """
    return (g.num_nodes, max_hair_length(g), canonical_key(hair_extension(g)))
