"""Views and symmetricity (Yamashita–Kameda) for port-labeled networks.

The *view* of an edge-labeled (bi-colored) graph from node ``v`` is the
infinite labeled rooted tree of all label-preserving walks out of ``v``
(paper, proof of Theorem 2.1).  Two nodes are view-equivalent,
``x ~view y``, when their views are label-isomorphic; by Norris's theorem it
suffices to compare views truncated at depth ``n - 1``.

Implementation notes
--------------------
* View equivalence is computed by **partition refinement**: start from the
  partition by node color, then split classes by the multiset of
  ``(exit-port, entry-port, neighbor's class)`` triples until stable.  The
  production path (:func:`view_refinement`) runs a Paige–Tarjan style
  *worklist* refinement: each newly created class is queued as a splitter
  and only the nodes with an edge into a queued splitter are re-signed —
  the "process all but the largest part" rule keeps the total work near
  ``O(m log n)`` instead of the reference implementation's
  all-nodes-every-round ``O(n·m)``.  The round-based reference
  (:func:`view_refinement_baseline`) is kept verbatim: it is the Norris
  bound made executable, the oracle for the parity property tests, and the
  baseline the scaling benchmarks measure against.  Both handle loops and
  parallel edges, so the Figure 2(c) counterexample works unmodified.
* Class ids are **canonical**: every ordering decision in the worklist uses
  only (class id, sorted signature, part size) — never node indices — so
  isomorphic copies (with corresponding symbol encodings) receive
  structurally identical class-id vectors, making id-based view orders
  equivariant.  The worklist's numbering differs from the reference
  implementation's (both are canonical; only the induced *partition* is
  part of the contract, and the property tests pin the partitions equal).
* Port labels may be incomparable :class:`~repro.colors.Color` symbols.
  Analysis code is allowed to index them arbitrarily (this is the outside
  observer's view, not an agent's): a deterministic *symbol index* built
  from edge-insertion order serves as the encoding.  Label-preserving
  isomorphism requires exact label equality, so any injective indexing is
  sound.
* Results are memoized per network in :mod:`repro.perf.cache` (networks
  are immutable after construction).  ``view_classes``, ``views_equal``,
  ``symmetricity_of_labeling`` and :class:`QuotientStructure` all share the
  one cached partition; ``repro.perf.uncached()`` bypasses the memo and
  ``repro.perf.cache_stats()`` exposes the hit counters.
* :func:`view_tree` additionally materialises truncated views as explicit
  trees for the Figure 2 demonstrations and for property tests
  cross-checking the refinement fixpoint.

The paper's symmetricity results reproduced here:

* all view classes of a connected network have the same size
  ``σ_ℓ(G)`` (checked by :func:`symmetricity_of_labeling`);
* ``x ~lab y ⇒ x ~view y`` (Equation (1); property-tested);
* election is impossible in a network whose symmetricity exceeds 1
  (Theorem 2.1 via the Figure 1 transformation).
"""

from __future__ import annotations

import heapq
from typing import Dict, Hashable, List, Optional, Sequence, Tuple

from ..errors import GraphError
from ..perf import cache as _cache
from ..perf.kernel import (  # noqa: F401  (re-exported selector surface)
    KERNELS,
    default_kernel,
    refine_numpy,
    resolve_kernel,
    set_default_kernel,
)
from .network import AnonymousNetwork, PortLabel

NodeColoring = Sequence[Hashable]

#: Per-node adjacency record: (exit symbol, entry symbol, neighbor node).
AdjacencyEntry = Tuple[int, int, int]


def _colors_key(node_colors: Optional[NodeColoring]) -> Optional[Tuple]:
    """Hashable cache key for a node coloring (None = uncolored)."""
    return None if node_colors is None else tuple(node_colors)


def symbol_index(network: AnonymousNetwork) -> Dict[PortLabel, int]:
    """Deterministic injective indexing of all port symbols in the network.

    Integer labels index as themselves — in the quantitative world the
    labels *are* the agreed encoding, which makes downstream orderings
    (e.g. :func:`view_order_leader`) equivariant across isomorphic copies.
    Incomparable symbols are numbered in order of first appearance scanning
    edge records: any injection yields the same *equivalences*, and no
    cross-copy order exists for them anyway (that is the paper's point).

    Memoized per network (the index is pure construction-order data).
    """
    return _cache.memo(network, "symbol_index", None, lambda: _symbol_index(network))


def _symbol_index(network: AnonymousNetwork) -> Dict[PortLabel, int]:
    symbols: List[PortLabel] = []
    seen = set()
    for (u, pu, v, pv) in network.edges():
        for s in (pu, pv):
            if s not in seen:
                seen.add(s)
                symbols.append(s)
    if all(isinstance(s, int) for s in symbols):
        return {s: s for s in symbols}
    return {s: i for i, s in enumerate(symbols)}


def _normalize_colors(
    network: AnonymousNetwork, node_colors: Optional[NodeColoring]
) -> List[int]:
    """Convert arbitrary hashable node colors to ints (None = uncolored).

    Integer colorings (the paper's black/white 0/1) pass through unchanged —
    this matters for cross-graph comparisons (surrounding keys must agree on
    isomorphic copies with different node numberings, so the palette cannot
    depend on node order).  Non-integer palettes are ranked by ``repr``.
    """
    if node_colors is None:
        return [0] * network.num_nodes
    if len(node_colors) != network.num_nodes:
        raise GraphError(
            f"node coloring has {len(node_colors)} entries for "
            f"{network.num_nodes} nodes"
        )
    if all(isinstance(c, int) for c in node_colors):
        return [int(c) for c in node_colors]
    palette = set(node_colors)
    by_repr: Dict[str, Hashable] = {}
    for c in palette:
        other = by_repr.setdefault(repr(c), c)
        if other is not c:
            # Two distinct colors with one repr would silently merge under
            # the repr ranking — reject instead of corrupting the partition.
            raise GraphError(
                f"ambiguous node-color palette: distinct colors {other!r} and "
                f"{c!r} share a repr; pre-normalize the palette to ints"
            )
    ranked: Dict[Hashable, int] = {
        c: i for i, c in enumerate(sorted(palette, key=repr))
    }
    return [ranked[c] for c in node_colors]


def refinement_adjacency(network: AnonymousNetwork) -> List[List[AdjacencyEntry]]:
    """Per-node ``(exit symbol, entry symbol, neighbor)`` lists, memoized.

    Hoists the ``symbol_index`` lookups and port traversals that the seed
    implementation re-did on every call out of the refinement hot path.
    """
    return _cache.memo(network, "adjacency", None, lambda: _build_adjacency(network))


def _build_adjacency(network: AnonymousNetwork) -> List[List[AdjacencyEntry]]:
    sym = symbol_index(network)
    adjacency: List[List[AdjacencyEntry]] = []
    for x in network.nodes():
        row: List[AdjacencyEntry] = []
        for port in network.ports(x):
            y, back = network.traverse(x, port)
            row.append((sym[port], sym[back], y))
        adjacency.append(row)
    return adjacency


# ----------------------------------------------------------------------
# Reference implementation: synchronized rounds (the Norris bound, literal)
# ----------------------------------------------------------------------


def view_refinement_baseline(
    network: AnonymousNetwork,
    node_colors: Optional[NodeColoring] = None,
    max_rounds: Optional[int] = None,
) -> List[int]:
    """The seed all-nodes-every-round refinement, kept as the reference.

    Runs partition refinement to fixpoint (at most ``n - 1`` rounds by
    Norris's theorem; ``max_rounds`` can truncate earlier to obtain the
    depth-``max_rounds`` view classes).  Quadratic on long-diameter
    instances; retained as the parity oracle and benchmark baseline —
    production callers go through :func:`view_refinement`.
    """
    n = network.num_nodes
    sym = symbol_index(network)
    classes = _normalize_colors(network, node_colors)
    rounds = (n - 1) if max_rounds is None else max_rounds
    for _ in range(max(rounds, 0)):
        signatures: List[Tuple] = []
        for x in network.nodes():
            triples = []
            for port in network.ports(x):
                y, back = network.traverse(x, port)
                triples.append((sym[port], sym[back], classes[y]))
            triples.sort()
            signatures.append((classes[x], tuple(triples)))
        # Ids assigned by *sorted* signature: isomorphic copies (with
        # corresponding symbol encodings) receive structurally identical
        # class-id vectors, making id-based view orders equivariant.
        palette = {sig: i for i, sig in enumerate(sorted(set(signatures)))}
        new_classes = [palette[sig] for sig in signatures]
        if new_classes == classes:
            break
        classes = new_classes
    return classes


# ----------------------------------------------------------------------
# Production implementation: Paige–Tarjan worklist refinement
# ----------------------------------------------------------------------


def _refine_worklist(
    network: AnonymousNetwork, colors: Sequence[int]
) -> List[int]:
    """Coarsest signature-stable partition refining ``colors``.

    Splitter-queue refinement: pop a class S, re-sign only the nodes with
    an edge into S by their ``(exit, entry)`` symbol multiset relative to
    S, and split each touched class; the part keeping the old id is always
    the largest (stability w.r.t. the parent and all other parts implies
    stability w.r.t. it — Hopcroft's rule), so singleton splitters cost
    O(degree) instead of a full pass.

    Every ordering decision uses (class id, sorted signature, part size)
    only, so ids are equivariant across isomorphic copies; the final ids
    are the dense rank of the (equivariant) internal ids.
    """
    n = network.num_nodes
    adjacency = refinement_adjacency(network)
    # Pre-swapped (entry, exit) pairs: the relative signature a neighbor y
    # acquires from its edge into a splitter member.
    rev = [[((si, so), y) for (so, si, y) in row] for row in adjacency]

    # Initial partition: colors refined by the whole-neighborhood symbol
    # profile.  This establishes stability w.r.t. the universe, which the
    # all-but-largest initial queueing below relies on.
    profile = [
        (colors[x], tuple(sorted((so, si) for (so, si, _) in adjacency[x])))
        for x in range(n)
    ]
    rank = {p: i for i, p in enumerate(sorted(set(profile)))}
    classes = [rank[profile[x]] for x in range(n)]
    members: Dict[int, Dict[int, None]] = {}
    for x in range(n):
        members.setdefault(classes[x], {})[x] = None
    if len(members) == 1:
        return classes
    next_id = len(rank)

    largest = max(sorted(members), key=lambda cid: len(members[cid]))
    pending = [cid for cid in sorted(members) if cid != largest]
    heapq.heapify(pending)
    in_pending = set(pending)

    while pending and len(members) < n:  # a discrete partition cannot split
        splitter = heapq.heappop(pending)
        in_pending.discard(splitter)
        # Relative signatures: for each node y with an edge into the
        # splitter, the multiset of (exit symbol at y, entry symbol at the
        # splitter end).  Snapshot the member list first — a class may have
        # edges into itself and split during its own processing.
        touched: Dict[int, List[Tuple[int, int]]] = {}
        for v in list(members[splitter]):
            for (pair, y) in rev[v]:
                if y in touched:
                    touched[y].append(pair)
                else:
                    touched[y] = [pair]
        by_class: Dict[int, List[int]] = {}
        for y in touched:
            by_class.setdefault(classes[y], []).append(y)
        for cid in sorted(by_class):
            group = by_class[cid]
            cmembers = members[cid]
            remainder_size = len(cmembers) - len(group)
            sig_groups: Dict[Tuple, List[int]] = {}
            for y in group:
                sig_groups.setdefault(tuple(sorted(touched[y])), []).append(y)
            if remainder_size == 0 and len(sig_groups) == 1:
                continue  # class is stable w.r.t. this splitter
            for y in group:
                del cmembers[y]  # cmembers is now the untouched remainder
            # Parts in canonical order: the remainder (empty signature)
            # first, then touched groups by ascending signature.
            parts: List[Tuple[Tuple, Optional[List[int]], int]] = []
            if remainder_size:
                parts.append(((), None, remainder_size))
            for sig in sorted(sig_groups):
                parts.append((sig, sig_groups[sig], len(sig_groups[sig])))
            # The largest part keeps the old id (first in canonical order
            # on ties); it is never queued unless the parent already was.
            survivor = max(range(len(parts)), key=lambda i: parts[i][2])
            new_ids: List[int] = []
            for i, (_, nodes_of_part, _) in enumerate(parts):
                if i == survivor:
                    continue
                nid = next_id
                next_id += 1
                new_ids.append(nid)
                if nodes_of_part is None:
                    # The remainder moves out under a fresh id; this scan
                    # is bounded by the survivor's size (smaller half).
                    members[nid] = cmembers
                    for y in cmembers:
                        classes[y] = nid
                else:
                    part_dict: Dict[int, None] = {}
                    for y in nodes_of_part:
                        classes[y] = nid
                        part_dict[y] = None
                    members[nid] = part_dict
            survivor_nodes = parts[survivor][1]
            if survivor_nodes is not None:
                # A touched group keeps the old id (their class ids are
                # already ``cid``); rebind the member table.
                members[cid] = {y: None for y in survivor_nodes}
            # else: the remainder kept both the id and the member dict.
            for nid in new_ids:
                heapq.heappush(pending, nid)
                in_pending.add(nid)
    remap = {cid: i for i, cid in enumerate(sorted(members))}
    return [remap[classes[x]] for x in range(n)]


def view_refinement(
    network: AnonymousNetwork,
    node_colors: Optional[NodeColoring] = None,
    max_rounds: Optional[int] = None,
    kernel: Optional[str] = None,
) -> List[int]:
    """The view-equivalence partition, as a class id per node.

    The fixpoint partition is computed by the selected backend and memoized
    per ``(network, kernel, coloring)``; the cache-miss count in
    ``repro.perf.cache_stats()["view_refinement"]`` is the number of actual
    refinement runs.  ``kernel`` selects the backend: ``"numpy"`` (the
    flat-array vectorized kernel, the default), ``"worklist"`` (the
    Paige–Tarjan splitter queue) or ``"baseline"`` (the seed
    all-nodes-every-round loop); ``None`` resolves to the process default
    (``repro.perf.kernel.set_default_kernel`` /
    ``REPRO_REFINEMENT_KERNEL``).  All backends induce the same partition
    with equivariant ids; the *numbering* is per-backend (each is
    canonical on its own, which is all the id-based orders need).
    ``max_rounds`` requests the depth-limited classes instead, which only
    the round-based reference implementation defines — those calls bypass
    the cache and the selector.
    """
    if max_rounds is not None:
        return view_refinement_baseline(network, node_colors, max_rounds)
    backend = resolve_kernel(kernel)

    def compute() -> Tuple[int, ...]:
        if backend == "baseline":
            return tuple(view_refinement_baseline(network, node_colors))
        colors = _normalize_colors(network, node_colors)
        if backend == "worklist":
            return tuple(_refine_worklist(network, colors))
        return tuple(refine_numpy(network, colors))

    ids = _cache.memo(
        network,
        "view_refinement",
        (backend, _colors_key(node_colors)),
        compute,
    )
    return list(ids)


def view_classes(
    network: AnonymousNetwork,
    node_colors: Optional[NodeColoring] = None,
) -> List[List[int]]:
    """View-equivalence classes as sorted lists of node indices."""
    ids = view_refinement(network, node_colors)
    buckets: Dict[int, List[int]] = {}
    for node, cid in enumerate(ids):
        buckets.setdefault(cid, []).append(node)
    return sorted(buckets.values())


def views_equal(
    network: AnonymousNetwork,
    x: int,
    y: int,
    node_colors: Optional[NodeColoring] = None,
) -> bool:
    """Whether ``x ~view y`` (label-isomorphic infinite views).

    Routed through the shared partition memo: calling this in a loop costs
    one refinement for the whole loop, not one per call.
    """
    ids = view_refinement(network, node_colors)
    return ids[x] == ids[y]


def symmetricity_of_labeling(
    network: AnonymousNetwork,
    node_colors: Optional[NodeColoring] = None,
) -> int:
    """``σ_ℓ(G)`` — the common size of the view classes of this labeling.

    The paper (after [33]) notes all view classes have the same size; this
    function verifies that invariant and returns the size.
    """
    classes = view_classes(network, node_colors)
    sizes = {len(c) for c in classes}
    if len(sizes) != 1:
        raise GraphError(
            f"view classes have unequal sizes {sorted(len(c) for c in classes)}; "
            "this contradicts the Yamashita-Kameda equal-fiber property"
        )
    return sizes.pop()


def election_feasible_by_views(
    network: AnonymousNetwork,
    node_colors: Optional[NodeColoring] = None,
) -> bool:
    """Yamashita–Kameda feasibility for *this* labeling: ``σ_ℓ(G) == 1``.

    Election in the processor-network model with complete knowledge is
    possible under labeling ℓ iff the symmetricity of ℓ is 1.  (Theorem 2.1
    transfers the impossibility side to mobile agents.)
    """
    return symmetricity_of_labeling(network, node_colors) == 1


# ----------------------------------------------------------------------
# Explicit truncated view trees (Figure 2 demonstrations, cross-checks)
# ----------------------------------------------------------------------


class ViewTree:
    """A truncated view ``V^(k)(v)``: rooted tree of label-preserving walks.

    ``encoding`` is a canonical nested tuple; two truncated views are
    label-isomorphic iff their encodings are equal.  Port symbols are
    encoded through the supplied symbol index (exact-label comparison).
    """

    __slots__ = ("root", "depth", "encoding")

    def __init__(self, root: int, depth: int, encoding: Tuple):
        self.root = root
        self.depth = depth
        self.encoding = encoding

    def __eq__(self, other: object) -> bool:
        if isinstance(other, ViewTree):
            return self.encoding == other.encoding
        return NotImplemented

    def __hash__(self) -> int:
        return hash(self.encoding)

    def __repr__(self) -> str:
        return f"ViewTree(root={self.root}, depth={self.depth})"


def view_tree(
    network: AnonymousNetwork,
    root: int,
    depth: int,
    node_colors: Optional[NodeColoring] = None,
) -> ViewTree:
    """Materialise the depth-``depth`` view from ``root``.

    Cost is O(Δ^depth); intended for small demos and property tests.  The
    child order inside the encoding is sorted, making the encoding canonical
    under label-preserving isomorphism.
    """
    sym = symbol_index(network)
    colors = _normalize_colors(network, node_colors)

    def encode(v: int, d: int) -> Tuple:
        if d == 0:
            return (colors[v],)
        children = []
        for port in network.ports(v):
            w, back = network.traverse(v, port)
            children.append((sym[port], sym[back], encode(w, d - 1)))
        children.sort()
        return (colors[v], tuple(children))

    return ViewTree(root, depth, encode(root, depth))


def view_order_leader(
    network: AnonymousNetwork,
    node_colors: Optional[NodeColoring] = None,
) -> Optional[int]:
    """The quantitative world's view-ordering election (converse of Thm 2.1).

    The paper notes that in *quantitative* computing the Theorem 2.1
    condition is also sufficient: when ``σ_ℓ(G) = 1`` all views are
    distinct, an a-priori total order on integer-encoded views exists, and
    everyone elects the minimum view.  This function returns that leader
    node, or ``None`` when ``σ_ℓ(G) > 1`` (no labeling-only election).

    The order used is the refinement's canonical class numbering, which is
    a total order on (distinct) views that every party computes identically
    — the "fix an arbitrary ordering of the views" step of the paper.
    Qualitative labelings admit no such shared order; this function is the
    quantitative baseline the paper contrasts against.
    """
    ids = view_refinement(network, node_colors)
    if len(set(ids)) != network.num_nodes:
        return None  # some views coincide: σ_ℓ > 1
    return min(network.nodes(), key=lambda v: ids[v])


class QuotientStructure:
    """The minimum base of the view covering (Yamashita–Kameda quotient).

    Nodes are the view classes; each class keeps the port set of one
    representative, and ``links`` records, for every (class, port) end,
    the (class, port) end it is glued to.  Unlike a plain graph, a
    quotient may contain *half-edges* — an end glued to itself (e.g. the
    quotient of symmetric ``K_2`` is one node with a half-edge) — which is
    why this is its own structure rather than an
    :class:`AnonymousNetwork`.

    The defining property (validated by :meth:`check_covering`): the map
    "node ↦ its class" is a covering: it is a local bijection on ports
    that commutes with traversal.  All fibers have equal size σ_ℓ(G).

    Construction shares the memoized view partition; building a quotient
    after any other view query costs only the O(n + m) assembly.
    """

    def __init__(
        self,
        network: AnonymousNetwork,
        node_colors: Optional[NodeColoring] = None,
    ):
        self.network = network
        self.class_ids = view_refinement(network, node_colors)
        buckets: Dict[int, List[int]] = {}
        for node, cid in enumerate(self.class_ids):
            buckets.setdefault(cid, []).append(node)
        self.classes: List[List[int]] = [
            sorted(buckets[cid]) for cid in sorted(buckets)
        ]
        self._cid_index = {cid: i for i, cid in enumerate(sorted(buckets))}
        self.representatives = [cls[0] for cls in self.classes]
        #: links[(class index, port)] = (class index, port) of the glued end.
        self.links: Dict[Tuple[int, PortLabel], Tuple[int, PortLabel]] = {}
        for qi, rep in enumerate(self.representatives):
            for port in network.ports(rep):
                w, back = network.traverse(rep, port)
                qj = self._cid_index[self.class_ids[w]]
                self.links[(qi, port)] = (qj, back)

    @property
    def num_classes(self) -> int:
        return len(self.classes)

    @property
    def fiber_size(self) -> int:
        """σ_ℓ(G): the common size of all fibers."""
        sizes = {len(c) for c in self.classes}
        if len(sizes) != 1:
            raise GraphError("unequal fibers: not a covering quotient")
        return sizes.pop()

    def class_of(self, node: int) -> int:
        """Quotient node (class index) of a network node."""
        return self._cid_index[self.class_ids[node]]

    def ports_of(self, qnode: int) -> Tuple[PortLabel, ...]:
        """Port labels of a quotient node (= its representative's ports)."""
        return self.network.ports(self.representatives[qnode])

    def half_edges(self) -> List[Tuple[int, PortLabel]]:
        """Ends glued to themselves (self-paired half-edges)."""
        return [end for end, other in self.links.items() if other == end]

    def check_covering(self) -> None:
        """Validate the covering property for *every* node, not just reps.

        For each network node v and port λ: the quotient link of
        (class(v), λ) must equal (class(traverse(v, λ)), entry port).
        Raises :class:`GraphError` on any violation.
        """
        for v in self.network.nodes():
            qv = self.class_of(v)
            if set(self.network.ports(v)) != set(self.ports_of(qv)):
                raise GraphError(f"port mismatch between node {v} and class {qv}")
            for port in self.network.ports(v):
                w, back = self.network.traverse(v, port)
                expected = (self.class_of(w), back)
                if self.links[(qv, port)] != expected:
                    raise GraphError(
                        f"covering violated at node {v}, port {port!r}"
                    )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"QuotientStructure(classes={self.num_classes}, "
            f"fiber={self.fiber_size})"
        )


def view_quotient(
    network: AnonymousNetwork,
    node_colors: Optional[NodeColoring] = None,
) -> QuotientStructure:
    """Build (and validate) the minimum base of the view covering."""
    quotient = QuotientStructure(network, node_colors)
    quotient.check_covering()
    return quotient


def walk_symbol_sequence(
    network: AnonymousNetwork,
    start: int,
    ports: Sequence[PortLabel],
) -> List[PortLabel]:
    """The symbols an agent *sees* along a walk (Figure 2(b) demonstration).

    Starting at ``start`` and leaving through each listed port in turn, the
    agent observes, alternately, the exit symbol and the entry symbol of
    each traversed edge.  The paper's example: walking the Fig. 2(b) path
    from x to z reads ``*, ∘, •, *`` while the reverse walk reads
    ``*, •, ∘, *`` — distinct sequences whose first-seen integer encodings
    coincide.
    """
    seen: List[PortLabel] = []
    current = start
    for port in ports:
        if port not in network.ports(current):
            raise GraphError(
                f"walk leaves node {current} through missing port {port!r}"
            )
        seen.append(port)
        current, entry = network.traverse(current, port)
        seen.append(entry)
    return seen
