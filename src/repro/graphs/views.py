"""Views and symmetricity (Yamashita–Kameda) for port-labeled networks.

The *view* of an edge-labeled (bi-colored) graph from node ``v`` is the
infinite labeled rooted tree of all label-preserving walks out of ``v``
(paper, proof of Theorem 2.1).  Two nodes are view-equivalent,
``x ~view y``, when their views are label-isomorphic; by Norris's theorem it
suffices to compare views truncated at depth ``n - 1``.

Implementation notes
--------------------
* View equivalence is computed by **partition refinement**: start from the
  partition by node color, then repeatedly split classes by the multiset of
  ``(exit-port, entry-port, neighbor's class)`` triples.  The fixpoint is
  reached within ``n - 1`` rounds (this *is* Norris's bound) and equals view
  equivalence.  This handles loops and parallel edges, so the Figure 2(c)
  counterexample works unmodified.
* Port labels may be incomparable :class:`~repro.colors.Color` symbols.
  Analysis code is allowed to index them arbitrarily (this is the outside
  observer's view, not an agent's): a deterministic *symbol index* built
  from edge-insertion order serves as the encoding.  Label-preserving
  isomorphism requires exact label equality, so any injective indexing is
  sound.
* :func:`view_tree` additionally materialises truncated views as explicit
  trees for the Figure 2 demonstrations and for property tests
  cross-checking the refinement fixpoint.

The paper's symmetricity results reproduced here:

* all view classes of a connected network have the same size
  ``σ_ℓ(G)`` (checked by :func:`symmetricity_of_labeling`);
* ``x ~lab y ⇒ x ~view y`` (Equation (1); property-tested);
* election is impossible in a network whose symmetricity exceeds 1
  (Theorem 2.1 via the Figure 1 transformation).
"""

from __future__ import annotations

from typing import Dict, Hashable, List, Optional, Sequence, Tuple

from ..errors import GraphError
from .network import AnonymousNetwork, PortLabel

NodeColoring = Sequence[Hashable]


def symbol_index(network: AnonymousNetwork) -> Dict[PortLabel, int]:
    """Deterministic injective indexing of all port symbols in the network.

    Integer labels index as themselves — in the quantitative world the
    labels *are* the agreed encoding, which makes downstream orderings
    (e.g. :func:`view_order_leader`) equivariant across isomorphic copies.
    Incomparable symbols are numbered in order of first appearance scanning
    edge records: any injection yields the same *equivalences*, and no
    cross-copy order exists for them anyway (that is the paper's point).
    """
    symbols: List[PortLabel] = []
    seen = set()
    for (u, pu, v, pv) in network.edges():
        for s in (pu, pv):
            if s not in seen:
                seen.add(s)
                symbols.append(s)
    if all(isinstance(s, int) for s in symbols):
        return {s: s for s in symbols}
    return {s: i for i, s in enumerate(symbols)}


def _normalize_colors(
    network: AnonymousNetwork, node_colors: Optional[NodeColoring]
) -> List[int]:
    """Convert arbitrary hashable node colors to ints (None = uncolored).

    Integer colorings (the paper's black/white 0/1) pass through unchanged —
    this matters for cross-graph comparisons (surrounding keys must agree on
    isomorphic copies with different node numberings, so the palette cannot
    depend on node order).  Non-integer palettes are ranked by ``repr``.
    """
    if node_colors is None:
        return [0] * network.num_nodes
    if len(node_colors) != network.num_nodes:
        raise GraphError(
            f"node coloring has {len(node_colors)} entries for "
            f"{network.num_nodes} nodes"
        )
    if all(isinstance(c, int) for c in node_colors):
        return [int(c) for c in node_colors]
    ranked: Dict[Hashable, int] = {
        c: i for i, c in enumerate(sorted(set(node_colors), key=repr))
    }
    return [ranked[c] for c in node_colors]


def view_refinement(
    network: AnonymousNetwork,
    node_colors: Optional[NodeColoring] = None,
    max_rounds: Optional[int] = None,
) -> List[int]:
    """The view-equivalence partition, as a class id per node.

    Runs partition refinement to fixpoint (at most ``n - 1`` rounds by
    Norris's theorem; ``max_rounds`` can truncate earlier to obtain the
    depth-``max_rounds`` view classes).
    """
    n = network.num_nodes
    sym = symbol_index(network)
    classes = _normalize_colors(network, node_colors)
    rounds = (n - 1) if max_rounds is None else max_rounds
    for _ in range(max(rounds, 0)):
        signatures: List[Tuple] = []
        for x in network.nodes():
            triples = []
            for port in network.ports(x):
                y, back = network.traverse(x, port)
                triples.append((sym[port], sym[back], classes[y]))
            triples.sort()
            signatures.append((classes[x], tuple(triples)))
        # Ids assigned by *sorted* signature: isomorphic copies (with
        # corresponding symbol encodings) receive structurally identical
        # class-id vectors, making id-based view orders equivariant.
        palette = {sig: i for i, sig in enumerate(sorted(set(signatures)))}
        new_classes = [palette[sig] for sig in signatures]
        if new_classes == classes:
            break
        classes = new_classes
    return classes


def view_classes(
    network: AnonymousNetwork,
    node_colors: Optional[NodeColoring] = None,
) -> List[List[int]]:
    """View-equivalence classes as sorted lists of node indices."""
    ids = view_refinement(network, node_colors)
    buckets: Dict[int, List[int]] = {}
    for node, cid in enumerate(ids):
        buckets.setdefault(cid, []).append(node)
    return sorted(buckets.values())


def views_equal(
    network: AnonymousNetwork,
    x: int,
    y: int,
    node_colors: Optional[NodeColoring] = None,
) -> bool:
    """Whether ``x ~view y`` (label-isomorphic infinite views)."""
    ids = view_refinement(network, node_colors)
    return ids[x] == ids[y]


def symmetricity_of_labeling(
    network: AnonymousNetwork,
    node_colors: Optional[NodeColoring] = None,
) -> int:
    """``σ_ℓ(G)`` — the common size of the view classes of this labeling.

    The paper (after [33]) notes all view classes have the same size; this
    function verifies that invariant and returns the size.
    """
    classes = view_classes(network, node_colors)
    sizes = {len(c) for c in classes}
    if len(sizes) != 1:
        raise GraphError(
            f"view classes have unequal sizes {sorted(len(c) for c in classes)}; "
            "this contradicts the Yamashita-Kameda equal-fiber property"
        )
    return sizes.pop()


def election_feasible_by_views(
    network: AnonymousNetwork,
    node_colors: Optional[NodeColoring] = None,
) -> bool:
    """Yamashita–Kameda feasibility for *this* labeling: ``σ_ℓ(G) == 1``.

    Election in the processor-network model with complete knowledge is
    possible under labeling ℓ iff the symmetricity of ℓ is 1.  (Theorem 2.1
    transfers the impossibility side to mobile agents.)
    """
    return symmetricity_of_labeling(network, node_colors) == 1


# ----------------------------------------------------------------------
# Explicit truncated view trees (Figure 2 demonstrations, cross-checks)
# ----------------------------------------------------------------------


class ViewTree:
    """A truncated view ``V^(k)(v)``: rooted tree of label-preserving walks.

    ``encoding`` is a canonical nested tuple; two truncated views are
    label-isomorphic iff their encodings are equal.  Port symbols are
    encoded through the supplied symbol index (exact-label comparison).
    """

    __slots__ = ("root", "depth", "encoding")

    def __init__(self, root: int, depth: int, encoding: Tuple):
        self.root = root
        self.depth = depth
        self.encoding = encoding

    def __eq__(self, other: object) -> bool:
        if isinstance(other, ViewTree):
            return self.encoding == other.encoding
        return NotImplemented

    def __hash__(self) -> int:
        return hash(self.encoding)

    def __repr__(self) -> str:
        return f"ViewTree(root={self.root}, depth={self.depth})"


def view_tree(
    network: AnonymousNetwork,
    root: int,
    depth: int,
    node_colors: Optional[NodeColoring] = None,
) -> ViewTree:
    """Materialise the depth-``depth`` view from ``root``.

    Cost is O(Δ^depth); intended for small demos and property tests.  The
    child order inside the encoding is sorted, making the encoding canonical
    under label-preserving isomorphism.
    """
    sym = symbol_index(network)
    colors = _normalize_colors(network, node_colors)

    def encode(v: int, d: int) -> Tuple:
        if d == 0:
            return (colors[v],)
        children = []
        for port in network.ports(v):
            w, back = network.traverse(v, port)
            children.append((sym[port], sym[back], encode(w, d - 1)))
        children.sort()
        return (colors[v], tuple(children))

    return ViewTree(root, depth, encode(root, depth))


def view_order_leader(
    network: AnonymousNetwork,
    node_colors: Optional[NodeColoring] = None,
) -> Optional[int]:
    """The quantitative world's view-ordering election (converse of Thm 2.1).

    The paper notes that in *quantitative* computing the Theorem 2.1
    condition is also sufficient: when ``σ_ℓ(G) = 1`` all views are
    distinct, an a-priori total order on integer-encoded views exists, and
    everyone elects the minimum view.  This function returns that leader
    node, or ``None`` when ``σ_ℓ(G) > 1`` (no labeling-only election).

    The order used is the refinement's canonical class numbering, which is
    a total order on (distinct) views that every party computes identically
    — the "fix an arbitrary ordering of the views" step of the paper.
    Qualitative labelings admit no such shared order; this function is the
    quantitative baseline the paper contrasts against.
    """
    ids = view_refinement(network, node_colors)
    if len(set(ids)) != network.num_nodes:
        return None  # some views coincide: σ_ℓ > 1
    return min(network.nodes(), key=lambda v: ids[v])


class QuotientStructure:
    """The minimum base of the view covering (Yamashita–Kameda quotient).

    Nodes are the view classes; each class keeps the port set of one
    representative, and ``links`` records, for every (class, port) end,
    the (class, port) end it is glued to.  Unlike a plain graph, a
    quotient may contain *half-edges* — an end glued to itself (e.g. the
    quotient of symmetric ``K_2`` is one node with a half-edge) — which is
    why this is its own structure rather than an
    :class:`AnonymousNetwork`.

    The defining property (validated by :meth:`check_covering`): the map
    "node ↦ its class" is a covering: it is a local bijection on ports
    that commutes with traversal.  All fibers have equal size σ_ℓ(G).
    """

    def __init__(
        self,
        network: AnonymousNetwork,
        node_colors: Optional[NodeColoring] = None,
    ):
        self.network = network
        self.class_ids = view_refinement(network, node_colors)
        buckets: Dict[int, List[int]] = {}
        for node, cid in enumerate(self.class_ids):
            buckets.setdefault(cid, []).append(node)
        self.classes: List[List[int]] = [
            sorted(buckets[cid]) for cid in sorted(buckets)
        ]
        self._cid_index = {cid: i for i, cid in enumerate(sorted(buckets))}
        self.representatives = [cls[0] for cls in self.classes]
        #: links[(class index, port)] = (class index, port) of the glued end.
        self.links: Dict[Tuple[int, PortLabel], Tuple[int, PortLabel]] = {}
        for qi, rep in enumerate(self.representatives):
            for port in network.ports(rep):
                w, back = network.traverse(rep, port)
                qj = self._cid_index[self.class_ids[w]]
                self.links[(qi, port)] = (qj, back)

    @property
    def num_classes(self) -> int:
        return len(self.classes)

    @property
    def fiber_size(self) -> int:
        """σ_ℓ(G): the common size of all fibers."""
        sizes = {len(c) for c in self.classes}
        if len(sizes) != 1:
            raise GraphError("unequal fibers: not a covering quotient")
        return sizes.pop()

    def class_of(self, node: int) -> int:
        """Quotient node (class index) of a network node."""
        return self._cid_index[self.class_ids[node]]

    def ports_of(self, qnode: int) -> Tuple[PortLabel, ...]:
        """Port labels of a quotient node (= its representative's ports)."""
        return self.network.ports(self.representatives[qnode])

    def half_edges(self) -> List[Tuple[int, PortLabel]]:
        """Ends glued to themselves (self-paired half-edges)."""
        return [end for end, other in self.links.items() if other == end]

    def check_covering(self) -> None:
        """Validate the covering property for *every* node, not just reps.

        For each network node v and port λ: the quotient link of
        (class(v), λ) must equal (class(traverse(v, λ)), entry port).
        Raises :class:`GraphError` on any violation.
        """
        for v in self.network.nodes():
            qv = self.class_of(v)
            if set(self.network.ports(v)) != set(self.ports_of(qv)):
                raise GraphError(f"port mismatch between node {v} and class {qv}")
            for port in self.network.ports(v):
                w, back = self.network.traverse(v, port)
                expected = (self.class_of(w), back)
                if self.links[(qv, port)] != expected:
                    raise GraphError(
                        f"covering violated at node {v}, port {port!r}"
                    )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"QuotientStructure(classes={self.num_classes}, "
            f"fiber={self.fiber_size})"
        )


def view_quotient(
    network: AnonymousNetwork,
    node_colors: Optional[NodeColoring] = None,
) -> QuotientStructure:
    """Build (and validate) the minimum base of the view covering."""
    quotient = QuotientStructure(network, node_colors)
    quotient.check_covering()
    return quotient


def walk_symbol_sequence(
    network: AnonymousNetwork,
    start: int,
    ports: Sequence[PortLabel],
) -> List[PortLabel]:
    """The symbols an agent *sees* along a walk (Figure 2(b) demonstration).

    Starting at ``start`` and leaving through each listed port in turn, the
    agent observes, alternately, the exit symbol and the entry symbol of
    each traversed edge.  The paper's example: walking the Fig. 2(b) path
    from x to z reads ``*, ∘, •, *`` while the reverse walk reads
    ``*, •, ∘, *`` — distinct sequences whose first-seen integer encodings
    coincide.
    """
    seen: List[PortLabel] = []
    current = start
    for port in ports:
        if port not in network.ports(current):
            raise GraphError(
                f"walk leaves node {current} through missing port {port!r}"
            )
        seen.append(port)
        current, entry = network.traverse(current, port)
        seen.append(entry)
    return seen
