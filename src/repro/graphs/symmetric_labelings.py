"""Adversarial symmetric labelings: impossibility certificates for any graph.

Theorem 2.1 makes election impossible whenever *some* edge-labeling has
label-equivalence classes of size > 1.  This module decides a broad
sufficient condition constructively, generalising the translation-based
construction in Theorem 4.1's proof beyond Cayley graphs:

**Criterion.**  Let ``φ`` be a color-preserving automorphism of ``(G, p)``
such that every non-identity power of ``φ`` is fixed-point-free (the cyclic
group ``⟨φ⟩`` acts freely).  Then the edge-ends of ``G`` can be labeled
constantly along ``⟨φ⟩``-orbits — freeness guarantees two ends at the same
node never share an orbit, so per-node distinctness holds — and ``φ``
becomes label-preserving.  By Lemma 2.1 all label classes then share a size
``≥ ord(φ) ≥ 2``, and Theorem 2.1 applies: election is impossible.

Conversely, freeness is *necessary* for a single automorphism to be made
label-preserving: if ``φ^k`` fixes a node ``x``, it must fix every labeled
edge-end at ``x`` (labels at ``x`` are distinct), hence every neighbor of
``x``, hence — by connectivity — be the identity.

For Cayley graphs this criterion subsumes the regular-subgroup test (a
black-preserving translation *is* such a ``φ``); for the Petersen instance
of Figure 5 no such ``φ`` exists (consistent with the paper's remark that
every labeling there has singleton label classes).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from ..colors import ColorSpace
from ..errors import GraphError
from ..groups.symmetric import Permutation, compose, identity_permutation
from .automorphisms import (
    equitable_refinement,
    find_automorphism_mapping,
)
from .network import AnonymousNetwork
from .views import _normalize_colors

NodeColoring = Sequence[Sequence]


def cyclic_group_acts_freely(phi: Permutation) -> bool:
    """Whether every non-identity power of ``phi`` is fixed-point-free."""
    n = len(phi)
    identity = identity_permutation(n)
    current = phi
    while current != identity:
        if any(current[i] == i for i in range(n)):
            return False
        current = compose(phi, current)
    return True


def find_free_automorphism(
    network: AnonymousNetwork,
    node_colors: Optional[Sequence[int]] = None,
) -> Optional[Permutation]:
    """A color-preserving automorphism generating a free cyclic group.

    Search strategy: for each candidate image ``v`` of a base node (within
    its refinement cell), ask the witness search for an automorphism
    mapping base → v and test freeness; if the witness is not free, retry
    exhaustively only on small graphs via full enumeration fallback.
    Returns ``None`` when no free automorphism exists (exhaustively correct
    for networks small enough to enumerate; see ``exhaustive`` fallback).
    """
    if not network.is_simple:
        raise GraphError("automorphism search requires a simple network")
    n = network.num_nodes
    colors = _normalize_colors(network, node_colors)

    # Fast path: individual witnesses.  A free automorphism moves every
    # node, so candidates send node 0 to some other node in its cell.
    adjacency = network.adjacency_sets()
    refined = equitable_refinement(adjacency, colors)
    for v in range(1, n):
        if refined[v] != refined[0]:
            continue
        witness = find_automorphism_mapping(network, node_colors, 0, v)
        if witness is not None and cyclic_group_acts_freely(witness):
            return witness

    # Exhaustive fallback: the witness for 0 → v is just *one* automorphism
    # with that property; a free one may exist elsewhere in the group.
    from .automorphisms import color_preserving_automorphisms

    identity = identity_permutation(n)
    try:
        autos = color_preserving_automorphisms(
            network, node_colors, limit=100_000
        )
    except GraphError:
        return None  # group too large to settle exhaustively
    for phi in autos:
        if phi != identity and cyclic_group_acts_freely(phi):
            return phi
    return None


def labeling_from_free_automorphism(
    network: AnonymousNetwork,
    phi: Permutation,
) -> AnonymousNetwork:
    """The symmetric labeling that makes ``phi`` label-preserving.

    Edge-ends are grouped into ``⟨φ⟩``-orbits; each orbit receives one
    fresh incomparable symbol.  Freeness guarantees per-node distinctness.
    This is the generalization of the Theorem 4.1 proof construction.
    """
    if not cyclic_group_acts_freely(phi):
        raise GraphError("automorphism does not act freely; labeling impossible")
    # Edge-ends are identified by (node, neighbor-set-position): for simple
    # graphs an end is just the ordered pair (x, y) of an edge {x, y}.
    if not network.is_simple:
        raise GraphError("construction implemented for simple networks")

    space = ColorSpace(prefix="symlab")
    end_symbol: Dict[Tuple[int, int], object] = {}

    def orbit_of(end: Tuple[int, int]) -> List[Tuple[int, int]]:
        orbit = [end]
        x, y = phi[end[0]], phi[end[1]]
        while (x, y) != end:
            orbit.append((x, y))
            x, y = phi[x], phi[y]
        return orbit

    for (u, _, v, _) in network.edges():
        for end in ((u, v), (v, u)):
            if end not in end_symbol:
                symbol = space.fresh()
                for member in orbit_of(end):
                    end_symbol[member] = symbol

    new_edges = [
        (u, end_symbol[(u, v)], v, end_symbol[(v, u)])
        for (u, _, v, _) in network.edges()
    ]
    return AnonymousNetwork(network.num_nodes, new_edges, name=network.name)


def free_automorphism_certificate(
    network: AnonymousNetwork,
    node_colors: Optional[Sequence[int]] = None,
) -> Optional[Tuple[Permutation, AnonymousNetwork]]:
    """Impossibility certificate: (free automorphism, symmetric labeling).

    Returns ``None`` when no free color-preserving automorphism exists.
    When a certificate is returned, the labeled network's label-equivalence
    classes provably all have size ≥ 2 (checked by the caller/tests via
    :func:`repro.core.feasibility.theorem21_certificate`).
    """
    phi = find_free_automorphism(network, node_colors)
    if phi is None:
        return None
    return phi, labeling_from_free_automorphism(network, phi)


def max_symmetricity_estimate(
    network: AnonymousNetwork,
    node_colors: Optional[Sequence[int]] = None,
) -> int:
    """A lower bound on σ(G, p) = max over labelings of σ_ℓ.

    Uses the free-automorphism construction (σ ≥ ord(φ) when available)
    and falls back to 1.  Exact maximization over all labelings is
    exponential; this estimate is what the experiments need (a value > 1
    already certifies impossibility via Theorem 2.1).
    """
    from .views import symmetricity_of_labeling

    cert = free_automorphism_certificate(network, node_colors)
    if cert is None:
        return 1
    _, labeled = cert
    return symmetricity_of_labeling(labeled, node_colors)
