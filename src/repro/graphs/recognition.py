"""Cayley-graph recognition and translation-equivalence classes (Theorem 4.1).

By Sabidussi's theorem a connected graph ``G`` is a Cayley graph iff
``Aut(G)`` contains a **regular** subgroup ``R`` (transitive, trivial point
stabilizers); the elements of ``R`` then play the role of the translations
``φ_γ : a ↦ γ·a``.  The paper's effectual protocol has each agent, after
MAP-DRAWING, (1) decide whether its map is Cayley ("time-consuming, but
decidable"), and (2) if so run ELECT with *translation*-equivalence classes.

Agreement across agents: the paper argues agents "select isomorphic groups"
and hence agree on the classes.  We make this concrete by always selecting
the :func:`~repro.groups.permgroup.canonical_regular_subgroup` — the
lexicographically least regular subgroup — which is a function of the graph
alone, so all agents (whose maps are isomorphic copies of the same graph)
compute the same node partition.

Translation-equivalence (Section 4): ``x ~ y`` iff some translation that
*preserves the bi-coloring* maps ``x`` to ``y``; the classes are the orbits
of the color-preserving subgroup of ``R``.
"""

from __future__ import annotations

from typing import Hashable, List, Optional, Sequence

from ..errors import RecognitionError
from ..groups.permgroup import canonical_regular_subgroup, orbits_of
from ..groups.symmetric import Permutation
from .automorphisms import color_preserving_automorphisms
from .cayley import CayleyGraph
from .network import AnonymousNetwork
from .views import _normalize_colors

NodeColoring = Sequence[Hashable]


def find_translations(
    network: AnonymousNetwork,
    automorphism_limit: int = 1_000_000,
) -> Optional[List[Permutation]]:
    """The canonical regular subgroup of ``Aut(G)``, or None if not Cayley.

    This is the generic (agent-runnable) path: it enumerates the full
    automorphism group of the *uncolored* graph and searches it for regular
    subgroups.  Exponential in the worst case, exactly as the paper warns;
    fine at laptop scale.
    """
    autos = color_preserving_automorphisms(
        network, node_colors=None, limit=automorphism_limit
    )
    return canonical_regular_subgroup(autos, network.num_nodes)


def is_cayley_graph(network: AnonymousNetwork) -> bool:
    """Whether the network is a Cayley graph (Sabidussi criterion)."""
    return find_translations(network) is not None


def color_preserving_translations(
    translations: Sequence[Permutation],
    node_colors: NodeColoring,
) -> List[Permutation]:
    """The subgroup of translations preserving a node coloring.

    Closure under composition is automatic: color-preserving permutations
    form a subgroup of any group they are drawn from.
    """
    colors = list(node_colors)
    return [
        phi
        for phi in translations
        if all(colors[phi[i]] == colors[i] for i in range(len(phi)))
    ]


def translation_equivalence_classes(
    network: AnonymousNetwork,
    node_colors: NodeColoring,
    translations: Optional[Sequence[Permutation]] = None,
) -> List[List[int]]:
    """Translation-equivalence classes of a bi-colored Cayley graph.

    Parameters
    ----------
    translations:
        The regular subgroup to use.  When omitted it is recomputed via
        :func:`find_translations`; pass
        :meth:`repro.graphs.cayley.CayleyGraph.translations` for the fast
        path when the algebraic structure is known.

    Raises
    ------
    RecognitionError
        If the network is not a Cayley graph (no regular subgroup).
    """
    colors = _normalize_colors(network, node_colors)
    if translations is None:
        translations = find_translations(network)
        if translations is None:
            raise RecognitionError(
                f"{network!r} is not a Cayley graph: no regular subgroup of Aut(G)"
            )
    preserving = color_preserving_translations(translations, colors)
    return orbits_of(preserving, network.num_nodes)


class SabidussiRepresentation:
    """A vertex-transitive graph as a quotient of a Cayley graph.

    Paper, Section 4 closing remark (Sabidussi's characterization):
    ``G ≅ Cay(Γ, S)/H`` with ``Γ = Aut(G)``, ``H = stab(u₀)`` and
    ``S = {φ ∈ Γ : d(φ(u₀), u₀) = 1}``.  Nodes of the quotient are the
    left cosets ``φH`` — equivalently the images ``φ(u₀)``, which is how
    this class indexes them — and ``{φH, φ'H}`` is an edge iff
    ``φ⁻¹φ' ∈ H·S·H``.

    :meth:`coset_adjacency` derives the quotient's edges *from the
    algebra alone*; the tests verify they coincide with the original
    graph's adjacency (the content of the characterization), including on
    the Petersen graph — the paper's example of a vertex-transitive
    non-Cayley graph, where the quotient is proper (|H| > 1).
    """

    def __init__(self, network: AnonymousNetwork, base_point: int = 0):
        from ..errors import RecognitionError

        self.network = network
        self.base_point = base_point
        self.automorphisms = color_preserving_automorphisms(network)
        n = network.num_nodes
        images = {phi[base_point] for phi in self.automorphisms}
        if images != set(range(n)):
            raise RecognitionError(
                "Sabidussi representation requires a vertex-transitive graph"
            )
        self.stabilizer = [
            phi for phi in self.automorphisms if phi[base_point] == base_point
        ]
        dist = network.distances_from(base_point)
        self.connection_set = [
            phi for phi in self.automorphisms if dist[phi[base_point]] == 1
        ]
        # Coset representatives, indexed by the image of the base point.
        self.representatives = {}
        for phi in self.automorphisms:
            self.representatives.setdefault(phi[base_point], phi)

    @property
    def group_order(self) -> int:
        return len(self.automorphisms)

    @property
    def stabilizer_order(self) -> int:
        return len(self.stabilizer)

    @property
    def is_proper_quotient(self) -> bool:
        """Whether |H| > 1 (G is vertex-transitive but the representation
        genuinely quotients — e.g. Petersen; false iff G is itself Cayley
        *via this group*, i.e. Γ acts regularly)."""
        return self.stabilizer_order > 1

    def coset_adjacency(self) -> List[List[int]]:
        """Adjacency of the coset graph, computed from H, S alone."""
        from ..groups.symmetric import compose, invert

        hsh = set()
        for h1 in self.stabilizer:
            for s in self.connection_set:
                h1s = compose(h1, s)
                for h2 in self.stabilizer:
                    hsh.add(compose(h1s, h2))
        n = self.network.num_nodes
        adjacency: List[List[int]] = [[] for _ in range(n)]
        for v in range(n):
            rep_v = self.representatives[v]
            inv_v = invert(rep_v)
            for w in range(v + 1, n):
                if compose(inv_v, self.representatives[w]) in hsh:
                    adjacency[v].append(w)
                    adjacency[w].append(v)
        return adjacency


def sabidussi_representation(
    network: AnonymousNetwork, base_point: int = 0
) -> SabidussiRepresentation:
    """Build the Cayley-quotient representation of a vertex-transitive graph."""
    return SabidussiRepresentation(network, base_point)


def translation_classes_of_cayley(
    cayley: CayleyGraph,
    node_colors: NodeColoring,
) -> List[List[int]]:
    """Fast path: translation classes using the known group structure.

    Note this uses the *construction's* translations rather than the
    canonical regular subgroup an agent would select; on graphs with several
    regular subgroups the partitions can differ, but the gcd feasibility
    threshold of Theorem 4.1 is the same (the tests compare both paths).
    """
    return translation_equivalence_classes(
        cayley.network, node_colors, translations=cayley.translations()
    )
