"""Anonymous port-labeled networks — the paper's spatial universe.

An :class:`AnonymousNetwork` is a connected graph whose nodes carry **no
identifiers visible to agents**; the only navigational structure is that the
``deg(x)`` edge-ends incident to each node ``x`` are labeled with pairwise
distinct symbols (paper Section 1.2).  Each edge therefore carries **two**
labels, one per extremity: ``ℓ_x(e)`` and ``ℓ_y(e)``.

Port labels may be:

* integers (the *quantitative* labeling of classical anonymous-network
  theory),
* :class:`repro.colors.Color` symbols (the *qualitative* labeling this paper
  introduces), or
* any other hashable values.

Internally nodes are indexed ``0..n-1`` for the benefit of *analysis* code
(automorphisms, views, feasibility); the **simulation layer never exposes
node indices to agents** — agents perceive only the current node's degree,
its whiteboard, and the set of port labels.

The structure is stored as a port map ``port(x, λ) = (y, μ)`` meaning "the
edge-end labeled λ at x belongs to an edge whose other end is at y and is
labeled μ there".  This representation naturally supports **multi-edges and
self-loops** (needed to reproduce the Figure 2(c) counterexample, where all
views coincide although the label-equivalence classes are singletons); most
builders produce simple graphs, and the automorphism/canonical machinery
requires simple graphs.
"""

from __future__ import annotations

from typing import (
    Dict,
    Hashable,
    Iterable,
    Iterator,
    List,
    Mapping,
    Optional,
    Sequence,
    Set,
    Tuple,
)

import networkx as nx

from ..errors import GraphError

PortLabel = Hashable
#: An edge record: (u, port at u, v, port at v).  For loops u == v and the
#: two port labels differ (a loop consumes two ports of its node).
EdgeRecord = Tuple[int, PortLabel, int, PortLabel]


class AnonymousNetwork:
    """A connected anonymous network with locally-distinct port labels.

    Parameters
    ----------
    num_nodes:
        Number of nodes; nodes are internally indexed ``0..num_nodes-1``.
    edges:
        Edge records ``(u, port_u, v, port_v)``.  Port labels must be
        pairwise distinct *per node* (two ends of a loop count as two ports
        of the same node).
    name:
        Optional display name (e.g. ``"C_6"``, ``"Q_3"``).
    require_connected:
        The paper assumes connected graphs throughout; set ``False`` only
        for deliberately pathological test fixtures.
    """

    def __init__(
        self,
        num_nodes: int,
        edges: Iterable[EdgeRecord],
        name: Optional[str] = None,
        require_connected: bool = True,
    ):
        if num_nodes < 1:
            raise GraphError(f"a network needs at least one node, got {num_nodes}")
        self._n = num_nodes
        self._name = name
        self._ports: List[Dict[PortLabel, Tuple[int, PortLabel]]] = [
            {} for _ in range(num_nodes)
        ]
        self._edges: List[EdgeRecord] = []
        self._simple = True
        seen_pairs: Set[Tuple[int, int]] = set()
        for record in edges:
            u, pu, v, pv = record
            self._check_node(u)
            self._check_node(v)
            if u == v and pu == pv:
                raise GraphError(
                    f"loop at node {u} must have two distinct port labels, got {pu!r} twice"
                )
            for node, port in ((u, pu), (v, pv)):
                if port in self._ports[node]:
                    raise GraphError(
                        f"duplicate port label {port!r} at node {node}"
                    )
            self._ports[u][pu] = (v, pv)
            self._ports[v][pv] = (u, pu)
            self._edges.append((u, pu, v, pv))
            pair = (min(u, v), max(u, v))
            if u == v or pair in seen_pairs:
                self._simple = False
            seen_pairs.add(pair)
        if require_connected and not self._is_connected():
            raise GraphError("the paper assumes connected networks")

    # ------------------------------------------------------------------
    # Basic structure
    # ------------------------------------------------------------------

    def _check_node(self, x: int) -> None:
        if not 0 <= x < self._n:
            raise GraphError(f"node index {x} out of range 0..{self._n - 1}")

    @property
    def name(self) -> Optional[str]:
        """Display name, if any."""
        return self._name

    @property
    def num_nodes(self) -> int:
        """Number of nodes ``n``."""
        return self._n

    @property
    def num_edges(self) -> int:
        """Number of edges ``|E|`` (loops and parallel edges each count once)."""
        return len(self._edges)

    @property
    def is_simple(self) -> bool:
        """Whether the network has no loops or parallel edges."""
        return self._simple

    def nodes(self) -> range:
        """Iterate internal node indices (analysis layer only)."""
        return range(self._n)

    def degree(self, x: int) -> int:
        """Degree of ``x`` — the number of its ports."""
        self._check_node(x)
        return len(self._ports[x])

    def ports(self, x: int) -> Tuple[PortLabel, ...]:
        """The port labels at ``x``, in insertion order.

        Insertion order is an artifact of construction; agents must not use
        it as a canonical order (the simulation layer shuffles it).
        """
        self._check_node(x)
        return tuple(self._ports[x])

    def traverse(self, x: int, port: PortLabel) -> Tuple[int, PortLabel]:
        """Follow the edge-end labeled ``port`` at ``x``.

        Returns ``(y, entry_port)``: the node reached and the label of the
        edge-end through which it is entered.
        """
        self._check_node(x)
        try:
            return self._ports[x][port]
        except KeyError:
            raise GraphError(f"node {x} has no port labeled {port!r}") from None

    def neighbors(self, x: int) -> List[int]:
        """Distinct neighbor nodes of ``x`` (excludes ``x`` unless loop)."""
        self._check_node(x)
        return sorted({y for (y, _) in self._ports[x].values()})

    def edges(self) -> Tuple[EdgeRecord, ...]:
        """All edge records ``(u, port_u, v, port_v)``."""
        return tuple(self._edges)

    def edge_between(self, x: int, y: int) -> Optional[EdgeRecord]:
        """Some edge record joining ``x`` and ``y``, or ``None``."""
        for record in self._edges:
            u, _, v, _ = record
            if (u, v) in ((x, y), (y, x)):
                return record
        return None

    def port_label(self, x: int, y: int) -> PortLabel:
        """``ℓ_x({x,y})`` for simple graphs (raises if ambiguous/missing)."""
        candidates = [
            (pu if u == x else pv)
            for (u, pu, v, pv) in self._edges
            if (u, v) in ((x, y), (y, x))
        ]
        if not candidates:
            raise GraphError(f"no edge between {x} and {y}")
        if len(candidates) > 1:
            raise GraphError(f"multiple edges between {x} and {y}; port is ambiguous")
        return candidates[0]

    # ------------------------------------------------------------------
    # Graph-level queries
    # ------------------------------------------------------------------

    def _is_connected(self) -> bool:
        seen = {0}
        stack = [0]
        while stack:
            x = stack.pop()
            for (y, _) in self._ports[x].values():
                if y not in seen:
                    seen.add(y)
                    stack.append(y)
        return len(seen) == self._n

    def is_bridge(self, record: EdgeRecord) -> bool:
        """Whether removing this one edge record disconnects the network.

        Loops are never bridges.  A parallel edge is not a bridge as long as
        its twin survives (the check skips exactly one record, by identity
        of the tuple's port labels, not by endpoint pair).  Used by the
        dynamic-churn driver to only ever drop edges that keep the network
        connected — the paper's model has no notion of partitioned election.
        """
        u, pu, v, pv = record
        if u == v:
            return False
        seen = {u}
        stack = [u]
        while stack:
            x = stack.pop()
            for port, (y, _) in self._ports[x].items():
                if (x, port) in ((u, pu), (v, pv)):
                    continue
                if y not in seen:
                    seen.add(y)
                    stack.append(y)
        return v not in seen

    def distances_from(self, source: int) -> List[int]:
        """BFS distances from ``source`` to every node."""
        self._check_node(source)
        dist = [-1] * self._n
        dist[source] = 0
        queue = [source]
        head = 0
        while head < len(queue):
            x = queue[head]
            head += 1
            for (y, _) in self._ports[x].values():
                if dist[y] < 0:
                    dist[y] = dist[x] + 1
                    queue.append(y)
        return dist

    def diameter(self) -> int:
        """Graph diameter (max over BFS eccentricities)."""
        return max(max(self.distances_from(v)) for v in self.nodes())

    def is_regular(self) -> bool:
        """Whether all nodes have equal degree."""
        degrees = {self.degree(x) for x in self.nodes()}
        return len(degrees) == 1

    def adjacency_sets(self) -> List[Set[int]]:
        """Neighbor sets per node (simple-graph view; loops ignored)."""
        return [
            {y for (y, _) in self._ports[x].values() if y != x}
            for x in self.nodes()
        ]

    # ------------------------------------------------------------------
    # Transformations
    # ------------------------------------------------------------------

    def with_ports_relabeled(
        self,
        relabeling: Mapping[int, Mapping[PortLabel, PortLabel]],
        name: Optional[str] = None,
    ) -> "AnonymousNetwork":
        """A copy of this network with per-node port labels renamed.

        ``relabeling[x]`` maps old port labels at ``x`` to new ones; nodes
        absent from the mapping keep their labels.  The result must still
        have distinct labels per node (validated by the constructor).  Used
        to subject protocols to adversarial relabelings.
        """

        def rename(x: int, p: PortLabel) -> PortLabel:
            node_map = relabeling.get(x)
            if node_map is None:
                return p
            return node_map.get(p, p)

        new_edges = [
            (u, rename(u, pu), v, rename(v, pv)) for (u, pu, v, pv) in self._edges
        ]
        return AnonymousNetwork(self._n, new_edges, name=name or self._name)

    def with_nodes_permuted(self, perm: Sequence[int]) -> "AnonymousNetwork":
        """A copy with node indices renumbered by ``perm`` (old → new).

        Port labels travel with their edge-ends.  Protocol outcomes must be
        invariant under this operation (node indices are not agent-visible);
        the test suite relies on that.
        """
        if sorted(perm) != list(range(self._n)):
            raise GraphError("node permutation must be a bijection on node indices")
        new_edges = [
            (perm[u], pu, perm[v], pv) for (u, pu, v, pv) in self._edges
        ]
        return AnonymousNetwork(self._n, new_edges, name=self._name)

    def to_networkx(self) -> nx.Graph:
        """Export to a :class:`networkx.Graph` (simple graphs only).

        Edge attributes ``port_u``/``port_v`` record the two labels, keyed by
        the endpoint stored in ``u``/``v`` attributes.
        """
        if not self._simple:
            raise GraphError("networkx export supports simple networks only")
        g = nx.Graph()
        g.add_nodes_from(self.nodes())
        for (u, pu, v, pv) in self._edges:
            g.add_edge(u, v, u=u, port_u=pu, v=v, port_v=pv)
        return g

    def degree_sequence(self) -> Tuple[int, ...]:
        """Sorted degree sequence."""
        return tuple(sorted(self.degree(x) for x in self.nodes()))

    def __repr__(self) -> str:
        label = f" {self._name!r}" if self._name else ""
        return (
            f"AnonymousNetwork({label.strip()} n={self._n}, m={self.num_edges},"
            f" simple={self._simple})"
        )


def validate_isomorphic_port_structure(
    a: AnonymousNetwork, b: AnonymousNetwork, node_map: Mapping[int, int]
) -> bool:
    """Check that ``node_map`` is a port-preserving isomorphism from a to b.

    Used by tests to validate agent-drawn maps: a map is correct when some
    bijection carries every edge-end of ``a`` to an edge-end of ``b`` with
    the same port label at both extremities.
    """
    if a.num_nodes != b.num_nodes or len(node_map) != a.num_nodes:
        return False
    for x in a.nodes():
        fx = node_map[x]
        if set(a.ports(x)) != set(b.ports(fx)):
            return False
        for port in a.ports(x):
            y, back = a.traverse(x, port)
            fy, fback = b.traverse(fx, port)
            if fy != node_map[y] or fback != back:
                return False
    return True
