"""Automorphism groups of bi-colored networks; node equivalence classes.

Two notions from the paper, Section 2:

* **Equivalence** (Definition 2.1): ``x ~ y`` iff some *color-preserving*
  automorphism of the bi-colored graph ``(G, p)`` maps ``x`` to ``y``.
  Equivalence classes are orbits of the color-preserving automorphism group
  — the classes ``C_1, …, C_k`` that protocol ELECT reduces over.
  Computed by partition-refinement-pruned backtracking (simple graphs).

* **Label-equivalence** (Definition 2.2): ``x ~lab y`` iff some automorphism
  preserving both node colors and *port labels at both edge-ends* maps ``x``
  to ``y``.  A label-preserving automorphism is **fully determined by the
  image of a single node**: once ``φ(x)`` is fixed, following equal port
  labels propagates the map across the (connected) graph.  This yields an
  O(n·m) enumeration that also handles loops and parallel edges, and
  directly verifies Lemma 2.1 (all ``~lab`` classes are equal-sized).
"""

from __future__ import annotations

from typing import Dict, Hashable, List, Optional, Sequence, Set, Tuple

from ..errors import GraphError
from ..groups.permgroup import orbits_of
from ..groups.symmetric import Permutation
from ..perf import cache as _cache
from .network import AnonymousNetwork
from .views import _colors_key, _normalize_colors

NodeColoring = Sequence[Hashable]


# ----------------------------------------------------------------------
# Equitable partition refinement (WL-1), shared pruning machinery
# ----------------------------------------------------------------------


def equitable_refinement(
    adjacency: Sequence[Set[int]], initial: Sequence[int]
) -> List[int]:
    """Coarsest equitable partition refining ``initial`` (1-WL fixpoint).

    Signature of a node = (its class, sorted multiset of neighbor classes).
    Any automorphism preserving ``initial`` preserves the result, so classes
    of the refinement are unions of automorphism orbits — the pruning
    invariant used by the backtracking search.
    """
    classes = list(initial)
    n = len(adjacency)
    while True:
        sigs = [
            (classes[x], tuple(sorted(classes[y] for y in adjacency[x])))
            for x in range(n)
        ]
        # Ids assigned by *sorted* signature so that isomorphic inputs get
        # structurally identical id vectors (required by the witness search).
        palette = {sig: i for i, sig in enumerate(sorted(set(sigs)))}
        new_classes = [palette[sig] for sig in sigs]
        if new_classes == classes:
            return classes
        classes = new_classes


def color_preserving_automorphisms(
    network: AnonymousNetwork,
    node_colors: Optional[NodeColoring] = None,
    limit: int = 1_000_000,
) -> List[Permutation]:
    """All automorphisms of the simple graph preserving ``node_colors``.

    Port labels are ignored (this is Definition 2.1 — automorphisms of the
    underlying bi-colored graph).  Backtracking assigns images in an order
    chosen from the equitable refinement (most-constrained first), pruning
    with class membership and adjacency consistency against the partial map.

    Raises :class:`GraphError` on non-simple networks or if more than
    ``limit`` automorphisms exist.

    Memoized per ``(network, coloring, limit)`` — ``classify`` and the
    Table 1 batteries ask for the same group several times per instance.
    """
    cached = _cache.memo(
        network,
        "automorphisms",
        (_colors_key(node_colors), limit),
        lambda: tuple(
            _color_preserving_automorphisms(network, node_colors, limit)
        ),
    )
    return list(cached)


def _color_preserving_automorphisms(
    network: AnonymousNetwork,
    node_colors: Optional[NodeColoring],
    limit: int,
) -> List[Permutation]:
    if not network.is_simple:
        raise GraphError("automorphism search requires a simple network")
    n = network.num_nodes
    adjacency = network.adjacency_sets()
    colors = _normalize_colors(network, node_colors)
    refined = equitable_refinement(adjacency, colors)

    cell_size: Dict[int, int] = {}
    for c in refined:
        cell_size[c] = cell_size.get(c, 0) + 1
    # BFS order from a most-constrained anchor: every later node has a
    # placed neighbor, so candidate images come from that neighbor's
    # image's adjacency instead of a whole refinement cell — the pruning
    # that makes 20+-node vertex-transitive graphs tractable.
    anchor = min(range(n), key=lambda x: (cell_size[refined[x]], x))
    order: List[int] = [anchor]
    seen = {anchor}
    head = 0
    while head < len(order):
        for y in sorted(adjacency[order[head]]):
            if y not in seen:
                seen.add(y)
                order.append(y)
        head += 1
    if len(order) != n:  # disconnected (builders forbid it; be safe)
        order.extend(x for x in range(n) if x not in seen)

    # A placed neighbor with the smallest position, per node (BFS parent).
    position = {x: i for i, x in enumerate(order)}
    parent: Dict[int, Optional[int]] = {anchor: None}
    for x in order[1:]:
        placed = [w for w in adjacency[x] if position[w] < position[x]]
        parent[x] = min(placed, key=lambda w: position[w]) if placed else None

    anchor_candidates = [
        y for y in range(n) if refined[y] == refined[anchor]
    ]

    results: List[Permutation] = []
    image = [-1] * n
    used = [False] * n

    def backtrack(pos: int) -> None:
        if len(results) >= limit:
            raise GraphError(f"more than limit={limit} automorphisms")
        if pos == n:
            results.append(tuple(image))
            return
        x = order[pos]
        par = parent[x]
        if par is None:
            pool = anchor_candidates
        else:
            pool = sorted(adjacency[image[par]])
        placed_neighbors = [w for w in adjacency[x] if image[w] >= 0]
        placed_non_neighbors = [
            order[i] for i in range(pos) if order[i] not in adjacency[x]
        ]
        for y in pool:
            if used[y] or refined[y] != refined[x]:
                continue
            if any(image[w] not in adjacency[y] for w in placed_neighbors):
                continue
            if any(image[w] in adjacency[y] for w in placed_non_neighbors):
                continue
            image[x] = y
            used[y] = True
            backtrack(pos + 1)
            image[x] = -1
            used[y] = False

    backtrack(0)
    return sorted(results)


def find_automorphism_mapping(
    network: AnonymousNetwork,
    node_colors: Optional[NodeColoring],
    source: int,
    target: int,
) -> Optional[Permutation]:
    """Some color-preserving automorphism with ``φ(source) = target``.

    Returns ``None`` if none exists.  Used by the orbit computation to
    avoid enumerating the full (possibly huge) automorphism group: a single
    witness per node pair suffices.
    """
    if not network.is_simple:
        raise GraphError("automorphism search requires a simple network")
    n = network.num_nodes
    adjacency = network.adjacency_sets()
    colors = _normalize_colors(network, node_colors)
    # Individualize source/target consistently, then refine: classes must
    # align or no such automorphism exists.
    base_s = list(colors)
    base_t = list(colors)
    marker = max(colors) + 1
    base_s[source] = marker
    base_t[target] = marker
    refined_s = equitable_refinement(adjacency, base_s)
    refined_t = equitable_refinement(adjacency, base_t)
    if sorted(refined_s) != sorted(refined_t):
        return None

    order = sorted(range(n), key=lambda x: (refined_s[x], x))
    candidates: Dict[int, List[int]] = {
        x: [y for y in range(n) if refined_t[y] == refined_s[x]] for x in range(n)
    }
    image = [-1] * n
    used = [False] * n
    found: List[Optional[Permutation]] = [None]

    def backtrack(pos: int) -> bool:
        if pos == n:
            found[0] = tuple(image)
            return True
        x = order[pos]
        placed = [order[i] for i in range(pos)]
        placed_neighbors = [w for w in placed if w in adjacency[x]]
        placed_non_neighbors = [w for w in placed if w not in adjacency[x]]
        for y in candidates[x]:
            if used[y]:
                continue
            if any(image[w] not in adjacency[y] for w in placed_neighbors):
                continue
            if any(image[w] in adjacency[y] for w in placed_non_neighbors):
                continue
            image[x] = y
            used[y] = True
            if backtrack(pos + 1):
                return True
            image[x] = -1
            used[y] = False
        return False

    backtrack(0)
    return found[0]


def equivalence_classes(
    network: AnonymousNetwork,
    node_colors: Optional[NodeColoring] = None,
) -> List[List[int]]:
    """Definition 2.1 classes: orbits of the color-preserving automorphisms.

    Computed without enumerating the automorphism group: candidate pairs
    come from the equitable refinement (orbits refine it), and one witness
    automorphism per pair merges their union-find cells.  Memoized per
    ``(network, coloring)``.
    """
    cached = _cache.memo(
        network,
        "equivalence_classes",
        _colors_key(node_colors),
        lambda: tuple(
            tuple(cls) for cls in _equivalence_classes(network, node_colors)
        ),
    )
    return [list(cls) for cls in cached]


def _equivalence_classes(
    network: AnonymousNetwork,
    node_colors: Optional[NodeColoring],
) -> List[List[int]]:
    n = network.num_nodes
    adjacency = network.adjacency_sets()
    colors = _normalize_colors(network, node_colors)
    refined = equitable_refinement(adjacency, colors)

    parent = list(range(n))

    def find(x: int) -> int:
        while parent[x] != x:
            parent[x] = parent[parent[x]]
            x = parent[x]
        return x

    cells: Dict[int, List[int]] = {}
    for v in range(n):
        cells.setdefault(refined[v], []).append(v)
    for members in cells.values():
        rep = members[0]
        for v in members[1:]:
            if find(v) == find(rep):
                continue
            witness = find_automorphism_mapping(network, node_colors, rep, v)
            if witness is not None:
                # The witness merges entire orbits at once — exploit it.
                for i in range(n):
                    ri, rj = find(i), find(witness[i])
                    if ri != rj:
                        parent[rj] = ri
    buckets: Dict[int, List[int]] = {}
    for v in range(n):
        buckets.setdefault(find(v), []).append(v)
    return sorted(buckets.values())


# ----------------------------------------------------------------------
# Label-preserving automorphisms (Definition 2.2)
# ----------------------------------------------------------------------


def _propagate_label_map(
    network: AnonymousNetwork,
    colors: Sequence[int],
    source: int,
    target: int,
) -> Optional[Permutation]:
    """The unique label-preserving map sending ``source → target``, if any.

    Because port labels are pairwise distinct at each node, fixing one image
    forces all others along labeled walks (connectivity makes the forcing
    total).  Checks node colors, degree, exact port-label sets, and the
    back-labels of every edge; returns ``None`` on any inconsistency.
    """
    n = network.num_nodes
    image = [-1] * n
    pre = [-1] * n
    image[source] = target
    pre[target] = source
    stack = [source]
    while stack:
        x = stack.pop()
        fx = image[x]
        if colors[x] != colors[fx]:
            return None
        px = set(network.ports(x))
        if px != set(network.ports(fx)):
            return None
        for port in px:
            y, back = network.traverse(x, port)
            fy, fback = network.traverse(fx, port)
            if fback != back:
                return None
            if image[y] == -1 and pre[fy] == -1:
                image[y] = fy
                pre[fy] = y
                stack.append(y)
            elif image[y] != fy:
                return None
    if -1 in image:  # disconnected network: map is partial
        return None
    return tuple(image)


def label_preserving_automorphisms(
    network: AnonymousNetwork,
    node_colors: Optional[NodeColoring] = None,
) -> List[Permutation]:
    """All automorphisms preserving node colors and port labels.

    Works on multigraphs; at most ``n`` automorphisms exist (one candidate
    per image of node 0), so enumeration is O(n·m).  Memoized per
    ``(network, coloring)`` — ``theorem21_certificate`` needs the orbits
    right after ``classify`` enumerated the same group.
    """
    cached = _cache.memo(
        network,
        "label_automorphisms",
        _colors_key(node_colors),
        lambda: tuple(_label_preserving_automorphisms(network, node_colors)),
    )
    return list(cached)


def _label_preserving_automorphisms(
    network: AnonymousNetwork,
    node_colors: Optional[NodeColoring],
) -> List[Permutation]:
    colors = _normalize_colors(network, node_colors)
    result: List[Permutation] = []
    for target in network.nodes():
        phi = _propagate_label_map(network, colors, 0, target)
        if phi is not None:
            result.append(phi)
    return sorted(result)


def label_equivalence_classes(
    network: AnonymousNetwork,
    node_colors: Optional[NodeColoring] = None,
) -> List[List[int]]:
    """Definition 2.2 classes: orbits of label-preserving automorphisms."""
    autos = label_preserving_automorphisms(network, node_colors)
    return orbits_of(autos, network.num_nodes)


def label_classes_all_same_size(
    network: AnonymousNetwork,
    node_colors: Optional[NodeColoring] = None,
) -> Tuple[bool, List[int]]:
    """Check Lemma 2.1 on a concrete labeling; returns (ok, class sizes)."""
    classes = label_equivalence_classes(network, node_colors)
    sizes = sorted(len(c) for c in classes)
    return (len(set(sizes)) == 1, sizes)


def is_vertex_transitive(network: AnonymousNetwork) -> bool:
    """Whether the (uncolored) automorphism group acts transitively.

    Uses the witness-based orbit computation, which avoids enumerating the
    full automorphism group (important on the larger Cayley families, whose
    groups run to the hundreds of elements).
    """
    return len(equivalence_classes(network)) == 1


def automorphism_group_order(
    network: AnonymousNetwork,
    node_colors: Optional[NodeColoring] = None,
) -> int:
    """Order of the color-preserving automorphism group."""
    return len(color_preserving_automorphisms(network, node_colors))
