"""Port-labeling strategies: quantitative, qualitative, random, adversarial.

A *labeling strategy* turns an unlabeled graph structure (``n`` nodes plus a
list of endpoint pairs) into an :class:`~repro.graphs.network.AnonymousNetwork`
by assigning each edge-end a label that is distinct among the labels of its
node.  Strategies:

* :func:`integer_labeling` — the classical quantitative convention: ports
  ``1..deg(x)`` at each node, assigned in a deterministic neighbor order.
* :func:`random_integer_labeling` — ports ``1..deg(x)`` in random per-node
  order; still quantitative but scrambles any accidental structure.
* :func:`qualitative_labeling` — incomparable :class:`~repro.colors.Color`
  symbols drawn from a shared pool (symbols may repeat across nodes, as in
  the paper's Figure 2(b) where ``*`` appears at both ends of the path),
  never within a node.
* :func:`fresh_symbol_labeling` — every edge-end gets a globally fresh
  symbol (the maximally uninformative qualitative labeling).
* :func:`relabeled_randomly` — scrambles an existing network's labels while
  preserving their kind, for adversarial-relabeling tests.

Effectual protocols must behave correctly for *every* labeling (the paper:
"they must complete even if the edge-labeling has been maliciously chosen by
an adversary"), so the test-suite sweeps these strategies.
"""

from __future__ import annotations

import random
from typing import Callable, Dict, Hashable, List, Optional, Sequence, Tuple

from ..colors import Color, ColorSpace
from ..errors import GraphError
from .network import AnonymousNetwork, PortLabel

#: Unlabeled structure: (num_nodes, endpoint pairs).  Pairs may repeat
#: (multi-edges) and may be loops ``(u, u)``.
Structure = Tuple[int, Sequence[Tuple[int, int]]]

LabelingStrategy = Callable[[int, Sequence[Tuple[int, int]]], AnonymousNetwork]


def _edge_end_slots(
    num_nodes: int, pairs: Sequence[Tuple[int, int]]
) -> List[List[Tuple[int, int]]]:
    """For each node, the list of (edge index, side) edge-ends at that node."""
    slots: List[List[Tuple[int, int]]] = [[] for _ in range(num_nodes)]
    for idx, (u, v) in enumerate(pairs):
        slots[u].append((idx, 0))
        slots[v].append((idx, 1))
    return slots


def _assemble(
    num_nodes: int,
    pairs: Sequence[Tuple[int, int]],
    end_labels: Dict[Tuple[int, int], PortLabel],
    name: Optional[str] = None,
) -> AnonymousNetwork:
    """Build a network from per-edge-end labels keyed by (edge index, side)."""
    edges = [
        (u, end_labels[(idx, 0)], v, end_labels[(idx, 1)])
        for idx, (u, v) in enumerate(pairs)
    ]
    return AnonymousNetwork(num_nodes, edges, name=name)


def integer_labeling(
    num_nodes: int,
    pairs: Sequence[Tuple[int, int]],
    name: Optional[str] = None,
) -> AnonymousNetwork:
    """Quantitative labeling: ports ``1..deg(x)`` in edge-insertion order."""
    slots = _edge_end_slots(num_nodes, pairs)
    end_labels: Dict[Tuple[int, int], PortLabel] = {}
    for ends in slots:
        for port, end in enumerate(ends, start=1):
            end_labels[end] = port
    return _assemble(num_nodes, pairs, end_labels, name)


def random_integer_labeling(
    num_nodes: int,
    pairs: Sequence[Tuple[int, int]],
    rng: Optional[random.Random] = None,
    name: Optional[str] = None,
) -> AnonymousNetwork:
    """Quantitative labeling with a random port order at each node."""
    rng = rng or random.Random()
    slots = _edge_end_slots(num_nodes, pairs)
    end_labels: Dict[Tuple[int, int], PortLabel] = {}
    for ends in slots:
        port_order = list(range(1, len(ends) + 1))
        rng.shuffle(port_order)
        for port, end in zip(port_order, ends):
            end_labels[end] = port
    return _assemble(num_nodes, pairs, end_labels, name)


def qualitative_labeling(
    num_nodes: int,
    pairs: Sequence[Tuple[int, int]],
    rng: Optional[random.Random] = None,
    pool_size: Optional[int] = None,
    name: Optional[str] = None,
) -> AnonymousNetwork:
    """Qualitative labeling from a shared pool of incomparable symbols.

    The pool has ``pool_size`` symbols (default: the maximum degree), shared
    across nodes; each node draws a random injective assignment from the
    pool to its edge-ends.
    """
    rng = rng or random.Random()
    slots = _edge_end_slots(num_nodes, pairs)
    max_degree = max((len(s) for s in slots), default=0)
    size = pool_size if pool_size is not None else max_degree
    if size < max_degree:
        raise GraphError(
            f"symbol pool of size {size} cannot label a node of degree {max_degree}"
        )
    pool = ColorSpace(prefix="port").fresh_many(size)
    end_labels: Dict[Tuple[int, int], PortLabel] = {}
    for ends in slots:
        chosen = rng.sample(pool, len(ends))
        for symbol, end in zip(chosen, ends):
            end_labels[end] = symbol
    return _assemble(num_nodes, pairs, end_labels, name)


def fresh_symbol_labeling(
    num_nodes: int,
    pairs: Sequence[Tuple[int, int]],
    name: Optional[str] = None,
) -> AnonymousNetwork:
    """Qualitative labeling in which every edge-end is a fresh symbol."""
    space = ColorSpace(prefix="end")
    slots = _edge_end_slots(num_nodes, pairs)
    end_labels: Dict[Tuple[int, int], PortLabel] = {}
    for ends in slots:
        for end in ends:
            end_labels[end] = space.fresh()
    return _assemble(num_nodes, pairs, end_labels, name)


def relabeled_randomly(
    network: AnonymousNetwork,
    rng: Optional[random.Random] = None,
    qualitative: bool = False,
) -> AnonymousNetwork:
    """Scramble an existing network's port labels.

    With ``qualitative=False`` each node's labels are permuted among its own
    ports (label *values* are preserved, their attachment scrambled).  With
    ``qualitative=True`` labels are replaced by fresh incomparable symbols
    from a shared pool sized to the maximum degree.
    """
    rng = rng or random.Random()
    if qualitative:
        pairs = [(u, v) for (u, pu, v, pv) in network.edges()]
        return qualitative_labeling(
            network.num_nodes, pairs, rng=rng, name=network.name
        )
    relabeling: Dict[int, Dict[PortLabel, PortLabel]] = {}
    for x in network.nodes():
        labels = list(network.ports(x))
        shuffled = labels[:]
        rng.shuffle(shuffled)
        relabeling[x] = dict(zip(labels, shuffled))
    return network.with_ports_relabeled(relabeling)


def apply_global_symbol_renaming(
    network: AnonymousNetwork,
    renaming: Optional[Dict[PortLabel, PortLabel]] = None,
) -> Tuple[AnonymousNetwork, Dict[PortLabel, PortLabel]]:
    """Rename every distinct symbol consistently across the whole network.

    In the qualitative model a global bijective renaming of port symbols is
    unobservable to agents; protocol outcomes must be invariant under it.
    Returns the renamed network and the renaming used (fresh colors if none
    was supplied).
    """
    symbols: List[PortLabel] = []
    seen = set()
    for (u, pu, v, pv) in network.edges():
        for s in (pu, pv):
            if s not in seen:
                seen.add(s)
                symbols.append(s)
    if renaming is None:
        space = ColorSpace(prefix="ren")
        renaming = {s: space.fresh() for s in symbols}
    missing = [s for s in symbols if s not in renaming]
    if missing:
        raise GraphError(f"renaming does not cover symbols: {missing!r}")
    new_edges = [
        (u, renaming[pu], v, renaming[pv]) for (u, pu, v, pv) in network.edges()
    ]
    return (
        AnonymousNetwork(network.num_nodes, new_edges, name=network.name),
        renaming,
    )


def is_quantitative(network: AnonymousNetwork) -> bool:
    """Whether every port label is an ``int`` (comparable labeling)."""
    return all(
        isinstance(pu, int) and isinstance(pv, int)
        for (u, pu, v, pv) in network.edges()
    )


def is_qualitative(network: AnonymousNetwork) -> bool:
    """Whether every port label is an incomparable :class:`Color`."""
    return all(
        isinstance(pu, Color) and isinstance(pv, Color)
        for (u, pu, v, pv) in network.edges()
    )
