"""Cayley graphs — construction, natural labeling, translations, families.

Definition 1.2 of the paper: ``Cay(Γ, S)`` has the elements of ``Γ`` as
nodes and an edge ``{a, b}`` iff ``b⁻¹a ∈ S``, for a symmetric generating
set ``S = S⁻¹``.  Equivalently the neighbors of ``g`` are ``{g·s : s ∈ S}``
— generators act on the **right**, so the left-translations ``x ↦ γ·x`` are
automorphisms (they are the classes machinery of Theorem 4.1).

The *natural* edge-labeling is ``ℓ_x({x, x·s}) = s`` (so the other extremity
is labeled ``s⁻¹``).  It is the labeling Theorem 4.1's proof starts from.
Qualitative experiments relabel the same structure with incomparable
symbols.

Families provided: cycles, hypercubes, toroidal meshes, complete graphs,
circulants, dihedral Cayley graphs, star graphs and pancake graphs (on
``S_n``), and generic products — the interconnection networks the paper
cites as the motivating class.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Sequence, Tuple

from ..errors import GroupError
from ..groups.base import FiniteGroup, GroupElement
from ..groups.cyclic import CyclicGroup
from ..groups.dihedral import DihedralGroup
from ..groups.permgroup import left_translations
from ..groups.product import DirectProductGroup
from ..groups.symmetric import Permutation, SymmetricGroup
from .labelings import LabelingStrategy, qualitative_labeling
from .network import AnonymousNetwork


class CayleyGraph:
    """A Cayley graph together with its algebraic provenance.

    Attributes
    ----------
    group, generators:
        The defining pair ``(Γ, S)``; ``S`` is validated to be symmetric,
        identity-free, duplicate-free and generating (connectivity).
    network:
        The :class:`AnonymousNetwork` with the **natural labeling** (port
        labels are generator elements).
    """

    def __init__(
        self,
        group: FiniteGroup,
        generators: Sequence[GroupElement],
        name: Optional[str] = None,
    ):
        group.require_symmetric_generating_set(generators)
        self.group = group
        self.generators: Tuple[GroupElement, ...] = tuple(generators)
        self._elements: List[GroupElement] = list(group.elements())
        self._index: Dict[GroupElement, int] = {
            e: i for i, e in enumerate(self._elements)
        }
        self.name = name or f"Cay(|G|={group.order},|S|={len(self.generators)})"
        self.network = self._build_network()

    def _build_network(self) -> AnonymousNetwork:
        edges = []
        seen = set()
        for a in self._elements:
            ia = self._index[a]
            for s in self.generators:
                b = self.group.operate(a, s)
                ib = self._index[b]
                key = frozenset((ia, ib))
                if key in seen:
                    continue
                seen.add(key)
                # Label s at a's end, s^{-1} at b's end.  For involutions the
                # two coincide, which is fine: they are ends of one edge.
                edges.append((ia, s, ib, self.group.inverse(s)))
        return AnonymousNetwork(self.group.order, edges, name=self.name)

    # ------------------------------------------------------------------
    # Node / element correspondence
    # ------------------------------------------------------------------

    def node_of(self, element: GroupElement) -> int:
        """The node index of a group element."""
        try:
            return self._index[element]
        except KeyError:
            raise GroupError(f"{element!r} is not an element of the group") from None

    def element_of(self, node: int) -> GroupElement:
        """The group element at a node index."""
        return self._elements[node]

    @property
    def num_nodes(self) -> int:
        return self.group.order

    # ------------------------------------------------------------------
    # Translations
    # ------------------------------------------------------------------

    def translations(self) -> List[Permutation]:
        """The left-regular representation as node permutations.

        Every returned permutation is an automorphism of ``self.network``
        that also preserves the natural labeling (generators act on the
        right, translations on the left — the key fact in Theorem 4.1).
        """
        return left_translations(self.group)

    def translation_of(self, gamma: GroupElement) -> Permutation:
        """The node permutation of the single translation ``x ↦ γ·x``."""
        return tuple(
            self._index[self.group.operate(gamma, a)] for a in self._elements
        )

    # ------------------------------------------------------------------
    # Alternative labelings
    # ------------------------------------------------------------------

    def relabeled(
        self,
        labeling: LabelingStrategy,
    ) -> AnonymousNetwork:
        """The same structure under a different port-labeling strategy."""
        pairs = [(u, v) for (u, pu, v, pv) in self.network.edges()]
        net = labeling(self.network.num_nodes, pairs)
        return AnonymousNetwork(net.num_nodes, net.edges(), name=self.name)

    def qualitative_network(
        self, rng: Optional[random.Random] = None
    ) -> AnonymousNetwork:
        """The structure with random incomparable port symbols."""
        pairs = [(u, v) for (u, pu, v, pv) in self.network.edges()]
        net = qualitative_labeling(self.network.num_nodes, pairs, rng=rng)
        return AnonymousNetwork(net.num_nodes, net.edges(), name=self.name)

    def __repr__(self) -> str:
        return f"CayleyGraph({self.name}, n={self.num_nodes})"


# ----------------------------------------------------------------------
# Families
# ----------------------------------------------------------------------


def cycle_cayley(n: int) -> CayleyGraph:
    """``C_n = Cay(ℤ_n, {+1, -1})`` (paper Section 1.3)."""
    if n < 3:
        raise GroupError("cycle Cayley graph needs n >= 3")
    group = CyclicGroup(n)
    return CayleyGraph(group, group.standard_generators(), name=f"C_{n}")


def hypercube_cayley(d: int) -> CayleyGraph:
    """``Q_d = Cay(ℤ_2^d, {e_1, …, e_d})`` (paper Section 1.3)."""
    if d < 1:
        raise GroupError("hypercube dimension must be >= 1")
    group = DirectProductGroup(*(CyclicGroup(2) for _ in range(d)))
    return CayleyGraph(group, group.axis_generators(), name=f"Q_{d}")


def torus_cayley(dims: Sequence[int]) -> CayleyGraph:
    """Multi-dimensional toroidal mesh ``Cay(ℤ_{a1} × … , {±e_i})``.

    Every dimension must be ≥ 3 for the wrapped mesh to be simple (a
    dimension of 2 collapses ``+1`` and ``-1`` into one generator, which is
    legal but yields a hypercube-like factor instead).
    """
    if len(dims) < 1:
        raise GroupError("torus needs at least one dimension")
    group = DirectProductGroup(*(CyclicGroup(a) for a in dims))
    label = "x".join(map(str, dims))
    return CayleyGraph(group, group.axis_generators(), name=f"T_{label}")


def complete_cayley(n: int) -> CayleyGraph:
    """``K_n = Cay(ℤ_n, ℤ_n \\ {0})``."""
    if n < 2:
        raise GroupError("complete Cayley graph needs n >= 2")
    group = CyclicGroup(n)
    return CayleyGraph(group, list(range(1, n)), name=f"K_{n}")


def circulant_cayley(n: int, steps: Sequence[int]) -> CayleyGraph:
    """Circulant graph ``Cay(ℤ_n, {±s : s ∈ steps})``.

    ``steps`` are taken modulo ``n``; the symmetric closure is formed
    automatically and must generate ℤ_n (i.e. ``gcd(n, *steps) == 1``).
    """
    group = CyclicGroup(n)
    sym = []
    seen = set()
    for s in steps:
        for g in ((s % n), (-s) % n):
            if g != 0 and g not in seen:
                seen.add(g)
                sym.append(g)
    return CayleyGraph(group, sym, name=f"Circ_{n}_{sorted(seen)}")


def dihedral_cayley(n: int) -> CayleyGraph:
    """``Cay(D_n, {r, r⁻¹, s})`` — a cubic non-abelian Cayley graph."""
    group = DihedralGroup(n)
    return CayleyGraph(group, group.standard_generators(), name=f"DihCay_{n}")


def star_graph_cayley(n: int) -> CayleyGraph:
    """The star graph ``ST_n = Cay(S_n, {(0 i)})`` (paper Section 1.3)."""
    group = SymmetricGroup(n)
    return CayleyGraph(group, group.star_generators(), name=f"ST_{n}")


def bubble_sort_cayley(n: int) -> CayleyGraph:
    """The bubble-sort graph ``Cay(S_n, {(i, i+1)})``."""
    group = SymmetricGroup(n)
    return CayleyGraph(
        group, group.adjacent_transposition_generators(), name=f"BS_{n}"
    )


def pancake_cayley(n: int) -> CayleyGraph:
    """The pancake graph ``Cay(S_n, {prefix reversals})``."""
    group = SymmetricGroup(n)
    gens: List[Permutation] = []
    for k in range(2, n + 1):
        p = tuple(list(range(k - 1, -1, -1)) + list(range(k, n)))
        gens.append(p)
    return CayleyGraph(group, gens, name=f"Pancake_{n}")


def cube_connected_cycles(d: int) -> CayleyGraph:
    """CCC(d): the cube-connected-cycles network as a Cayley graph.

    ``Cay(ℤ_2^d ⋊ ℤ_d, {a, a⁻¹, b})`` with ``a = (0, +1)`` (advance along
    the local cycle) and ``b = (e_0, 0)`` (flip the bit currently indexed).
    Node ``(v, i)`` is cube vertex ``v`` at cycle position ``i``; the rung
    edge joins ``(v, i)`` and ``(v ⊕ e_i, i)``.  ``2^d · d`` nodes, cubic.
    """
    from ..groups.semidirect import hypercube_rotation_group

    group = hypercube_rotation_group(d)
    zero = tuple([0] * d)
    e0 = tuple([1] + [0] * (d - 1))
    a = (zero, 1 % d)
    b = (e0, 0)
    gens: List[GroupElement] = [a]
    a_inv = group.inverse(a)
    if a_inv != a:
        gens.append(a_inv)
    gens.append(b)
    return CayleyGraph(group, gens, name=f"CCC_{d}")


def wrapped_butterfly_cayley(d: int) -> CayleyGraph:
    """BF(d): the wrapped butterfly as a Cayley graph.

    ``Cay(ℤ_2^d ⋊ ℤ_d, {a, a⁻¹, c, c⁻¹})`` with ``a = (0, +1)`` (straight
    edge to the next level) and ``c = (e_0, +1)`` (cross edge: flip the
    current bit while advancing).  ``2^d · d`` nodes, 4-regular for d ≥ 3.
    """
    from ..groups.semidirect import hypercube_rotation_group

    if d < 3:
        raise GroupError("wrapped butterfly needs d >= 3 to be 4-regular")
    group = hypercube_rotation_group(d)
    zero = tuple([0] * d)
    e0 = tuple([1] + [0] * (d - 1))
    a = (zero, 1)
    c = (e0, 1)
    gens = [a, group.inverse(a), c, group.inverse(c)]
    return CayleyGraph(group, gens, name=f"BF_{d}")


def product_cayley(a: CayleyGraph, b: CayleyGraph, name: Optional[str] = None) -> CayleyGraph:
    """Cartesian product of two Cayley graphs as a Cayley graph.

    ``Cay(Γ1, S1) □ Cay(Γ2, S2) = Cay(Γ1 × Γ2, S1×{e} ∪ {e}×S2)``.
    """
    group = DirectProductGroup(a.group, b.group)
    gens: List[GroupElement] = []
    for s in a.generators:
        gens.append((s, b.group.identity()))
    for s in b.generators:
        gens.append((a.group.identity(), s))
    return CayleyGraph(group, gens, name=name or f"({a.name})x({b.name})")
