"""Flat-array refinement kernel: vectorized canonical/view pipeline.

The refinement machinery in :mod:`repro.graphs.views` and
:mod:`repro.graphs.canonical` bottoms out in per-node Python tuple lists —
fine at n ≈ 500, hopeless at n ≈ 50 000.  This module re-architects that
hot path on flat integer arrays:

* :class:`FlatNetwork` — a CSR-style numpy image of an
  :class:`~repro.graphs.network.AnonymousNetwork`: one ``int64`` buffer per
  column of the ``(exit symbol, entry symbol, neighbor)`` edge-end table,
  plus the dense rank of each ``(exit, entry)`` pair and the scatter
  indices a vectorized round needs.  Built once per network and memoized
  alongside ``refinement_adjacency``.
* :func:`refine_numpy` — partition refinement to fixpoint as array passes:
  each round packs the per-end ``(pair rank, neighbor class)`` signature
  into a single integer column, segment-sorts it (a plain ``np.sort`` row
  sort for regular graphs, a ``np.lexsort`` for irregular ones), scatters
  the sorted triples into a padded per-node signature matrix and re-ranks
  densely with ``np.unique(axis=0, return_inverse=True)``.  Ids are
  assigned by sorted signature only — never by node index — so the kernel
  honors the same equivariant class-numbering contract as
  ``_refine_worklist``.
* a **distance accelerator**: a synchronized round propagates information
  one hop, so a pointed cycle of n nodes needs n/2 rounds no matter how
  fast each round is.  The kernel therefore interleaves rounds with
  *distance-to-class refinement*: BFS distances to whole classes of the
  current partition (C-speed via ``scipy.sparse.csgraph`` when available,
  pure-Python otherwise) are appended to the signature and re-ranked.
  This is sound — in the coarsest stable partition every class has uniform
  distance to any class of any coarser partition (induction on the
  distance: a node at distance k has a neighbor in a class of uniform
  distance k−1, and stability makes "has a neighbor in class D" a class
  property) — and it collapses the diameter-bound round count to a
  handful on the long-diameter families.
* :func:`digraph_refine_numpy` — the equitable digraph refinement of
  :func:`repro.graphs.canonical.digraph_refinement` as the same padded
  unique-rank pass.  Unlike the view kernel this reproduces the Python
  numbering **exactly** (the padded-row lexicographic order equals the
  Python tuple order because the pad ``-1`` sorts before every class id,
  matching the shorter-tuple-first rule), so canonical encodings,
  ``canonical_key`` values and the pinned ``canonical_hash`` goldens are
  bit-for-bit unchanged under the numpy backend.

Backend selection
-----------------
:func:`resolve_kernel` maps the user-facing selector to a backend name:
``"numpy"`` (default), ``"worklist"`` (the Paige–Tarjan splitter queue) or
``"baseline"`` (the seed all-nodes-every-round loop).  The process default
can be overridden with :func:`set_default_kernel` or the
``REPRO_REFINEMENT_KERNEL`` environment variable.  The pure-Python
implementations are kept as parity oracles; the hypothesis suite pins all
three to the same partition with equivariant ids.

Degenerate guard: the padded signature matrix is Θ(n · Δ).  On irregular
graphs with a huge hub (``n · Δ`` beyond ``DENSE_LIMIT`` cells) the numpy
view backend transparently delegates to the worklist — a deterministic,
size-only decision, so isomorphic copies take the same path and
equivariance is preserved.
"""

from __future__ import annotations

import os
from typing import Any, Callable, Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from ..errors import GraphError
from . import cache as _cache

try:  # C-speed BFS for the distance accelerator; optional.
    from scipy.sparse import csr_matrix as _csr_matrix
    from scipy.sparse.csgraph import dijkstra as _csgraph_dijkstra

    HAVE_SCIPY = True
except ImportError:  # pragma: no cover - exercised via the fallback tests
    _csr_matrix = None
    _csgraph_dijkstra = None
    HAVE_SCIPY = False

#: The view-refinement backends, in preference order.
KERNELS = ("numpy", "worklist", "baseline")

#: Padded-signature cell budget before the numpy view backend delegates to
#: the worklist (n · (Δ+1) int64 cells ≈ 8 bytes each; 64e6 ≈ 512 MB is
#: far above every benchmark family but guards hub-dominated graphs).
DENSE_LIMIT = 64_000_000

#: Distance-accelerator tuning: BFS sources per invocation and invocations
#: per refinement (it re-arms before every round until the budget is spent).
ACCEL_SOURCES = 8
ACCEL_BUDGET = 4

#: Largest ``classes × column-span`` product the packed int64 re-ranking
#: accepts before falling back to ``np.unique(axis=0)``.
_PACK_LIMIT = 2**62

_PAD = np.int64(-1)

_default_kernel = os.environ.get("REPRO_REFINEMENT_KERNEL", "numpy")


def default_kernel() -> str:
    """The process-wide default backend (see :func:`set_default_kernel`)."""
    return _default_kernel


def set_default_kernel(kernel: str) -> str:
    """Set the process-wide default backend; returns the previous one."""
    global _default_kernel
    if kernel not in KERNELS:
        raise GraphError(f"unknown refinement kernel {kernel!r}; choose from {KERNELS}")
    previous, _default_kernel = _default_kernel, kernel
    return previous


def resolve_kernel(kernel: Optional[str]) -> str:
    """Validate an explicit selector, or resolve ``None`` to the default."""
    name = _default_kernel if kernel is None else kernel
    if name not in KERNELS:
        raise GraphError(f"unknown refinement kernel {name!r}; choose from {KERNELS}")
    return name


# ----------------------------------------------------------------------
# Flat network image
# ----------------------------------------------------------------------


class FlatNetwork:
    """CSR-style numpy buffers for one network's refinement structure.

    Edge-ends are grouped contiguously per owner node (CSR layout):
    ``indptr[x] : indptr[x + 1]`` slices every per-end column.  All buffers
    are immutable in spirit (never written after construction) so the
    memoized instance is shared freely across refinement calls, the
    surroundings fast path and the benchmarks.
    """

    __slots__ = (
        "n",
        "indptr",
        "owner",
        "exit_sym",
        "entry_sym",
        "nbr",
        "pair_rank",
        "num_pairs",
        "col",
        "max_degree",
        "regular_degree",
        "edge_u",
        "edge_v",
        "_bfs_csr",
        "_wbfs_csr",
        "_py_adjacency",
    )

    def __init__(self, network: Any):
        from ..graphs.views import refinement_adjacency

        adjacency = refinement_adjacency(network)
        n = network.num_nodes
        degrees = np.fromiter(
            (len(row) for row in adjacency), dtype=np.int64, count=n
        )
        total = int(degrees.sum())
        indptr = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(degrees, out=indptr[1:])
        exit_sym = np.empty(total, dtype=np.int64)
        entry_sym = np.empty(total, dtype=np.int64)
        nbr = np.empty(total, dtype=np.int64)
        pos = 0
        for row in adjacency:
            for (so, si, y) in row:
                exit_sym[pos] = so
                entry_sym[pos] = si
                nbr[pos] = y
                pos += 1
        owner = np.repeat(np.arange(n, dtype=np.int64), degrees)
        # Dense rank of the (exit, entry) pair per edge-end: the ranking
        # respects lexicographic (exit, entry) order, so packing
        # (pair_rank, neighbor class) preserves the Python triple order.
        if total:
            span = int(entry_sym.max()) + 1 if total else 1
            packed = exit_sym * np.int64(span) + entry_sym
            pairs, pair_rank = np.unique(packed, return_inverse=True)
            pair_rank = pair_rank.reshape(-1).astype(np.int64, copy=False)
            num_pairs = len(pairs)
        else:
            pair_rank = np.empty(0, dtype=np.int64)
            num_pairs = 1
        self.n = n
        self.indptr = indptr
        self.owner = owner
        self.exit_sym = exit_sym
        self.entry_sym = entry_sym
        self.nbr = nbr
        self.pair_rank = pair_rank
        self.num_pairs = num_pairs
        #: Scatter column of each edge-end inside its owner's segment.
        self.col = np.arange(total, dtype=np.int64) - indptr[owner]
        self.max_degree = int(degrees.max()) if n else 0
        uniq_deg = np.unique(degrees)
        self.regular_degree = int(uniq_deg[0]) if len(uniq_deg) == 1 else None
        edges = network.edges()
        self.edge_u = np.fromiter((u for (u, _, _, _) in edges), dtype=np.int64, count=len(edges))
        self.edge_v = np.fromiter((v for (_, _, v, _) in edges), dtype=np.int64, count=len(edges))
        self._bfs_csr: Any = None
        self._wbfs_csr: Any = None
        self._py_adjacency: Optional[List[List[int]]] = None

    # -- BFS distances --------------------------------------------------

    def _ensure_bfs(self) -> Any:
        if self._bfs_csr is None and HAVE_SCIPY:
            # float64 data up front: csgraph validates-and-converts any
            # other dtype on *every* call, which dominates small BFS runs.
            data = np.ones(len(self.nbr), dtype=np.float64)
            self._bfs_csr = _csr_matrix(
                (data, self.nbr, self.indptr), shape=(self.n, self.n)
            )
        return self._bfs_csr

    def _ensure_weighted_bfs(self) -> Any:
        if self._wbfs_csr is None and HAVE_SCIPY:
            # Arc weight = B^pair_rank: an equivariant, port-aware metric.
            # Plain BFS is blind to any reflection that is an isometry of
            # the *unlabeled* graph (on a torus, distance from every
            # near-axis class is constant across diagonal twin pairs);
            # weighting arcs by their (exit, entry) pair makes the metric
            # see the port labels.  The geometric base B is picked so a
            # cheapest path's per-pair step counts occupy disjoint digit
            # ranges (no carries while counts stay below B), which makes
            # the column injective on the product-structured families —
            # one Dijkstra from the pointed class discretizes a torus —
            # while every sum stays an exact integer below 2^52 in
            # float64.  B depends only on (n, number of pairs): the same
            # deterministic value on every isomorphic copy.
            pairs = self.num_pairs
            if pairs <= 1:
                base = 1.0  # single pair: the metric degenerates to BFS
            else:
                base = float(int((2.0**52 / max(self.n, 2)) ** (1.0 / (pairs - 1))))
                base = max(1.0, min(base, float(self.n + 1)))
            data = base ** self.pair_rank.astype(np.float64)
            self._wbfs_csr = _csr_matrix(
                (data, self.nbr, self.indptr), shape=(self.n, self.n)
            )
        return self._wbfs_csr

    def weighted_distances_to_set(self, sources: np.ndarray) -> np.ndarray:
        """Min port-weighted distance from every node to the source set.

        Arc weights are a function of the arc's pair rank (class-uniform by
        stability), so the result is uniform on every class of the coarsest
        stable partition — same equitable-quotient induction as the
        unweighted case, with Dijkstra's value-order induction in place of
        BFS layers.  Falls back to the unweighted column without scipy (a
        strictly coarser but still sound signal).
        """
        if not HAVE_SCIPY:
            return self._bfs_python(sources)
        dist = _csgraph_dijkstra(
            self._ensure_weighted_bfs(),
            directed=True,
            indices=sources,
            min_only=True,
        )
        # Finite path weights are exact integers < 2^52 by the base choice.
        dist = np.where(np.isfinite(dist), dist, np.float64(2.0**53))
        return dist.astype(np.int64, copy=False)

    def distances_to_set(self, sources: np.ndarray) -> np.ndarray:
        """Min BFS distance from every node to the source set.

        Unreachable nodes (pathological disconnected fixtures) get the
        sentinel ``n + 1``, which is class-uniform in any stable partition
        just like a finite distance.
        """
        n = self.n
        if HAVE_SCIPY:
            # The CSR image already stores both directions of every edge,
            # so directed=True is exact and skips the symmetrization pass.
            dist = _csgraph_dijkstra(
                self._ensure_bfs(),
                directed=True,
                unweighted=True,
                indices=sources,
                min_only=True,
            )
            dist = np.where(np.isfinite(dist), dist, n + 1)
            return dist.astype(np.int64, copy=False)
        return self._bfs_python(sources)

    def _bfs_python(self, sources: np.ndarray) -> np.ndarray:
        if self._py_adjacency is None:
            self._py_adjacency = [
                self.nbr[self.indptr[x] : self.indptr[x + 1]].tolist()
                for x in range(self.n)
            ]
        adjacency = self._py_adjacency
        dist = [self.n + 1] * self.n
        queue: List[int] = []
        for s in sources.tolist():
            dist[s] = 0
            queue.append(s)
        head = 0
        while head < len(queue):
            x = queue[head]
            head += 1
            dx = dist[x] + 1
            for y in adjacency[x]:
                if dist[y] > dx:
                    dist[y] = dx
                    queue.append(y)
        return np.asarray(dist, dtype=np.int64)


def flat_network(network: Any) -> FlatNetwork:
    """The memoized flat image of a network (built once, shared)."""
    return _cache.memo(network, "flat_network", None, lambda: FlatNetwork(network))


# ----------------------------------------------------------------------
# Vectorized view refinement
# ----------------------------------------------------------------------


def _rank_rows(rows: np.ndarray) -> Tuple[np.ndarray, int]:
    """Dense ids by lexicographic row order (the equivariant re-ranking)."""
    uniq, inverse = np.unique(rows, axis=0, return_inverse=True)
    return inverse.reshape(-1).astype(np.int64, copy=False), len(uniq)


def _rank1d(values: np.ndarray) -> Tuple[np.ndarray, int]:
    """Dense ids by value order for one column (the 1-D fast path)."""
    uniq, inverse = np.unique(values, return_inverse=True)
    return inverse.reshape(-1).astype(np.int64, copy=False), len(uniq)


def _rank_cols(
    comb: np.ndarray, num: int, cols: Any
) -> Tuple[np.ndarray, int]:
    """Dense ids by lexicographic order of the rows ``(comb, *cols)``.

    ``comb`` must already be dense (values in ``[0, num)``).  Each column is
    folded in with one order-preserving integer pack — ``comb · span + col``
    — and a 1-D re-rank.  Packing is strictly monotone in ``(comb, col)``
    lexicographic order, so by induction the result equals the row rank of
    the full matrix, while each pass sorts plain ``int64`` keys instead of
    ``np.unique(axis=0)``'s void-dtype records (severalfold faster on the
    narrow rows every refinement round produces).
    """
    for col in cols:
        if not len(col):
            continue
        lo = int(col.min())
        span = int(col.max()) - lo + 1
        if num * span > _PACK_LIMIT:  # pragma: no cover - astronomic spans
            comb, num = _rank_rows(np.column_stack((comb, col)))
            continue
        comb, num = _rank1d(comb * np.int64(span) + (col - np.int64(lo)))
    return comb, num


def _one_round(flat: FlatNetwork, cls: np.ndarray, num: int) -> Tuple[np.ndarray, int]:
    """One synchronized signature round: returns re-ranked (cls, count)."""
    trip = flat.pair_rank * np.int64(num) + cls[flat.nbr]
    if flat.regular_degree is not None:
        mat = np.sort(trip.reshape(flat.n, flat.regular_degree), axis=1)
    else:
        mat = np.full((flat.n, flat.max_degree), _PAD, dtype=np.int64)
        order = np.lexsort((trip, flat.owner))
        # ``owner`` is already sorted, so the reordered trips stay grouped
        # by owner and land at their in-segment rank; the -1 pad sorts
        # before every trip, which is the shorter-tuple-first rule.
        mat[flat.owner, flat.col] = trip[order]
    return _rank_cols(cls, num, mat.T)


def _accelerate(
    flat: FlatNetwork,
    cls: np.ndarray,
    num: int,
    used_sources: Set[bytes],
) -> Tuple[np.ndarray, int]:
    """Refine by BFS distances to up to ``ACCEL_SOURCES`` classes.

    Classes are chosen by ascending (size, class id) — a class-level,
    node-index-free criterion, so the choice is equivariant across
    isomorphic copies.  Each chosen class contributes one multi-source
    min-distance column, folded into the dense ranking as soon as it is
    computed (so a refinement that goes discrete mid-way skips the
    remaining BFS runs).  Classes holding more than half the nodes are
    skipped: their distance columns are near-constant, and skipping by
    size alone keeps the choice equivariant.  Soundness: every class of
    the coarsest stable partition has uniform distance to any class of the
    current (coarser) partition, so this splits no class that the fixpoint
    keeps together — and skipping sources only forgoes splits the plain
    rounds recover later.
    """
    base = cls  # source classes come from the *entry* partition throughout
    sizes = np.bincount(base, minlength=num)
    order = np.lexsort((np.arange(num, dtype=np.int64), sizes))
    half = flat.n // 2
    picked = 0
    fruitless = 0
    for cid in order:
        if picked >= ACCEL_SOURCES or num >= flat.n or fruitless >= 2:
            break
        if sizes[cid] > half:
            break  # order is ascending by size: all remaining are bigger
        members = np.flatnonzero(base == cid)
        key = members.tobytes()
        if key in used_sources:
            continue
        used_sources.add(key)
        picked += 1
        before = num
        cls, num = _rank_cols(
            cls, num, (flat.weighted_distances_to_set(members),)
        )
        # Split counts are class-level data, so bailing after two
        # fruitless sources is as equivariant as the source choice itself.
        fruitless = fruitless + 1 if num == before else 0
    return cls, num


def refine_numpy(network: Any, colors: Sequence[int]) -> List[int]:
    """The coarsest signature-stable partition, as vectorized array passes.

    ``colors`` must already be normalized to ints (the views layer's
    ``_normalize_colors`` contract).  Returns dense, equivariant class ids:
    every ordering decision is made on (class id, signature, size) only.
    Partition-equal to ``_refine_worklist`` and
    ``view_refinement_baseline``; the numbering is its own (each backend's
    numbering is canonical — only the partition is cross-backend contract).
    """
    n = network.num_nodes
    if n <= 1:
        return [0] * n
    flat = flat_network(network)
    if flat.n * (flat.max_degree + 1) > DENSE_LIMIT:
        # Hub-dominated irregular graph: the padded signature matrix would
        # not fit; the worklist is the better algorithm there anyway.
        from ..graphs.views import _refine_worklist

        return _refine_worklist(network, list(colors))
    cls, num = _rank1d(np.asarray(colors, dtype=np.int64))
    used_sources: Set[bytes] = set()
    accel_left = ACCEL_BUDGET
    while num < n:
        before = num
        if accel_left:
            accel_left -= 1
            cls, num = _accelerate(flat, cls, num, used_sources)
            if num >= n:
                break
        cls, num = _one_round(flat, cls, num)
        if num == before:
            break  # refinement only splits: equal count ⇒ fixpoint
    return cls.tolist()


# ----------------------------------------------------------------------
# Vectorized digraph refinement (exact-parity with the Python reference)
# ----------------------------------------------------------------------


class DigraphKernel:
    """Flat buffers for one :class:`~repro.graphs.canonical.Digraph`.

    Prebuilt once per individualization–refinement search and reused by
    every :func:`digraph_refine_numpy` call in the recursion (the search
    re-refines the same digraph hundreds of times with different initial
    cells).
    """

    __slots__ = (
        "n",
        "out_idx",
        "out_owner",
        "out_col",
        "max_out",
        "in_idx",
        "in_owner",
        "in_col",
        "max_in",
    )

    def __init__(self, g: Any):
        n = g.num_nodes
        self.n = n

        def build(neighbor_sets: Sequence[Any]) -> Tuple[np.ndarray, ...]:
            degrees = np.fromiter(
                (len(s) for s in neighbor_sets), dtype=np.int64, count=n
            )
            total = int(degrees.sum())
            idx = np.empty(total, dtype=np.int64)
            pos = 0
            for s in neighbor_sets:
                for y in s:
                    idx[pos] = y
                    pos += 1
            indptr = np.zeros(n + 1, dtype=np.int64)
            np.cumsum(degrees, out=indptr[1:])
            owner = np.repeat(np.arange(n, dtype=np.int64), degrees)
            col = np.arange(total, dtype=np.int64) - indptr[owner]
            return idx, owner, col, int(degrees.max()) if n else 0

        self.out_idx, self.out_owner, self.out_col, self.max_out = build(g.out_edges)
        self.in_idx, self.in_owner, self.in_col, self.max_in = build(g.in_edges())

    def refine(self, initial: Sequence[int]) -> List[int]:
        """Exact vectorized replica of ``digraph_refinement``.

        Signature rows are ``[class | sorted out-classes | sorted
        in-classes]`` with ``-1`` padding; padded lexicographic row order
        equals the Python ``(class, out tuple, in tuple)`` order (the pad
        sorts before every id, which is the shorter-tuple-first rule), so
        each round's dense ranking — and hence the final numbering — is
        identical to the reference.
        """
        n = self.n
        cls = np.asarray(list(initial), dtype=np.int64)
        mat = np.empty((n, self.max_out + self.max_in), dtype=np.int64)
        while True:
            mat[:] = _PAD
            if len(self.out_idx):
                vals = cls[self.out_idx]
                order = np.lexsort((vals, self.out_owner))
                mat[self.out_owner, self.out_col] = vals[order]
            if len(self.in_idx):
                vals = cls[self.in_idx]
                order = np.lexsort((vals, self.in_owner))
                mat[self.in_owner, self.in_col + self.max_out] = vals[order]
            comb, num = _rank1d(cls)
            new_cls, _ = _rank_cols(comb, num, mat.T)
            if np.array_equal(new_cls, cls):
                return cls.tolist()
            cls = new_cls


def digraph_refine_numpy(g: Any, initial: Sequence[int]) -> List[int]:
    """One-shot vectorized equitable refinement of a digraph."""
    return DigraphKernel(g).refine(initial)


# ----------------------------------------------------------------------
# Vectorized surroundings support
# ----------------------------------------------------------------------


def surrounding_arcs_numpy(network: Any, u: int) -> List[Tuple[int, int]]:
    """The Definition 3.1 arc list of ``S(u)``, via flat-array BFS.

    Same arc *set* as the per-edge Python loop (Digraph.build collapses
    duplicates into frozensets, so ordering differences are invisible).
    """
    flat = flat_network(network)
    dist = flat.distances_to_set(np.asarray([u], dtype=np.int64))
    du = dist[flat.edge_u]
    dv = dist[flat.edge_v]
    forward = du <= dv
    backward = dv <= du
    arcs: List[Tuple[int, int]] = []
    eu, ev = flat.edge_u, flat.edge_v
    arcs.extend(zip(eu[forward].tolist(), ev[forward].tolist()))
    arcs.extend(zip(ev[backward].tolist(), eu[backward].tolist()))
    return arcs
