"""Performance layer: memoization, parallel batteries, benchmark tooling.

Every feasibility question in the reproduction — Theorem 2.1 certificates,
σ_ℓ(G) symmetricity, Lemma 3.1 class ordering, the Table 1 batteries —
funnels through the view-refinement and canonical-form machinery in
:mod:`repro.graphs`.  This package makes that layer fast and measurable:

* :mod:`repro.perf.cache` — a per-:class:`~repro.graphs.AnonymousNetwork`
  memo cache shared by ``view_refinement``, ``view_classes``,
  ``views_equal``, ``symmetricity_of_labeling``, ``view_quotient``,
  ``surrounding_key`` and ``canonical_key``, with hit/miss counters, an
  explicit ``invalidate`` and an ``uncached()`` escape hatch;
* :mod:`repro.perf.kernel` — the flat-array refinement kernel: CSR-style
  numpy buffers per network (:func:`flat_network`), the vectorized
  refinement passes behind the ``kernel="numpy" | "worklist" | "baseline"``
  selector (:func:`default_kernel` / :func:`set_default_kernel` /
  ``REPRO_REFINEMENT_KERNEL``), and the exact-parity digraph kernel the
  canonical machinery uses;
* :mod:`repro.perf.parallel` — :class:`ParallelBatteryRunner`, a
  ``concurrent.futures`` fan-out over independent election instances with
  deterministic result ordering (used by ``reproduce_table1`` and the
  instance batteries), including the shared-memory ``map_on_network`` path;
* :mod:`repro.perf.shm` — one-shot shared-memory export of a network's
  flat buffers for process workers (:func:`~repro.perf.shm.export_network`
  / :func:`~repro.perf.shm.attach_network`);
* :mod:`repro.perf.bench_compare` — the benchmark-regression comparator
  (``python -m repro.perf.bench_compare baseline.json current.json``).

Networks are immutable after construction (all transformations return
copies), which is what makes identity-keyed caching sound; see DESIGN §8.2
for the keying and invalidation rules.
"""

from .cache import (
    cache_enabled,
    cache_stats,
    invalidate,
    memo,
    memo_value,
    metrics_registry,
    reset,
    reset_cache_stats,
    stats_rows,
    uncached,
)
from .kernel import (
    KERNELS,
    default_kernel,
    flat_network,
    refine_numpy,
    resolve_kernel,
    set_default_kernel,
)
from .parallel import ParallelBatteryRunner, parallel_map
from .shm import SharedNetworkHandle, attach_network, export_network

__all__ = [
    "KERNELS",
    "ParallelBatteryRunner",
    "SharedNetworkHandle",
    "attach_network",
    "default_kernel",
    "export_network",
    "flat_network",
    "parallel_map",
    "refine_numpy",
    "resolve_kernel",
    "set_default_kernel",
    "cache_enabled",
    "cache_stats",
    "invalidate",
    "memo",
    "memo_value",
    "metrics_registry",
    "reset",
    "reset_cache_stats",
    "stats_rows",
    "uncached",
]
