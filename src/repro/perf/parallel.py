"""Parallel evaluation of independent election instances.

The Table 1 batteries, the effectualness sweeps and the E-series benchmarks
all share one shape: a list of independent instances, one pure function
applied to each, results reduced in order.  :class:`ParallelBatteryRunner`
fans that shape out over ``concurrent.futures`` while keeping the results
**deterministic**: outputs come back in input order regardless of worker
scheduling, so a parallel battery is byte-identical to the serial one.

Process pools are the default executor because the work is CPU-bound pure
Python (partition refinement, canonical forms, protocol simulation); thread
pools are available for callables that release the GIL or for environments
where forking is undesirable.  ``workers <= 1`` short-circuits to a plain
serial loop with zero executor overhead — the default, so nothing changes
for existing callers until they opt in.

The evaluation function and items must be picklable for the process
executor (module-level functions over :class:`~repro.analysis.instances`
batteries are; see ``repro.analysis.matrix``).

Big-network batteries should use :meth:`ParallelBatteryRunner.map_on_network`:
the network crosses into the workers **once** as shared-memory flat buffers
(see :mod:`repro.perf.shm`) instead of being re-pickled with every task
chunk, and each per-item payload shrinks to the item plus a handle of a few
dozen bytes.  Results remain byte-identical to the serial loop for any
worker count.
"""

from __future__ import annotations

import os
import threading
import time
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from typing import Any, Callable, Dict, Iterable, List, Optional, Sequence, Tuple, TypeVar

from ..obs.registry import get_registry
from . import shm as _shm
from .kernel import default_kernel, set_default_kernel

T = TypeVar("T")
R = TypeVar("R")

_EXECUTORS = ("process", "thread")


class ParallelBatteryRunner:
    """Ordered fan-out of a pure function over independent instances.

    Parameters
    ----------
    workers:
        Degree of parallelism.  ``None`` means "one per CPU, capped at 8";
        ``0``/``1`` mean serial (no executor is created at all).
    executor:
        ``"process"`` (default) or ``"thread"``.
    chunksize:
        Items per task submission for the process pool (amortizes IPC for
        large batteries of small instances).  ``None`` (default) picks
        ``ceil(len(items) / (4 * workers))`` per call: contiguous chunks
        keep instances of the same network in the same worker, so that
        worker's per-network memo cache is shared across them.

    The underlying pool is created lazily on the first parallel ``map``
    and **reused** across calls (worker start-up would otherwise dominate
    short batteries); call :meth:`close` — or use the runner as a context
    manager — to release it.
    """

    def __init__(
        self,
        workers: Optional[int] = 1,
        executor: str = "process",
        chunksize: Optional[int] = None,
    ):
        if executor not in _EXECUTORS:
            raise ValueError(f"executor must be one of {_EXECUTORS}, got {executor!r}")
        if workers is None:
            workers = min(os.cpu_count() or 1, 8)
        if workers < 0:
            raise ValueError(f"workers must be >= 0, got {workers}")
        self.workers = workers
        self.executor = executor
        self.chunksize = chunksize
        self._pool: Optional[Any] = None
        self._pool_lock = threading.Lock()
        #: Shared-memory exports made by :meth:`map_on_network`, keyed by
        #: network identity (the network is pinned so ids cannot recycle).
        self._exports: Dict[int, Tuple[Any, _shm.NetworkExport]] = {}

    @property
    def is_serial(self) -> bool:
        return self.workers <= 1

    def _ensure_pool(self) -> Any:
        # Guarded: the serve layer maps batches from concurrent executor
        # threads, and two first calls racing here would each spawn (and
        # one would leak) a pool.
        with self._pool_lock:
            if self._pool is None:
                if self.executor == "thread":
                    self._pool = ThreadPoolExecutor(max_workers=self.workers)
                else:
                    self._pool = ProcessPoolExecutor(
                        max_workers=self.workers,
                        initializer=_worker_init,
                        initargs=(default_kernel(),),
                    )
            return self._pool

    def close(self) -> None:
        """Shut the pool down and release shared-memory exports (the runner
        can be reused; a new pool spawns and networks re-export lazily)."""
        with self._pool_lock:
            pool, self._pool = self._pool, None
            exports, self._exports = self._exports, {}
        if pool is not None:
            pool.shutdown()
        for _, export in exports.values():
            export.release()

    def __enter__(self) -> "ParallelBatteryRunner":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    def map(self, fn: Callable[[T], R], items: Sequence[T]) -> List[R]:
        """Apply ``fn`` to every item; results in input order.

        Exceptions raised by ``fn`` propagate to the caller (the first one
        in input order, matching serial semantics as closely as the pool
        allows).

        When the default metrics registry is enabled, each call records a
        ``parallel_map_seconds`` observation and bumps
        ``parallel_items_total`` (label ``mode`` ∈ serial/thread/process).
        """
        items = list(items)
        registry = get_registry()
        if not registry.enabled:
            return self._map(fn, items)
        start = time.perf_counter()
        try:
            return self._map(fn, items)
        finally:
            mode = (
                "serial"
                if self.is_serial or len(items) <= 1
                else self.executor
            )
            registry.histogram(
                "parallel_map_seconds",
                help="wall-time of battery map calls, by execution mode",
            ).observe(time.perf_counter() - start, mode=mode)
            registry.counter(
                "parallel_items_total",
                help="instances evaluated by battery maps, by execution mode",
            ).inc(len(items), mode=mode)

    def _map(self, fn: Callable[[T], R], items: List[T]) -> List[R]:
        if self.is_serial or len(items) <= 1:
            return [fn(item) for item in items]
        pool = self._ensure_pool()
        if self.executor == "thread":
            return list(pool.map(fn, items))
        chunk = self.chunksize
        if chunk is None:
            chunk = max(1, -(-len(items) // (4 * self.workers)))
        return list(pool.map(fn, items, chunksize=chunk))

    def starmap(
        self, fn: Callable[..., R], items: Sequence[Iterable[Any]]
    ) -> List[R]:
        """Like :meth:`map` but unpacks each item as ``fn(*item)``."""
        return self.map(_Star(fn), list(map(tuple, items)))

    def map_on_network(
        self, fn: Callable[[Any, T], R], network: Any, items: Sequence[T]
    ) -> List[R]:
        """Apply ``fn(network, item)`` to every item; results in input order.

        On the process executor the network is exported once into shared
        memory (per runner, per network — reused across calls) and workers
        rebuild it once per process from the flat buffers, so the per-task
        pickle payload is the item plus a handle instead of the network
        object graph.  Serial and thread executions call ``fn`` directly on
        the original network.  Every path evaluates the same pure function
        on an identical network, so results are byte-identical to serial
        for any worker count.
        """
        items = list(items)
        if self.is_serial or len(items) <= 1 or self.executor == "thread":
            return self.map(_Bound(fn, network), items)
        return self.map(_Attached(fn, self._export(network).handle), items)

    def _export(self, network: Any) -> _shm.NetworkExport:
        with self._pool_lock:
            entry = self._exports.get(id(network))
            if entry is None or entry[0] is not network:
                entry = (network, _shm.export_network(network))
                self._exports[id(network)] = entry
            return entry[1]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        mode = "serial" if self.is_serial else self.executor
        return f"ParallelBatteryRunner(workers={self.workers}, {mode})"


class _Star:
    """Picklable ``fn(*args)`` adapter (lambdas cannot cross process pools)."""

    def __init__(self, fn: Callable[..., Any]):
        self.fn = fn

    def __call__(self, args: Sequence[Any]) -> Any:
        return self.fn(*args)


class _Bound:
    """``fn(network, item)`` with the network bound in-process (serial and
    thread paths of :meth:`ParallelBatteryRunner.map_on_network`)."""

    def __init__(self, fn: Callable[[Any, Any], Any], network: Any):
        self.fn = fn
        self.network = network

    def __call__(self, item: Any) -> Any:
        return self.fn(self.network, item)


class _Attached:
    """``fn(network, item)`` with the network re-attached from shared memory
    in the worker (cached per process, so the rebuild happens once)."""

    def __init__(self, fn: Callable[[Any, Any], Any], handle: _shm.SharedNetworkHandle):
        self.fn = fn
        self.handle = handle

    def __call__(self, item: Any) -> Any:
        return self.fn(_shm.attach_network(self.handle), item)


def _worker_init(kernel: str) -> None:
    """Process-pool initializer: mirror the parent's refinement backend so a
    parallel battery computes with exactly the kernels serial would use."""
    set_default_kernel(kernel)


def parallel_map(
    fn: Callable[[T], R],
    items: Sequence[T],
    workers: Optional[int] = 1,
    executor: str = "process",
    chunksize: Optional[int] = None,
) -> List[R]:
    """One-shot convenience wrapper around :class:`ParallelBatteryRunner`."""
    with ParallelBatteryRunner(
        workers=workers, executor=executor, chunksize=chunksize
    ) as runner:
        return runner.map(fn, items)
