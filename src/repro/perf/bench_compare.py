"""Compare two ``pytest-benchmark`` JSON files and flag regressions.

Usage::

    python -m repro.perf.bench_compare BASELINE.json CURRENT.json \
        [--threshold 0.20] [--warn-only]

Benchmarks are matched by ``fullname``; for each match the mean times are
compared and any slowdown beyond ``--threshold`` (default 20%) is flagged.
Exit status: 0 when no regression (or ``--warn-only``), 1 on regressions,
2 on malformed input.  Benchmarks present in only one file are reported but
never fail the comparison (suites grow).

Deliberately stdlib-only so CI can run it before installing the package.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Any, Dict, List, Tuple


def load_benchmarks(path: str) -> Dict[str, float]:
    """Map ``fullname`` -> mean seconds from a pytest-benchmark JSON file."""
    with open(path) as fh:
        data = json.load(fh)
    out: Dict[str, float] = {}
    for bench in data.get("benchmarks", []):
        name = bench.get("fullname") or bench.get("name")
        stats = bench.get("stats") or {}
        mean = stats.get("mean")
        if name and isinstance(mean, (int, float)):
            out[name] = float(mean)
    return out


def compare(
    baseline: Dict[str, float], current: Dict[str, float], threshold: float
) -> Tuple[List[Tuple[str, float, float, float]], List[str], List[str]]:
    """Return (regressions, only_in_baseline, only_in_current).

    Each regression row is ``(name, base_mean, cur_mean, ratio)`` with
    ``ratio = cur/base > 1 + threshold``.
    """
    regressions = []
    for name in sorted(set(baseline) & set(current)):
        base, cur = baseline[name], current[name]
        if base <= 0:
            continue
        ratio = cur / base
        if ratio > 1.0 + threshold:
            regressions.append((name, base, cur, ratio))
    only_base = sorted(set(baseline) - set(current))
    only_cur = sorted(set(current) - set(baseline))
    return regressions, only_base, only_cur


def main(argv: List[str] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.perf.bench_compare", description=__doc__
    )
    parser.add_argument("baseline", help="baseline benchmark JSON")
    parser.add_argument("current", help="current benchmark JSON")
    parser.add_argument(
        "--threshold",
        type=float,
        default=0.20,
        help="allowed fractional slowdown before flagging (default 0.20)",
    )
    parser.add_argument(
        "--warn-only",
        action="store_true",
        help="report regressions but exit 0 (for cross-machine CI baselines)",
    )
    args = parser.parse_args(argv)

    try:
        baseline = load_benchmarks(args.baseline)
        current = load_benchmarks(args.current)
    except (OSError, json.JSONDecodeError) as exc:
        print(f"bench_compare: cannot read input: {exc}", file=sys.stderr)
        return 2
    if not baseline or not current:
        print("bench_compare: no benchmarks found in one of the inputs", file=sys.stderr)
        return 2

    regressions, only_base, only_cur = compare(baseline, current, args.threshold)

    compared = len(set(baseline) & set(current))
    print(
        f"compared {compared} benchmark(s), threshold "
        f"+{args.threshold:.0%}: {len(regressions)} regression(s)"
    )
    for name, base, cur, ratio in regressions:
        print(f"  REGRESSION {name}: {base:.6f}s -> {cur:.6f}s ({ratio:.2f}x)")
    for name in only_base:
        print(f"  note: only in baseline: {name}")
    for name in only_cur:
        print(f"  note: new benchmark: {name}")

    if regressions and not args.warn_only:
        return 1
    return 0


if __name__ == "__main__":  # pragma: no cover - CLI entry
    sys.exit(main())
