"""Shared-memory export of networks for parallel battery workers.

``ParallelBatteryRunner`` used to ship every task chunk as a pickled
``(Instance, …)`` tuple, re-serializing the same ``AnonymousNetwork``
object graph once per chunk — the dominant IPC cost for big-network
batteries.  This module exports a network **once** into a
``multiprocessing.shared_memory`` segment as flat integer buffers:

* the edge table as four ``int64`` rows ``(u, port-index@u, v,
  port-index@v)`` — node indices and *indices into a symbol table*, so the
  arbitrary hashable port labels survive the trip;
* one small pickled blob holding ``(symbol table, name, num_nodes)``.

Workers receive a :class:`SharedNetworkHandle` (a few dozen bytes), map
the segment read-only, and rebuild the network exactly once per process
(an attach-side cache keyed by segment name makes every later task on the
same network free).  The rebuilt network is **equal in content** to the
original — same node indexing, same edge records in the same order, same
port labels — so results are byte-identical to the serial path.

When ``multiprocessing.shared_memory`` is unavailable (or segment creation
fails, e.g. ``/dev/shm`` is full), the handle degrades to carrying the
pickled network inline: same API, the old per-task cost, no new failure
mode.

Lifetime: the **creator** owns the segment.  :class:`NetworkExport` keeps
it alive for as long as tasks may reference it and unlinks it on
``release()`` (``ParallelBatteryRunner.close`` releases every export it
made).  Attaching registers the segment with a ``resource_tracker`` a
second time on CPython ≤ 3.12 (bpo-39959); whether that needs undoing
depends on *which* tracker fielded it.  A worker with its **own** tracker
(spawn start method) must unregister, or its tracker unlinks the segment
when the worker exits, destroying it for everyone.  A worker that
**shares** the creator's tracker (fork start method inherits it) must NOT
unregister — the tracker's cache is a set, so the attach-side register was
a no-op and an unregister would erase the creator's sole entry, making the
creator's later ``unlink()`` race the tracker.  The handle carries the
creator's tracker pid so :func:`attach_network` can tell the two apart.
"""

from __future__ import annotations

import pickle
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

import numpy as np

try:
    from multiprocessing import resource_tracker as _resource_tracker
    from multiprocessing import shared_memory as _shm

    HAVE_SHARED_MEMORY = True
except ImportError:  # pragma: no cover - all supported CPythons have it
    _resource_tracker = None
    _shm = None
    HAVE_SHARED_MEMORY = False

#: Rows of the flat edge table: u, port-index@u, v, port-index@v.
_EDGE_ROWS = 4

#: Attached networks kept alive per worker process (segment name -> network).
_ATTACH_CACHE_LIMIT = 4
_attach_cache: Dict[str, Any] = {}


@dataclass(frozen=True)
class SharedNetworkHandle:
    """Picklable address of an exported network.

    ``segment`` is the shared-memory name, or ``None`` when the export fell
    back to carrying the pickled network ``payload`` inline.
    """

    segment: Optional[str]
    num_edges: int
    blob_len: int
    #: Pid of the creator's resource-tracker process (0 if undetermined).
    tracker_pid: int = 0
    payload: Optional[bytes] = field(default=None, repr=False)


def _tracker_pid() -> int:
    """Pid of this process's resource-tracker process (0 if undetermined).

    Forked children inherit the parent's tracker, spawned children get
    their own — comparing pids is what distinguishes the two cases in
    :func:`attach_network`.
    """
    if _resource_tracker is None:  # pragma: no cover
        return 0
    try:
        return int(_resource_tracker._resource_tracker._pid or 0)
    except Exception:  # pragma: no cover - tracker API drift
        return 0


class NetworkExport:
    """Creator-side ownership of one exported network.

    Holds the segment open until :meth:`release`; the cheap ``handle`` is
    what crosses the process boundary.
    """

    def __init__(self, network: Any):
        self._segment: Optional[Any] = None
        edges = network.edges()
        m = len(edges)
        symbols: List[Any] = []
        index: Dict[Any, int] = {}

        def sym(label: Any) -> int:
            pos = index.get(label)
            if pos is None:
                pos = index[label] = len(symbols)
                symbols.append(label)
            return pos

        table = np.empty((_EDGE_ROWS, m), dtype=np.int64)
        for k, (u, pu, v, pv) in enumerate(edges):
            table[0, k] = u
            table[1, k] = sym(pu)
            table[2, k] = v
            table[3, k] = sym(pv)
        blob = pickle.dumps(
            (tuple(symbols), network.name, network.num_nodes),
            protocol=pickle.HIGHEST_PROTOCOL,
        )
        if HAVE_SHARED_MEMORY:
            try:
                segment = _shm.SharedMemory(
                    create=True, size=max(1, table.nbytes + len(blob))
                )
            except OSError:  # pragma: no cover - /dev/shm exhaustion
                segment = None
            if segment is not None:
                view = np.ndarray(table.shape, dtype=np.int64, buffer=segment.buf)
                view[:] = table
                segment.buf[table.nbytes : table.nbytes + len(blob)] = blob
                self._segment = segment
                self.handle = SharedNetworkHandle(
                    segment.name, m, len(blob), _tracker_pid()
                )
                return
        self.handle = SharedNetworkHandle(
            None, m, 0, payload=pickle.dumps(network, protocol=pickle.HIGHEST_PROTOCOL)
        )

    def release(self) -> None:
        """Close and unlink the segment (idempotent)."""
        segment, self._segment = self._segment, None
        if segment is not None:
            segment.close()
            try:
                segment.unlink()
            except FileNotFoundError:  # pragma: no cover - already gone
                pass

    def __del__(self) -> None:  # pragma: no cover - backstop
        self.release()


def export_network(network: Any) -> NetworkExport:
    """Export a network's flat buffers into shared memory."""
    return NetworkExport(network)


def attach_network(handle: SharedNetworkHandle) -> Any:
    """Rebuild the network a handle points at (worker side, cached).

    The first attach per (process, segment) copies the buffers out, rebuilds
    the :class:`~repro.graphs.network.AnonymousNetwork` and caches it; later
    attaches are dictionary hits.  The segment itself is closed again before
    returning — nothing in the rebuilt network aliases shared memory.
    """
    from ..graphs.network import AnonymousNetwork

    if handle.segment is None:
        return pickle.loads(handle.payload)
    cached = _attach_cache.get(handle.segment)
    if cached is not None:
        return cached
    segment = _shm.SharedMemory(name=handle.segment)
    try:
        table = np.array(
            np.ndarray(
                (_EDGE_ROWS, handle.num_edges), dtype=np.int64, buffer=segment.buf
            )
        )
        start = table.nbytes
        symbols, name, num_nodes = pickle.loads(
            bytes(segment.buf[start : start + handle.blob_len])
        )
    finally:
        if _tracker_pid() != handle.tracker_pid:
            # Our own tracker registered the attach (spawn / unrelated
            # process): unregister, or it unlinks the segment at exit.
            # With the creator's tracker (same process, or fork-inherited)
            # the register was a set no-op and the entry is the creator's —
            # unregistering would orphan the creator's unlink().
            _untrack(segment)
        segment.close()
    records = [
        (int(table[0, k]), symbols[table[1, k]], int(table[2, k]), symbols[table[3, k]])
        for k in range(handle.num_edges)
    ]
    network = AnonymousNetwork(num_nodes, records, name=name)
    if len(_attach_cache) >= _ATTACH_CACHE_LIMIT:
        _attach_cache.pop(next(iter(_attach_cache)))
    _attach_cache[handle.segment] = network
    return network


def _untrack(segment: Any) -> None:
    """Stop this process's resource tracker from unlinking on exit.

    Attaching registers the segment with the tracker on CPython ≤ 3.12
    (bpo-39959), so a worker exiting would silently destroy the creator's
    segment.  Only the creator may unlink.
    """
    if _resource_tracker is None:  # pragma: no cover
        return
    try:
        _resource_tracker.unregister(segment._name, "shared_memory")
    except Exception:  # pragma: no cover - tracker API drift
        pass
