"""Per-network memoization with observable hit counters.

The analysis layer asks the same questions about the same network over and
over: ``theorem21_certificate`` needs the view partition that
``symmetricity_of_labeling`` just computed, ``order_equivalence_classes``
re-derives surrounding keys that ``class_signature`` already produced, and
every ``views_equal`` call inside a loop used to re-run the full refinement.
This module provides the shared memo those callers route through.

Keying rules
------------
* The primary key is the **network object identity** (held weakly, so caches
  die with their networks).  :class:`~repro.graphs.network.AnonymousNetwork`
  is immutable after construction — every transformation
  (``with_ports_relabeled``, ``with_nodes_permuted``) returns a new object —
  which is what makes identity keying sound.
* The secondary key is ``(kind, key)`` where ``kind`` names the computation
  (``"view_refinement"``, ``"surrounding_key"``, …) and ``key`` carries the
  remaining arguments (normalised node-coloring tuple, root node, …).
* Non-network-keyed values (canonical keys of hashable
  :class:`~repro.graphs.canonical.Digraph` objects) go through
  :func:`memo_value`, a bounded FIFO table.

Escape hatches
--------------
* ``with uncached(): ...`` disables both lookup and insertion in the dynamic
  extent (re-entrant; used by the parity property tests and benchmarks).
* ``invalidate(network)`` drops one network's memo; ``invalidate()`` drops
  everything including the bounded value table.

Observability
-------------
Counters live in a dedicated **always-enabled**
:class:`~repro.obs.registry.MetricsRegistry` (metrics ``cache_hits_total``
/ ``cache_misses_total``, label ``kind``), registered as the
``"perf.cache"`` collector so they appear in
:func:`repro.obs.collect_snapshot` without the default registry being
switched on — the regression tests count misses regardless of global
metrics state.  ``cache_stats()`` keeps its historical return shape
``{kind: {"hits": h, "misses": m}}``; misses equal the number of *actual*
computations.  ``stats_rows()`` renders the same data as table rows for
the analysis/trace reporting machinery, and :func:`reset` zeroes the
counters explicitly.
"""

from __future__ import annotations

import threading
import weakref
from contextlib import contextmanager
from typing import Any, Callable, Dict, Hashable, Iterator, List, Optional, Tuple

from ..obs.registry import MetricsRegistry, register_collector

#: network -> {(kind, key): value}.  Weak keys: a cache entry must never
#: keep a network alive.
_network_store: "weakref.WeakKeyDictionary[Any, Dict[Tuple[str, Hashable], Any]]" = (
    weakref.WeakKeyDictionary()
)
#: (kind, key) -> value for non-network-keyed computations, FIFO-bounded.
_value_store: Dict[Tuple[str, Hashable], Any] = {}
_VALUE_STORE_LIMIT = 8192

#: The cache's own registry — always enabled, independent of the global
#: default (hit/miss accounting is part of the cache's contract, not an
#: opt-in diagnostic).
_metrics = MetricsRegistry(enabled=True)
_hits = _metrics.counter(
    "cache_hits_total", help="memo hits, by computation kind"
)
_misses = _metrics.counter(
    "cache_misses_total",
    help="memo misses (actual computations), by computation kind",
)
register_collector("perf.cache", _metrics)

_lock = threading.RLock()
_disabled_depth = 0
#: Bumped by every full :func:`invalidate`.  Computations snapshot it
#: before running and skip insertion when it moved: a ``memo_value``
#: compute that was in flight while everything was invalidated must not
#: resurrect its (now stale) entry into the live table.  Network-keyed
#: entries get this for free — ``clear()`` detaches their per-network
#: dict, so the late insert lands in an orphan — but ``_value_store`` is
#: one module-level dict, cleared in place.
_generation = 0


def cache_enabled() -> bool:
    """Whether memoization is active (False inside :func:`uncached`)."""
    return _disabled_depth == 0


@contextmanager
def uncached() -> Iterator[None]:
    """Disable the cache (lookup *and* insertion) in this dynamic extent.

    Re-entrant.  Counters are not touched while disabled, so benchmark
    baselines measured under ``uncached()`` stay comparable.
    """
    global _disabled_depth
    with _lock:
        _disabled_depth += 1
    try:
        yield
    finally:
        with _lock:
            _disabled_depth -= 1


def _count(kind: str, hit: bool) -> None:
    (_hits if hit else _misses).inc(kind=kind)


def memo(
    network: Any, kind: str, key: Hashable, compute: Callable[[], Any]
) -> Any:
    """Memoize ``compute()`` under ``(network, kind, key)``.

    The cached value is returned as-is; callers that hand out mutable
    results must copy before returning (the views layer caches tuples).
    """
    if _disabled_depth:
        return compute()
    with _lock:
        per_net = _network_store.get(network)
        if per_net is None:
            per_net = _network_store.setdefault(network, {})
        full_key = (kind, key)
        if full_key in per_net:
            _count(kind, hit=True)
            return per_net[full_key]
        _count(kind, hit=False)
    value = compute()
    with _lock:
        if not _disabled_depth:
            per_net[full_key] = value
    return value


def memo_value(kind: str, key: Hashable, compute: Callable[[], Any]) -> Any:
    """Memoize ``compute()`` under ``(kind, key)`` in the bounded table.

    Used for canonical keys of hashable digraphs, which have no owning
    network.  Eviction is FIFO once the table exceeds its limit.
    """
    if _disabled_depth:
        return compute()
    full_key = (kind, key)
    with _lock:
        if full_key in _value_store:
            _count(kind, hit=True)
            return _value_store[full_key]
        _count(kind, hit=False)
        generation = _generation
    value = compute()
    with _lock:
        if not _disabled_depth and generation == _generation:
            while len(_value_store) >= _VALUE_STORE_LIMIT:
                _value_store.pop(next(iter(_value_store)))
            _value_store[full_key] = value
    return value


def invalidate(network: Optional[Any] = None) -> None:
    """Drop one network's memo, or everything when ``network`` is None.

    A full invalidation clears the network-keyed store *and* the
    non-network-keyed value table (digraph canonical keys), and bumps the
    generation counter so computations already in flight cannot re-insert
    stale entries afterwards.
    """
    global _generation
    with _lock:
        if network is None:
            _generation += 1
            _network_store.clear()
            _value_store.clear()
        else:
            _network_store.pop(network, None)


def metrics_registry() -> MetricsRegistry:
    """The cache's own always-enabled registry (the ``perf.cache`` collector)."""
    return _metrics


def cache_stats() -> Dict[str, Dict[str, int]]:
    """Snapshot of hit/miss counters per computation kind."""
    hits = {dict(key).get("kind", "?"): int(v) for key, v in _hits.series().items()}
    misses = {
        dict(key).get("kind", "?"): int(v) for key, v in _misses.series().items()
    }
    return {
        kind: {"hits": hits.get(kind, 0), "misses": misses.get(kind, 0)}
        for kind in sorted(set(hits) | set(misses))
    }


def reset() -> None:
    """Zero all counters (does not drop cached values)."""
    _metrics.reset()


def reset_cache_stats() -> None:
    """Historical alias of :func:`reset`."""
    reset()


def stats_rows() -> List[List[Any]]:
    """Counter table rows ``[kind, hits, misses, hit-rate]`` for reporting."""
    rows: List[List[Any]] = []
    for kind, stat in cache_stats().items():
        total = stat["hits"] + stat["misses"]
        rate = f"{stat['hits'] / total:.0%}" if total else "-"
        rows.append([kind, stat["hits"], stat["misses"], rate])
    return rows
