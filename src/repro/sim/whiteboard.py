"""Whiteboards: per-node sign stores with atomic access.

One whiteboard per node (paper Section 1.2).  Atomicity is provided by the
runtime executing one agent action per step; the board itself is a plain
append-list with filtered reads and the test-and-write primitive used for
races (:meth:`Whiteboard.try_acquire`).
"""

from __future__ import annotations

from typing import Callable, List, Optional, Tuple

from ..colors import Color
from .signs import Sign

#: Optional observation hook called with the operation name on every board
#: primitive (``snapshot``/``append``/``erase``/``acquire``).  Installed by
#: :func:`repro.obs.instrument_whiteboards` to feed a metrics registry;
#: ``None`` (the default) costs each operation one global load and an
#: ``is not None`` test.  Process-global on purpose: whiteboards are
#: constructed in bulk by the runtime and carry no registry reference.
_obs_hook: Optional[Callable[[str], None]] = None


def set_observation_hook(
    hook: Optional[Callable[[str], None]],
) -> Optional[Callable[[str], None]]:
    """Install (or clear, with ``None``) the board-operation hook.

    Returns the previous hook so callers can restore it.
    """
    global _obs_hook
    previous = _obs_hook
    _obs_hook = hook
    return previous


class Whiteboard:
    """The sign store of a single node."""

    __slots__ = ("_signs", "_version")

    def __init__(self) -> None:
        self._signs: List[Sign] = []
        # Version counter lets blocked agents re-check predicates only when
        # the board actually changed.
        self._version = 0

    @property
    def version(self) -> int:
        """Monotone counter incremented on every mutation."""
        return self._version

    def snapshot(self) -> Tuple[Sign, ...]:
        """All signs, in write order."""
        if _obs_hook is not None:
            _obs_hook("snapshot")
        return tuple(self._signs)

    def append(
        self, sign: Sign, writer: Optional[Color] = None
    ) -> Optional[Sign]:
        """Write a sign (atomic under the runtime's one-action-per-step).

        Returns the sign actually stored, or ``None`` if the write was lost.
        The base board never loses writes; fault-injecting subclasses
        (:class:`repro.fault.boards.FaultyWhiteboard`) may drop or alter the
        sign, and :meth:`try_acquire` consults the return value so a dropped
        write can never masquerade as a successful acquisition.

        ``writer`` is the color of the agent *performing* the write — the
        provenance the runtime knows but the sign itself does not carry.
        The base board ignores it; provenance-journaling subclasses record
        it so a sign claiming another agent's color (a Byzantine forgery)
        stays attributable after the fact.
        """
        if _obs_hook is not None:
            _obs_hook("append")
        self._signs.append(sign)
        self._version += 1
        return sign

    def erase_own(
        self,
        color: Color,
        kind: str,
        payload: Optional[Tuple[int, ...]] = None,
    ) -> int:
        """Remove the given agent's signs matching kind/payload."""
        if _obs_hook is not None:
            _obs_hook("erase")
        before = len(self._signs)
        self._signs = [
            s
            for s in self._signs
            if not (s.color == color and s.matches(kind, payload))
        ]
        removed = before - len(self._signs)
        if removed:
            self._version += 1
        return removed

    def count(self, kind: str, payload: Optional[Tuple[int, ...]] = None) -> int:
        """Number of signs matching kind/payload."""
        return sum(1 for s in self._signs if s.matches(kind, payload))

    def try_acquire(
        self,
        color: Color,
        kind: str,
        payload: Tuple[int, ...],
        capacity: int,
    ) -> bool:
        """Atomic test-and-write (see :class:`repro.sim.actions.TryAcquire`)."""
        if _obs_hook is not None:
            _obs_hook("acquire")
        if self.count(kind, payload) >= capacity:
            return False
        stored = self.append(
            Sign(kind=kind, color=color, payload=tuple(payload)), writer=color
        )
        # A fault-injecting subclass may have dropped the write: report the
        # acquisition as failed rather than granting a phantom slot.
        return stored is not None

    def __len__(self) -> int:
        return len(self._signs)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Whiteboard({len(self._signs)} signs, v{self._version})"
