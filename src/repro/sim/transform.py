"""Figure 1: transforming a mobile-agent protocol into a processor network.

The paper's generic transformation (proof of Theorem 2.1): the network's
processors all run the loop

    repeat:
      wait for a message (P, M);
      execute P with data M and the local whiteboard W;
      if the execution leads to a move through the edge labeled i,
      send the message (P, M') through edge i.

Here an "agent" *is* a message: its program plus its memory state travel
from processor to processor.  :class:`MessagePassingSimulation` implements
the target model directly — nodes with inboxes, message delivery along
labeled links, local whiteboard memory — and *hosts* unmodified
:class:`~repro.sim.agent.Agent` protocols by carrying their live generator
as the message body (the in-process stand-in for the paper's (P, M) pair;
documented substitution, observationally identical).

Differences from :class:`~repro.sim.runtime.Simulation` are real, not
cosmetic: execution is *per-processor* (a scheduler picks a node, which
then processes one unit of local work), agents blocked on ``WaitUntil``
become resident continuations re-entered on local board changes, and the
move count equals the message count.  Experiment E2 runs protocol ELECT on
both engines and checks the outcomes coincide.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Set, Tuple

from ..colors import Color
from ..errors import (
    DeadlockError,
    PlacementError,
    ProtocolError,
    StepBudgetExceeded,
)
from ..graphs.network import AnonymousNetwork, PortLabel
from .actions import (
    Erase,
    Log,
    Move,
    NodeView,
    Read,
    TryAcquire,
    WaitUntil,
    Write,
)
from .agent import Agent
from .runtime import SimulationResult
from .signs import HOMEBASE, Sign
from .whiteboard import Whiteboard


@dataclass
class _AgentMessage:
    """The (P, M) pair in flight or resident at a processor."""

    agent_idx: int
    agent: Agent
    gen: Any
    pending: Any
    entry_port: Optional[PortLabel] = None  # set while in flight


@dataclass
class _Processor:
    """One node of the processor network."""

    node: int
    board: Whiteboard
    inbox: List[_AgentMessage] = field(default_factory=list)
    blocked: List[Tuple[_AgentMessage, WaitUntil]] = field(default_factory=list)
    sleeper: Optional[Tuple[int, Agent]] = None  # not-yet-started agent


class MessagePassingSimulation:
    """Run mobile-agent protocols on the transformed processor network."""

    def __init__(
        self,
        network: AnonymousNetwork,
        placements: Sequence[Tuple[Agent, int]],
        seed: int = 0,
        initially_awake: Optional[Sequence[int]] = None,
        max_steps: Optional[int] = None,
        port_shuffle_seed: int = 0,
    ):
        if not placements:
            raise PlacementError("at least one agent is required")
        homes = [h for (_, h) in placements]
        if len(set(homes)) != len(homes):
            raise PlacementError("home-bases must be pairwise distinct")
        self.network = network
        self.placements = list(placements)
        self.rng = random.Random(seed)
        self.processors = [
            _Processor(node=v, board=Whiteboard()) for v in network.nodes()
        ]
        self._port_seed = port_shuffle_seed
        self.moves = [0] * len(placements)  # message sends per agent
        self.accesses = [0] * len(placements)
        self.results: List[Any] = [None] * len(placements)
        self.final_positions: List[int] = [home for (_, home) in placements]
        self.done: Set[int] = set()
        if initially_awake is None:
            initially_awake = list(range(len(placements)))
        self._initially_awake = list(initially_awake)
        if max_steps is None:
            r = len(placements)
            m = network.num_edges
            n = network.num_nodes
            max_steps = 2_000 + 600 * r * r * (m + n)
        self.max_steps = max_steps

    # -- views ----------------------------------------------------------

    def _view(
        self, agent_idx: int, node: int, entry_port: Optional[PortLabel] = None
    ) -> NodeView:
        ports = list(self.network.ports(node))
        rng = random.Random(f"{self._port_seed}:{agent_idx}:{node}")
        rng.shuffle(ports)
        return NodeView(
            degree=self.network.degree(node),
            ports=tuple(ports),
            signs=self.processors[node].board.snapshot(),
            entry_port=entry_port,
        )

    # -- processor work -------------------------------------------------

    def _wake_sleeper(self, proc: _Processor) -> None:
        if proc.sleeper is None:
            return
        idx, agent = proc.sleeper
        proc.sleeper = None
        gen = agent.protocol(self._view(idx, proc.node))
        proc.inbox.append(
            _AgentMessage(agent_idx=idx, agent=agent, gen=gen, pending=None)
        )

    def _recheck_blocked(self, proc: _Processor) -> None:
        still: List[Tuple[_AgentMessage, WaitUntil]] = []
        for msg, wait in proc.blocked:
            view = self._view(msg.agent_idx, proc.node)
            if wait.predicate(view):
                msg.pending = view
                proc.inbox.append(msg)
            else:
                still.append((msg, wait))
        proc.blocked = still

    def _process(self, proc: _Processor) -> None:
        """Execute one agent continuation at this processor until it moves,
        blocks, or terminates — the body of the Figure 1 loop."""
        msg = proc.inbox.pop(self.rng.randrange(len(proc.inbox)))
        idx = msg.agent_idx
        agent = msg.agent
        color = agent.color
        node = proc.node
        send_value = msg.pending
        if msg.entry_port is not None:
            send_value = self._view(idx, node, entry_port=msg.entry_port)
            msg.entry_port = None
        while True:
            try:
                action = msg.gen.send(send_value)
            except StopIteration as stop:
                self.results[idx] = stop.value
                self.final_positions[idx] = node
                self.done.add(idx)
                return
            if isinstance(action, Move):
                if action.port not in self.network.ports(node):
                    raise ProtocolError(
                        f"agent {idx} used missing port {action.port!r}"
                    )
                dest, entry = self.network.traverse(node, action.port)
                self.moves[idx] += 1
                msg.pending = None
                msg.entry_port = entry
                target = self.processors[dest]
                target.inbox.append(msg)
                self._wake_sleeper(target)
                return
            if isinstance(action, Read):
                self.accesses[idx] += 1
                send_value = self._view(idx, node)
                continue
            if isinstance(action, Write):
                sign = action.sign
                if sign.color is None:
                    sign = Sign(kind=sign.kind, color=color, payload=sign.payload)
                elif sign.color != color:
                    raise ProtocolError("sign forgery attempt")
                self.accesses[idx] += 1
                proc.board.append(sign)
                self._recheck_blocked(proc)
                send_value = None
                continue
            if isinstance(action, Erase):
                self.accesses[idx] += 1
                removed = proc.board.erase_own(color, action.kind, action.payload)
                if removed:
                    self._recheck_blocked(proc)
                send_value = removed
                continue
            if isinstance(action, TryAcquire):
                self.accesses[idx] += 1
                ok = proc.board.try_acquire(
                    color, action.kind, action.payload, action.capacity
                )
                if ok:
                    self._recheck_blocked(proc)
                send_value = ok
                continue
            if isinstance(action, WaitUntil):
                self.accesses[idx] += 1
                view = self._view(idx, node)
                if action.predicate(view):
                    send_value = view
                    continue
                proc.blocked.append((msg, action))
                return
            if isinstance(action, Log):
                send_value = None
                continue
            raise ProtocolError(f"unknown action {action!r}")

    # -- main loop --------------------------------------------------------

    def run(self) -> SimulationResult:
        for idx, (agent, home) in enumerate(self.placements):
            self.processors[home].board.append(
                Sign(kind=HOMEBASE, color=agent.color)
            )
            self.processors[home].sleeper = (idx, agent)
        for idx in self._initially_awake:
            self._wake_sleeper(self.processors[self.placements[idx][1]])

        steps = 0
        while True:
            busy = [p for p in self.processors if p.inbox]
            if not busy:
                if len(self.done) == len(self.placements):
                    break
                reasons = [
                    f"agent {m.agent_idx} blocked at node {p.node}: "
                    f"{w.reason or 'waiting'}"
                    for p in self.processors
                    for (m, w) in p.blocked
                ]
                raise DeadlockError(
                    "processor network quiescent with agents pending: "
                    + "; ".join(reasons)
                )
            if steps >= self.max_steps:
                raise StepBudgetExceeded(
                    f"message-passing run exceeded {self.max_steps} steps"
                )
            proc = busy[self.rng.randrange(len(busy))]
            self._process(proc)
            steps += 1
        return SimulationResult(
            results=self.results,
            moves=self.moves,
            accesses=self.accesses,
            steps=steps,
            positions=list(self.final_positions),
        )


def run_transformed(
    network: AnonymousNetwork,
    placements: Sequence[Tuple[Agent, int]],
    seed: int = 0,
    **kwargs: Any,
) -> SimulationResult:
    """Convenience wrapper over :class:`MessagePassingSimulation`."""
    return MessagePassingSimulation(network, placements, seed=seed, **kwargs).run()
