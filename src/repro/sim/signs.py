"""Colored signs — the unit of whiteboard communication.

Paper Section 1.2: "the basic unit of information is the *colored sign*,
i.e., a string of bits with a color".  A sign therefore carries

* a ``kind`` plus an integer-only ``payload`` (together they are the "string
  of bits"), and
* the ``color`` of the writing agent (or ``None`` for pre-placed anonymous
  marks; the paper's home-base marks are colored).

The model restriction that matters: **an agent can only write signs of its
own color, and payloads cannot encode colors** (colors have no agreed bit
encoding — that is the whole premise of the qualitative world).  The
:class:`Sign` constructor enforces the integer-payload rule; the runtime
enforces the own-color rule.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field
from typing import Optional, Tuple

from ..colors import Color
from ..errors import ProtocolError

#: Well-known sign kinds used by the shipped protocols.  Protocols may mint
#: their own kinds; these constants just avoid typo bugs.
HOMEBASE = "homebase"
DFS_VISITED = "dfs-visited"
STATUS = "status"
MATCH = "match"
ROUND_DONE = "round-done"
ACTIVATE = "activate"
NODE_ACQUIRED = "node-acquired"
NODE_ROUND_DONE = "node-round-done"
LEADER_ANNOUNCE = "leader-announce"
FAILURE_ANNOUNCE = "failure-announce"
SYNC = "sync"
MARK = "mark"


@dataclass(frozen=True)
class Sign:
    """An immutable colored sign.

    Parameters
    ----------
    kind:
        Sign type tag (a short string; part of the bit-string content).
    color:
        The writer's color; ``None`` only for runtime-placed neutral marks.
    payload:
        A tuple of ints (phase numbers, round numbers, role codes…).  Colors
        are deliberately unrepresentable here.
    """

    kind: str
    color: Optional[Color] = None
    payload: Tuple[int, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        if not all(isinstance(x, int) for x in self.payload):
            raise ProtocolError(
                "sign payloads may contain only ints: colors have no agreed "
                "encoding in the qualitative model"
            )

    def fingerprint(self) -> int:
        """CRC-32 over the sign's observable content (kind, color name, payload).

        Used by the fault layer to detect whiteboard corruption: the checksum
        of what an agent *asked* to write is journaled at write time, and an
        audit recomputes fingerprints of what is actually on the board.  The
        color contributes only its *name* — names are minting artifacts, not
        an ordering, so this stays inside the qualitative model.
        """
        name = self.color.name if self.color is not None else ""
        text = "|".join((self.kind, name, ",".join(map(str, self.payload))))
        return zlib.crc32(text.encode("utf-8"))

    def matches(self, kind: str, payload: Optional[Tuple[int, ...]] = None) -> bool:
        """Filter helper: same kind and (if given) exact payload."""
        if self.kind != kind:
            return False
        return payload is None or self.payload == tuple(payload)


def signs_of_kind(signs, kind: str, payload: Optional[Tuple[int, ...]] = None):
    """All signs in an iterable matching ``kind`` (and payload, if given)."""
    return [s for s in signs if s.matches(kind, payload)]


def distinct_colors(signs) -> set:
    """The set of distinct writer colors among the given signs."""
    return {s.color for s in signs if s.color is not None}
