"""Map drawing (whiteboard DFS) and map-based navigation.

MAP-DRAWING (paper Section 3.2): "marking the whiteboards, each agent
performs a DFS traversal of G", producing a map of the network *including
the positions and colors of the home-bases*.  The distinctness of agent
colors is what makes this possible: an agent recognises nodes it has
already visited by its **own** colored ``dfs-visited`` signs, unconfused by
the signs of concurrently-exploring agents.

The resulting :class:`LocalMap` uses the agent's private node numbering
(home-base = 0, then DFS discovery order).  Different agents hold different
numberings of isomorphic maps; nothing in the protocols ever communicates a
map-node number to another agent — coordination happens through signs *at*
nodes and through canonical, numbering-invariant computations.

:class:`Navigator` then provides goal-directed movement on a drawn map:
``goto`` (shortest path) and ``tour`` (DFS-tree walk visiting every node
once and returning to the start in ``2(n-1)`` moves).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Generator, List, Optional, Tuple

from ..colors import Color
from ..errors import ProtocolError
from ..graphs.network import AnonymousNetwork, PortLabel
from .actions import Action, Move, NodeView, Read, Write
from .signs import DFS_VISITED, HOMEBASE, Sign

#: Sub-generators yield actions and return a value (via ``yield from``).
ActionGen = Generator[Action, Any, Any]


@dataclass
class LocalMap:
    """An agent's private map of the network.

    Attributes
    ----------
    network:
        The reconstructed port-labeled graph in the agent's own numbering
        (node 0 is the agent's home-base).
    homebases:
        Map node → color of the home-base sign found there (includes the
        agent's own home at node 0).
    """

    network: AnonymousNetwork
    homebases: Dict[int, Color]

    @property
    def home(self) -> int:
        return 0

    def bicoloring(self) -> List[int]:
        """The black/white node coloring induced by home-bases (black=1)."""
        return [
            1 if v in self.homebases else 0 for v in self.network.nodes()
        ]

    def homebase_node_of(self, color: Color) -> int:
        """The map node of the home-base carrying ``color``."""
        for node, c in self.homebases.items():
            if c == color:
                return node
        raise ProtocolError("no home-base with that color on this map")

    def agent_colors(self) -> List[Color]:
        """Colors of all home-bases (i.e. of all agents), in map-node order."""
        return [self.homebases[v] for v in sorted(self.homebases)]


def draw_map(color: Color, start: NodeView) -> ActionGen:
    """MAP-DRAWING: whiteboard DFS from the home-base.  Returns a LocalMap.

    The agent ends back at its home-base.  Moves: each edge is traversed at
    most twice in each direction, so O(|E|) moves and accesses.
    """
    # Per-map-node: presentation-ordered ports and the explored-port table.
    ports_of: Dict[int, Tuple[PortLabel, ...]] = {}
    explored: Dict[int, Dict[PortLabel, Tuple[int, PortLabel]]] = {}
    homebases: Dict[int, Color] = {}
    edge_records: List[Tuple[int, PortLabel, int, PortLabel]] = []

    def register(node: int, view: NodeView) -> None:
        ports_of[node] = view.ports
        explored[node] = {}
        for sign in view.signs:
            if sign.kind == HOMEBASE and sign.color is not None:
                homebases[node] = sign.color

    def my_visit_number(view: NodeView) -> Optional[int]:
        for sign in view.signs:
            if sign.kind == DFS_VISITED and sign.color == color:
                return sign.payload[0]
        return None

    register(0, start)
    if my_visit_number(start) is None:
        # Skipped on a checkpoint restart: the home already carries this
        # agent's own (0,) mark from the crashed attempt.
        yield Write(Sign(kind=DFS_VISITED, color=color, payload=(0,)))
    counter = 0
    current = 0
    # Stack of ports leading back toward the home-base along the DFS tree.
    backtrack: List[PortLabel] = []

    while True:
        next_port = None
        for p in ports_of[current]:
            if p not in explored[current]:
                next_port = p
                break
        if next_port is not None:
            view = yield Move(next_port)
            entry = view.entry_port
            assert entry is not None
            known = my_visit_number(view)
            if known is not None and known not in explored:
                # Checkpoint re-entry: our own mark from a previous
                # (crashed) attempt on a node this run has not registered
                # yet.  The per-(agent, node) port presentation is
                # deterministic, so re-exploration revisits nodes in the
                # original discovery order — adopt the recorded number as
                # a fresh discovery instead of re-writing the sign.
                counter = max(counter, known)
                register(known, view)
                explored[current][next_port] = (known, entry)
                explored[known][entry] = (current, next_port)
                edge_records.append((current, next_port, known, entry))
                backtrack.append(entry)
                current = known
            elif known is not None:
                # Cross / back edge to an already-mapped node: record both
                # edge-ends and retreat.
                explored[current][next_port] = (known, entry)
                explored[known][entry] = (current, next_port)
                edge_records.append((current, next_port, known, entry))
                view = yield Move(entry)
            else:
                counter += 1
                register(counter, view)
                yield Write(
                    Sign(kind=DFS_VISITED, color=color, payload=(counter,))
                )
                explored[current][next_port] = (counter, entry)
                explored[counter][entry] = (current, next_port)
                edge_records.append((current, next_port, counter, entry))
                backtrack.append(entry)
                current = counter
        else:
            if not backtrack:
                break
            port_home = backtrack.pop()
            view = yield Move(port_home)
            parent, _ = explored[current][port_home]
            current = parent

    network = AnonymousNetwork(counter + 1, edge_records, name="local-map")
    return LocalMap(network=network, homebases=homebases)


def draw_map_frontier(color: Color, start: NodeView) -> ActionGen:
    """MAP-DRAWING by nearest-frontier exploration (alternative strategy).

    Same contract as :func:`draw_map` — returns a complete
    :class:`LocalMap`, agent back at its home-base — but explores by
    repeatedly walking (over the partial map) to the *closest* node with an
    unexplored port and probing it, instead of depth-first backtracking.
    Probing an already-known node costs a step back, exactly like DFS; the
    walk to the frontier costs shortest-path moves over the explored part.

    Exists to ablate the exploration strategy (bench A4): the resulting
    maps must be identical up to isomorphism; only the move counts differ.
    """
    ports_of: Dict[int, Tuple[PortLabel, ...]] = {}
    explored: Dict[int, Dict[PortLabel, Tuple[int, PortLabel]]] = {}
    homebases: Dict[int, Color] = {}
    edge_records: List[Tuple[int, PortLabel, int, PortLabel]] = []

    def register(node: int, view: NodeView) -> None:
        ports_of[node] = view.ports
        explored[node] = {}
        for sign in view.signs:
            if sign.kind == HOMEBASE and sign.color is not None:
                homebases[node] = sign.color

    def my_visit_number(view: NodeView) -> Optional[int]:
        for sign in view.signs:
            if sign.kind == DFS_VISITED and sign.color == color:
                return sign.payload[0]
        return None

    def path_to(source: int, target: int) -> List[PortLabel]:
        """Shortest path over the *explored* edges (BFS)."""
        if source == target:
            return []
        prev: Dict[int, Tuple[int, PortLabel]] = {source: (-1, None)}  # type: ignore[dict-item]
        queue = [source]
        head = 0
        while head < len(queue):
            x = queue[head]
            head += 1
            for port, (y, _) in explored[x].items():
                if y not in prev:
                    prev[y] = (x, port)
                    queue.append(y)
        ports: List[PortLabel] = []
        node = target
        while node != source:
            parent, port = prev[node]
            ports.append(port)
            node = parent
        ports.reverse()
        return ports

    def nearest_frontier(source: int) -> Optional[Tuple[int, PortLabel]]:
        """The closest (node, unexplored port), BFS over explored edges."""
        seen = {source}
        queue = [source]
        head = 0
        while head < len(queue):
            x = queue[head]
            head += 1
            for p in ports_of[x]:
                if p not in explored[x]:
                    return (x, p)
            for port, (y, _) in explored[x].items():
                if y not in seen:
                    seen.add(y)
                    queue.append(y)
        return None

    register(0, start)
    if my_visit_number(start) is None:
        # Skipped on a checkpoint restart (see draw_map).
        yield Write(Sign(kind=DFS_VISITED, color=color, payload=(0,)))
    counter = 0
    current = 0

    while True:
        frontier = nearest_frontier(current)
        if frontier is None:
            break
        target, probe = frontier
        for port in path_to(current, target):
            view = yield Move(port)
            current = explored[current][port][0]
        view = yield Move(probe)
        entry = view.entry_port
        assert entry is not None
        known = my_visit_number(view)
        if known is not None and known not in explored:
            # Checkpoint re-entry: adopt our own recorded number as a
            # fresh discovery (see draw_map for the reasoning).
            counter = max(counter, known)
            register(known, view)
            explored[current][probe] = (known, entry)
            explored[known][entry] = (current, probe)
            edge_records.append((current, probe, known, entry))
            current = known
        elif known is not None:
            explored[current][probe] = (known, entry)
            explored[known][entry] = (current, probe)
            edge_records.append((current, probe, known, entry))
            view = yield Move(entry)  # step back; current unchanged
        else:
            counter += 1
            register(counter, view)
            yield Write(Sign(kind=DFS_VISITED, color=color, payload=(counter,)))
            explored[current][probe] = (counter, entry)
            explored[counter][entry] = (current, probe)
            edge_records.append((current, probe, counter, entry))
            current = counter

    for port in path_to(current, 0):
        view = yield Move(port)
        current = explored[current][port][0]

    network = AnonymousNetwork(counter + 1, edge_records, name="local-map")
    return LocalMap(network=network, homebases=homebases)


class Navigator:
    """Goal-directed movement on a drawn map.

    Tracks the agent's current map node; all movement **must** go through
    the navigator once it is in use, or the position tracking desyncs.
    """

    def __init__(self, local_map: LocalMap, position: int = 0):
        self.map = local_map
        self.position = position

    # -- path planning --------------------------------------------------

    def _ports_along_path(self, source: int, target: int) -> List[PortLabel]:
        """Ports of a shortest path source → target on the map."""
        if source == target:
            return []
        net = self.map.network
        prev: Dict[int, Tuple[int, PortLabel]] = {source: (-1, None)}  # type: ignore[dict-item]
        queue = [source]
        head = 0
        while head < len(queue):
            x = queue[head]
            head += 1
            for port in net.ports(x):
                y, _ = net.traverse(x, port)
                if y not in prev:
                    prev[y] = (x, port)
                    if y == target:
                        queue.append(y)
                        head = len(queue)
                        break
                    queue.append(y)
        if target not in prev:
            raise ProtocolError("target unreachable on local map")
        ports: List[PortLabel] = []
        node = target
        while node != source:
            parent, port = prev[node]
            ports.append(port)
            node = parent
        ports.reverse()
        return ports

    # -- movement generators ---------------------------------------------

    def goto(self, target: int) -> ActionGen:
        """Move along a shortest path to map node ``target``.

        Returns the :class:`NodeView` at the target (a fresh ``Read`` if no
        move was needed).
        """
        view = None
        for port in self._ports_along_path(self.position, target):
            view = yield Move(port)
            next_node, _ = self.map.network.traverse(self.position, port)
            self.position = next_node
        if view is None:
            view = yield Read()
        return view

    def tour(
        self,
        visit: Optional[Callable[[int, NodeView], ActionGen]] = None,
        only: Optional[Callable[[int], bool]] = None,
    ) -> ActionGen:
        """DFS-tree walk over the *whole* map, returning to the start.

        At each node's first visit, if ``only`` accepts the node (default:
        all), the ``visit`` sub-generator runs with (map_node, arrival view).
        Returns ``{map_node: visit result}`` for visited-with-callback nodes.
        Cost: ``2(n-1)`` moves plus whatever ``visit`` does.
        """
        net = self.map.network
        start = self.position
        results: Dict[int, Any] = {}

        # Build the DFS tree (parent pointers with ports) on the map.
        tree_children: Dict[int, List[Tuple[int, PortLabel, PortLabel]]] = {
            v: [] for v in net.nodes()
        }
        seen = {start}
        stack = [start]
        order = []
        while stack:
            x = stack.pop()
            order.append(x)
            for port in net.ports(x):
                y, back = net.traverse(x, port)
                if y not in seen:
                    seen.add(y)
                    tree_children[x].append((y, port, back))
                    stack.append(y)

        def walk(node: int, view: NodeView) -> ActionGen:
            if only is None or only(node):
                if visit is not None:
                    results[node] = yield from visit(node, view)
            for (child, port_down, port_up) in tree_children[node]:
                child_view = yield Move(port_down)
                self.position = child
                yield from walk(child, child_view)
                yield Move(port_up)
                self.position = node
            return None

        first_view = yield Read()
        yield from walk(start, first_view)
        return results

    def visit_nodes(
        self,
        targets: List[int],
        visit: Callable[[int, NodeView], ActionGen],
    ) -> ActionGen:
        """Visit a specific list of map nodes (in the given order) via
        shortest paths, running ``visit`` at each.  Returns result dict."""
        results: Dict[int, Any] = {}
        for node in targets:
            view = yield from self.goto(node)
            results[node] = yield from visit(node, view)
        return results
