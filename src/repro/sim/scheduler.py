"""Schedulers: the asynchrony adversary.

The paper's agents are asynchronous — every action takes a finite but
unpredictable time.  In the simulation this becomes: at each step, a
*scheduler* picks which runnable agent executes its next (atomic) action.
Protocol correctness must hold for **every** fair schedule; the test-suite
sweeps the schedulers below.

* :class:`RandomScheduler` — uniformly random fair interleaving (seeded).
* :class:`RoundRobinScheduler` — deterministic cyclic order; on fully
  symmetric configurations this behaves like the synchronous adversary the
  paper uses in its impossibility argument (all agents advance in lockstep,
  preserving symmetry).
* :class:`GreedyAgentScheduler` — runs one agent as long as possible before
  switching (maximally bursty asynchrony).
* :class:`BiasedScheduler` — random but heavily favoring low-index agents
  (starvation-adjacent but still fair).
* :class:`RecordingScheduler` — wraps another scheduler and records its
  choice sequence for deterministic replay
  (:class:`repro.trace.replay.ReplayScheduler`).
"""

from __future__ import annotations

import random
from abc import ABC, abstractmethod
from typing import List, Optional, Sequence


class Scheduler(ABC):
    """Chooses which runnable agent executes the next atomic action."""

    @abstractmethod
    def choose(self, runnable: Sequence[int], step: int) -> int:
        """Return one element of ``runnable`` (non-empty) to execute."""

    def reset(self) -> None:
        """Called once when a simulation starts (stateful schedulers)."""


class SchedulerDecorator(Scheduler):
    """Base class for schedulers that wrap (and delegate to) another one.

    Subclasses override :meth:`choose` to filter or observe the runnable set
    before handing the decision to ``inner``; :meth:`reset` forwarding comes
    for free.  Used by :class:`RecordingScheduler` below and by the fault
    layer's :class:`repro.fault.sched.DelayScheduler`.
    """

    def __init__(self, inner: Scheduler):
        self.inner = inner

    def reset(self) -> None:
        self.inner.reset()

    def choose(self, runnable: Sequence[int], step: int) -> int:
        return self.inner.choose(runnable, step)

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.inner!r})"


class RandomScheduler(Scheduler):
    """Uniform random choice; fair with probability 1."""

    def __init__(self, seed: int = 0):
        self.seed = seed
        self._rng = random.Random(seed)

    def reset(self) -> None:
        self._rng = random.Random(self.seed)

    def choose(self, runnable: Sequence[int], step: int) -> int:
        return runnable[self._rng.randrange(len(runnable))]

    def __repr__(self) -> str:
        return f"RandomScheduler(seed={self.seed})"


class RoundRobinScheduler(Scheduler):
    """Cyclic deterministic order over agent indices."""

    def __init__(self) -> None:
        self._next = 0

    def reset(self) -> None:
        self._next = 0

    def choose(self, runnable: Sequence[int], step: int) -> int:
        ordered = sorted(runnable)
        for agent_id in ordered:
            if agent_id >= self._next:
                self._next = agent_id + 1
                return agent_id
        self._next = ordered[0] + 1
        return ordered[0]

    def __repr__(self) -> str:
        return "RoundRobinScheduler()"


class GreedyAgentScheduler(Scheduler):
    """Keep running the same agent until it blocks or terminates.

    Exercises maximal burstiness: one agent can complete an entire traversal
    while all others are frozen — a legal asynchronous execution.
    """

    def __init__(self) -> None:
        self._current: Optional[int] = None

    def reset(self) -> None:
        self._current = None

    def choose(self, runnable: Sequence[int], step: int) -> int:
        if self._current in runnable:
            return self._current
        self._current = min(runnable)
        return self._current

    def __repr__(self) -> str:
        return "GreedyAgentScheduler()"


class BiasedScheduler(Scheduler):
    """Random choice geometrically biased toward low agent indices.

    Still fair (every runnable agent has positive probability each step) but
    produces highly skewed relative speeds, a good stressor for protocols
    whose correctness must not depend on relative progress rates.
    """

    def __init__(self, seed: int = 0, bias: float = 0.7):
        if not 0.0 < bias < 1.0:
            raise ValueError("bias must be in (0, 1)")
        self.seed = seed
        self.bias = bias
        self._rng = random.Random(seed)

    def reset(self) -> None:
        self._rng = random.Random(self.seed)

    def choose(self, runnable: Sequence[int], step: int) -> int:
        ordered = sorted(runnable)
        for agent_id in ordered[:-1]:
            if self._rng.random() < self.bias:
                return agent_id
        return ordered[-1]

    def __repr__(self) -> str:
        return f"BiasedScheduler(seed={self.seed}, bias={self.bias})"


class RecordingScheduler(SchedulerDecorator):
    """Wrap any scheduler and record its choice sequence.

    The recorded ``choices`` list is a complete schedule: feeding it back
    through :class:`repro.trace.replay.ReplayScheduler` on the same
    instance reproduces the run exactly.  This is the lightweight
    alternative to full event tracing when only the interleaving matters
    (e.g. shrinking an adversarial schedule that triggered a failure).
    """

    def __init__(self, inner: Scheduler):
        super().__init__(inner)
        self.choices: List[int] = []

    def reset(self) -> None:
        super().reset()
        self.choices = []

    def choose(self, runnable: Sequence[int], step: int) -> int:
        idx = self.inner.choose(runnable, step)
        self.choices.append(idx)
        return idx


def default_scheduler_suite(seed: int = 0) -> List[Scheduler]:
    """The scheduler battery the integration tests sweep."""
    return [
        RandomScheduler(seed=seed),
        RandomScheduler(seed=seed + 1),
        RoundRobinScheduler(),
        GreedyAgentScheduler(),
        BiasedScheduler(seed=seed),
    ]
