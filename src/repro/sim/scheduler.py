"""Schedulers: the asynchrony adversary.

The paper's agents are asynchronous — every action takes a finite but
unpredictable time.  In the simulation this becomes: at each step, a
*scheduler* picks which runnable agent executes its next (atomic) action.
Protocol correctness must hold for **every** fair schedule; the test-suite
sweeps the schedulers below.

* :class:`RandomScheduler` — uniformly random fair interleaving (seeded).
* :class:`RoundRobinScheduler` — deterministic cyclic order; on fully
  symmetric configurations this behaves like the synchronous adversary the
  paper uses in its impossibility argument (all agents advance in lockstep,
  preserving symmetry).
* :class:`GreedyAgentScheduler` — runs one agent as long as possible before
  switching (maximally bursty asynchrony).
* :class:`BiasedScheduler` — random but heavily favoring low-index agents
  (starvation-adjacent but still fair).
* :class:`PCTScheduler` — probabilistic concurrency testing (Burckhardt et
  al.): random distinct agent priorities plus ``depth`` priority-change
  points, with an explicit fairness bound so PCT schedules stay inside the
  paper's fair-adversary model.
* :class:`RecordingScheduler` — wraps another scheduler and records its
  choice sequence (and runnable-set sizes) for deterministic replay
  (:class:`repro.trace.replay.ReplayScheduler`).
"""

from __future__ import annotations

import random
from abc import ABC, abstractmethod
from typing import Dict, List, Optional, Sequence


class Scheduler(ABC):
    """Chooses which runnable agent executes the next atomic action."""

    @abstractmethod
    def choose(self, runnable: Sequence[int], step: int) -> int:
        """Return one element of ``runnable`` (non-empty) to execute."""

    def reset(self) -> None:
        """Called once when a simulation starts (stateful schedulers)."""


class SchedulerDecorator(Scheduler):
    """Base class for schedulers that wrap (and delegate to) another one.

    Subclasses override :meth:`choose` to filter or observe the runnable set
    before handing the decision to ``inner``; :meth:`reset` forwarding comes
    for free.  Used by :class:`RecordingScheduler` below and by the fault
    layer's :class:`repro.fault.sched.DelayScheduler`.
    """

    def __init__(self, inner: Scheduler):
        self.inner = inner

    def reset(self) -> None:
        self.inner.reset()

    def choose(self, runnable: Sequence[int], step: int) -> int:
        return self.inner.choose(runnable, step)

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.inner!r})"


class RandomScheduler(Scheduler):
    """Uniform random choice; fair with probability 1."""

    def __init__(self, seed: int = 0):
        self.seed = seed
        self._rng = random.Random(seed)

    def reset(self) -> None:
        self._rng = random.Random(self.seed)

    def choose(self, runnable: Sequence[int], step: int) -> int:
        return runnable[self._rng.randrange(len(runnable))]

    def __repr__(self) -> str:
        return f"RandomScheduler(seed={self.seed})"


class RoundRobinScheduler(Scheduler):
    """Cyclic deterministic order over agent indices."""

    def __init__(self) -> None:
        self._next = 0

    def reset(self) -> None:
        self._next = 0

    def choose(self, runnable: Sequence[int], step: int) -> int:
        ordered = sorted(runnable)
        for agent_id in ordered:
            if agent_id >= self._next:
                self._next = agent_id + 1
                return agent_id
        self._next = ordered[0] + 1
        return ordered[0]

    def __repr__(self) -> str:
        return "RoundRobinScheduler()"


class GreedyAgentScheduler(Scheduler):
    """Keep running the same agent until it blocks or terminates.

    Exercises maximal burstiness: one agent can complete an entire traversal
    while all others are frozen — a legal asynchronous execution.
    ``max_burst`` caps how long one agent may monopolize the schedule while
    others stay runnable, making the scheduler fair even against an agent
    that never blocks (protocol agents block constantly, so the cap is
    effectively invisible on real runs).
    """

    def __init__(self, max_burst: int = 1024) -> None:
        if max_burst < 1:
            raise ValueError("max_burst must be >= 1")
        self.max_burst = max_burst
        self._current: Optional[int] = None
        self._burst = 0

    def reset(self) -> None:
        self._current = None
        self._burst = 0

    def choose(self, runnable: Sequence[int], step: int) -> int:
        if self._current in runnable and (
            self._burst < self.max_burst or len(runnable) == 1
        ):
            self._burst += 1
            return self._current
        if self._current in runnable:
            # Burst exhausted: rotate to the next runnable agent.
            ordered = sorted(runnable)
            pos = ordered.index(self._current)
            self._current = ordered[(pos + 1) % len(ordered)]
        else:
            self._current = min(runnable)
        self._burst = 1
        return self._current

    def __repr__(self) -> str:
        return f"GreedyAgentScheduler(max_burst={self.max_burst})"


class BiasedScheduler(Scheduler):
    """Random choice geometrically biased toward low agent indices.

    Still fair (every runnable agent has positive probability each step) but
    produces highly skewed relative speeds, a good stressor for protocols
    whose correctness must not depend on relative progress rates.
    """

    def __init__(self, seed: int = 0, bias: float = 0.7):
        if not 0.0 < bias < 1.0:
            raise ValueError("bias must be in (0, 1)")
        self.seed = seed
        self.bias = bias
        self._rng = random.Random(seed)

    def reset(self) -> None:
        self._rng = random.Random(self.seed)

    def choose(self, runnable: Sequence[int], step: int) -> int:
        ordered = sorted(runnable)
        for agent_id in ordered[:-1]:
            if self._rng.random() < self.bias:
                return agent_id
        return ordered[-1]

    def __repr__(self) -> str:
        return f"BiasedScheduler(seed={self.seed}, bias={self.bias})"


class PCTScheduler(Scheduler):
    """Probabilistic concurrency testing with a fairness bound.

    Classic PCT (Burckhardt, Kothari, Musuvathi, Nagarakatte, ASPLOS'10):
    every agent draws a random distinct priority; at ``depth - 1`` random
    *priority-change points* the currently top-priority runnable agent is
    demoted below everyone; otherwise the highest-priority runnable agent
    always runs.  For a bug of depth ``d`` the schedule hits it with
    probability ``>= 1/(n * k^(d-1))`` — far better than uniform random for
    ordering bugs — while producing exactly the bursty, priority-inverted
    interleavings a uniform scheduler almost never emits.

    Plain PCT is *unfair*: a low-priority agent that never gets demoted-past
    can starve forever, which would step outside the paper's fair-adversary
    model and manufacture livelocks the protocol is not required to survive.
    ``fairness_bound`` restores fairness: an agent passed over while
    runnable for ``fairness_bound`` consecutive steps is force-scheduled
    (longest-starved first, lowest index on ties), so every always-runnable
    agent runs within ``fairness_bound + n`` steps.
    """

    def __init__(
        self,
        seed: int = 0,
        depth: int = 3,
        expected_length: int = 4096,
        fairness_bound: int = 512,
    ):
        if depth < 1:
            raise ValueError("depth must be >= 1")
        if expected_length < 1:
            raise ValueError("expected_length must be >= 1")
        if fairness_bound < 1:
            raise ValueError("fairness_bound must be >= 1")
        self.seed = seed
        self.depth = depth
        self.expected_length = expected_length
        self.fairness_bound = fairness_bound
        self.reset()

    def reset(self) -> None:
        # String seeding hashes via sha512 — stable across processes
        # (tuple seeding would go through PYTHONHASHSEED-dependent hash()).
        self._rng = random.Random(f"pct:{self.seed}:{self.depth}")
        self._priorities: Dict[int, float] = {}
        self._floor = 0.0
        self._change_points = sorted(
            self._rng.randrange(1, self.expected_length)
            for _ in range(self.depth - 1)
        )
        self._next_change = 0
        self._passed_over: Dict[int, int] = {}

    def _priority(self, agent: int) -> float:
        if agent not in self._priorities:
            # Lazy assignment: agents are discovered as they become
            # runnable; initial priorities live in (0, 1), demotions below.
            self._priorities[agent] = self._rng.random()
        return self._priorities[agent]

    def _demote(self, agent: int) -> None:
        self._floor -= 1.0
        self._priorities[agent] = self._floor

    def choose(self, runnable: Sequence[int], step: int) -> int:
        by_priority = max(runnable, key=lambda i: (self._priority(i), -i))
        while (
            self._next_change < len(self._change_points)
            and step >= self._change_points[self._next_change]
        ):
            self._next_change += 1
            self._demote(by_priority)
            by_priority = max(runnable, key=lambda i: (self._priority(i), -i))
        starved = [
            i
            for i in runnable
            if self._passed_over.get(i, 0) >= self.fairness_bound
        ]
        if starved:
            choice = max(starved, key=lambda i: (self._passed_over[i], -i))
        else:
            choice = by_priority
        for i in runnable:
            self._passed_over[i] = (
                0 if i == choice else self._passed_over.get(i, 0) + 1
            )
        return choice

    def __repr__(self) -> str:
        return (
            f"PCTScheduler(seed={self.seed}, depth={self.depth}, "
            f"fairness_bound={self.fairness_bound})"
        )


class RecordingScheduler(SchedulerDecorator):
    """Wrap any scheduler and record its choice sequence.

    The recorded ``choices`` list is a complete schedule: feeding it back
    through :class:`repro.trace.replay.ReplayScheduler` on the same
    instance reproduces the run exactly.  This is the lightweight
    alternative to full event tracing when only the interleaving matters
    (e.g. shrinking an adversarial schedule that triggered a failure).

    ``runnable_sizes`` records ``len(runnable)`` per step alongside the
    choices: replays can then self-check divergence cheaply — a replayed
    step whose runnable set has a different size has already departed from
    the recording even if the recorded agent happens to be runnable.
    """

    def __init__(self, inner: Scheduler):
        super().__init__(inner)
        self.choices: List[int] = []
        self.runnable_sizes: List[int] = []

    def reset(self) -> None:
        super().reset()
        self.choices = []
        self.runnable_sizes = []

    def choose(self, runnable: Sequence[int], step: int) -> int:
        idx = self.inner.choose(runnable, step)
        self.choices.append(idx)
        self.runnable_sizes.append(len(runnable))
        return idx


def default_scheduler_suite(seed: int = 0) -> List[Scheduler]:
    """The scheduler battery the integration tests sweep."""
    return [
        RandomScheduler(seed=seed),
        RandomScheduler(seed=seed + 1),
        RoundRobinScheduler(),
        GreedyAgentScheduler(),
        BiasedScheduler(seed=seed),
        PCTScheduler(seed=seed),
    ]
