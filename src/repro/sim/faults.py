"""Fault injection: crash wrappers for robustness testing.

The paper's model has no crash faults — protocol correctness assumes every
agent keeps taking steps.  These wrappers let the test-suite verify the
*diagnostic* behavior of the runtime when that assumption breaks: a crashed
agent should never cause silent wrong answers, only a detectable stall
(:class:`~repro.errors.DeadlockError` naming the blocked waiters, or a
``deadlocked`` result under ``deadlock_ok``).
"""

from __future__ import annotations

from typing import Any, Optional

from .actions import NodeView, WaitUntil
from .agent import Agent, ProtocolGen


class CrashAfter(Agent):
    """Run the wrapped agent's protocol, then crash after N actions.

    A "crash" is modeled as blocking forever (the agent stops taking
    steps but does not terminate); that is the observable behavior of a
    failed mobile agent in the whiteboard model.
    """

    def __init__(self, inner: Agent, actions: int):
        super().__init__(inner.color, rng=inner.rng)
        self.inner = inner
        self.crash_at = actions

    def protocol(self, start: NodeView) -> ProtocolGen:
        gen = self.inner.protocol(start)
        taken = 0
        send_value: Any = None
        while True:
            try:
                action = gen.send(send_value)
            except StopIteration as stop:
                return stop.value
            if taken >= self.crash_at:
                yield WaitUntil(
                    lambda view: False,
                    reason=f"agent crashed after {self.crash_at} actions",
                )
                raise AssertionError("unreachable: crash wait satisfied")
            taken += 1
            send_value = yield action


class CrashOnKind(Agent):
    """Crash the wrapped agent the first time it performs a given action
    type (e.g. its first ``TryAcquire``) — targets protocol-critical
    moments rather than a step count."""

    def __init__(self, inner: Agent, action_type: type):
        super().__init__(inner.color, rng=inner.rng)
        self.inner = inner
        self.action_type = action_type

    def protocol(self, start: NodeView) -> ProtocolGen:
        gen = self.inner.protocol(start)
        send_value: Any = None
        while True:
            try:
                action = gen.send(send_value)
            except StopIteration as stop:
                return stop.value
            if isinstance(action, self.action_type):
                yield WaitUntil(
                    lambda view: False,
                    reason=f"agent crashed at first {self.action_type.__name__}",
                )
                raise AssertionError("unreachable")
            send_value = yield action
