"""Deprecated crash wrappers — thin aliases into :mod:`repro.fault`.

This module predates the fault subsystem and is kept only for backward
compatibility: :class:`CrashAfter` and :class:`CrashOnKind` now delegate to
:class:`repro.fault.agents.FaultedAgent`, which also fixes their original
spurious-wake bug (the old implementations raised an ``AssertionError``
if a board change ever satisfied the dead wait's predicate; the new
wrapper re-yields the dead wait forever).

New code should use :class:`repro.fault.plan.FaultPlan` (declarative,
seedable, campaign-sweepable) or :class:`repro.fault.agents.FaultedAgent`
directly.
"""

from __future__ import annotations

from .actions import NodeView
from .agent import Agent, ProtocolGen


class CrashAfter(Agent):
    """Deprecated alias: crash the wrapped agent after N actions.

    Use :class:`repro.fault.plan.CrashAtStep` in a fault plan, or
    :class:`repro.fault.agents.FaultedAgent` directly.
    """

    def __init__(self, inner: Agent, actions: int):
        super().__init__(inner.color, rng=inner.rng)
        # Deferred import: repro.sim must be importable before repro.fault
        # (the fault layer builds on the sim substrate, not vice versa).
        from ..fault.agents import FaultedAgent

        self.inner = inner
        self.crash_at = actions
        self._impl = FaultedAgent(inner, crash_after=actions)

    def protocol(self, start: NodeView) -> ProtocolGen:
        return self._impl.protocol(start)


class CrashOnKind(Agent):
    """Deprecated alias: crash at the first action of a given type.

    Use :class:`repro.fault.plan.CrashOnAction` in a fault plan, or
    :class:`repro.fault.agents.FaultedAgent` directly.
    """

    def __init__(self, inner: Agent, action_type: type):
        super().__init__(inner.color, rng=inner.rng)
        from ..fault.agents import FaultedAgent

        self.inner = inner
        self.action_type = action_type
        self._impl = FaultedAgent(inner, crash_on=action_type)

    def protocol(self, start: NodeView) -> ProtocolGen:
        return self._impl.protocol(start)
