"""The asynchronous mobile-agent runtime.

Executes a set of :class:`~repro.sim.agent.Agent` protocols on an
:class:`~repro.graphs.network.AnonymousNetwork` under a
:class:`~repro.sim.scheduler.Scheduler`.  Model fidelity points:

* **One atomic action per step** — whiteboard accesses are mutually
  exclusive; between any two actions of one agent, arbitrarily many actions
  of others may occur (asynchrony).
* **Home-base marks** — before the run, each home-base whiteboard receives a
  ``homebase`` sign in its agent's color (paper Section 1.2).
* **Wake-up** — agents start asleep except an ``initially_awake`` subset
  (default: all).  A sleeping agent wakes when another agent *arrives at*
  its home-base (paper: a traversing agent "wakes up this agent").
* **No node identities** — agents receive only :class:`NodeView` values;
  the port tuple is presented in a per-(agent, node) shuffled order so that
  construction order cannot act as a covert shared total order.
* **Deadlock & budget** — a run where no agent can ever progress again
  raises :class:`~repro.errors.DeadlockError` (or returns a result flagged
  ``deadlocked=True`` when ``deadlock_ok`` is set, for impossibility-side
  experiments); runs exceeding ``max_steps`` raise
  :class:`~repro.errors.StepBudgetExceeded`.

Metrics: per-agent move counts and whiteboard-access counts — the two
quantities Theorem 3.1 bounds by ``O(r·|E|)``.

Observability: pass a :class:`~repro.trace.sinks.TraceSink` as ``trace`` to
record the run as a structured event stream (one primary event per
scheduler step, see :mod:`repro.trace.events`).  The default (no sink)
costs a single attribute test per emit site; recorded runs replay
bit-for-bit through :class:`~repro.trace.replay.ReplayScheduler`.

Metrics registry: pass a :class:`~repro.obs.registry.MetricsRegistry` as
``metrics`` (default: the process-wide registry, which ships disabled) and
the runtime feeds per-agent move/access counters, scheduler-step timings
and the live Theorem 3.1 budget gauges (:mod:`repro.obs.budget`).  A
disabled registry is normalized to ``None`` at construction, so the main
loop pays exactly one ``is not None`` test per emit site — the same
zero-cost contract as the trace sink.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass, field
from enum import Enum
from typing import Any, Dict, List, Optional, Sequence, Set, Tuple

from ..obs.budget import BudgetTracker
from ..obs.registry import MetricsRegistry, get_registry

from ..colors import Color
from ..errors import (
    DeadlockError,
    PlacementError,
    ProtocolError,
    SimulationError,
    StallDetected,
    StepBudgetExceeded,
)
from ..graphs.network import AnonymousNetwork, PortLabel
from .actions import (
    Action,
    Erase,
    Log,
    Move,
    NodeView,
    Read,
    TryAcquire,
    WaitUntil,
    Write,
)
from .agent import Agent
from .scheduler import RandomScheduler, Scheduler
from .signs import HOMEBASE, Sign
from .whiteboard import Whiteboard


class AgentState(Enum):
    """Lifecycle of an agent inside the runtime."""

    ASLEEP = "asleep"
    READY = "ready"
    BLOCKED = "blocked"
    DONE = "done"


@dataclass
class AgentRecord:
    """Runtime bookkeeping for one agent."""

    agent: Agent
    home: int
    node: int
    state: AgentState = AgentState.ASLEEP
    gen: Any = None
    pending: Any = None  # value to send into the generator next step
    blocked_on: Optional[WaitUntil] = None
    result: Any = None
    moves: int = 0
    accesses: int = 0
    # Watchdog bookkeeping: step at which the current blocked episode began
    # (-1 when not blocked), whether that episode has already been flagged as
    # a stall, and how many times this agent was restarted from its home-base
    # checkpoint.  Move/access counters above keep accumulating across
    # restarts: recovered work still counts against the Theorem 3.1 budget.
    blocked_at: int = -1
    stall_flagged: bool = False
    restarts: int = 0


@dataclass
class SimulationResult:
    """Outcome of a completed run."""

    results: List[Any]
    moves: List[int]
    accesses: List[int]
    steps: int
    positions: List[int] = field(default_factory=list)
    deadlocked: bool = False
    blocked_reasons: List[str] = field(default_factory=list)
    trace: List[Tuple[int, str, Tuple[int, ...]]] = field(default_factory=list)
    #: Per-agent watchdog restart counts (all zero without a watchdog).
    restarts: List[int] = field(default_factory=list)
    #: ``(step, agent, blocked_for)`` stall classifications from the watchdog.
    stall_events: List[Tuple[int, int, int]] = field(default_factory=list)

    @property
    def total_moves(self) -> int:
        return sum(self.moves)

    @property
    def total_accesses(self) -> int:
        return sum(self.accesses)


class Simulation:
    """One run of a set of agents on a network.

    Parameters
    ----------
    network:
        The anonymous network (agents never see it directly).
    placements:
        ``(agent, home_node)`` pairs; home nodes must be pairwise distinct
        (the paper's simplifying assumption) and agent colors distinct.
    scheduler:
        Interleaving policy; default seeded :class:`RandomScheduler`.
    initially_awake:
        Indices (into ``placements``) of spontaneously waking agents;
        default all.  Must be non-empty.
    max_steps:
        Step budget; ``None`` picks a generous bound scaled to the instance.
    deadlock_ok:
        If True, a deadlock ends the run with ``deadlocked=True`` instead of
        raising — used by impossibility-side experiments where symmetric
        executions legitimately get stuck.
    collect_trace:
        Record :class:`~repro.sim.actions.Log` events.
    port_shuffle_seed:
        Seed of the per-(agent, node) port-presentation shuffle.
    trace:
        Optional :class:`~repro.trace.sinks.TraceSink` receiving the run
        header and every runtime event (wake/move/read/write/erase/acquire/
        wait/block/unblock/log/done).  ``None`` (default) disables tracing
        at zero cost.
    metrics:
        Optional :class:`~repro.obs.registry.MetricsRegistry`.  ``None``
        (default) falls back to the process-wide registry, which ships
        disabled; a disabled registry costs nothing.  When enabled, the
        run feeds ``agent_moves_total`` / ``agent_accesses_total``
        counters, ``scheduler_steps_total`` and ``scheduler_step_seconds``,
        and arms a live Theorem 3.1 :class:`~repro.obs.budget.BudgetTracker`
        (exposed as ``self.budget``).
    fault:
        Optional fault plan (duck-typed: anything with an ``install(sim)``
        method, canonically :class:`repro.fault.plan.FaultPlan`).  Installed
        at construction time — it may wrap agents, replace whiteboards and
        decorate the scheduler.  The returned handle is kept as
        ``self.fault_state`` (injection journal + corruption audit).
    watchdog:
        Optional stall supervisor (duck-typed, canonically
        :class:`repro.fault.watchdog.Watchdog`).  When present, agents
        blocked longer than its ``timeout`` are flagged as stalls, restart
        budget permitting they are restarted from their home-base
        whiteboard checkpoint (fresh ``protocol()`` generator, counters
        preserved), and a run that still cannot progress raises
        :class:`~repro.errors.StallDetected` (a ``DeadlockError`` subclass)
        instead of a bare ``DeadlockError`` — unless ``deadlock_ok`` is
        set, which keeps returning a ``deadlocked=True`` result.
    """

    def __init__(
        self,
        network: AnonymousNetwork,
        placements: Sequence[Tuple[Agent, int]],
        scheduler: Optional[Scheduler] = None,
        initially_awake: Optional[Sequence[int]] = None,
        max_steps: Optional[int] = None,
        deadlock_ok: bool = False,
        collect_trace: bool = False,
        port_shuffle_seed: int = 0,
        trace: Optional[Any] = None,
        metrics: Optional[MetricsRegistry] = None,
        fault: Optional[Any] = None,
        watchdog: Optional[Any] = None,
    ):
        if not placements:
            raise PlacementError("at least one agent is required")
        homes = [home for (_, home) in placements]
        if len(set(homes)) != len(homes):
            raise PlacementError("home-bases must be pairwise distinct")
        colors = [agent.color for (agent, _) in placements]
        if len(set(colors)) != len(colors):
            raise PlacementError("agent colors must be pairwise distinct")
        for home in homes:
            if not 0 <= home < network.num_nodes:
                raise PlacementError(f"home node {home} out of range")

        self.network = network
        self.scheduler = scheduler or RandomScheduler(seed=0)
        self.records: List[AgentRecord] = [
            AgentRecord(agent=a, home=h, node=h) for (a, h) in placements
        ]
        self.boards: List[Whiteboard] = [
            Whiteboard() for _ in range(network.num_nodes)
        ]
        self._blocked_by_node: Dict[int, Set[int]] = {}
        self._sleepers_by_node: Dict[int, int] = {
            home: idx for idx, (_, home) in enumerate(placements)
        }
        if initially_awake is None:
            self._initially_awake = list(range(len(placements)))
        else:
            self._initially_awake = list(initially_awake)
        if not self._initially_awake:
            raise PlacementError("at least one agent must be initially awake")
        if max_steps is None:
            r = len(placements)
            m = network.num_edges
            n = network.num_nodes
            max_steps = 2_000 + 600 * r * r * (m + n)
        self.max_steps = max_steps
        self.deadlock_ok = deadlock_ok
        self.collect_trace = collect_trace
        self._trace: List[Tuple[int, str, Tuple[int, ...]]] = []
        self._port_seed = port_shuffle_seed
        # A sink may declare itself disabled (NullSink does): the runtime
        # then skips event construction entirely, so "tracing wired but
        # not wanted" costs the same as no tracing at all.
        if trace is not None and not getattr(trace, "enabled", True):
            trace = None
        self._sink = trace
        if trace is not None:
            # Deferred import: repro.trace depends on the core runners,
            # which depend on this module — binding it at construction time
            # (never at module import time) keeps the layers acyclic.
            from ..trace import events as trace_events

            self._tev = trace_events
        else:
            self._tev = None
        # Fault installation happens before metrics arming so that metric
        # label pre-binding sees the (color-preserving) wrapped agents, and
        # before the first run so replayed runs re-install identically.
        self.watchdog = watchdog
        self._restart_pending: Dict[int, int] = {}  # agent idx -> wake-at step
        #: Callables ``hook(sim, step)`` invoked once per scheduler
        #: iteration, before the step executes.  Fault plans register churn
        #: drivers here; cheat detectors register their audit sweep.  Hooks
        #: must exist before fault installation (install appends to it).
        self.step_hooks: List[Any] = []
        self.fault_state = fault.install(self) if fault is not None else None
        # Same normalization as the trace sink: a disabled registry costs
        # the hot loop exactly one ``is not None`` test per emit site.
        if metrics is None:
            metrics = get_registry()
        self._metrics: Optional[MetricsRegistry] = (
            metrics if metrics.enabled else None
        )
        self.budget: Optional[BudgetTracker] = None
        if self._metrics is not None:
            self._arm_metrics()
        self._step = -1  # PRE_RUN_STEP until the scheduler's first choice

    def _arm_metrics(self) -> None:
        """Create the counters, gauges and budget gauges for this run.

        Per-agent counters are pre-bound (:meth:`Counter.labels`) so the
        per-move cost when metrics are enabled is one dict update.
        """
        reg = self._metrics
        assert reg is not None
        self.budget = BudgetTracker(
            num_agents=len(self.records),
            num_edges=self.network.num_edges,
            registry=reg,
        )
        moves = reg.counter(
            "agent_moves_total", help="edge traversals, by agent color"
        )
        accesses = reg.counter(
            "agent_accesses_total", help="whiteboard accesses, by agent color"
        )
        labels = [
            rec.agent.color.name or f"agent{i}"
            for i, rec in enumerate(self.records)
        ]
        self._m_moves = [moves.labels(agent=lb) for lb in labels]
        self._m_accesses = [accesses.labels(agent=lb) for lb in labels]
        self._m_steps = reg.counter(
            "scheduler_steps_total", help="scheduler steps executed"
        )
        self._m_step_hist = reg.histogram(
            "scheduler_step_seconds",
            help="wall-time per scheduler step, by the acting agent's phase",
        )
        stalls = reg.counter(
            "watchdog_stalls_total",
            help="blocked episodes classified as stalls, by agent color",
        )
        restarts = reg.counter(
            "watchdog_restarts_total",
            help="checkpoint restarts performed, by agent color",
        )
        self._m_stalls = [stalls.labels(agent=lb) for lb in labels]
        self._m_restarts = [restarts.labels(agent=lb) for lb in labels]

    def _metric_access(self, idx: int) -> None:
        """One whiteboard access happened (callers guard on ``_metrics``)."""
        self._m_accesses[idx].inc()
        assert self.budget is not None
        self.budget.record_access()

    def _record_step(self, idx: int, started: float) -> None:
        """Account one scheduler step (callers guard on ``_metrics``).

        The step's wall time is attributed to the acting agent's current
        protocol phase (read off its :class:`~repro.obs.spans.PhaseClock`,
        if it keeps one), which is what lets ``python -m repro.obs report``
        break scheduler time down per phase.
        """
        self._m_steps.inc()
        clock = getattr(self.records[idx].agent, "obs_clock", None)
        phase = getattr(clock, "phase", None) or "-"
        self._m_step_hist.observe(
            time.perf_counter() - started, phase=phase
        )

    # ------------------------------------------------------------------
    # Views
    # ------------------------------------------------------------------

    def _port_order(self, agent_idx: int, node: int) -> Tuple[PortLabel, ...]:
        ports = list(self.network.ports(node))
        rng = random.Random(f"{self._port_seed}:{agent_idx}:{node}")
        rng.shuffle(ports)
        return tuple(ports)

    def _view(
        self, agent_idx: int, node: int, entry_port: Optional[PortLabel] = None
    ) -> NodeView:
        return NodeView(
            degree=self.network.degree(node),
            ports=self._port_order(agent_idx, node),
            signs=self.boards[node].snapshot(),
            entry_port=entry_port,
        )

    # ------------------------------------------------------------------
    # Trace emission
    # ------------------------------------------------------------------

    def _emit(self, kind: str, idx: int, node: int, **fields: Any) -> None:
        """Emit one trace event (callers guard on ``self._sink``)."""
        self._sink.emit(
            self._tev.TraceEvent(
                step=self._step,
                kind=kind,
                agent=idx,
                node=node,
                color=self.records[idx].agent.color.name,
                **fields,
            )
        )

    def emit_system(
        self, kind: str, node: int, step: Optional[int] = None, **fields: Any
    ) -> None:
        """Emit a system-level trace event (churn, detection).

        System events carry agent index ``-1`` and no color: they record
        something the *environment* did, not any agent's action.  Safe to
        call with no sink attached (no-op).
        """
        if self._sink is None:
            return
        self._sink.emit(
            self._tev.TraceEvent(
                step=self._step if step is None else step,
                kind=kind,
                agent=-1,
                node=node,
                **fields,
            )
        )

    def _emit_header(self) -> None:
        self._sink.emit_header(
            self._tev.TraceHeader(
                num_nodes=self.network.num_nodes,
                num_edges=self.network.num_edges,
                num_agents=len(self.records),
                homes=tuple(rec.home for rec in self.records),
                colors=tuple(
                    rec.agent.color.name or "" for rec in self.records
                ),
                scheduler=repr(self.scheduler),
                max_steps=self.max_steps,
                port_shuffle_seed=self._port_seed,
            )
        )

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def _wake(self, idx: int) -> None:
        rec = self.records[idx]
        if rec.state is not AgentState.ASLEEP:
            return
        if self._metrics is not None:
            # Hand phase-instrumented protocols (ElectAgent's PhaseClock)
            # this run's registry; they fall back to the global default.
            rec.agent.obs_registry = self._metrics
        rec.gen = rec.agent.protocol(self._view(idx, rec.node))
        rec.pending = None
        rec.state = AgentState.READY
        self._sleepers_by_node.pop(rec.node, None)
        if self._sink is not None:
            self._emit(self._tev.WAKE, idx, rec.node)

    def _board_changed(self, node: int) -> None:
        """Re-check WaitUntil predicates of agents blocked at ``node``."""
        for idx in list(self._blocked_by_node.get(node, ())):
            rec = self.records[idx]
            assert rec.blocked_on is not None
            view = self._view(idx, rec.node)
            if rec.blocked_on.predicate(view):
                rec.pending = view
                rec.blocked_on = None
                rec.state = AgentState.READY
                rec.blocked_at = -1
                rec.stall_flagged = False
                # A legitimately unblocked agent no longer needs recovery.
                self._restart_pending.pop(idx, None)
                self._blocked_by_node[node].discard(idx)
                if self._sink is not None:
                    self._emit(self._tev.UNBLOCK, idx, rec.node)

    def _finish(self, idx: int, result: Any) -> None:
        rec = self.records[idx]
        rec.state = AgentState.DONE
        rec.result = result
        rec.gen = None
        if self._metrics is not None:
            clock = getattr(rec.agent, "obs_clock", None)
            if clock is not None:
                clock.close()
        if self._sink is not None:
            self._emit(
                self._tev.DONE,
                idx,
                rec.node,
                result=int(result is not None),
            )

    # ------------------------------------------------------------------
    # Action dispatch
    # ------------------------------------------------------------------

    def _execute(self, idx: int, action: Action) -> Any:
        rec = self.records[idx]
        board = self.boards[rec.node]
        color = rec.agent.color
        if isinstance(action, Move):
            if action.port not in self.network.ports(rec.node):
                raise ProtocolError(
                    f"agent {idx} used missing port {action.port!r}"
                )
            origin = rec.node
            new_node, entry = self.network.traverse(rec.node, action.port)
            rec.node = new_node
            rec.moves += 1
            if self._metrics is not None:
                self._m_moves[idx].inc()
                self.budget.record_move()
            if self._sink is not None:
                self._emit(
                    self._tev.MOVE,
                    idx,
                    origin,
                    port=action.port,
                    dest=new_node,
                    entry=entry,
                )
            sleeper = self._sleepers_by_node.get(new_node)
            if sleeper is not None and sleeper != idx:
                self._wake(sleeper)
            return self._view(idx, new_node, entry_port=entry)
        if isinstance(action, Read):
            rec.accesses += 1
            if self._metrics is not None:
                self._metric_access(idx)
            if self._sink is not None:
                self._emit(self._tev.READ, idx, rec.node)
            return self._view(idx, rec.node)
        if isinstance(action, Write):
            sign = action.sign
            forged = False
            if sign.color is None:
                sign = Sign(kind=sign.kind, color=color, payload=sign.payload)
            elif sign.color != color:
                # The own-color write rule is the model's integrity floor.
                # Only agents explicitly flagged as Byzantine (the fault
                # layer's LyingAgent wrapper) may cross it, and every such
                # write is branded with a FORGE event and true provenance.
                if not getattr(rec.agent, "byzantine", False):
                    raise ProtocolError(
                        f"agent {idx} attempted to forge a sign of another color"
                    )
                forged = True
            rec.accesses += 1
            if self._metrics is not None:
                self._metric_access(idx)
            if forged and self._sink is not None:
                self._emit(
                    self._tev.FORGE,
                    idx,
                    rec.node,
                    sign=sign.kind,
                    payload=sign.payload,
                    detail=f"forged sign of color {sign.color.name or '?'}",
                )
            stored = board.append(sign, writer=color)
            if self._sink is not None:
                # ``result`` records whether the write actually landed —
                # always 1 on a healthy board, 0 when a fault-injecting
                # board dropped it (the agent is not told either way).
                self._emit(
                    self._tev.WRITE,
                    idx,
                    rec.node,
                    sign=sign.kind,
                    payload=sign.payload,
                    result=int(stored is not None),
                )
            self._board_changed(rec.node)
            return None
        if isinstance(action, Erase):
            rec.accesses += 1
            if self._metrics is not None:
                self._metric_access(idx)
            removed = board.erase_own(color, action.kind, action.payload)
            if self._sink is not None:
                self._emit(
                    self._tev.ERASE,
                    idx,
                    rec.node,
                    sign=action.kind,
                    payload=action.payload,
                    result=removed,
                )
            if removed:
                self._board_changed(rec.node)
            return removed
        if isinstance(action, TryAcquire):
            rec.accesses += 1
            if self._metrics is not None:
                self._metric_access(idx)
            ok = board.try_acquire(color, action.kind, action.payload, action.capacity)
            if self._sink is not None:
                self._emit(
                    self._tev.ACQUIRE,
                    idx,
                    rec.node,
                    sign=action.kind,
                    payload=tuple(action.payload),
                    result=int(ok),
                )
            if ok:
                self._board_changed(rec.node)
            return ok
        if isinstance(action, WaitUntil):
            rec.accesses += 1
            if self._metrics is not None:
                self._metric_access(idx)
            view = self._view(idx, rec.node)
            if action.predicate(view):
                if self._sink is not None:
                    self._emit(
                        self._tev.WAIT, idx, rec.node, detail=action.reason
                    )
                return view
            rec.blocked_on = action
            rec.state = AgentState.BLOCKED
            rec.blocked_at = self._step
            rec.stall_flagged = False
            self._blocked_by_node.setdefault(rec.node, set()).add(idx)
            if self._sink is not None:
                self._emit(
                    self._tev.BLOCK, idx, rec.node, detail=action.reason
                )
            return None  # no value sent until unblocked
        if isinstance(action, Log):
            if self.collect_trace:
                self._trace.append((idx, action.event, tuple(action.data)))
            if self._sink is not None:
                self._emit(
                    self._tev.LOG,
                    idx,
                    rec.node,
                    detail=action.event,
                    payload=tuple(action.data),
                )
            return None
        raise ProtocolError(f"unknown action {action!r}")

    # ------------------------------------------------------------------
    # Main loop
    # ------------------------------------------------------------------

    def run(self) -> SimulationResult:
        """Execute until all agents are done (or deadlock / budget)."""
        self.scheduler.reset()
        if self.watchdog is not None:
            self.watchdog.reset()
            self._restart_pending.clear()
        if self._sink is not None:
            self._emit_header()
        # Mark every home-base with a sign of its agent's color (paper
        # Section 1.2: "The home-base of a ∈ A is marked with a sign of
        # color c(a)").
        for rec in self.records:
            self.boards[rec.home].append(
                Sign(kind=HOMEBASE, color=rec.agent.color),
                writer=rec.agent.color,
            )
        self._step = -1
        for idx in self._initially_awake:
            self._wake(idx)

        steps = 0
        try:
            while True:
                if self.watchdog is not None:
                    self._service_watchdog(steps)
                if self.step_hooks:
                    # Environment interventions between agent steps: edge
                    # churn, periodic cheat-detection sweeps.  Hooks may
                    # raise (abort-on-detection) — that propagates as a
                    # loud, classifiable failure.
                    for hook in self.step_hooks:
                        hook(self, steps)
                runnable = [
                    i
                    for i, rec in enumerate(self.records)
                    if rec.state is AgentState.READY
                ]
                if not runnable:
                    if all(
                        rec.state is AgentState.DONE for rec in self.records
                    ):
                        break
                    if self.watchdog is not None and self._handle_stall(steps):
                        continue
                    reasons = self._stall_reasons()
                    if self.deadlock_ok:
                        return self._result(
                            steps, deadlocked=True, reasons=reasons
                        )
                    if self.watchdog is not None:
                        raise StallDetected(
                            "watchdog: stall with recovery exhausted "
                            f"(restarts={self.watchdog.total_restarts}); "
                            "stalled agents: " + "; ".join(reasons)
                        )
                    raise DeadlockError(
                        "no agent can make progress; stalled agents: "
                        + "; ".join(reasons)
                    )
                if steps >= self.max_steps:
                    raise StepBudgetExceeded(
                        f"simulation exceeded max_steps={self.max_steps}"
                    )
                idx = self.scheduler.choose(runnable, steps)
                if idx not in runnable:
                    raise SimulationError(
                        f"step {steps}: scheduler {self.scheduler!r} chose "
                        f"non-runnable agent {idx} (runnable: {runnable})"
                    )
                self._step = steps
                rec = self.records[idx]
                step_start = (
                    time.perf_counter() if self._metrics is not None else 0.0
                )
                try:
                    action = rec.gen.send(rec.pending)
                except StopIteration as stop:
                    self._finish(idx, stop.value)
                    if self._metrics is not None:
                        self._record_step(idx, step_start)
                    steps += 1
                    continue
                rec.pending = self._execute(idx, action)
                if rec.state is AgentState.BLOCKED:
                    rec.pending = None
                if self._metrics is not None:
                    self._record_step(idx, step_start)
                steps += 1
        finally:
            if self._sink is not None:
                self._sink.flush()
        return self._result(steps)

    # ------------------------------------------------------------------
    # Watchdog: stall classification and checkpoint restart
    # ------------------------------------------------------------------

    def _service_watchdog(self, steps: int) -> None:
        """Fire due restarts and flag freshly over-timeout blocked agents.

        Runs once per scheduler iteration (only when a watchdog is armed).
        A stall is flagged at most once per blocked episode
        (``stall_flagged`` resets on unblock), which is what makes the
        "timeout fires exactly once per stalled agent" contract hold.

        Flagging is pure *classification*: while other agents still make
        progress a long wait may yet be satisfied, so restarts are decided
        only on the no-runnable path (:meth:`_handle_stall`), where the
        victim heuristic targets the longest-blocked agent — the actual
        crash — instead of every healthy waiter queued up behind it.
        """
        wd = self.watchdog
        if self._restart_pending:
            due = sorted(
                idx
                for idx, wake_at in self._restart_pending.items()
                if wake_at <= steps
            )
            for idx in due:
                del self._restart_pending[idx]
                self._restart(idx, steps)
        if wd.timeout is None:
            return
        for idx, rec in enumerate(self.records):
            if rec.state is not AgentState.BLOCKED or rec.stall_flagged:
                continue
            if rec.blocked_at < 0:
                continue
            blocked_for = steps - rec.blocked_at
            if blocked_for <= wd.timeout:
                continue
            self._flag_stall(idx, blocked_for, steps)

    def _handle_stall(self, steps: int) -> bool:
        """No agent is runnable: try to recover.  Returns True on progress.

        Recovery ladder: (1) fast-forward a scheduled restart past its
        backoff delay (nothing else can advance the step counter anyway);
        (2) defensively re-check every blocked predicate (a spurious-wake
        sweep — catches any missed notification); (3) ask the watchdog for
        a restart victim among the blocked agents, budget permitting.
        """
        while self._restart_pending:
            idx = min(
                self._restart_pending,
                key=lambda i: (self._restart_pending[i], i),
            )
            del self._restart_pending[idx]
            if self._restart(idx, steps):
                return True
        for node in list(self._blocked_by_node):
            self._board_changed(node)
        if any(rec.state is AgentState.READY for rec in self.records):
            return True
        wd = self.watchdog
        blocked = [
            (idx, rec.blocked_at)
            for idx, rec in enumerate(self.records)
            if rec.state is AgentState.BLOCKED
        ]
        victim = wd.victim(blocked, steps)
        if victim is None:
            return False
        rec = self.records[victim]
        if not rec.stall_flagged:
            self._flag_stall(victim, steps - rec.blocked_at, steps)
        self._restart_pending[victim] = wd.plan_restart(victim, steps)
        return True

    def _flag_stall(self, idx: int, blocked_for: int, steps: int) -> None:
        rec = self.records[idx]
        rec.stall_flagged = True
        self.watchdog.record_stall(idx, blocked_for, steps)
        if self._metrics is not None:
            self._m_stalls[idx].inc()
        if self._sink is not None:
            reason = rec.blocked_on.reason if rec.blocked_on else None
            self._emit(
                self._tev.STALL,
                idx,
                rec.node,
                detail=f"blocked {blocked_for} steps: {reason or 'waiting'}",
            )

    def _restart(self, idx: int, steps: int) -> bool:
        """Restart a blocked agent from its home-base whiteboard checkpoint.

        The agent is teleported home (modeling recovery of the physical
        agent at its home-base — the paper's agents are hosted by nodes)
        and handed a fresh ``protocol()`` generator.  All whiteboard state
        survives, so the restarted protocol re-enters MAP-DRAWING against
        its own previous signs; :func:`repro.sim.traversal.draw_map` makes
        that re-entry idempotent.  Move/access counters are *not* reset:
        recovered work counts against the Theorem 3.1 budget.
        """
        rec = self.records[idx]
        if rec.state is not AgentState.BLOCKED:
            return False
        origin = rec.node
        if rec.blocked_on is not None:
            self._blocked_by_node.get(rec.node, set()).discard(idx)
            rec.blocked_on = None
        rec.blocked_at = -1
        rec.stall_flagged = False
        if self._metrics is not None:
            clock = getattr(rec.agent, "obs_clock", None)
            if clock is not None:
                clock.close()
            self._m_restarts[idx].inc()
        rec.node = rec.home
        rec.restarts += 1
        rec.pending = None
        rec.gen = rec.agent.protocol(self._view(idx, rec.home))
        rec.state = AgentState.READY
        if self._sink is not None:
            self._emit(
                self._tev.RESTART,
                idx,
                origin,
                dest=rec.home,
                detail=f"restart {rec.restarts} from checkpoint",
            )
        return True

    def _stall_reasons(self) -> List[str]:
        reasons = []
        for i, rec in enumerate(self.records):
            if rec.state is AgentState.BLOCKED and rec.blocked_on is not None:
                reasons.append(
                    f"agent {i} blocked at a node: {rec.blocked_on.reason or 'waiting'}"
                )
            elif rec.state is AgentState.ASLEEP:
                reasons.append(f"agent {i} still asleep at its home-base")
        return reasons

    def _result(
        self,
        steps: int,
        deadlocked: bool = False,
        reasons: Optional[List[str]] = None,
    ) -> SimulationResult:
        return SimulationResult(
            results=[rec.result for rec in self.records],
            moves=[rec.moves for rec in self.records],
            accesses=[rec.accesses for rec in self.records],
            steps=steps,
            positions=[rec.node for rec in self.records],
            deadlocked=deadlocked,
            blocked_reasons=reasons or [],
            trace=self._trace,
            restarts=[rec.restarts for rec in self.records],
            stall_events=(
                list(self.watchdog.stall_events)
                if self.watchdog is not None
                else []
            ),
        )


def run_agents(
    network: AnonymousNetwork,
    placements: Sequence[Tuple[Agent, int]],
    scheduler: Optional[Scheduler] = None,
    **kwargs: Any,
) -> SimulationResult:
    """Convenience wrapper: build a :class:`Simulation` and run it."""
    return Simulation(network, placements, scheduler=scheduler, **kwargs).run()
