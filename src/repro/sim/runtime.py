"""The asynchronous mobile-agent runtime.

Executes a set of :class:`~repro.sim.agent.Agent` protocols on an
:class:`~repro.graphs.network.AnonymousNetwork` under a
:class:`~repro.sim.scheduler.Scheduler`.  Model fidelity points:

* **One atomic action per step** — whiteboard accesses are mutually
  exclusive; between any two actions of one agent, arbitrarily many actions
  of others may occur (asynchrony).
* **Home-base marks** — before the run, each home-base whiteboard receives a
  ``homebase`` sign in its agent's color (paper Section 1.2).
* **Wake-up** — agents start asleep except an ``initially_awake`` subset
  (default: all).  A sleeping agent wakes when another agent *arrives at*
  its home-base (paper: a traversing agent "wakes up this agent").
* **No node identities** — agents receive only :class:`NodeView` values;
  the port tuple is presented in a per-(agent, node) shuffled order so that
  construction order cannot act as a covert shared total order.
* **Deadlock & budget** — a run where no agent can ever progress again
  raises :class:`~repro.errors.DeadlockError` (or returns a result flagged
  ``deadlocked=True`` when ``deadlock_ok`` is set, for impossibility-side
  experiments); runs exceeding ``max_steps`` raise
  :class:`~repro.errors.StepBudgetExceeded`.

Metrics: per-agent move counts and whiteboard-access counts — the two
quantities Theorem 3.1 bounds by ``O(r·|E|)``.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from enum import Enum
from typing import Any, Dict, List, Optional, Sequence, Set, Tuple

from ..colors import Color
from ..errors import (
    DeadlockError,
    PlacementError,
    ProtocolError,
    SimulationError,
    StepBudgetExceeded,
)
from ..graphs.network import AnonymousNetwork, PortLabel
from .actions import (
    Action,
    Erase,
    Log,
    Move,
    NodeView,
    Read,
    TryAcquire,
    WaitUntil,
    Write,
)
from .agent import Agent
from .scheduler import RandomScheduler, Scheduler
from .signs import HOMEBASE, Sign
from .whiteboard import Whiteboard


class AgentState(Enum):
    """Lifecycle of an agent inside the runtime."""

    ASLEEP = "asleep"
    READY = "ready"
    BLOCKED = "blocked"
    DONE = "done"


@dataclass
class AgentRecord:
    """Runtime bookkeeping for one agent."""

    agent: Agent
    home: int
    node: int
    state: AgentState = AgentState.ASLEEP
    gen: Any = None
    pending: Any = None  # value to send into the generator next step
    blocked_on: Optional[WaitUntil] = None
    result: Any = None
    moves: int = 0
    accesses: int = 0


@dataclass
class SimulationResult:
    """Outcome of a completed run."""

    results: List[Any]
    moves: List[int]
    accesses: List[int]
    steps: int
    positions: List[int] = field(default_factory=list)
    deadlocked: bool = False
    blocked_reasons: List[str] = field(default_factory=list)
    trace: List[Tuple[int, str, Tuple[int, ...]]] = field(default_factory=list)

    @property
    def total_moves(self) -> int:
        return sum(self.moves)

    @property
    def total_accesses(self) -> int:
        return sum(self.accesses)


class Simulation:
    """One run of a set of agents on a network.

    Parameters
    ----------
    network:
        The anonymous network (agents never see it directly).
    placements:
        ``(agent, home_node)`` pairs; home nodes must be pairwise distinct
        (the paper's simplifying assumption) and agent colors distinct.
    scheduler:
        Interleaving policy; default seeded :class:`RandomScheduler`.
    initially_awake:
        Indices (into ``placements``) of spontaneously waking agents;
        default all.  Must be non-empty.
    max_steps:
        Step budget; ``None`` picks a generous bound scaled to the instance.
    deadlock_ok:
        If True, a deadlock ends the run with ``deadlocked=True`` instead of
        raising — used by impossibility-side experiments where symmetric
        executions legitimately get stuck.
    collect_trace:
        Record :class:`~repro.sim.actions.Log` events.
    port_shuffle_seed:
        Seed of the per-(agent, node) port-presentation shuffle.
    """

    def __init__(
        self,
        network: AnonymousNetwork,
        placements: Sequence[Tuple[Agent, int]],
        scheduler: Optional[Scheduler] = None,
        initially_awake: Optional[Sequence[int]] = None,
        max_steps: Optional[int] = None,
        deadlock_ok: bool = False,
        collect_trace: bool = False,
        port_shuffle_seed: int = 0,
    ):
        if not placements:
            raise PlacementError("at least one agent is required")
        homes = [home for (_, home) in placements]
        if len(set(homes)) != len(homes):
            raise PlacementError("home-bases must be pairwise distinct")
        colors = [agent.color for (agent, _) in placements]
        if len(set(colors)) != len(colors):
            raise PlacementError("agent colors must be pairwise distinct")
        for home in homes:
            if not 0 <= home < network.num_nodes:
                raise PlacementError(f"home node {home} out of range")

        self.network = network
        self.scheduler = scheduler or RandomScheduler(seed=0)
        self.records: List[AgentRecord] = [
            AgentRecord(agent=a, home=h, node=h) for (a, h) in placements
        ]
        self.boards: List[Whiteboard] = [
            Whiteboard() for _ in range(network.num_nodes)
        ]
        self._blocked_by_node: Dict[int, Set[int]] = {}
        self._sleepers_by_node: Dict[int, int] = {
            home: idx for idx, (_, home) in enumerate(placements)
        }
        if initially_awake is None:
            self._initially_awake = list(range(len(placements)))
        else:
            self._initially_awake = list(initially_awake)
        if not self._initially_awake:
            raise PlacementError("at least one agent must be initially awake")
        if max_steps is None:
            r = len(placements)
            m = network.num_edges
            n = network.num_nodes
            max_steps = 2_000 + 600 * r * r * (m + n)
        self.max_steps = max_steps
        self.deadlock_ok = deadlock_ok
        self.collect_trace = collect_trace
        self._trace: List[Tuple[int, str, Tuple[int, ...]]] = []
        self._port_seed = port_shuffle_seed

    # ------------------------------------------------------------------
    # Views
    # ------------------------------------------------------------------

    def _port_order(self, agent_idx: int, node: int) -> Tuple[PortLabel, ...]:
        ports = list(self.network.ports(node))
        rng = random.Random(f"{self._port_seed}:{agent_idx}:{node}")
        rng.shuffle(ports)
        return tuple(ports)

    def _view(
        self, agent_idx: int, node: int, entry_port: Optional[PortLabel] = None
    ) -> NodeView:
        return NodeView(
            degree=self.network.degree(node),
            ports=self._port_order(agent_idx, node),
            signs=self.boards[node].snapshot(),
            entry_port=entry_port,
        )

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def _wake(self, idx: int) -> None:
        rec = self.records[idx]
        if rec.state is not AgentState.ASLEEP:
            return
        rec.gen = rec.agent.protocol(self._view(idx, rec.node))
        rec.pending = None
        rec.state = AgentState.READY
        self._sleepers_by_node.pop(rec.node, None)

    def _board_changed(self, node: int) -> None:
        """Re-check WaitUntil predicates of agents blocked at ``node``."""
        for idx in list(self._blocked_by_node.get(node, ())):
            rec = self.records[idx]
            assert rec.blocked_on is not None
            view = self._view(idx, rec.node)
            if rec.blocked_on.predicate(view):
                rec.pending = view
                rec.blocked_on = None
                rec.state = AgentState.READY
                self._blocked_by_node[node].discard(idx)

    def _finish(self, idx: int, result: Any) -> None:
        rec = self.records[idx]
        rec.state = AgentState.DONE
        rec.result = result
        rec.gen = None

    # ------------------------------------------------------------------
    # Action dispatch
    # ------------------------------------------------------------------

    def _execute(self, idx: int, action: Action) -> Any:
        rec = self.records[idx]
        board = self.boards[rec.node]
        color = rec.agent.color
        if isinstance(action, Move):
            if action.port not in self.network.ports(rec.node):
                raise ProtocolError(
                    f"agent {idx} used missing port {action.port!r}"
                )
            new_node, entry = self.network.traverse(rec.node, action.port)
            rec.node = new_node
            rec.moves += 1
            sleeper = self._sleepers_by_node.get(new_node)
            if sleeper is not None and sleeper != idx:
                self._wake(sleeper)
            return self._view(idx, new_node, entry_port=entry)
        if isinstance(action, Read):
            rec.accesses += 1
            return self._view(idx, rec.node)
        if isinstance(action, Write):
            sign = action.sign
            if sign.color is None:
                sign = Sign(kind=sign.kind, color=color, payload=sign.payload)
            elif sign.color != color:
                raise ProtocolError(
                    f"agent {idx} attempted to forge a sign of another color"
                )
            rec.accesses += 1
            board.append(sign)
            self._board_changed(rec.node)
            return None
        if isinstance(action, Erase):
            rec.accesses += 1
            removed = board.erase_own(color, action.kind, action.payload)
            if removed:
                self._board_changed(rec.node)
            return removed
        if isinstance(action, TryAcquire):
            rec.accesses += 1
            ok = board.try_acquire(color, action.kind, action.payload, action.capacity)
            if ok:
                self._board_changed(rec.node)
            return ok
        if isinstance(action, WaitUntil):
            rec.accesses += 1
            view = self._view(idx, rec.node)
            if action.predicate(view):
                return view
            rec.blocked_on = action
            rec.state = AgentState.BLOCKED
            self._blocked_by_node.setdefault(rec.node, set()).add(idx)
            return None  # no value sent until unblocked
        if isinstance(action, Log):
            if self.collect_trace:
                self._trace.append((idx, action.event, tuple(action.data)))
            return None
        raise ProtocolError(f"unknown action {action!r}")

    # ------------------------------------------------------------------
    # Main loop
    # ------------------------------------------------------------------

    def run(self) -> SimulationResult:
        """Execute until all agents are done (or deadlock / budget)."""
        self.scheduler.reset()
        # Mark every home-base with a sign of its agent's color (paper
        # Section 1.2: "The home-base of a ∈ A is marked with a sign of
        # color c(a)").
        for rec in self.records:
            self.boards[rec.home].append(
                Sign(kind=HOMEBASE, color=rec.agent.color)
            )
        for idx in self._initially_awake:
            self._wake(idx)

        steps = 0
        while True:
            runnable = [
                i
                for i, rec in enumerate(self.records)
                if rec.state is AgentState.READY
            ]
            if not runnable:
                if all(rec.state is AgentState.DONE for rec in self.records):
                    break
                reasons = self._stall_reasons()
                if self.deadlock_ok:
                    return self._result(steps, deadlocked=True, reasons=reasons)
                raise DeadlockError(
                    "no agent can make progress; stalled agents: "
                    + "; ".join(reasons)
                )
            if steps >= self.max_steps:
                raise StepBudgetExceeded(
                    f"simulation exceeded max_steps={self.max_steps}"
                )
            idx = self.scheduler.choose(runnable, steps)
            if idx not in runnable:
                raise SimulationError(
                    f"scheduler chose non-runnable agent {idx}"
                )
            rec = self.records[idx]
            try:
                action = rec.gen.send(rec.pending)
            except StopIteration as stop:
                self._finish(idx, stop.value)
                steps += 1
                continue
            rec.pending = self._execute(idx, action)
            if rec.state is AgentState.BLOCKED:
                rec.pending = None
            steps += 1
        return self._result(steps)

    def _stall_reasons(self) -> List[str]:
        reasons = []
        for i, rec in enumerate(self.records):
            if rec.state is AgentState.BLOCKED and rec.blocked_on is not None:
                reasons.append(
                    f"agent {i} blocked at a node: {rec.blocked_on.reason or 'waiting'}"
                )
            elif rec.state is AgentState.ASLEEP:
                reasons.append(f"agent {i} still asleep at its home-base")
        return reasons

    def _result(
        self,
        steps: int,
        deadlocked: bool = False,
        reasons: Optional[List[str]] = None,
    ) -> SimulationResult:
        return SimulationResult(
            results=[rec.result for rec in self.records],
            moves=[rec.moves for rec in self.records],
            accesses=[rec.accesses for rec in self.records],
            steps=steps,
            positions=[rec.node for rec in self.records],
            deadlocked=deadlocked,
            blocked_reasons=reasons or [],
            trace=self._trace,
        )


def run_agents(
    network: AnonymousNetwork,
    placements: Sequence[Tuple[Agent, int]],
    scheduler: Optional[Scheduler] = None,
    **kwargs: Any,
) -> SimulationResult:
    """Convenience wrapper: build a :class:`Simulation` and run it."""
    return Simulation(network, placements, scheduler=scheduler, **kwargs).run()
