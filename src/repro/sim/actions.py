"""Agent actions and the information agents receive back.

An agent protocol is a Python generator that *yields* actions and receives
results via ``send``.  Exactly one action executes per scheduler step, which
makes every whiteboard access atomic — the paper's "fair mutual exclusion
mechanism" — while the scheduler interleaves different agents arbitrarily
(asynchrony: "every action takes a finite but otherwise unpredictable amount
of time").

Agents never see node identifiers.  What an agent observes at a node is a
:class:`NodeView`: the node's degree, its port labels (presented in an
order randomized per agent so that no covert total order leaks through),
the whiteboard contents, and — after a move — the entry port.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional, Sequence, Tuple

from ..colors import Color
from ..graphs.network import PortLabel
from .signs import Sign


@dataclass(frozen=True)
class NodeView:
    """What an agent perceives standing at a node."""

    degree: int
    ports: Tuple[PortLabel, ...]
    signs: Tuple[Sign, ...]
    entry_port: Optional[PortLabel] = None

    def signs_of(self, kind: str, payload: Optional[Tuple[int, ...]] = None):
        """Signs on this board matching ``kind`` (and payload)."""
        return [s for s in self.signs if s.matches(kind, payload)]


class Action:
    """Base class of all agent actions (marker only)."""

    __slots__ = ()


@dataclass(frozen=True)
class Move(Action):
    """Leave the current node through ``port``.  Result: :class:`NodeView`
    of the node entered (with ``entry_port`` set)."""

    port: PortLabel


@dataclass(frozen=True)
class Read(Action):
    """Observe the current node.  Result: :class:`NodeView`."""


@dataclass(frozen=True)
class Write(Action):
    """Append a sign to the current whiteboard.

    The runtime stamps/validates the sign's color: an agent may only write
    its own color (or the sign may be built with ``color=None`` and the
    runtime fills the writer's color in).  Result: ``None``.
    """

    sign: Sign


@dataclass(frozen=True)
class Erase(Action):
    """Remove this agent's *own* signs of ``kind`` (and payload, if given)
    from the current whiteboard.  Result: number of signs removed."""

    kind: str
    payload: Optional[Tuple[int, ...]] = None


@dataclass(frozen=True)
class TryAcquire(Action):
    """Atomic test-and-write: if fewer than ``capacity`` signs with
    ``(kind, payload)`` exist on the current board, append one in the
    agent's color and return ``True``; otherwise return ``False``.

    This models the whiteboard races the paper relies on ("the first node
    which writes on the whiteboard is elected", node acquisition in
    NODE-REDUCE, matching in AGENT-REDUCE).
    """

    kind: str
    payload: Tuple[int, ...] = field(default_factory=tuple)
    capacity: int = 1


@dataclass(frozen=True)
class WaitUntil(Action):
    """Block until ``predicate(view)`` holds at the current node.

    ``predicate`` must be a pure function of the :class:`NodeView`.  The
    runtime re-evaluates it whenever the node's board changes (and once
    immediately), delivering the satisfying view as the result.  The
    optional ``reason`` string is surfaced in deadlock diagnostics.
    """

    predicate: Callable[[NodeView], bool]
    reason: str = ""

    # dataclass(frozen) with a callable field: eq/hash by identity is fine.
    def __hash__(self) -> int:  # pragma: no cover - trivial
        return id(self)


@dataclass(frozen=True)
class Log(Action):
    """Record a trace event (free: no move or whiteboard access counted).
    Result: ``None``.  Used by tests to observe protocol internals."""

    event: str
    data: Tuple[int, ...] = field(default_factory=tuple)
