"""The agent abstraction: a colored generator of actions.

Concrete protocols subclass :class:`Agent` and implement
:meth:`Agent.protocol` as a generator.  The generator yields
:mod:`repro.sim.actions` actions and receives their results through
``send``; its ``return`` value becomes the agent's final result in the
:class:`~repro.sim.runtime.SimulationResult`.

What an agent may use (and nothing else):

* its own color (``self.color``) — equality-testable only;
* the :class:`~repro.sim.actions.NodeView` values the runtime hands it
  (degree, port labels, whiteboard signs, entry port);
* its own unbounded local memory.

Node indices, the global clock, other agents' objects, and the network
object itself are *not* reachable from protocol code; this is enforced
structurally (the runtime only ever passes ``NodeView`` values in).
"""

from __future__ import annotations

import random
from abc import ABC, abstractmethod
from typing import Any, Generator, Optional

from ..colors import Color
from .actions import Action, NodeView

#: The type of a protocol generator.
ProtocolGen = Generator[Action, Any, Any]


class Agent(ABC):
    """A mobile computing entity with a distinct, incomparable color."""

    def __init__(self, color: Color, rng: Optional[random.Random] = None):
        self.color = color
        #: Private randomness for tie-breaking choices the model leaves free
        #: (e.g. which unexplored port to try first).  Correctness of the
        #: shipped protocols never depends on it; tests vary the seed.
        self.rng = rng or random.Random(0)

    @abstractmethod
    def protocol(self, start: NodeView) -> ProtocolGen:
        """The agent's behavior, as an action generator.

        ``start`` is the view of the agent's home-base at wake-up time.
        """

    def __repr__(self) -> str:
        return f"{type(self).__name__}(color={self.color!r})"
