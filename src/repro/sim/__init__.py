"""Asynchronous mobile-agent simulation substrate."""

from .actions import (
    Action,
    Erase,
    Log,
    Move,
    NodeView,
    Read,
    TryAcquire,
    WaitUntil,
    Write,
)
from .agent import Agent, ProtocolGen
from .runtime import AgentState, Simulation, SimulationResult, run_agents
from .scheduler import (
    BiasedScheduler,
    GreedyAgentScheduler,
    PCTScheduler,
    RandomScheduler,
    RecordingScheduler,
    RoundRobinScheduler,
    Scheduler,
    SchedulerDecorator,
    default_scheduler_suite,
)
from .signs import Sign, distinct_colors, signs_of_kind
from .traversal import LocalMap, Navigator, draw_map, draw_map_frontier
from .whiteboard import Whiteboard

# Deprecated aliases into repro.fault; imported last so the whole sim
# substrate is initialized before anything fault-layer-adjacent loads.
from .faults import CrashAfter, CrashOnKind

__all__ = [
    "Action",
    "Move",
    "Read",
    "Write",
    "Erase",
    "TryAcquire",
    "WaitUntil",
    "Log",
    "NodeView",
    "Agent",
    "ProtocolGen",
    "AgentState",
    "Simulation",
    "SimulationResult",
    "run_agents",
    "Scheduler",
    "SchedulerDecorator",
    "PCTScheduler",
    "RandomScheduler",
    "RoundRobinScheduler",
    "GreedyAgentScheduler",
    "BiasedScheduler",
    "RecordingScheduler",
    "default_scheduler_suite",
    "Sign",
    "signs_of_kind",
    "distinct_colors",
    "Whiteboard",
    "LocalMap",
    "Navigator",
    "draw_map",
    "draw_map_frontier",
    "CrashAfter",
    "CrashOnKind",
]
