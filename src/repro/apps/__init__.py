"""Applications built on top of leader election (paper footnote 2)."""

from .gathering import GatheringAgent, GatheringReport, LEVEL, GRADIENT_READY
from .runner import run_gathering

__all__ = [
    "GatheringAgent",
    "GatheringReport",
    "run_gathering",
    "LEVEL",
    "GRADIENT_READY",
]
