"""Gathering (rendezvous) on top of leader election.

Paper footnote 2: "Once a leader is elected, many other computational tasks
become straightforward.  Such is the case for the gathering or rendezvous
problem."  This module makes that concrete:

1. The agents run protocol ELECT (all of its machinery inherited).
2. The winner, instead of merely announcing itself, first paints a
   **level gradient** on the whiteboards: every node receives a ``level``
   sign carrying its BFS distance from the leader's home-base (computed on
   the leader's private map), then the usual leader announcement.
3. Every defeated agent *gathers* by gradient descent — repeatedly moving
   to any neighbor whose ``level`` sign is one smaller — deliberately
   **without** consulting its own map, which demonstrates that the painted
   gradient alone suffices as a routing structure (a whiteboard artifact a
   map-less late-comer could also use).
4. The leader waits at home until ``r - 1`` distinct ``arrived`` colors
   appear, then declares the gathering complete.

All coordination uses model-legal signs (integer payloads, own colors).
If election is infeasible (gcd > 1) the gathering fails like ELECT does —
the paper's theory says no deterministic protocol can do better.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..colors import Color
from ..errors import ProtocolError
from ..sim.actions import Move, NodeView, WaitUntil, Write
from ..sim.agent import ProtocolGen
from ..sim.signs import LEADER_ANNOUNCE, Sign
from ..core.elect import ElectAgent
from ..core.result import AgentReport, Verdict

LEVEL = "level"
GRADIENT_READY = "gradient-ready"
ARRIVED = "arrived"


@dataclass(frozen=True)
class GatheringReport(AgentReport):
    """An :class:`AgentReport` extended with the gathering flag."""

    gathered: bool = False


def _level_of(view: NodeView) -> Optional[int]:
    for s in view.signs:
        if s.kind == LEVEL:
            return s.payload[0]
    return None


class GatheringAgent(ElectAgent):
    """Elect a leader, then gather every agent at the leader's home-base."""

    def protocol(self, start: NodeView) -> ProtocolGen:
        report = yield from super().protocol(start)
        if report.verdict is Verdict.FAILED:
            return GatheringReport(verdict=Verdict.FAILED, gathered=False)
        if report.verdict is Verdict.LEADER:
            return (yield from self._host_gathering(report))
        return (yield from self._gather(report))

    # -- leader side ------------------------------------------------------

    def _become_leader(self) -> ProtocolGen:
        """Paint the level gradient while announcing leadership.

        Overrides the plain announcement tour of ELECT: each node gets its
        BFS distance from the leader's home plus the announce sign, and a
        final ``gradient-ready`` marker that descending agents key on.
        """
        distances = self._map.network.distances_from(self._map.home)

        def visit(node: int, view: NodeView) -> ProtocolGen:
            yield Write(
                Sign(kind=LEVEL, color=self.color, payload=(distances[node],))
            )
            yield Write(Sign(kind=LEADER_ANNOUNCE, color=self.color))
            yield Write(Sign(kind=GRADIENT_READY, color=self.color))
            return None

        yield from self._nav.tour(visit=visit)
        yield from self._nav.goto(self._map.home)
        return AgentReport(verdict=Verdict.LEADER, leader_color=self.color)

    def _host_gathering(self, report: AgentReport) -> ProtocolGen:
        expected = len(self._map.homebases) - 1

        def all_arrived(view: NodeView) -> bool:
            colors = {
                s.color
                for s in view.signs
                if s.kind == ARRIVED and s.color is not None
            }
            return len(colors) >= expected

        if expected > 0:
            yield WaitUntil(all_arrived, reason="gathering completion")
        return GatheringReport(
            verdict=Verdict.LEADER, leader_color=self.color, gathered=True
        )

    # -- follower side ------------------------------------------------------

    def _gather(self, report: AgentReport) -> ProtocolGen:
        """Gradient descent to level 0 using only whiteboard signs.

        The agent's map is deliberately not consulted for routing: at each
        node it waits for the gradient to be painted, reads its level, and
        probes ports until it finds a strictly smaller neighbor.  Descent
        terminates because levels strictly decrease.
        """

        def ready(view: NodeView) -> bool:
            return any(s.kind == GRADIENT_READY for s in view.signs)

        view = yield WaitUntil(ready, reason="gradient paint")
        level = _level_of(view)
        if level is None:
            raise ProtocolError("gradient-ready without a level sign")

        position_tracker = self._nav  # keep the navigator's position honest
        current_map_node = position_tracker.position

        while level > 0:
            moved = False
            for port in view.ports:
                move_view = yield Move(port)
                entry = move_view.entry_port
                # Keep the navigator consistent even though we route by
                # signs: map-node tracking is free bookkeeping.
                current_map_node, _ = self._map.network.traverse(
                    current_map_node, port
                )
                position_tracker.position = current_map_node

                next_view = yield WaitUntil(ready, reason="gradient paint")
                next_level = _level_of(next_view)
                if next_level is not None and next_level == level - 1:
                    view = next_view
                    level = next_level
                    moved = True
                    break
                # Not downhill: step back through the entry port.
                view = yield Move(entry)
                current_map_node, _ = self._map.network.traverse(
                    current_map_node, entry
                )
                position_tracker.position = current_map_node
            if not moved:
                raise ProtocolError(
                    f"gradient descent stuck at level {level}: no downhill port"
                )

        yield Write(Sign(kind=ARRIVED, color=self.color))
        return GatheringReport(
            verdict=Verdict.DEFEATED,
            leader_color=report.leader_color,
            gathered=True,
        )
