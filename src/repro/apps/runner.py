"""Runners for the application layer."""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Any, List, Optional, Sequence

from ..colors import Color
from ..core.placement import Placement
from ..core.result import Verdict
from ..graphs.network import AnonymousNetwork
from ..sim.runtime import Simulation
from ..sim.scheduler import RandomScheduler, Scheduler
from .gathering import GatheringAgent, GatheringReport


@dataclass
class GatheringOutcome:
    """Aggregate result of a gathering run."""

    reports: List[GatheringReport]
    positions: List[int]
    total_moves: int
    steps: int

    @property
    def gathered(self) -> bool:
        """All agents report success AND physically share one node."""
        return (
            all(r.gathered for r in self.reports)
            and len(set(self.positions)) == 1
        )

    @property
    def failed(self) -> bool:
        return all(r.verdict is Verdict.FAILED for r in self.reports)

    @property
    def rendezvous_node(self) -> Optional[int]:
        if not self.gathered:
            return None
        return self.positions[0]


def run_gathering(
    network: AnonymousNetwork,
    placement: Placement,
    scheduler: Optional[Scheduler] = None,
    seed: int = 0,
    colors: Optional[Sequence[Color]] = None,
    **sim_kwargs: Any,
) -> GatheringOutcome:
    """Elect a leader and gather all agents at its home-base."""
    if colors is None:
        colors = placement.fresh_colors()
    agents = [
        GatheringAgent(color, rng=random.Random(f"{seed}:{i}"))
        for i, color in enumerate(colors)
    ]
    sim = Simulation(
        network,
        list(zip(agents, placement.homes)),
        scheduler=scheduler or RandomScheduler(seed=seed),
        **sim_kwargs,
    )
    result = sim.run()
    reports: List[GatheringReport] = []
    for r in result.results:
        if not isinstance(r, GatheringReport):
            raise TypeError(f"agent returned {r!r}, expected GatheringReport")
        reports.append(r)
    return GatheringOutcome(
        reports=reports,
        positions=list(result.positions),
        total_moves=result.total_moves,
        steps=result.steps,
    )
