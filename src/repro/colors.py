"""Incomparable labels ("colors") — the qualitative model's primitive.

The paper's qualitative model (Section 1.2) equips each agent with a color
drawn from a set :math:`C` of *mutually incomparable* elements: two colors
can be tested for equality, but no order relation may be derived from them.
This module makes that restriction a runtime guarantee:

* :class:`Color` supports ``==``/``!=`` and hashing (hashing is required so
  agents can *privately* organise colors they have seen — the paper allows
  each agent "to produce its own encoding" of colors it observes — but the
  hash is salted per-process so no protocol can use it as a covert global
  total order across runs).
* All four ordering operators raise :class:`~repro.errors.IncomparabilityError`.
* :class:`ColorSpace` mints fresh distinct colors and can *rename* colors via
  a bijection, which the test-suite uses to assert that protocol outcomes are
  invariant under arbitrary recoloring (qualitative soundness).
* :class:`LocalColorEncoding` models an agent's private first-seen encoding
  of colors (the "code the i-th symbol met so far as i" rule the paper uses
  in the Figure 2 discussion).

The *quantitative* model is represented by plain integers; the protocols in
:mod:`repro.core.quantitative` accept any totally ordered label type.
"""

from __future__ import annotations

import itertools
import os
from typing import Dict, Hashable, Iterable, Iterator, List, Optional, Tuple

from .errors import IncomparabilityError

# Per-process salt ensuring that Color hashes cannot serve as a stable global
# order across processes (and making any accidental reliance on hash order
# flaky enough for the randomised tests to catch).
_HASH_SALT: int = int.from_bytes(os.urandom(8), "little")


class Color:
    """A label that supports equality but no ordering.

    Parameters
    ----------
    token:
        An internal distinguishing token.  Two colors are equal iff their
        tokens are equal.  The token is *not* exposed through comparison
        operators; it exists only so that distinct colors are distinct.
    name:
        Optional human-readable name used purely for ``repr``/debugging.
        Names play no role in equality.
    """

    __slots__ = ("_token", "_name")

    def __init__(self, token: Hashable, name: Optional[str] = None):
        self._token = token
        self._name = name

    @property
    def name(self) -> Optional[str]:
        """Human-readable name (debugging only; not part of equality)."""
        return self._name

    def __eq__(self, other: object) -> bool:
        if isinstance(other, Color):
            return self._token == other._token
        return NotImplemented

    def __ne__(self, other: object) -> bool:
        if isinstance(other, Color):
            return self._token != other._token
        return NotImplemented

    def __hash__(self) -> int:
        return hash((_HASH_SALT, self._token))

    def _forbidden(self, other: object) -> "Color":
        raise IncomparabilityError(
            "colors are mutually incomparable: only ==/!= are defined "
            "(qualitative model, paper Section 1.2)"
        )

    __lt__ = _forbidden
    __le__ = _forbidden
    __gt__ = _forbidden
    __ge__ = _forbidden

    def __repr__(self) -> str:
        if self._name is not None:
            return f"Color({self._name!r})"
        return f"Color(token={self._token!r})"


class ColorSpace:
    """A factory of distinct :class:`Color` instances.

    A ``ColorSpace`` models the (designer-unknown) set :math:`C` from which
    agent colors are drawn.  It mints fresh colors on demand and supports
    constructing *renamed* copies of a collection of colors, used to verify
    recoloring-invariance of protocols.
    """

    _space_ids = itertools.count()

    def __init__(self, prefix: str = "c"):
        self._prefix = prefix
        self._space_id = next(ColorSpace._space_ids)
        self._counter = itertools.count()
        self._minted: List[Color] = []

    def fresh(self, name: Optional[str] = None) -> Color:
        """Mint a color distinct from every color previously minted here."""
        idx = next(self._counter)
        color = Color((self._space_id, idx), name or f"{self._prefix}{idx}")
        self._minted.append(color)
        return color

    def fresh_many(self, count: int) -> List[Color]:
        """Mint ``count`` fresh pairwise-distinct colors."""
        return [self.fresh() for _ in range(count)]

    @property
    def minted(self) -> Tuple[Color, ...]:
        """All colors minted by this space, in mint order."""
        return tuple(self._minted)

    @staticmethod
    def renaming(colors: Iterable[Color]) -> Dict[Color, Color]:
        """Return a fresh-bijection renaming of ``colors``.

        The returned mapping sends each input color to a brand-new color from
        a private space.  Applying it to a protocol input must not change the
        protocol's observable outcome (up to the renaming itself); the test
        suite checks exactly that.
        """
        space = ColorSpace(prefix="r")
        return {c: space.fresh() for c in dict.fromkeys(colors)}


class LocalColorEncoding:
    """An agent's private, order-of-first-sight encoding of colors.

    The paper (Figure 2 discussion) notes that an agent can code the *i*-th
    distinct symbol it meets as the integer *i*.  Such an encoding is legal
    in the qualitative model because it is local: two agents walking the same
    structure in different directions generally produce different encodings,
    which is precisely why view-sorting fails qualitatively.
    """

    def __init__(self) -> None:
        self._codes: Dict[Color, int] = {}

    def encode(self, color: Color) -> int:
        """Return this agent's integer code for ``color`` (assigning if new)."""
        code = self._codes.get(color)
        if code is None:
            code = len(self._codes) + 1
            self._codes[color] = code
        return code

    def encode_sequence(self, colors: Iterable[Color]) -> List[int]:
        """Encode a sequence of colors in order (mutates the encoding)."""
        return [self.encode(c) for c in colors]

    def known(self) -> Tuple[Color, ...]:
        """Colors seen so far, in first-seen order."""
        return tuple(self._codes)

    def __len__(self) -> int:
        return len(self._codes)

    def __contains__(self, color: Color) -> bool:
        return color in self._codes


def distinct(colors: Iterable[Color]) -> bool:
    """Return ``True`` iff all colors in the iterable are pairwise distinct."""
    seen = set()
    for c in colors:
        if c in seen:
            return False
        seen.add(c)
    return True


def qualitative_symbols(count: int, prefix: str = "sym") -> List[Color]:
    """Convenience: mint ``count`` incomparable port-label symbols.

    Port labels in the qualitative model are, like agent colors, distinct but
    incomparable symbols (geometric figures, colors of paint, …).  They live
    in their own :class:`ColorSpace`.
    """
    space = ColorSpace(prefix=prefix)
    return space.fresh_many(count)


def iter_color_pairs(colors: Iterable[Color]) -> Iterator[Tuple[Color, Color]]:
    """Yield all unordered pairs of distinct colors (testing helper)."""
    pool = list(colors)
    for i in range(len(pool)):
        for j in range(i + 1, len(pool)):
            yield pool[i], pool[j]
