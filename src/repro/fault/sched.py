"""Adversarial scheduling faults: transient stalls and delays.

:class:`DelayScheduler` decorates any :class:`~repro.sim.scheduler.Scheduler`
and suppresses chosen agents during declared step windows — modeling both
"agent x freezes for a while and resumes" (transient stall) and "the
adversary refuses to schedule x while its rivals race ahead" (adversarial
delay); in the asynchronous model these are the same fault.

Fairness is preserved structurally: a window only *filters* the runnable
set, and if filtering would empty it the full set is used unchanged — the
scheduler fault can slow agents down arbitrarily but can never manufacture
a deadlock on its own, exactly like the paper's finite-but-unpredictable
action times.
"""

from __future__ import annotations

from typing import Sequence, Tuple

from ..sim.scheduler import Scheduler, SchedulerDecorator


class DelayScheduler(SchedulerDecorator):
    """Suppress agents inside their stall windows, then delegate.

    ``windows`` is a sequence of objects with ``agent``/``at_step``/
    ``duration`` attributes (:class:`repro.fault.plan.StallWindow`): agent
    ``agent`` is not scheduled for steps in ``[at_step, at_step+duration)``.
    """

    def __init__(self, inner: Scheduler, windows: Sequence[object]):
        super().__init__(inner)
        self.windows: Tuple[object, ...] = tuple(windows)

    def _delayed(self, agent: int, step: int) -> bool:
        return any(
            w.agent == agent and w.at_step <= step < w.at_step + w.duration
            for w in self.windows
        )

    def choose(self, runnable: Sequence[int], step: int) -> int:
        allowed = [i for i in runnable if not self._delayed(i, step)]
        # Never let a delay window turn into a starvation deadlock: if every
        # runnable agent is suppressed, the fault yields and the full set
        # goes through (the adversary must keep the execution fair).
        return self.inner.choose(allowed or list(runnable), step)

    def __repr__(self) -> str:
        return f"DelayScheduler({self.inner!r}, windows={len(self.windows)})"
