"""Adversarial scheduling faults: transient stalls and delays.

:class:`DelayScheduler` decorates any :class:`~repro.sim.scheduler.Scheduler`
and suppresses chosen agents during declared step windows — modeling both
"agent x freezes for a while and resumes" (transient stall) and "the
adversary refuses to schedule x while its rivals race ahead" (adversarial
delay); in the asynchronous model these are the same fault.

Fairness is preserved structurally: a window only *filters* the runnable
set, and if filtering would empty it the full set is used unchanged — the
scheduler fault can slow agents down arbitrarily but can never manufacture
a deadlock on its own, exactly like the paper's finite-but-unpredictable
action times.
"""

from __future__ import annotations

from bisect import bisect_right
from typing import Dict, List, Sequence, Tuple

from ..sim.scheduler import Scheduler, SchedulerDecorator


def _merge_spans(spans: List[Tuple[int, int]]) -> List[Tuple[int, int]]:
    """Sort half-open ``[start, end)`` spans and merge overlaps."""
    merged: List[Tuple[int, int]] = []
    for start, end in sorted(spans):
        if merged and start <= merged[-1][1]:
            merged[-1] = (merged[-1][0], max(merged[-1][1], end))
        else:
            merged.append((start, end))
    return merged


class DelayScheduler(SchedulerDecorator):
    """Suppress agents inside their stall windows, then delegate.

    ``windows`` is a sequence of objects with ``agent``/``at_step``/
    ``duration`` attributes (:class:`repro.fault.plan.StallWindow`): agent
    ``agent`` is not scheduled for steps in ``[at_step, at_step+duration)``.

    The windows are precompiled into a per-agent map of merged, sorted
    intervals, so the per-step membership test is one :func:`bisect_right`
    instead of a scan over every window — campaigns run this on every step
    of every faulted simulation, and plans can carry thousands of windows.
    """

    def __init__(self, inner: Scheduler, windows: Sequence[object]):
        super().__init__(inner)
        self.windows: Tuple[object, ...] = tuple(windows)
        by_agent: Dict[int, List[Tuple[int, int]]] = {}
        for w in self.windows:
            by_agent.setdefault(w.agent, []).append(
                (w.at_step, w.at_step + w.duration)
            )
        self._intervals: Dict[int, List[Tuple[int, int]]] = {
            agent: _merge_spans(spans) for agent, spans in by_agent.items()
        }
        self._starts: Dict[int, List[int]] = {
            agent: [start for start, _ in spans]
            for agent, spans in self._intervals.items()
        }

    def _delayed(self, agent: int, step: int) -> bool:
        starts = self._starts.get(agent)
        if not starts:
            return False
        i = bisect_right(starts, step) - 1
        return i >= 0 and step < self._intervals[agent][i][1]

    def choose(self, runnable: Sequence[int], step: int) -> int:
        allowed = [i for i in runnable if not self._delayed(i, step)]
        # Never let a delay window turn into a starvation deadlock: if every
        # runnable agent is suppressed, the fault yields and the full set
        # goes through (the adversary must keep the execution fair).
        return self.inner.choose(allowed or list(runnable), step)

    def __repr__(self) -> str:
        return f"DelayScheduler({self.inner!r}, windows={len(self.windows)})"
