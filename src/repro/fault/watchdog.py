"""The stall watchdog: timeout classification and restart budgeting.

The runtime cannot distinguish "slow" from "crashed" (asynchrony makes them
observationally identical), but it *can* bound how long it is willing to
wait.  A :class:`Watchdog` holds that policy:

* ``timeout`` — how many scheduler steps an agent may stay blocked before
  the episode is classified as a **stall** (flagged exactly once per
  episode; an agent that unblocks and re-blocks starts a new episode);
* ``max_restarts`` — per-agent budget of checkpoint restarts
  (:meth:`repro.sim.runtime.Simulation._restart`); ``0`` means classify
  only, never recover;
* ``backoff`` — deterministic restart delays in steps: the k-th restart of
  an agent waits ``backoff[min(k, len(backoff)-1)]`` steps (plus seeded
  ``jitter``, if any) before the agent re-enters the runnable set.

Everything is driven by the scheduler's step counter — no wall clock — so
supervised runs stay fully deterministic and replayable.  The watchdog
itself is runtime-agnostic bookkeeping: the :class:`~repro.sim.runtime.
Simulation` main loop calls :meth:`plan_restart` / :meth:`record_stall` /
:meth:`victim` and performs the actual recovery.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Sequence, Tuple

#: Default restart backoff schedule (steps before the restarted agent may
#: run again): immediate first retry, then increasingly patient.
DEFAULT_BACKOFF: Tuple[int, ...] = (0, 16, 64)


class Watchdog:
    """Stall-classification and restart policy for one supervised run."""

    def __init__(
        self,
        timeout: Optional[int] = None,
        max_restarts: int = 0,
        backoff: Sequence[int] = DEFAULT_BACKOFF,
        jitter: int = 0,
        seed: int = 0,
    ):
        if timeout is not None and timeout < 1:
            raise ValueError("timeout must be >= 1 step (or None)")
        if max_restarts < 0:
            raise ValueError("max_restarts must be >= 0")
        if not backoff:
            raise ValueError("backoff needs at least one delay")
        if any(d < 0 for d in backoff):
            raise ValueError("backoff delays must be >= 0")
        if jitter < 0:
            raise ValueError("jitter must be >= 0")
        self.timeout = timeout
        self.max_restarts = max_restarts
        self.backoff = tuple(int(d) for d in backoff)
        self.jitter = int(jitter)
        self.seed = seed
        self.reset()

    def reset(self) -> None:
        """Clear per-run state (called by the runtime at run start)."""
        self._rng = random.Random(self.seed)
        #: agent index -> restarts consumed.
        self.restarts: Dict[int, int] = {}
        #: ``(step, agent, blocked_for)`` — one entry per classified stall.
        self.stall_events: List[Tuple[int, int, int]] = []
        #: ``(step, agent, wake_at)`` — one entry per planned restart.
        self.restart_events: List[Tuple[int, int, int]] = []

    @property
    def total_restarts(self) -> int:
        return sum(self.restarts.values())

    def can_restart(self, agent: int) -> bool:
        """Whether the agent still has restart budget."""
        return self.restarts.get(agent, 0) < self.max_restarts

    def record_stall(self, agent: int, blocked_for: int, step: int) -> None:
        """Journal one stall classification (the runtime flags episodes)."""
        self.stall_events.append((step, agent, blocked_for))

    def plan_restart(self, agent: int, step: int) -> int:
        """Consume one restart for ``agent``; return its wake-at step.

        The delay is the backoff entry for this attempt plus seeded jitter —
        a pure function of ``(seed, call sequence)``, so identical runs plan
        identical restart schedules.
        """
        attempt = self.restarts.get(agent, 0)
        self.restarts[agent] = attempt + 1
        delay = self.backoff[min(attempt, len(self.backoff) - 1)]
        if self.jitter:
            delay += self._rng.randrange(self.jitter + 1)
        wake_at = step + delay
        self.restart_events.append((step, agent, wake_at))
        return wake_at

    def victim(
        self, blocked: Sequence[Tuple[int, int]], step: int
    ) -> Optional[int]:
        """Pick which blocked agent to restart when nothing is runnable.

        ``blocked`` holds ``(agent, blocked_since_step)`` pairs.  The
        longest-blocked agent with remaining budget is chosen (crashed
        agents block earliest, so this biases recovery toward the actual
        fault); ties break on the lower index.  Returns ``None`` when no
        candidate has budget left — the runtime then classifies the run as
        a stall with recovery exhausted.
        """
        candidates = [
            (since, agent)
            for agent, since in blocked
            if self.can_restart(agent)
        ]
        if not candidates:
            return None
        _, agent = min(candidates)
        return agent

    def __repr__(self) -> str:
        return (
            f"Watchdog(timeout={self.timeout}, "
            f"max_restarts={self.max_restarts}, backoff={self.backoff}, "
            f"jitter={self.jitter}, seed={self.seed})"
        )
