"""Byzantine adversaries and dynamic-network churn.

The crash-fault model of :mod:`repro.fault.plan` covers agents that *stop*.
This module covers agents that *lie* — the qualitative model's own failure
mode.  In the paper every sign carries its writer's color and the runtime
enforces "an agent writes only its own color"; a Byzantine agent is exactly
an agent exempted from that rule.  Concretely, a :class:`LyingAgent` wraps
any honest agent and, with seeded probability, interleaves lies into its
action stream:

* ``forge-visit`` — plant a DFS visit-number sign in a *victim's* color
  with a wrong number, corrupting the victim's map-drawing bookkeeping;
* ``spoof-owner`` — plant a home-base mark of another color, claiming a
  node is some other agent's home;
* ``false-announce`` — announce itself leader without having won;
* ``replay`` — re-append a stale foreign sign observed earlier (a correct
  sign at the wrong time and place);
* ``suppress`` — silently swallow one of the honest protocol's own writes
  (the inner protocol believes it wrote; nothing lands).

Lies are **seeded and bounded** (a power-``k`` adversary tells at most
``3·k`` lies, each with probability ``min(0.6, 0.15·k)`` per action), so a
fault plan containing :class:`ByzantineAgent` specs is exactly as
deterministic and picklable as a crash plan, and detection rates can be
measured *per adversary power* by the campaign layer.

Dynamic networks are the spatial analogue: an :class:`EdgeChurn` spec
installs a :class:`ChurnDriver` step-hook that periodically adds fresh
edges between non-adjacent nodes or removes non-bridge edges (the network
stays connected — the paper has no notion of partitioned election).  Agents
holding stale port memories either cope, fail loudly
(:class:`~repro.errors.ProtocolError` on a vanished port), or stall into
the watchdog — never silently hang.

Both spec kinds compile through the ordinary
:meth:`repro.fault.plan.FaultPlan.install` path; the detection side lives
in :mod:`repro.fault.detect`.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Any, Callable, List, Optional, Tuple

from ..colors import Color
from ..errors import FaultError, GraphError
from ..graphs.network import AnonymousNetwork, EdgeRecord, PortLabel
from ..sim.actions import NodeView, Read, Write
from ..sim.agent import Agent, ProtocolGen
from ..sim.signs import DFS_VISITED, HOMEBASE, LEADER_ANNOUNCE, Sign

#: The lying behaviors a :class:`ByzantineAgent` spec may enable.
BEHAVIORS: Tuple[str, ...] = (
    "forge-visit",
    "spoof-owner",
    "false-announce",
    "suppress",
    "replay",
)

#: How many foreign signs a liar remembers as forgery material.
_MEMORY = 32


# ---------------------------------------------------------------------------
# Specs (frozen, picklable — they travel inside FaultPlan to workers)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class ByzantineAgent:
    """Agent ``agent`` lies with the given behaviors at adversary ``power``.

    ``power`` scales both the lie budget (``3·power`` lies total) and the
    per-action lie probability (``min(0.6, 0.15·power)``); power 0 is an
    honest agent (the spec installs but never fires), which anchors the
    campaign's power-0 equivalence property.
    """

    agent: int
    behaviors: Tuple[str, ...] = BEHAVIORS
    power: int = 1
    seed: int = 0

    def __post_init__(self) -> None:
        unknown = [b for b in self.behaviors if b not in BEHAVIORS]
        if unknown:
            raise FaultError(
                f"unknown byzantine behaviors {unknown!r}; expected a subset "
                f"of {list(BEHAVIORS)}"
            )
        if not self.behaviors:
            raise FaultError("a byzantine spec needs at least one behavior")
        if self.power < 0:
            raise FaultError(f"adversary power must be >= 0, got {self.power}")

    def describe(self) -> str:
        return (
            f"byzantine(agent={self.agent}, power={self.power}, "
            f"behaviors={'|'.join(self.behaviors)})"
        )


@dataclass(frozen=True)
class EdgeChurn:
    """Dynamic-network churn: every ``period`` steps, add or remove an edge.

    At most ``max_events`` topology changes fire per run; each is an *add*
    (a fresh edge between two non-adjacent nodes, with fresh port labels)
    with probability ``add_probability``, else a *removal* of a uniformly
    chosen non-loop, non-bridge edge.  The network is never disconnected.
    Deterministic in ``seed``.
    """

    period: int = 40
    max_events: int = 6
    add_probability: float = 0.5
    seed: int = 0

    def __post_init__(self) -> None:
        if self.period < 1:
            raise FaultError(f"churn period must be >= 1, got {self.period}")
        if self.max_events < 0:
            raise FaultError(
                f"churn max_events must be >= 0, got {self.max_events}"
            )
        if not 0.0 <= self.add_probability <= 1.0:
            raise FaultError(
                f"churn add_probability must be in [0, 1], "
                f"got {self.add_probability}"
            )

    def describe(self) -> str:
        return (
            f"churn(period={self.period}, max={self.max_events}, "
            f"p_add={self.add_probability})"
        )


# ---------------------------------------------------------------------------
# The lying agent wrapper
# ---------------------------------------------------------------------------


class LyingAgent(Agent):
    """Run the wrapped agent's protocol, interleaving seeded lies.

    The runtime's own-color write rule is relaxed for agents carrying the
    ``byzantine`` marker attribute: a forged foreign-color :class:`Write`
    is stored (and announced in the trace as a FORGE event) instead of
    raising :class:`~repro.errors.ProtocolError`.  Honest agents keep the
    strict rule — the marker is the *only* gate.
    """

    #: Marker the runtime's Write path checks before enforcing the
    #: own-color rule.  Class attribute on purpose: any instance qualifies.
    byzantine = True

    def __init__(
        self,
        inner: Agent,
        behaviors: Tuple[str, ...],
        power: int,
        seed: int = 0,
        on_lie: Optional[Callable[..., None]] = None,
    ):
        super().__init__(inner.color, rng=inner.rng)
        self.inner = inner
        self.behaviors = tuple(behaviors)
        self.power = power
        #: Private adversary randomness, independent of the protocol rng so
        #: enabling lies never perturbs the honest protocol's choices.
        self.lie_rng = random.Random(
            f"byz:{seed}:{power}:{','.join(behaviors)}"
        )
        self.quota = 3 * power
        self.probability = min(0.6, 0.15 * power)
        self.lies_told = 0
        self._on_lie = on_lie
        #: Foreign signs observed in NodeViews — forgery/replay material.
        self._seen_foreign: List[Sign] = []

    # Forward observability plumbing like FaultedAgent does, so a lying
    # wrapper is invisible to the metrics layer.
    @property
    def obs_registry(self) -> Any:
        return getattr(self.inner, "obs_registry", None)

    @obs_registry.setter
    def obs_registry(self, value: Any) -> None:
        self.inner.obs_registry = value

    @property
    def obs_clock(self) -> Any:
        return getattr(self.inner, "obs_clock", None)

    def _observe(self, view: Any) -> None:
        if not isinstance(view, NodeView):
            return
        for sign in view.signs:
            if sign.color is None or sign.color == self.color:
                continue
            self._seen_foreign.append(sign)
        if len(self._seen_foreign) > _MEMORY:
            del self._seen_foreign[: len(self._seen_foreign) - _MEMORY]

    def _victims(self) -> List[Color]:
        out: List[Color] = []
        for sign in self._seen_foreign:
            if sign.color is not None and sign.color not in out:
                out.append(sign.color)
        return out

    def _record(self, behavior: str, **info: Any) -> None:
        self.lies_told += 1
        if self._on_lie is not None:
            self._on_lie(behavior, **info)

    def _forge_write(self, behavior: str) -> Optional[Write]:
        """Build the extra lying Write for ``behavior`` (None = no material)."""
        rng = self.lie_rng
        if behavior == "forge-visit":
            visited = [
                s for s in self._seen_foreign if s.kind == DFS_VISITED
            ]
            if visited:
                victim = rng.choice(visited)
                base = victim.payload[0] if victim.payload else 0
                forged = base + 1 + rng.randrange(5)
                self._record(
                    behavior,
                    victim=victim.color.name or "?",
                    number=forged,
                )
                return Write(
                    Sign(
                        kind=DFS_VISITED,
                        color=victim.color,
                        payload=(forged,),
                    )
                )
            # No foreign map material yet: lie about the *own* map instead
            # (a wildly out-of-sequence visit number — a gap anomaly).
            forged = 100 + rng.randrange(50)
            self._record(behavior, victim=self.color.name or "?", number=forged)
            return Write(
                Sign(kind=DFS_VISITED, color=self.color, payload=(forged,))
            )
        if behavior == "spoof-owner":
            victims = self._victims()
            if not victims:
                return None
            victim = rng.choice(victims)
            self._record(behavior, victim=victim.name or "?")
            return Write(Sign(kind=HOMEBASE, color=victim))
        if behavior == "false-announce":
            self._record(behavior)
            return Write(Sign(kind=LEADER_ANNOUNCE, color=self.color))
        if behavior == "replay":
            if not self._seen_foreign:
                return None
            stale = rng.choice(self._seen_foreign)
            self._record(
                behavior, victim=stale.color.name or "?", sign=stale.kind
            )
            return Write(
                Sign(kind=stale.kind, color=stale.color, payload=stale.payload)
            )
        return None

    def protocol(self, start: NodeView) -> ProtocolGen:
        gen = self.inner.protocol(start)
        self._observe(start)
        send_value: Any = None
        while True:
            try:
                action = gen.send(send_value)
            except StopIteration as stop:
                return stop.value
            lying = (
                self.lies_told < self.quota
                and self.lie_rng.random() < self.probability
            )
            if lying:
                behavior = self.lie_rng.choice(self.behaviors)
                if behavior == "suppress" and isinstance(action, Write):
                    # Swallow the honest write: observe the node instead so
                    # the step count stays plausible, answer the inner
                    # protocol with the None a Write would have returned.
                    self._record(behavior, sign=action.sign.kind)
                    view = yield Read()
                    self._observe(view)
                    send_value = None
                    continue
                if behavior != "suppress":
                    lie = self._forge_write(behavior)
                    if lie is not None:
                        # Extra action: the result (None) is discarded and
                        # the honest action still executes right after.
                        yield lie
            result = yield action
            self._observe(result)
            send_value = result

    def __repr__(self) -> str:
        return (
            f"LyingAgent({self.inner!r}, power={self.power}, "
            f"behaviors={self.behaviors}, told={self.lies_told})"
        )


# ---------------------------------------------------------------------------
# Dynamic-network churn
# ---------------------------------------------------------------------------


class ChurnableNetwork(AnonymousNetwork):
    """An :class:`~repro.graphs.network.AnonymousNetwork` that can mutate.

    The base class is deliberately immutable (analysis code relies on it);
    this subclass exists *only* for the churn driver and adds the two
    in-place mutations it needs.  Connectivity is the caller's contract:
    :meth:`remove_edge` refuses bridges.
    """

    @classmethod
    def from_network(cls, net: AnonymousNetwork) -> "ChurnableNetwork":
        """A mutable copy of ``net`` (same indices, ports and edges)."""
        return cls(
            net.num_nodes,
            net.edges(),
            name=net.name,
            require_connected=False,
        )

    def remove_edge(self, record: EdgeRecord) -> None:
        """Remove one edge record (refuses bridges and unknown records)."""
        if record not in self._edges:
            raise GraphError(f"no such edge record {record!r}")
        if self.is_bridge(record):
            raise GraphError(
                f"refusing to remove bridge {record!r}: churn must keep "
                f"the network connected"
            )
        u, pu, v, pv = record
        del self._ports[u][pu]
        del self._ports[v][pv]
        self._edges.remove(record)

    def add_edge(self, u: int, pu: PortLabel, v: int, pv: PortLabel) -> None:
        """Add one edge with fresh (locally unused) port labels."""
        self._check_node(u)
        self._check_node(v)
        if u == v and pu == pv:
            raise GraphError(
                f"loop at node {u} must have two distinct port labels"
            )
        for node, port in ((u, pu), (v, pv)):
            if port in self._ports[node]:
                raise GraphError(f"duplicate port label {port!r} at node {node}")
        self._ports[u][pu] = (v, pv)
        self._ports[v][pv] = (u, pu)
        self._edges.append((u, pu, v, pv))
        if u == v or any(
            (a, b) in ((u, v), (v, u))
            for (a, _, b, _) in self._edges[:-1]
        ):
            self._simple = False


class ChurnDriver:
    """Step-hook that applies an :class:`EdgeChurn` spec to a live network.

    Registered on ``sim.step_hooks`` by :meth:`FaultPlan.install`; invoked
    once per scheduler step *before* the step executes, so a topology
    change never interrupts an atomic action.  Every change is journaled
    (``churn-add`` / ``churn-drop``) and emitted as a CHURN trace event.
    """

    def __init__(
        self, spec: EdgeChurn, network: ChurnableNetwork, log: Any
    ):
        self.spec = spec
        self.network = network
        self.log = log
        self.rng = random.Random(f"churn:{spec.seed}:{spec.period}")
        self.events = 0
        self._label_counter = 0

    def _fresh_label(self) -> PortLabel:
        self._label_counter += 1
        return ("churn", self._label_counter)

    def _try_add(self, sim: Any, steps: int) -> bool:
        net = self.network
        adjacency = net.adjacency_sets()
        candidates = [
            (u, v)
            for u in net.nodes()
            for v in range(u + 1, net.num_nodes)
            if v not in adjacency[u]
        ]
        if not candidates:
            return False
        u, v = self.rng.choice(candidates)
        pu, pv = self._fresh_label(), self._fresh_label()
        net.add_edge(u, pu, v, pv)
        self.log.record("churn-add", u=u, v=v)
        sim.emit_system(
            "churn", node=u, step=steps, dest=v, detail=f"added edge {u}-{v}"
        )
        return True

    def _try_drop(self, sim: Any, steps: int) -> bool:
        net = self.network
        candidates = [
            rec
            for rec in net.edges()
            if rec[0] != rec[2] and not net.is_bridge(rec)
        ]
        if not candidates:
            return False
        record = self.rng.choice(candidates)
        net.remove_edge(record)
        u, _, v, _ = record
        self.log.record("churn-drop", u=u, v=v)
        sim.emit_system(
            "churn",
            node=u,
            step=steps,
            dest=v,
            detail=f"removed edge {u}-{v}",
        )
        return True

    def __call__(self, sim: Any, steps: int) -> None:
        if self.events >= self.spec.max_events:
            return
        if steps == 0 or steps % self.spec.period != 0:
            return
        if self.rng.random() < self.spec.add_probability:
            fired = self._try_add(sim, steps) or self._try_drop(sim, steps)
        else:
            fired = self._try_drop(sim, steps) or self._try_add(sim, steps)
        if fired:
            self.events += 1
