"""Crash-fault agent wrappers.

A *crash* in the whiteboard model is an agent that stops taking effective
steps forever: it neither terminates nor acts, which from every other
agent's perspective is indistinguishable from being arbitrarily slow
(asynchrony) — until nothing else can make progress either, at which point
the runtime classifies the stall.  :class:`FaultedAgent` wraps any
:class:`~repro.sim.agent.Agent` and injects that behavior at a declaratively
chosen moment: after a fixed number of actions (``crash_after``) or at the
first action of a given kind (``crash_on``).

Two design points that matter for recovery:

* the dead wait is **re-yielded forever** — a spurious wake-up (a board
  change that happens to satisfy some predicate) can never resurrect a
  crashed agent through the unreachable-code path the old
  ``sim.faults.CrashAfter`` had;
* the crash fires **once** (``crashed`` is a consumed flag) — when the
  watchdog restarts the agent from its home-base checkpoint, the fresh
  ``protocol()`` generator runs the inner protocol clean, which is exactly
  the fault model "the agent failed and was restarted".
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Optional, Union

from ..sim.actions import (
    Erase,
    Log,
    Move,
    NodeView,
    Read,
    TryAcquire,
    WaitUntil,
    Write,
)
from ..sim.agent import Agent, ProtocolGen

#: Picklable names for the action kinds a :class:`FaultedAgent` can target
#: (fault plans are shipped to worker processes; classes stay local).
ACTION_KINDS: Dict[str, type] = {
    "move": Move,
    "read": Read,
    "write": Write,
    "erase": Erase,
    "try-acquire": TryAcquire,
    "wait-until": WaitUntil,
    "log": Log,
}


def resolve_action_kind(kind: Union[str, type]) -> type:
    """Map a kind name (or an action class, passed through) to its class."""
    if isinstance(kind, type):
        return kind
    try:
        return ACTION_KINDS[kind]
    except KeyError:
        raise ValueError(
            f"unknown action kind {kind!r}; expected one of "
            f"{sorted(ACTION_KINDS)}"
        ) from None


class FaultedAgent(Agent):
    """Run the wrapped agent's protocol, crashing at the configured moment.

    Parameters
    ----------
    inner:
        The agent to wrap (color and rng are inherited).
    crash_after:
        Crash once this many inner actions have executed.
    crash_on:
        Crash at the first inner action of this kind (class or name from
        :data:`ACTION_KINDS`).  May be combined with ``crash_after``:
        whichever trigger fires first wins.
    on_fire:
        Optional callback ``(agent, reason)`` invoked when the crash fires —
        the fault plan uses it to journal the injection.
    """

    def __init__(
        self,
        inner: Agent,
        crash_after: Optional[int] = None,
        crash_on: Optional[Union[str, type]] = None,
        on_fire: Optional[Callable[["FaultedAgent", str], None]] = None,
    ):
        super().__init__(inner.color, rng=inner.rng)
        self.inner = inner
        self.crash_after = crash_after
        self.crash_on = resolve_action_kind(crash_on) if crash_on else None
        #: Consumed flag: a restarted agent runs the inner protocol clean.
        self.crashed = False
        self._on_fire = on_fire

    # The runtime hands observability objects to ``rec.agent`` (this
    # wrapper) but the inner protocol is what actually keeps a PhaseClock;
    # forward both directions so fault injection is invisible to metrics.
    @property
    def obs_registry(self) -> Any:
        return getattr(self.inner, "obs_registry", None)

    @obs_registry.setter
    def obs_registry(self, value: Any) -> None:
        self.inner.obs_registry = value

    @property
    def obs_clock(self) -> Any:
        return getattr(self.inner, "obs_clock", None)

    def _crash_reason(self) -> str:
        # Keep the exact legacy diagnostic strings: deadlock messages quote
        # them, and the PR-1 tests assert on them.
        if self.crash_on is not None:
            return f"agent crashed at first {self.crash_on.__name__}"
        return f"agent crashed after {self.crash_after} actions"

    def _should_crash(self, action: Any, taken: int) -> bool:
        if self.crashed:
            return False
        if self.crash_after is not None and taken >= self.crash_after:
            return True
        return self.crash_on is not None and isinstance(action, self.crash_on)

    def protocol(self, start: NodeView) -> ProtocolGen:
        gen = self.inner.protocol(start)
        taken = 0
        send_value: Any = None
        while True:
            try:
                action = gen.send(send_value)
            except StopIteration as stop:
                return stop.value
            if self._should_crash(action, taken):
                self.crashed = True
                reason = self._crash_reason()
                if self._on_fire is not None:
                    self._on_fire(self, reason)
                while True:
                    # Re-yield the dead wait forever: even if a board change
                    # spuriously satisfies a predicate and the runtime wakes
                    # us, a crashed agent stays crashed.
                    yield WaitUntil(lambda view: False, reason=reason)
            taken += 1
            send_value = yield action

    def __repr__(self) -> str:
        trigger = (
            f"crash_on={self.crash_on.__name__}"
            if self.crash_on is not None
            else f"crash_after={self.crash_after}"
        )
        return f"FaultedAgent({self.inner!r}, {trigger})"
