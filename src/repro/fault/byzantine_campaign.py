"""The Byzantine campaign: detected-vs-fooled rates per adversary power.

Extends the fault campaign's outcome vocabulary with the three endings a
*lying* adversary makes possible:

* ``detected`` — the run completed but the cheat evidence testifies: the
  detector surfaced findings, the aggregate reports split-brain, or a
  journaled board fault explains the wrong answer.  The lie happened and
  the system can *prove* it;
* ``aborted-correctly`` — the abort-on-detection policy fired
  (:class:`~repro.errors.CheatDetected`): the run stopped on live
  evidence instead of publishing a result;
* ``silently-fooled`` — the damning bucket: lies (or churn) fired, the
  run completed with a **wrong** outcome, and nothing — detector,
  provenance journal, aggregation — noticed.  The measured quantity of
  this campaign is precisely how often adversaries of each power land
  here versus in the detected buckets.

Cases with **zero** Byzantine injections classify through the crash-only
path (:func:`repro.fault.campaign._classify_completion`) unchanged — the
power-0 column of the sweep is byte-equivalent to the plain fault campaign
on the same plans, which the property suite pins down.

The grid is ``instances × powers × scenarios × plan slots`` in closed form
(shardable, resumable, digest-invariant across worker and shard counts,
like every :class:`~repro.campaign.engine.CampaignSpec`).  Per-power
outcome histograms stream through a checkpointed stage, so the
detected-vs-fooled table survives kill/resume exactly.
"""

from __future__ import annotations

import json
import random
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..campaign.engine import (
    CampaignEngine,
    CampaignSpec,
    FailureKeeper,
    MetricsStage,
    OutcomeCounter,
    PredicateCounter,
    RowCollector,
    Shard,
    Stage,
)
from ..core.elect import ElectAgent
from ..core.feasibility import elect_prediction
from ..core.result import aggregate
from ..errors import CheatDetected, ProtocolError, ReproError
from ..obs import flight
from ..obs.ledger import LedgerRow
from ..sim.runtime import Simulation
from ..sim.scheduler import RandomScheduler
from ..trace.invariants import THEOREM31_CONSTANT, audit_trace
from ..trace.sinks import MemorySink
from .byzantine import ByzantineAgent, EdgeChurn
from .campaign import (
    DETECTED,
    ELECTED,
    IMPOSSIBLE,
    OUTCOMES,
    RECOVERED,
    CampaignConfig,
    CampaignReport,
    CampaignRow,
    _classify_completion,
    _pair_context,
    _pair_seed,
    standard_battery,
)
from .detect import CheatDetector
from .metrics import count_outcome
from .plan import FaultPlan, random_fault_plans

#: Byzantine-specific outcomes (appended to the crash-fault vocabulary).
DETECTED_CHEAT = "detected"
FOOLED = "silently-fooled"
ABORTED = "aborted-correctly"
BYZ_OUTCOMES: Tuple[str, ...] = OUTCOMES + (DETECTED_CHEAT, ABORTED, FOOLED)

#: Scenario axis of the grid: ``(name, behaviors, with_churn)``.
SCENARIOS: Tuple[Tuple[str, Tuple[str, ...], bool], ...] = (
    ("forge", ("forge-visit", "spoof-owner"), False),
    ("announce", ("false-announce", "replay"), False),
    ("suppress", ("suppress",), False),
    ("churn", ("forge-visit", "replay"), True),
)


@dataclass(frozen=True)
class ByzantineConfig(CampaignConfig):
    """Campaign config plus the detector policy knobs."""

    #: Detector strictness 1–3 (see :class:`~repro.fault.detect.CheatDetector`).
    strictness: int = 2
    #: Abort the run on the first fresh finding (``aborted-correctly``).
    abort: bool = False
    #: Detection sweep period, in scheduler steps.
    check_every: int = 25


@dataclass
class ByzantineRow(CampaignRow):
    """A campaign row annotated with its adversary coordinates."""

    #: Grid adversary power (max over the plan's Byzantine specs; 0 = none).
    power: int = 0
    #: Scenario name from :data:`SCENARIOS` (empty for ad-hoc plans).
    scenario: str = ""
    #: Detector findings surfaced during (and after) the run.
    findings: int = 0

    def to_dict(self) -> Dict[str, Any]:
        out = super().to_dict()
        out["power"] = self.power
        out["scenario"] = self.scenario
        out["findings"] = self.findings
        return out


def _plan_adversary(plan: FaultPlan) -> Tuple[int, int, bool]:
    """``(grid power, summed power, has churn)`` of a plan's specs."""
    powers = [
        spec.power for spec in plan.faults if isinstance(spec, ByzantineAgent)
    ]
    churn = any(isinstance(spec, EdgeChurn) for spec in plan.faults)
    return (max(powers) if powers else 0, sum(powers), churn)


def _plan_scenario(plan: FaultPlan) -> str:
    """Scenario encoded in a grid plan's ``byz:<scenario>:p<k>:…`` name."""
    if plan.name.startswith("byz:"):
        parts = plan.name.split(":")
        if len(parts) >= 2:
            return parts[1]
    return ""


def _evaluate_byz_pair(
    task: Tuple[int, Any, FaultPlan, CampaignConfig]
) -> ByzantineRow:
    """Run and classify one pair under cheat detection.  Module-level:
    pickled to pool workers, like :func:`~repro.fault.campaign._evaluate_pair`.

    The seeds, scheduler, agents and watchdog are built *identically* to
    the crash-only evaluator — the detector is the only addition, and its
    sweeps are passive — so a plan with no Byzantine specs classifies
    exactly as the fault campaign would (the power-0 equivalence
    property).
    """
    index, instance, plan, cfg = task
    pair_seed = _pair_seed(cfg.seed, index, plan.name)
    predicted = elect_prediction(instance.network, instance.placement).succeeds
    power, summed_power, churn = _plan_adversary(plan)

    colors = instance.placement.fresh_colors()
    agents = [
        ElectAgent(color, rng=random.Random(f"{pair_seed}:{i}"))
        for i, color in enumerate(colors)
    ]
    sink = MemorySink()
    sim = Simulation(
        instance.network,
        list(zip(agents, instance.placement.homes)),
        scheduler=RandomScheduler(seed=pair_seed),
        trace=sink,
        fault=plan,
        watchdog=cfg.watchdog(pair_seed),
        max_steps=cfg.max_steps,
    )
    detector = CheatDetector(
        strictness=getattr(cfg, "strictness", 2),
        abort=getattr(cfg, "abort", False),
        check_every=getattr(cfg, "check_every", 25),
    ).install(sim)

    row = ByzantineRow(
        index=index,
        instance=instance.label,
        family=instance.family,
        plan=plan.describe(),
        predicted=predicted,
        outcome=DETECTED,
        power=power,
        scenario=_plan_scenario(plan),
    )
    result = None
    try:
        result = sim.run()
        # One final passive sweep so lies told after the last periodic
        # check still count (and can still abort, under that policy).
        detector.sweep(sim, result.steps)
    except CheatDetected as exc:
        row.outcome = ABORTED
        row.detail = f"CheatDetected: {exc}"
        result = None
    except ReproError as exc:
        # Loud failure: classified stall, deadlock, budget livelock, or a
        # protocol error tripped by lies/churn (e.g. a vanished port).
        row.detail = f"{type(exc).__name__}: {exc}"
        result = None

    injections = (
        sim.fault_state.log.kinds() if sim.fault_state is not None else ()
    )
    row.injections = injections
    row.findings = len(detector.findings)
    byz_fired = any(
        kind.startswith("byzantine-") or kind.startswith("churn-")
        for kind in injections
    )

    if result is not None:
        row.steps = result.steps
        row.moves = result.total_moves
        row.restarts = sum(result.restarts)
        row.stalls = len(result.stall_events)
        if not byz_fired:
            # No lie, no churn: exactly the crash-only classification.
            row.outcome, row.detail = _classify_completion(
                sim, result, predicted
            )
        else:
            row.outcome, row.detail = _classify_byzantine(
                sim, result, predicted, detector
            )
        if cfg.audit and sink.header is not None:
            # Restarts redo work and lies/churn add writes and detours;
            # scale the Theorem 3.1 gauge by both budgets so the audit
            # still flags runaway move counts without flagging recovery.
            scale = (1 + cfg.max_restarts) * (
                1 + summed_power + (1 if churn else 0)
            )
            reports = audit_trace(
                sink.events,
                header=sink.header,
                moves=result.moves,
                accesses=result.accesses,
                steps=result.steps,
                theorem31_constant=THEOREM31_CONSTANT * scale,
            )
            row.audit_failures = tuple(
                f"{rep.name}: {rep.detail}" for rep in reports if not rep.ok
            )
    else:
        row.stalls = len(sim.watchdog.stall_events) if sim.watchdog else 0
        row.restarts = sim.watchdog.total_restarts if sim.watchdog else 0
        if byz_fired and row.outcome == DETECTED:
            # A loud failure in a lying run is still a detection — the
            # Byzantine vocabulary just names the bucket precisely.
            row.outcome = DETECTED_CHEAT
    return row


def _classify_byzantine(
    sim: Simulation,
    result: Any,
    predicted: bool,
    detector: CheatDetector,
) -> Tuple[str, str]:
    """Classify a completed run in which lies or churn actually fired."""
    if detector.findings:
        first = detector.findings[0]
        return (
            DETECTED_CHEAT,
            f"{len(detector.findings)} finding(s); first: {first.message}",
        )
    try:
        election = aggregate(
            result.results,
            total_moves=result.total_moves,
            total_accesses=result.total_accesses,
            steps=result.steps,
        )
    except ProtocolError as exc:
        # Split-brain reports under active lying: the inconsistency IS the
        # detection (two leaders cannot both be right).
        return DETECTED_CHEAT, f"inconsistent reports: {exc}"

    correct = (
        election.elected
        if predicted
        else (not election.elected and election.failed)
    )
    if correct:
        if any(result.restarts):
            return RECOVERED, (
                f"despite lies, after {sum(result.restarts)} restart(s)"
            )
        return ELECTED, "correct despite adversary"

    # Wrong answer.  Board-fault evidence still counts as detection …
    fault_state = sim.fault_state
    findings = fault_state.audit_boards() if fault_state is not None else []
    if findings:
        return DETECTED_CHEAT, "wrong completion (" + "; ".join(findings[:2]) + ")"
    # … otherwise the adversary won silently.  This is the measured bucket.
    got = "elected" if election.elected else "failed"
    return FOOLED, (
        f"predicted {'electable' if predicted else 'impossible'} but run "
        f"{got}; no detector finding, no provenance evidence"
    )


class PowerRateStage(Stage):
    """Streamed per-power outcome histogram (``p<k>:<outcome>`` keys).

    Checkpointed, so a resumed sweep's detected-vs-fooled table reflects
    every case ever committed, not just this invocation's.
    """

    name = "power-rates"

    def __init__(self) -> None:
        self.counts: Dict[str, int] = {}

    def observe(self, index: int, result: Any) -> None:
        key = f"p{getattr(result, 'power', 0)}:{result.outcome}"
        self.counts[key] = self.counts.get(key, 0) + 1

    def state_dict(self) -> Dict[str, Any]:
        return {"counts": dict(self.counts)}

    def load_state(self, state: Dict[str, Any]) -> None:
        self.counts = {k: int(v) for k, v in state.get("counts", {}).items()}


@dataclass
class ByzantineReport(CampaignReport):
    """Fault-campaign report plus the per-power detected-vs-fooled table."""

    power_counts: Optional[Dict[str, int]] = None

    @property
    def counts(self) -> Dict[str, int]:
        out = {name: 0 for name in BYZ_OUTCOMES}
        if self.streamed_counts is not None:
            for name, n in self.streamed_counts.items():
                out[name] = out.get(name, 0) + int(n)
            return out
        for row in self.rows:
            out[row.outcome] = out.get(row.outcome, 0) + 1
        return out

    @property
    def fooled_rows(self) -> List[CampaignRow]:
        return [r for r in self.rows if r.outcome == FOOLED]

    @property
    def ok(self) -> bool:
        """Campaign verdict: the crash-era criteria *plus* no power-0 case
        in the fooled bucket (an honest sweep can't be silently fooled)."""
        if not super().ok:
            return False
        if self.power_counts is not None:
            return self.power_counts.get(f"p0:{FOOLED}", 0) == 0
        return not any(
            getattr(r, "power", 0) == 0 and r.outcome == FOOLED
            for r in self.rows
        )

    def power_table(self) -> Dict[int, Dict[str, int]]:
        from ..analysis.robustness import power_outcome_table

        counts = self.power_counts
        if counts is None:
            counts = {}
            for row in self.rows:
                key = f"p{getattr(row, 'power', 0)}:{row.outcome}"
                counts[key] = counts.get(key, 0) + 1
        return power_outcome_table(counts)

    def to_dict(self) -> Dict[str, Any]:
        from ..analysis.robustness import detection_rates

        out = super().to_dict()
        table = self.power_table()
        out["power_table"] = {
            str(power): dict(outcomes) for power, outcomes in table.items()
        }
        out["detection_rates"] = {
            str(power): rate for power, rate in detection_rates(table).items()
        }
        return out

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    def render(self) -> str:
        from ..analysis.robustness import render_detection_table

        mode = " [streamed]" if self.streamed else ""
        lines = [
            f"byzantine campaign: {self.total_pairs} cases, "
            f"seed={self.seed}{mode}"
        ]
        counts = self.counts
        for name in BYZ_OUTCOMES:
            lines.append(f"  {name:>22}: {counts.get(name, 0)}")
        lines.append(render_detection_table(self.power_table()))
        for row in self.impossible_rows:
            lines.append(
                f"  IMPOSSIBLE #{row.index} {row.instance} / {row.plan}: "
                f"{row.detail}"
            )
        lines.append("verdict: " + ("OK" if self.ok else "FAILED"))
        return "\n".join(lines)


class ByzantineCampaignSpec(CampaignSpec):
    """The Byzantine grid: ``instances × powers × scenarios × plan slots``.

    Every case starts from a crash-only base plan (so lies always compete
    with ordinary faults, as in a real deployment) and, at power > 0,
    appends ``min(power, num_agents)`` lying-agent specs drawn by a
    case-seeded rng — plus an :class:`~repro.fault.byzantine.EdgeChurn`
    spec in the churn scenario.  Power 0 runs the base plan untouched.
    """

    kind = "byzantine"
    span_name = "byzantine.case"

    def __init__(
        self,
        instances: Optional[Sequence[Any]] = None,
        cases: int = 512,
        powers: Tuple[int, ...] = (0, 1, 2, 3),
        config: Optional[ByzantineConfig] = None,
        quick: bool = False,
        collect: bool = False,
    ):
        self.config = config or ByzantineConfig()
        if instances is None:
            instances = standard_battery(quick=quick)
        self.instances = list(instances)
        if not self.instances:
            raise ValueError("campaign needs at least one instance")
        if not powers:
            raise ValueError("campaign needs at least one adversary power")
        self.powers = tuple(powers)
        self.cases = cases
        self.campaign = (
            f"byzantine:seed={self.config.seed}:cases={cases}"
            f":powers={','.join(map(str, self.powers))}"
        )
        cells = len(self.instances) * len(self.powers) * len(SCENARIOS)
        self._slots = max(1, -(-cases // cells))
        self._plan_cache: Dict[int, List[FaultPlan]] = {}
        self._chash_cache: Dict[str, Tuple[str, int]] = {}
        self.counter = OutcomeCounter()
        self.power_rates = PowerRateStage()
        self.audit_counter = PredicateCounter(
            "audit-failures", lambda row: bool(row.audit_failures)
        )
        self.failures = FailureKeeper(self.case_failed)
        self.collector: Optional[RowCollector] = (
            RowCollector() if collect else None
        )

    @property
    def total(self) -> int:
        return self.cases

    def _base_plans(self, j: int) -> List[FaultPlan]:
        plans = self._plan_cache.get(j)
        if plans is None:
            inst = self.instances[j]
            plans = random_fault_plans(
                self._slots,
                num_agents=inst.placement.num_agents,
                num_nodes=inst.network.num_nodes,
                seed=_pair_seed(self.config.seed, j, inst.label),
                kinds=("crash-at-step", "crash-on-action"),
            )
            self._plan_cache[j] = plans
        return plans

    def _coords(self, index: int) -> Tuple[int, int, int, int]:
        """``(instance j, power index, scenario index, plan slot)``."""
        j = index % len(self.instances)
        rest = index // len(self.instances)
        p_i = rest % len(self.powers)
        rest //= len(self.powers)
        s_i = rest % len(SCENARIOS)
        slot = rest // len(SCENARIOS)
        return j, p_i, s_i, slot

    def _plan(self, index: int) -> FaultPlan:
        j, p_i, s_i, slot = self._coords(index)
        inst = self.instances[j]
        base = self._base_plans(j)[slot]
        power = self.powers[p_i]
        scenario, behaviors, churn = SCENARIOS[s_i]
        name = f"byz:{scenario}:p{power}:{base.name}"
        if power == 0:
            return FaultPlan(faults=base.faults, name=name)
        srng = random.Random(f"{_pair_seed(self.config.seed, index, name)}:byz")
        num_agents = inst.placement.num_agents
        liars = sorted(srng.sample(range(num_agents), min(power, num_agents)))
        specs: Tuple[Any, ...] = tuple(
            ByzantineAgent(
                agent=a,
                behaviors=behaviors,
                power=power,
                seed=srng.randrange(1 << 16),
            )
            for a in liars
        )
        if churn:
            specs = specs + (
                EdgeChurn(
                    period=30,
                    max_events=4,
                    add_probability=0.5,
                    seed=srng.randrange(1 << 16),
                ),
            )
        return FaultPlan(faults=base.faults + specs, name=name)

    def task(self, index: int) -> Tuple[int, Any, FaultPlan, ByzantineConfig]:
        j, _, _, _ = self._coords(index)
        return (index, self.instances[j], self._plan(index), self.config)

    @property
    def evaluate(self) -> Any:
        return _evaluate_byz_pair

    def context(self, index: int) -> "flight.TraceContext":
        plan = self._plan(index)
        return _pair_context(self.config.seed, index, plan.name)

    def ledger_row(self, index: int, row: ByzantineRow) -> LedgerRow:
        from ..graphs.canonical import canonical_hash

        _, inst, plan, cfg = self.task(index)
        cached = self._chash_cache.get(inst.label)
        if cached is None:
            chash = canonical_hash(
                inst.network, inst.placement.bicoloring(inst.network)
            )
            budget = (
                THEOREM31_CONSTANT
                * inst.placement.num_agents
                * max(1, inst.network.num_edges)
            )
            cached = (chash, budget)
            self._chash_cache[inst.label] = cached
        chash, budget = cached
        ctx = _pair_context(cfg.seed, index, plan.name)
        return LedgerRow(
            kind=self.kind,
            campaign=self.campaign,
            case_index=row.index,
            instance=row.instance,
            family=row.family,
            chash=chash,
            seed=_pair_seed(cfg.seed, index, plan.name),
            predicted="electable" if row.predicted else "impossible",
            outcome=row.outcome,
            detail=f"[p{row.power}:{row.scenario}] {row.detail}",
            moves=row.moves,
            budget=budget,
            steps=row.steps,
            trace_id=ctx.trace_id,
            span_id=ctx.span_id,
        )

    def spill_record(self, index: int, row: ByzantineRow) -> Dict[str, Any]:
        record = row.to_dict()
        record["case_index"] = index
        return record

    def case_failed(self, row: ByzantineRow) -> bool:
        if row.outcome == IMPOSSIBLE:
            return True
        # A power-0 case has no adversary: landing in the fooled bucket
        # there would mean the detector itself broke classification.
        if row.power == 0 and row.outcome == FOOLED:
            return True
        return bool(row.audit_failures)

    def stages(self) -> Sequence[Stage]:
        stages: List[Stage] = [
            self.counter,
            self.power_rates,
            self.audit_counter,
            MetricsStage(lambda row: count_outcome(row.outcome)),
            self.failures,
        ]
        if self.collector is not None:
            stages.append(self.collector)
        return stages

    def summarize(self, stages: Sequence[Stage]) -> Dict[str, Any]:
        from ..analysis.robustness import detection_rates, power_outcome_table

        rates = next(
            (s for s in stages if isinstance(s, PowerRateStage)), None
        )
        if rates is None or not rates.counts:
            return {}
        table = power_outcome_table(rates.counts)
        return {
            "power_table": {str(p): dict(row) for p, row in table.items()},
            "detection_rates": {
                str(p): rate for p, rate in detection_rates(table).items()
            },
        }

    def render_summary(self, extras: Dict[str, Any]) -> Optional[str]:
        from ..analysis.robustness import render_detection_table

        table = {
            int(p): row for p, row in extras.get("power_table", {}).items()
        }
        return render_detection_table(table) if table else None

    def describe(self) -> Dict[str, Any]:
        cfg = self.config
        return {
            "kind": self.kind,
            "campaign": self.campaign,
            "seed": cfg.seed,
            "cases": self.cases,
            "powers": list(self.powers),
            "scenarios": [name for name, _, _ in SCENARIOS],
            "instances": [inst.label for inst in self.instances],
            "timeout": cfg.timeout,
            "max_restarts": cfg.max_restarts,
            "max_steps": cfg.max_steps,
            "audit": cfg.audit,
            "strictness": cfg.strictness,
            "abort": cfg.abort,
            "check_every": cfg.check_every,
        }


def run_byzantine_campaign(
    instances: Optional[Sequence[Any]] = None,
    cases: int = 512,
    powers: Tuple[int, ...] = (0, 1, 2, 3),
    config: Optional[ByzantineConfig] = None,
    workers: Optional[int] = 1,
    quick: bool = False,
    ledger: Optional[Any] = None,
    stream: bool = False,
    shard: Optional[Any] = None,
    resume: bool = False,
    checkpoint_every: int = 64,
    max_cases: Optional[int] = None,
    spill: Optional[str] = None,
) -> ByzantineReport:
    """Sweep the Byzantine grid; return the report with per-power rates.

    Deterministic in ``(instances, cases, powers, config)``: worker count
    and sharding change only wall-clock time, never the merged ledger
    digest — the engine contract the fault campaign already honors.
    """
    cfg = config or ByzantineConfig()
    spec = ByzantineCampaignSpec(
        instances=instances,
        cases=cases,
        powers=powers,
        config=cfg,
        quick=quick,
        collect=not stream,
    )
    if shard is None:
        shard = Shard()
    elif not isinstance(shard, Shard):
        shard = Shard.parse(shard)
    engine = CampaignEngine(
        spec,
        ledger=ledger,
        workers=workers,
        shard=shard,
        checkpoint_every=checkpoint_every,
        max_cases=max_cases,
        spill=spill,
    )
    result = engine.run(resume=resume)
    if stream:
        return ByzantineReport(
            rows=list(spec.failures.kept),
            seed=cfg.seed,
            streamed_counts=dict(result.counts),
            streamed_total=result.resumed + result.processed,
            streamed_audit_failures=spec.audit_counter.count,
            power_counts=dict(spec.power_rates.counts),
        )
    assert spec.collector is not None
    return ByzantineReport(
        rows=list(spec.collector.rows),
        seed=cfg.seed,
        power_counts=dict(spec.power_rates.counts),
    )
