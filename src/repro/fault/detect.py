"""Cheat detection: provenance audits and cross-board consistency sweeps.

The qualitative model makes one kind of lie *structurally impossible* to
hide: a sign carries its writer's color, and the runtime knows who actually
performed every write.  :class:`CheatDetector` turns that into a measurable
detection discipline.  Installed on a simulation, it

* replaces every plain whiteboard with a bare (fault-free)
  :class:`~repro.fault.boards.FaultyWhiteboard` so all writes are
  provenance-journaled (boards a fault plan already replaced are kept);
* registers a periodic step-hook that sweeps the boards for evidence and
  emits one DETECT trace event per *new* finding;
* optionally aborts the run on fresh evidence
  (:class:`~repro.errors.CheatDetected` — the game-theoretic
  abort-on-detection policy: a detected cheater forfeits).

Detection strictness is cumulative — each level includes the previous:

1. **provenance** — a live sign whose claimed color differs from its
   recorded writer (catches ``forge-visit``, ``spoof-owner``, ``replay``
   of foreign signs: any foreign-color forgery);
2. **consistency** (default) — cross-board invariants of the honest
   protocols: a DFS visit number appearing twice for one color, more than
   one distinct leader-announcement color, one color's home-base mark on
   two nodes;
3. **strict** — per-color visit-number *gap* analysis (an honest DFS
   numbers nodes contiguously from 0) and per-board identical duplicates
   of structural signs (catches same-board replays and own-color number
   lies that level 1 cannot attribute).

Sweeps are **passive** (pure board reads, no mutation, no agent
perturbation), which gives the monotonicity property the campaign measures:
raising strictness can only add findings, never remove or reorder them.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence, Set, Tuple

from ..errors import CheatDetected, FaultError
from ..sim.signs import DFS_VISITED, HOMEBASE, LEADER_ANNOUNCE
from ..trace.events import DETECT
from .boards import FORGED, FaultyWhiteboard
from .metrics import count_detection

#: Evidence kinds (the ``kind`` of a :class:`Finding`, and the metrics label).
PROVENANCE = "forged"
CONSISTENCY = "consistency"
STRICT = "strict"

#: Sign kinds whose identical per-board duplication is anomalous (level 3).
_STRUCTURAL_KINDS = (DFS_VISITED, HOMEBASE)


class Finding(Tuple[str, int, str]):
    """A detection finding: ``(kind, node, message)``.

    A plain tuple subclass so findings stay hashable/comparable (sweeps
    deduplicate against everything already reported) while reading well.
    """

    __slots__ = ()

    def __new__(cls, kind: str, node: int, message: str) -> "Finding":
        return super().__new__(cls, (kind, node, message))

    @property
    def kind(self) -> str:
        return self[0]

    @property
    def node(self) -> int:
        return self[1]

    @property
    def message(self) -> str:
        return self[2]


class CheatDetector:
    """Periodic cheat-detection audit over a simulation's whiteboards.

    Parameters
    ----------
    strictness:
        Detection level 1–3 (cumulative; see the module docstring).
    abort:
        Raise :class:`~repro.errors.CheatDetected` on the first sweep that
        surfaces a *new* finding (abort-on-detection).  Default ``False``:
        findings are journaled and traced, the run continues.
    check_every:
        Sweep period in scheduler steps.
    """

    def __init__(
        self, strictness: int = 2, abort: bool = False, check_every: int = 25
    ):
        if not 1 <= strictness <= 3:
            raise FaultError(
                f"detector strictness must be 1, 2 or 3, got {strictness}"
            )
        if check_every < 1:
            raise FaultError(
                f"detector check_every must be >= 1, got {check_every}"
            )
        self.strictness = strictness
        self.abort = abort
        self.check_every = check_every
        #: Every distinct finding ever surfaced, in discovery order.
        self.findings: List[Finding] = []
        self._reported: Set[Finding] = set()
        self._sim: Optional[Any] = None

    # ------------------------------------------------------------------
    # Installation
    # ------------------------------------------------------------------

    def install(self, sim: Any) -> "CheatDetector":
        """Arm the detector on ``sim`` (call after construction, before run).

        Plain boards are swapped for bare provenance-journaling
        :class:`FaultyWhiteboard` instances (no drops, no corruptions —
        behaviorally identical); boards a fault plan already faulted are
        left in place, their journals serve double duty.
        """
        for node, board in enumerate(sim.boards):
            if not isinstance(board, FaultyWhiteboard):
                replacement = FaultyWhiteboard(node)
                for sign in board.snapshot():
                    replacement.append(sign)
                sim.boards[node] = replacement
        self._sim = sim
        sim.step_hooks.append(self)
        return self

    # ------------------------------------------------------------------
    # Scanning (passive)
    # ------------------------------------------------------------------

    def scan(self, boards: Sequence[Any]) -> List[Finding]:
        """All current findings at this detector's strictness (pure reads)."""
        findings: List[Finding] = []
        self._scan_provenance(boards, findings)
        if self.strictness >= 2:
            self._scan_consistency(boards, findings)
        if self.strictness >= 3:
            self._scan_strict(boards, findings)
        return findings

    def _scan_provenance(
        self, boards: Sequence[Any], findings: List[Finding]
    ) -> None:
        for board in boards:
            if not isinstance(board, FaultyWhiteboard):
                continue
            for kind, message in board.audit_findings():
                if kind == FORGED:
                    findings.append(
                        Finding(PROVENANCE, board.node, f"forged: {message}")
                    )

    def _scan_consistency(
        self, boards: Sequence[Any], findings: List[Finding]
    ) -> None:
        visit_seen: Dict[Tuple[str, int], int] = {}
        announce_colors: Dict[str, int] = {}
        home_nodes: Dict[str, List[int]] = {}
        for node, board in enumerate(boards):
            for sign in board.snapshot():
                if sign.color is None:
                    continue
                cname = sign.color.name or "?"
                if sign.kind == DFS_VISITED and sign.payload:
                    key = (cname, sign.payload[0])
                    visit_seen.setdefault(key, node)
                    if visit_seen[key] != node:
                        findings.append(
                            Finding(
                                CONSISTENCY,
                                node,
                                f"consistency: visit number "
                                f"{sign.payload[0]} of color {cname} appears "
                                f"on nodes {visit_seen[key]} and {node}",
                            )
                        )
                elif sign.kind == LEADER_ANNOUNCE:
                    announce_colors.setdefault(cname, node)
                elif sign.kind == HOMEBASE:
                    nodes = home_nodes.setdefault(cname, [])
                    if node not in nodes:
                        nodes.append(node)
        if len(announce_colors) > 1:
            names = sorted(announce_colors)
            node = announce_colors[names[-1]]
            findings.append(
                Finding(
                    CONSISTENCY,
                    node,
                    f"consistency: {len(names)} distinct leader "
                    f"announcements ({', '.join(names)})",
                )
            )
        for cname, nodes in sorted(home_nodes.items()):
            if len(nodes) > 1:
                findings.append(
                    Finding(
                        CONSISTENCY,
                        nodes[-1],
                        f"consistency: color {cname} claims home-bases on "
                        f"nodes {nodes}",
                    )
                )

    def _scan_strict(
        self, boards: Sequence[Any], findings: List[Finding]
    ) -> None:
        numbers: Dict[str, Set[int]] = {}
        for node, board in enumerate(boards):
            per_board: Dict[Tuple[str, str, Tuple[int, ...]], int] = {}
            for sign in board.snapshot():
                if sign.color is None:
                    continue
                cname = sign.color.name or "?"
                if sign.kind == DFS_VISITED and sign.payload:
                    numbers.setdefault(cname, set()).add(sign.payload[0])
                if sign.kind in _STRUCTURAL_KINDS:
                    key = (sign.kind, cname, sign.payload)
                    per_board[key] = per_board.get(key, 0) + 1
            for (kind, cname, payload), count in sorted(per_board.items()):
                if count > 1:
                    findings.append(
                        Finding(
                            STRICT,
                            node,
                            f"strict: node {node} holds {count} identical "
                            f"{kind} signs of color {cname} "
                            f"payload={payload}",
                        )
                    )
        for cname, nums in sorted(numbers.items()):
            expected = set(range(len(nums)))
            if nums != expected:
                missing = sorted(expected - nums)[:3]
                findings.append(
                    Finding(
                        STRICT,
                        -1,
                        f"strict: color {cname} visit numbers are not "
                        f"contiguous from 0 (has {len(nums)} numbers, "
                        f"missing {missing})",
                    )
                )

    # ------------------------------------------------------------------
    # The step hook
    # ------------------------------------------------------------------

    def sweep(self, sim: Any, steps: int) -> List[Finding]:
        """One detection sweep: report, trace and count *new* findings."""
        fresh: List[Finding] = []
        for finding in self.scan(sim.boards):
            if finding in self._reported:
                continue
            self._reported.add(finding)
            self.findings.append(finding)
            fresh.append(finding)
            count_detection(finding.kind)
            sim.emit_system(
                DETECT,
                node=max(finding.node, 0),
                step=steps,
                detail=finding.message,
            )
        if fresh and self.abort:
            raise CheatDetected(
                f"cheat detected at step {steps}: {fresh[0].message}"
            )
        return fresh

    def __call__(self, sim: Any, steps: int) -> None:
        if steps % self.check_every == 0:
            self.sweep(sim, steps)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"CheatDetector(strictness={self.strictness}, "
            f"abort={self.abort}, every={self.check_every}, "
            f"{len(self.findings)} findings)"
        )
