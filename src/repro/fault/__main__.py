"""Command-line fault campaign: ``python -m repro.fault``.

Sweeps the fault matrix across the standard instance battery, prints the
classification counts, optionally writes the full JSON report, and exits
non-zero if any pair lands in the ``silent-wrong-answer`` bucket (or fails
its structural trace audit) — the CI contract of the robustness suite.
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

from ..errors import CampaignError
from .campaign import CampaignConfig, run_campaign


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.fault",
        description="Run the fault-injection campaign over the instance "
        "battery and classify every (instance, plan) pair.",
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="small instance slice for smoke runs",
    )
    parser.add_argument(
        "--pairs",
        type=int,
        default=208,
        help="number of (instance, plan) pairs to sweep (default: 208)",
    )
    parser.add_argument(
        "--seed", type=int, default=0, help="campaign seed (default: 0)"
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=1,
        help="parallel worker processes (default: 1 = serial)",
    )
    parser.add_argument(
        "--timeout",
        type=int,
        default=400,
        help="watchdog stall timeout in steps (default: 400)",
    )
    parser.add_argument(
        "--max-restarts",
        type=int,
        default=2,
        help="per-agent checkpoint-restart budget (default: 2)",
    )
    parser.add_argument(
        "--no-audit",
        action="store_true",
        help="skip the per-run structural trace audit",
    )
    parser.add_argument(
        "--byzantine",
        type=int,
        default=0,
        metavar="N",
        help="mix N Byzantine-augmented plans into each instance's battery "
        "(0 = pure crash/stall/board faults; default)",
    )
    parser.add_argument(
        "--out",
        type=str,
        default=None,
        help="write the full JSON report to this path",
    )
    parser.add_argument(
        "--ledger",
        type=str,
        default=None,
        help="append one run-ledger row per (instance, plan) pair to this "
        "SQLite database (see python -m repro.obs ledger)",
    )
    parser.add_argument(
        "--stream",
        action="store_true",
        help="streaming report: retain only failing rows; counts come "
        "from the campaign engine's checkpointed counters",
    )
    parser.add_argument(
        "--shard",
        type=str,
        default=None,
        metavar="i/N",
        help="run only case indices ≡ i (mod N) — see python -m repro.campaign",
    )
    parser.add_argument(
        "--resume",
        action="store_true",
        help="continue from the ledger's checkpoint for this shard",
    )
    parser.add_argument(
        "--max-cases",
        type=int,
        default=None,
        help="truncate the matrix to its first N indices (before sharding)",
    )
    args = parser.parse_args(argv)

    config = CampaignConfig(
        seed=args.seed,
        timeout=args.timeout,
        max_restarts=args.max_restarts,
        audit=not args.no_audit,
        byzantine=args.byzantine,
    )
    try:
        report = run_campaign(
            pairs=args.pairs,
            config=config,
            workers=args.workers,
            quick=args.quick,
            ledger=args.ledger,
            stream=args.stream,
            shard=args.shard,
            resume=args.resume,
            max_cases=args.max_cases,
        )
    except CampaignError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    print(report.render())
    if args.out:
        with open(args.out, "w", encoding="utf-8") as fh:
            fh.write(report.to_json())
        print(f"report written to {args.out}")
    return 0 if report.ok else 1


if __name__ == "__main__":
    sys.exit(main())
