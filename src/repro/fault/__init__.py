"""Deterministic fault injection and recovery for the ELECT runtime.

Three layers, importable bottom-up:

* **mechanisms** — :class:`~repro.fault.agents.FaultedAgent` (crash
  wrappers), :class:`~repro.fault.boards.FaultyWhiteboard` (write drops and
  CRC-detectable corruption), :class:`~repro.fault.sched.DelayScheduler`
  (stall windows), :class:`~repro.fault.watchdog.Watchdog` (stall
  classification + checkpoint-restart policy, consumed by
  :class:`~repro.sim.runtime.Simulation`);
* **mechanisms (Byzantine)** — :class:`~repro.fault.byzantine.LyingAgent`
  (seeded lying behaviors: forged signs, spoofed ownership, false
  announcements, suppression, replay),
  :class:`~repro.fault.byzantine.ChurnDriver` (dynamic-network edge
  churn), and :class:`~repro.fault.detect.CheatDetector` (provenance +
  consistency audits with optional abort-on-detection);
* **plans** — :class:`~repro.fault.plan.FaultPlan`: frozen, seedable,
  picklable fault descriptions compiled onto a run via ``fault=plan``;
* **campaign** — :func:`~repro.fault.campaign.run_campaign`: the matrix
  sweep classifying every ``(instance, plan)`` pair, with
  ``silent-wrong-answer`` as the bucket that must stay empty
  (``python -m repro.fault`` runs it from the command line).

The campaign pulls in the analysis battery and the parallel runner, so it
is loaded lazily — ``import repro.fault`` stays cheap for code that only
wants a plan or a watchdog.
"""

from __future__ import annotations

from typing import Any

from .agents import ACTION_KINDS, FaultedAgent, resolve_action_kind
from .boards import FaultyWhiteboard
from .byzantine import (
    BEHAVIORS,
    ByzantineAgent,
    ChurnableNetwork,
    ChurnDriver,
    EdgeChurn,
    LyingAgent,
)
from .detect import CheatDetector, Finding
from .metrics import (
    count_detection,
    count_injection,
    count_outcome,
    detection_stats,
    injection_stats,
)
from .plan import (
    PLAN_KINDS,
    CrashAtStep,
    CrashOnAction,
    FaultPlan,
    Injection,
    InjectionLog,
    InstalledFaults,
    StallWindow,
    WriteCorrupt,
    WriteDrop,
    random_fault_plans,
)
from .sched import DelayScheduler
from .watchdog import DEFAULT_BACKOFF, Watchdog

#: Campaign names re-exported lazily (heavy imports: analysis + perf).
_CAMPAIGN_NAMES = (
    "ELECTED",
    "RECOVERED",
    "DETECTED",
    "IMPOSSIBLE",
    "OUTCOMES",
    "CampaignConfig",
    "CampaignReport",
    "CampaignRow",
    "build_pairs",
    "run_campaign",
    "standard_battery",
)

#: Byzantine campaign names, equally heavy, equally lazy.
_BYZ_CAMPAIGN_NAMES = (
    "ABORTED",
    "BYZ_OUTCOMES",
    "DETECTED_CHEAT",
    "FOOLED",
    "SCENARIOS",
    "ByzantineCampaignSpec",
    "ByzantineConfig",
    "ByzantineReport",
    "ByzantineRow",
    "PowerRateStage",
    "run_byzantine_campaign",
)


def __getattr__(name: str) -> Any:
    if name in _CAMPAIGN_NAMES:
        from . import campaign

        return getattr(campaign, name)
    if name in _BYZ_CAMPAIGN_NAMES:
        from . import byzantine_campaign

        return getattr(byzantine_campaign, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


__all__ = [
    "ACTION_KINDS",
    "FaultedAgent",
    "resolve_action_kind",
    "FaultyWhiteboard",
    "DelayScheduler",
    "Watchdog",
    "DEFAULT_BACKOFF",
    "FaultPlan",
    "CrashAtStep",
    "CrashOnAction",
    "StallWindow",
    "WriteDrop",
    "WriteCorrupt",
    "PLAN_KINDS",
    "Injection",
    "InjectionLog",
    "InstalledFaults",
    "random_fault_plans",
    "BEHAVIORS",
    "ByzantineAgent",
    "EdgeChurn",
    "LyingAgent",
    "ChurnableNetwork",
    "ChurnDriver",
    "CheatDetector",
    "Finding",
    "count_injection",
    "count_outcome",
    "count_detection",
    "injection_stats",
    "detection_stats",
    *_CAMPAIGN_NAMES,
    *_BYZ_CAMPAIGN_NAMES,
]
