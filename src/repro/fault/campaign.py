"""The fault-injection campaign: sweep fault plans across the battery.

A campaign is a deterministic matrix sweep: every ``(instance, FaultPlan)``
pair runs one supervised simulation (watchdog + trace + fault journal) and
is classified against the schedule-independent ground truth of Theorem 3.1
(:func:`repro.core.feasibility.elect_prediction`):

* ``elected-correctly`` — the run completed with the predicted outcome
  (a unique leader where election is feasible, unanimous failure where it
  is not) without consuming any restart;
* ``recovered`` — same, but only after one or more watchdog checkpoint
  restarts (the interesting rows: the fault fired *and* was absorbed);
* ``detected-stall`` — the run failed **loudly**: a classified stall or
  deadlock, a step-budget livelock, or a wrong completion that is fully
  explained by journaled board faults (the write-time CRC journal and the
  runtime's failed-write results make dropped/corrupted writes detected
  events, not silent ones);
* ``silent-wrong-answer`` — the impossible bucket: a wrong outcome with no
  exception and no board-fault evidence.  Crashes, delays and restarts are
  all within the asynchronous model (a crash is an infinite delay, a stall
  window is a legal schedule), so nothing in this sweep may ever land here;
  one such row fails the campaign.

Classification never compares against a fault-free baseline *leader*: on
electable instances leader identity is race-decided, so only the predicted
feasibility (and report consistency, via
:meth:`~repro.core.result.ElectionOutcome.validate`) is oracle material.

Determinism: every per-pair seed is derived with :func:`zlib.crc32` from
``(config.seed, pair index, plan name)`` — no process-dependent ``hash()``
— and :class:`~repro.perf.parallel.ParallelBatteryRunner` preserves input
order, so a campaign is a pure function of its configuration regardless of
worker count.
"""

from __future__ import annotations

import json
import random
import zlib
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..campaign.engine import (
    CampaignEngine,
    CampaignSpec,
    FailureKeeper,
    MetricsStage,
    OutcomeCounter,
    PredicateCounter,
    RowCollector,
    Shard,
    Stage,
)
from ..core.elect import ElectAgent
from ..core.feasibility import elect_prediction
from ..core.result import aggregate
from ..errors import ProtocolError, ReproError
from ..obs import flight
from ..obs.ledger import LedgerRow, RunLedger, open_ledger
from ..sim.runtime import Simulation
from ..sim.scheduler import RandomScheduler
from ..trace.invariants import THEOREM31_CONSTANT, audit_trace
from ..trace.sinks import MemorySink
from .metrics import count_outcome
from .plan import FaultPlan, random_fault_plans
from .watchdog import DEFAULT_BACKOFF, Watchdog

#: Outcome classifications, best to worst.
ELECTED = "elected-correctly"
RECOVERED = "recovered"
DETECTED = "detected-stall"
IMPOSSIBLE = "silent-wrong-answer"
OUTCOMES: Tuple[str, ...] = (ELECTED, RECOVERED, DETECTED, IMPOSSIBLE)

#: The Byzantine layer's losing bucket (duplicated from
#: ``byzantine_campaign`` — which imports this module — so plain fault
#: campaigns run with ``byzantine > 0`` fail on it too).
_FOOLED = "silently-fooled"


@dataclass(frozen=True)
class CampaignConfig:
    """Sweep-wide policy: seeds, watchdog limits, audit switch."""

    seed: int = 0
    #: Steps an agent may stay blocked before the watchdog flags a stall.
    timeout: int = 400
    #: Per-agent checkpoint-restart budget.
    max_restarts: int = 2
    backoff: Tuple[int, ...] = DEFAULT_BACKOFF
    jitter: int = 0
    #: Hard step budget per run (``None``: the runtime's size-derived cap).
    max_steps: Optional[int] = None
    #: Run the structural trace audit on every completed run.
    audit: bool = True
    #: Mix this many Byzantine-augmented plans into each instance's battery
    #: (0: pure crash/stall/board faults — the historical byte-for-byte
    #: plan sequence).  Nonzero switches evaluation to the lying-aware
    #: classifier (:func:`repro.fault.byzantine_campaign._evaluate_byz_pair`).
    byzantine: int = 0

    def watchdog(self, pair_seed: int) -> Watchdog:
        return Watchdog(
            timeout=self.timeout,
            max_restarts=self.max_restarts,
            backoff=self.backoff,
            jitter=self.jitter,
            seed=pair_seed,
        )


@dataclass
class CampaignRow:
    """One classified ``(instance, plan)`` run."""

    index: int
    instance: str
    family: str
    plan: str
    predicted: bool
    outcome: str
    detail: str = ""
    steps: int = 0
    moves: int = 0
    restarts: int = 0
    stalls: int = 0
    injections: Tuple[str, ...] = ()
    audit_failures: Tuple[str, ...] = ()

    def to_dict(self) -> Dict[str, Any]:
        return {
            "index": self.index,
            "instance": self.instance,
            "family": self.family,
            "plan": self.plan,
            "predicted": self.predicted,
            "outcome": self.outcome,
            "detail": self.detail,
            "steps": self.steps,
            "moves": self.moves,
            "restarts": self.restarts,
            "stalls": self.stalls,
            "injections": list(self.injections),
            "audit_failures": list(self.audit_failures),
        }


@dataclass
class CampaignReport:
    """All rows of one campaign plus the headline counts.

    Two shapes share this class.  Legacy (collect) mode holds every row
    and derives the counts from them.  Streaming mode holds only the
    *failing* rows (the minimizer/report material) while the headline
    numbers come from the engine's checkpointed stage counters — the
    ``streamed_*`` fields — so a million-pair sweep's report stays O(1)
    in memory and survives kill/resume with exact totals.
    """

    rows: List[CampaignRow]
    seed: int
    #: Streaming mode: outcome histogram from the engine's
    #: :class:`~repro.campaign.engine.OutcomeCounter` (``None``: legacy).
    streamed_counts: Optional[Dict[str, int]] = None
    #: Streaming mode: total pairs observed (resumed + evaluated).
    streamed_total: Optional[int] = None
    #: Streaming mode: pairs with structural audit failures.
    streamed_audit_failures: int = 0

    @property
    def streamed(self) -> bool:
        return self.streamed_counts is not None

    @property
    def total_pairs(self) -> int:
        if self.streamed_total is not None:
            return self.streamed_total
        return len(self.rows)

    @property
    def counts(self) -> Dict[str, int]:
        out = {name: 0 for name in OUTCOMES}
        if self.streamed_counts is not None:
            for name, n in self.streamed_counts.items():
                out[name] = out.get(name, 0) + int(n)
            return out
        for row in self.rows:
            out[row.outcome] = out.get(row.outcome, 0) + 1
        return out

    @property
    def impossible_rows(self) -> List[CampaignRow]:
        return [r for r in self.rows if r.outcome == IMPOSSIBLE]

    @property
    def audit_failures(self) -> List[CampaignRow]:
        return [r for r in self.rows if r.audit_failures]

    @property
    def ok(self) -> bool:
        """The campaign's verdict: no silent wrong answer, clean audits."""
        if self.streamed:
            return (
                self.counts.get(IMPOSSIBLE, 0) == 0
                and self.counts.get(_FOOLED, 0) == 0
                and self.streamed_audit_failures == 0
            )
        return (
            not self.impossible_rows
            and not any(r.outcome == _FOOLED for r in self.rows)
            and not self.audit_failures
        )

    def to_dict(self) -> Dict[str, Any]:
        return {
            "seed": self.seed,
            "pairs": self.total_pairs,
            "counts": self.counts,
            "ok": self.ok,
            "rows": [r.to_dict() for r in self.rows],
        }

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    def render(self) -> str:
        """Human-readable summary table."""
        mode = " [streamed]" if self.streamed else ""
        lines = [
            f"fault campaign: {self.total_pairs} (instance, plan) pairs, "
            f"seed={self.seed}{mode}"
        ]
        counts = self.counts
        extra = sorted(set(counts) - set(OUTCOMES))
        for name in (*OUTCOMES, *extra):
            lines.append(f"  {name:>22}: {counts.get(name, 0)}")
        audit_count = (
            self.streamed_audit_failures
            if self.streamed
            else len(self.audit_failures)
        )
        total_restarts = sum(r.restarts for r in self.rows)
        total_stalls = sum(r.stalls for r in self.rows)
        lines.append(
            f"  restarts={total_restarts}  stalls={total_stalls}  "
            f"audit-failures={audit_count}"
        )
        for row in self.impossible_rows:
            lines.append(
                f"  IMPOSSIBLE #{row.index} {row.instance} / {row.plan}: "
                f"{row.detail}"
            )
        for row in self.audit_failures:
            lines.append(
                f"  AUDIT #{row.index} {row.instance} / {row.plan}: "
                + "; ".join(row.audit_failures)
            )
        lines.append("verdict: " + ("OK" if self.ok else "FAILED"))
        return "\n".join(lines)


def _pair_seed(seed: int, index: int, plan_name: str) -> int:
    """Stable per-pair seed (no ``hash()``: must survive process hopping)."""
    return zlib.crc32(f"{seed}:{index}:{plan_name}".encode("utf-8"))


def _pair_context(seed: int, index: int, plan_name: str) -> "flight.TraceContext":
    """The pair's flight trace context — deterministic, so the ledger's
    trace ids (and its digest) are identical for any worker count, with
    or without the recorder."""
    return flight.TraceContext.mint("fault-case", f"{seed}:{index}:{plan_name}")


def write_campaign_ledger(
    ledger: Any,
    report: "CampaignReport",
    tasks: Sequence[Tuple[int, Any, FaultPlan, CampaignConfig]],
    elapsed: float = 0.0,
) -> int:
    """Append one ``kind="fault"`` ledger row per campaign pair.

    Every column except ``wall_ms`` (the mean per-pair wall time — the
    sweep is timed as a whole) is a pure function of the campaign config,
    so :meth:`~repro.obs.ledger.RunLedger.digest` over these rows is
    byte-identical for any worker count.  ``budget`` is the Theorem 3.1
    bound ``C·r·|E|`` the row's ``moves`` count is judged against.
    Returns the number of rows written.
    """
    from ..graphs.canonical import canonical_hash

    led = open_ledger(ledger)
    campaign = f"fault:seed={report.seed}:pairs={len(tasks)}"
    wall_each = (elapsed / len(tasks) * 1000.0) if tasks else 0.0
    chash_by_label: Dict[str, str] = {}
    rows: List[LedgerRow] = []
    for row, (index, inst, plan, cfg) in zip(report.rows, tasks):
        chash = chash_by_label.get(row.instance)
        if chash is None:
            chash = canonical_hash(
                inst.network, inst.placement.bicoloring(inst.network)
            )
            chash_by_label[row.instance] = chash
        ctx = _pair_context(cfg.seed, index, plan.name)
        budget = (
            THEOREM31_CONSTANT
            * inst.placement.num_agents
            * max(1, inst.network.num_edges)
        )
        rows.append(
            LedgerRow(
                kind="fault",
                campaign=campaign,
                case_index=row.index,
                instance=row.instance,
                family=row.family,
                chash=chash,
                seed=_pair_seed(cfg.seed, index, plan.name),
                predicted="electable" if row.predicted else "impossible",
                outcome=row.outcome,
                detail=row.detail,
                moves=row.moves,
                budget=budget,
                steps=row.steps,
                wall_ms=round(wall_each, 3),
                trace_id=ctx.trace_id,
                span_id=ctx.span_id,
            )
        )
    written = led.append(rows)
    if not isinstance(ledger, RunLedger):
        led.close()
    return written


def _classify_completion(
    sim: Simulation,
    result: Any,
    predicted: bool,
) -> Tuple[str, str]:
    """Classify a run that terminated (all agents reported)."""
    fault_state = sim.fault_state
    findings = fault_state.audit_boards() if fault_state is not None else []
    injected = fault_state.log.kinds() if fault_state is not None else ()
    restarted = any(result.restarts)

    def board_fault_excuse() -> Optional[str]:
        # A wrong completion is *detected*, not silent, exactly when the
        # board-fault journal can testify: a surviving CRC mismatch, or a
        # journaled corrupt/dropped write (the runtime also surfaced the
        # drop to the writer as a failed-write result).
        if findings:
            return "crc-corruption: " + "; ".join(findings)
        if "write-corrupt" in injected:
            return "journaled write corruption"
        if "write-drop" in injected:
            return "journaled write drop"
        return None

    try:
        election = aggregate(
            result.results,
            total_moves=result.total_moves,
            total_accesses=result.total_accesses,
            steps=result.steps,
        )
    except ProtocolError as exc:
        excuse = board_fault_excuse()
        if excuse is not None:
            return DETECTED, f"inconsistent reports ({excuse})"
        return IMPOSSIBLE, f"split-brain: {exc}"

    correct = (
        election.elected
        if predicted
        else (not election.elected and election.failed)
    )
    if correct:
        if restarted:
            return RECOVERED, f"after {sum(result.restarts)} restart(s)"
        return ELECTED, "" if predicted else "correctly reported failure"

    excuse = board_fault_excuse()
    if excuse is not None:
        return DETECTED, f"wrong completion ({excuse})"
    got = "elected" if election.elected else "failed"
    return IMPOSSIBLE, (
        f"predicted {'electable' if predicted else 'impossible'} "
        f"but run {got} with no detectable cause"
    )


def _evaluate_pair(task: Tuple[int, Any, FaultPlan, CampaignConfig]) -> CampaignRow:
    """Run and classify one pair.  Module-level: pickled to pool workers."""
    index, instance, plan, cfg = task
    pair_seed = _pair_seed(cfg.seed, index, plan.name)
    predicted = elect_prediction(instance.network, instance.placement).succeeds

    colors = instance.placement.fresh_colors()
    agents = [
        ElectAgent(color, rng=random.Random(f"{pair_seed}:{i}"))
        for i, color in enumerate(colors)
    ]
    sink = MemorySink()
    sim = Simulation(
        instance.network,
        list(zip(agents, instance.placement.homes)),
        scheduler=RandomScheduler(seed=pair_seed),
        trace=sink,
        fault=plan,
        watchdog=cfg.watchdog(pair_seed),
        max_steps=cfg.max_steps,
    )

    row = CampaignRow(
        index=index,
        instance=instance.label,
        family=instance.family,
        plan=plan.describe(),
        predicted=predicted,
        outcome=DETECTED,
    )
    result = None
    try:
        result = sim.run()
    except ReproError as exc:
        # Every loud failure is a *detection*: classified stalls
        # (StallDetected), deadlocks, step-budget livelocks, and protocol /
        # map-consistency errors tripped by injected board faults (e.g. a
        # dropped DFS sign making a drawn map self-contradictory).
        row.detail = f"{type(exc).__name__}: {exc}"
    else:
        row.outcome, row.detail = _classify_completion(sim, result, predicted)
        row.steps = result.steps
        row.moves = result.total_moves
        row.restarts = sum(result.restarts)
        row.stalls = len(result.stall_events)
        if cfg.audit and sink.header is not None:
            # Restarted agents redo work from their checkpoint, so the
            # Theorem 3.1 gauge is scaled by the restart budget: recovered
            # moves still count against (a scaled) C·r·|E|.
            reports = audit_trace(
                sink.events,
                header=sink.header,
                moves=result.moves,
                accesses=result.accesses,
                steps=result.steps,
                theorem31_constant=THEOREM31_CONSTANT
                * (1 + cfg.max_restarts),
            )
            row.audit_failures = tuple(
                f"{rep.name}: {rep.detail}" for rep in reports if not rep.ok
            )
    if result is None:
        # Loud failure: salvage the watchdog's journal for the row.
        row.stalls = len(sim.watchdog.stall_events) if sim.watchdog else 0
        row.restarts = sim.watchdog.total_restarts if sim.watchdog else 0
    if sim.fault_state is not None:
        row.injections = sim.fault_state.log.kinds()
    return row


def standard_battery(quick: bool = False) -> List[Any]:
    """The campaign's instance slice: every impossible canonical instance
    plus a deterministic stride sample of the asymmetric (electable) ones.

    ``quick=True`` shrinks to a handful of instances for smoke runs.
    """
    from ..analysis.instances import (
        asymmetric_instances,
        impossibility_instances,
    )

    impossible = impossibility_instances()
    electable = asymmetric_instances()
    if quick:
        return impossible[:3] + electable[::17][:4]
    return impossible + electable[::4]


def build_pairs(
    instances: Sequence[Any],
    pairs: int,
    config: CampaignConfig,
) -> List[Tuple[int, Any, FaultPlan, CampaignConfig]]:
    """The deterministic ``(index, instance, plan, config)`` task matrix.

    Plans are generated per instance (seeded from the campaign seed and the
    instance's position) so every instance sees every fault family, then the
    matrix is trimmed to exactly ``pairs`` rows.
    """
    if not instances:
        raise ValueError("campaign needs at least one instance")
    plans_per = max(1, -(-pairs // len(instances)))
    tasks: List[Tuple[int, Any, FaultPlan, CampaignConfig]] = []
    for j, inst in enumerate(instances):
        plans = random_fault_plans(
            plans_per,
            num_agents=inst.placement.num_agents,
            num_nodes=inst.network.num_nodes,
            seed=_pair_seed(config.seed, j, inst.label),
            byzantine=config.byzantine,
        )
        for plan in plans:
            tasks.append((len(tasks), inst, plan, config))
    # Interleave instances so trimming keeps battery breadth.
    tasks.sort(key=lambda t: (t[0] % plans_per, t[0]))
    tasks = tasks[:pairs]
    return [
        (i, inst, plan, cfg) for i, (_, inst, plan, cfg) in enumerate(tasks)
    ]


class FaultCampaignSpec(CampaignSpec):
    """The fault matrix as a lazy :class:`~repro.campaign.CampaignSpec`.

    The grid is the same deterministic matrix :func:`build_pairs`
    materializes, expressed in closed form so the engine never builds it
    whole: after :func:`build_pairs`'s plan-major interleave+trim, final
    index ``i`` denotes plan slot ``i // n_instances`` of instance
    ``i % n_instances``.  Per-instance plan lists (and canonical hashes)
    are generated on first touch and cached, so a shard only pays for the
    instances it actually owns.
    """

    kind = "fault"
    span_name = "fault.case"

    def __init__(
        self,
        instances: Optional[Sequence[Any]] = None,
        pairs: int = 208,
        config: Optional[CampaignConfig] = None,
        quick: bool = False,
        collect: bool = False,
    ):
        self.config = config or CampaignConfig()
        if instances is None:
            instances = standard_battery(quick=quick)
        self.instances = list(instances)
        if not self.instances:
            raise ValueError("campaign needs at least one instance")
        self.pairs = pairs
        self.campaign = f"fault:seed={self.config.seed}:pairs={pairs}"
        self._plans_per = max(1, -(-pairs // len(self.instances)))
        self._plan_cache: Dict[int, List[FaultPlan]] = {}
        self._chash_cache: Dict[str, Tuple[str, int]] = {}
        # Stages are attributes so frontends can read them after a run.
        self.counter = OutcomeCounter()
        self.audit_counter = PredicateCounter(
            "audit-failures", lambda row: bool(row.audit_failures)
        )
        self.failures = FailureKeeper(self.case_failed)
        self.collector: Optional[RowCollector] = (
            RowCollector() if collect else None
        )

    @property
    def total(self) -> int:
        return self.pairs

    def _plans(self, j: int) -> List[FaultPlan]:
        plans = self._plan_cache.get(j)
        if plans is None:
            inst = self.instances[j]
            plans = random_fault_plans(
                self._plans_per,
                num_agents=inst.placement.num_agents,
                num_nodes=inst.network.num_nodes,
                seed=_pair_seed(self.config.seed, j, inst.label),
                byzantine=self.config.byzantine,
            )
            self._plan_cache[j] = plans
        return plans

    def task(self, index: int) -> Tuple[int, Any, FaultPlan, CampaignConfig]:
        slot, j = divmod(index, len(self.instances))
        return (index, self.instances[j], self._plans(j)[slot], self.config)

    @property
    def evaluate(self) -> Any:
        if self.config.byzantine:
            # Lazy: the lying-aware classifier lives with the Byzantine
            # campaign and knows how to excuse fooled runs as detected
            # when the cheat evidence testifies.
            from .byzantine_campaign import _evaluate_byz_pair

            return _evaluate_byz_pair
        return _evaluate_pair

    def context(self, index: int) -> "flight.TraceContext":
        _, _inst, plan, _cfg = self.task(index)
        return _pair_context(self.config.seed, index, plan.name)

    def ledger_row(self, index: int, row: CampaignRow) -> LedgerRow:
        from ..graphs.canonical import canonical_hash

        _, inst, plan, cfg = self.task(index)
        cached = self._chash_cache.get(inst.label)
        if cached is None:
            chash = canonical_hash(
                inst.network, inst.placement.bicoloring(inst.network)
            )
            budget = (
                THEOREM31_CONSTANT
                * inst.placement.num_agents
                * max(1, inst.network.num_edges)
            )
            cached = (chash, budget)
            self._chash_cache[inst.label] = cached
        chash, budget = cached
        ctx = _pair_context(cfg.seed, index, plan.name)
        return LedgerRow(
            kind=self.kind,
            campaign=self.campaign,
            case_index=row.index,
            instance=row.instance,
            family=row.family,
            chash=chash,
            seed=_pair_seed(cfg.seed, index, plan.name),
            predicted="electable" if row.predicted else "impossible",
            outcome=row.outcome,
            detail=row.detail,
            moves=row.moves,
            budget=budget,
            steps=row.steps,
            trace_id=ctx.trace_id,
            span_id=ctx.span_id,
        )

    def spill_record(self, index: int, row: CampaignRow) -> Dict[str, Any]:
        record = row.to_dict()
        record["case_index"] = index
        return record

    def case_failed(self, row: CampaignRow) -> bool:
        return (
            row.outcome in (IMPOSSIBLE, _FOOLED)
            or bool(row.audit_failures)
        )

    def stages(self) -> Sequence[Stage]:
        stages: List[Stage] = [
            self.counter,
            self.audit_counter,
            MetricsStage(lambda row: count_outcome(row.outcome)),
            self.failures,
        ]
        if self.collector is not None:
            stages.append(self.collector)
        return stages

    def describe(self) -> Dict[str, Any]:
        cfg = self.config
        return {
            "kind": self.kind,
            "campaign": self.campaign,
            "seed": cfg.seed,
            "pairs": self.pairs,
            "instances": [inst.label for inst in self.instances],
            "timeout": cfg.timeout,
            "max_restarts": cfg.max_restarts,
            "backoff": list(cfg.backoff),
            "jitter": cfg.jitter,
            "max_steps": cfg.max_steps,
            "audit": cfg.audit,
            "byzantine": cfg.byzantine,
        }


def run_campaign(
    instances: Optional[Sequence[Any]] = None,
    pairs: int = 208,
    config: Optional[CampaignConfig] = None,
    workers: Optional[int] = 1,
    quick: bool = False,
    ledger: Optional[Any] = None,
    stream: bool = False,
    shard: Optional[Any] = None,
    resume: bool = False,
    checkpoint_every: int = 64,
    max_cases: Optional[int] = None,
    spill: Optional[str] = None,
) -> CampaignReport:
    """Sweep the fault matrix; return the classified report.

    Deterministic in ``(instances, pairs, config)`` — worker count only
    changes wall-clock time (the battery runner preserves input order and
    every seed is derived per pair).  The sweep runs on the
    :class:`~repro.campaign.CampaignEngine`:

    * ``stream=False`` (default) keeps the legacy shape — every row held
      in memory, full report;
    * ``stream=True`` retains only failing rows; headline counts come
      from the engine's checkpointed counters, so memory stays flat for
      arbitrarily large ``pairs`` and a resumed sweep reports exact
      totals;
    * ``shard`` (a :class:`~repro.campaign.Shard` or ``"i/N"`` string),
      ``resume``, ``checkpoint_every``, ``max_cases`` and ``spill`` pass
      straight to the engine — see :mod:`repro.campaign.engine`.

    ``ledger`` (a :class:`~repro.obs.ledger.RunLedger` or a path) appends
    one row per pair, committed chunk-atomically with the shard's resume
    checkpoint.  When the flight recorder is on, every pair additionally
    runs under its own deterministic trace context (worker-side spans
    ship back with the row), so a campaign case can be followed from the
    ledger row into the exported trace by trace id.
    """
    cfg = config or CampaignConfig()
    spec = FaultCampaignSpec(
        instances=instances,
        pairs=pairs,
        config=cfg,
        quick=quick,
        collect=not stream,
    )
    if shard is None:
        shard = Shard()
    elif not isinstance(shard, Shard):
        shard = Shard.parse(shard)
    engine = CampaignEngine(
        spec,
        ledger=ledger,
        workers=workers,
        shard=shard,
        checkpoint_every=checkpoint_every,
        max_cases=max_cases,
        spill=spill,
    )
    result = engine.run(resume=resume)
    if stream:
        return CampaignReport(
            rows=list(spec.failures.kept),
            seed=cfg.seed,
            streamed_counts=dict(result.counts),
            streamed_total=result.resumed + result.processed,
            streamed_audit_failures=spec.audit_counter.count,
        )
    assert spec.collector is not None
    return CampaignReport(rows=list(spec.collector.rows), seed=cfg.seed)
