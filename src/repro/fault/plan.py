"""Declarative fault plans: what goes wrong, where, and when.

A :class:`FaultPlan` is a frozen, picklable description of a set of faults —
the unit the campaign runner sweeps and ships to worker processes.  Plans
say nothing about *mechanism*; :meth:`FaultPlan.install` compiles the specs
onto a concrete :class:`~repro.sim.runtime.Simulation` at construction time
(the runtime calls it when given ``fault=plan``):

* :class:`CrashAtStep` / :class:`CrashOnAction` wrap the target agent in a
  :class:`~repro.fault.agents.FaultedAgent`;
* :class:`StallWindow` decorates the scheduler with a
  :class:`~repro.fault.sched.DelayScheduler`;
* :class:`WriteDrop` / :class:`WriteCorrupt` replace the target node's
  board with a :class:`~repro.fault.boards.FaultyWhiteboard`;
* :class:`~repro.fault.byzantine.ByzantineAgent` wraps the target agent in
  a :class:`~repro.fault.byzantine.LyingAgent` (wrapped *outside* any crash
  wrapper, so the runtime sees the ``byzantine`` marker);
* :class:`~repro.fault.byzantine.EdgeChurn` swaps the network for a
  :class:`~repro.fault.byzantine.ChurnableNetwork` and registers a
  :class:`~repro.fault.byzantine.ChurnDriver` step-hook.

Installation returns an :class:`InstalledFaults` handle holding the
injection journal (which faults actually fired) and the board-corruption
CRC audit — the evidence the campaign classifier uses.

:func:`random_fault_plans` generates seeded plan batteries: same seed, same
plans, independent of process or worker count.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple, Union

from ..errors import FaultError
from .agents import ACTION_KINDS, FaultedAgent
from .boards import FaultyWhiteboard
from .byzantine import (
    BEHAVIORS,
    ByzantineAgent,
    ChurnableNetwork,
    ChurnDriver,
    EdgeChurn,
    LyingAgent,
)
from .metrics import count_injection
from .sched import DelayScheduler


@dataclass(frozen=True)
class CrashAtStep:
    """Agent ``agent`` crashes after executing ``after_actions`` actions."""

    agent: int
    after_actions: int

    def describe(self) -> str:
        return f"crash(agent={self.agent}, after={self.after_actions})"


@dataclass(frozen=True)
class CrashOnAction:
    """Agent ``agent`` crashes at its first action of kind ``action_kind``
    (a name from :data:`repro.fault.agents.ACTION_KINDS`)."""

    agent: int
    action_kind: str

    def __post_init__(self) -> None:
        if self.action_kind not in ACTION_KINDS:
            raise FaultError(
                f"unknown action kind {self.action_kind!r}; expected one of "
                f"{sorted(ACTION_KINDS)}"
            )

    def describe(self) -> str:
        return f"crash(agent={self.agent}, on={self.action_kind})"


@dataclass(frozen=True)
class StallWindow:
    """Agent ``agent`` is not scheduled during steps
    ``[at_step, at_step + duration)`` — a transient stall (it resumes) or an
    adversarial delay, which in the asynchronous model are the same fault."""

    agent: int
    at_step: int
    duration: int

    def describe(self) -> str:
        return (
            f"stall(agent={self.agent}, steps={self.at_step}"
            f"..{self.at_step + self.duration})"
        )


@dataclass(frozen=True)
class WriteDrop:
    """The ``nth`` (1-based) agent write to node ``node``'s board is lost."""

    node: int
    nth: int

    def describe(self) -> str:
        return f"drop(node={self.node}, nth={self.nth})"


@dataclass(frozen=True)
class WriteCorrupt:
    """The ``nth`` agent write to node ``node`` lands with ``delta`` added
    to its first payload element (CRC-detectable, see
    :meth:`repro.fault.boards.FaultyWhiteboard.audit`)."""

    node: int
    nth: int
    delta: int = 1

    def describe(self) -> str:
        return (
            f"corrupt(node={self.node}, nth={self.nth}, delta={self.delta})"
        )


#: Everything a plan may contain.
FaultSpec = Union[
    CrashAtStep,
    CrashOnAction,
    StallWindow,
    WriteDrop,
    WriteCorrupt,
    ByzantineAgent,
    EdgeChurn,
]


@dataclass
class Injection:
    """One fault that actually fired during a run."""

    kind: str
    info: Dict[str, Any] = field(default_factory=dict)

    def __str__(self) -> str:
        details = ", ".join(f"{k}={v}" for k, v in sorted(self.info.items()))
        return f"{self.kind}({details})"


class InjectionLog:
    """Journal of fired injections, shared by a plan's installed parts."""

    def __init__(self) -> None:
        self.injections: List[Injection] = []

    def record(self, kind: str, **info: Any) -> None:
        self.injections.append(Injection(kind, dict(info)))
        count_injection(kind)

    def kinds(self) -> Tuple[str, ...]:
        return tuple(inj.kind for inj in self.injections)

    def __len__(self) -> int:
        return len(self.injections)


@dataclass
class InstalledFaults:
    """Handle returned by :meth:`FaultPlan.install` (``sim.fault_state``)."""

    plan: "FaultPlan"
    log: InjectionLog
    boards: List[FaultyWhiteboard]

    def audit_boards(self) -> List[str]:
        """CRC findings for corrupted signs still on any faulty board."""
        findings: List[str] = []
        for board in self.boards:
            findings.extend(board.audit())
        return findings


@dataclass(frozen=True)
class FaultPlan:
    """An immutable, picklable bundle of fault specs."""

    faults: Tuple[FaultSpec, ...] = ()
    name: str = ""

    def describe(self) -> str:
        if not self.faults:
            return self.name or "fault-free"
        body = " + ".join(spec.describe() for spec in self.faults)
        return f"{self.name}: {body}" if self.name else body

    def validate(self, num_agents: int, num_nodes: int) -> None:
        """Fail fast on specs that target nonexistent agents or nodes."""
        for spec in self.faults:
            agent = getattr(spec, "agent", None)
            if agent is not None and not 0 <= agent < num_agents:
                raise FaultError(
                    f"{spec.describe()}: agent index out of range "
                    f"(run has {num_agents} agents)"
                )
            node = getattr(spec, "node", None)
            if node is not None and not 0 <= node < num_nodes:
                raise FaultError(
                    f"{spec.describe()}: node index out of range "
                    f"(network has {num_nodes} nodes)"
                )

    def install(self, sim: Any) -> InstalledFaults:
        """Compile this plan onto a simulation (wrap agents, replace boards,
        decorate the scheduler).  Called by ``Simulation.__init__``."""
        self.validate(len(sim.records), len(sim.boards))
        log = InjectionLog()

        # Agent crashes: one wrapper per spec; multiple specs on the same
        # agent chain (innermost fires first, each fires at most once).
        for spec in self.faults:
            if isinstance(spec, (CrashAtStep, CrashOnAction)):
                rec = sim.records[spec.agent]
                agent_idx = spec.agent

                def on_fire(
                    wrapper: FaultedAgent, reason: str, _idx: int = agent_idx
                ) -> None:
                    log.record("crash", agent=_idx, reason=reason)

                rec.agent = FaultedAgent(
                    rec.agent,
                    crash_after=(
                        spec.after_actions
                        if isinstance(spec, CrashAtStep)
                        else None
                    ),
                    crash_on=(
                        spec.action_kind
                        if isinstance(spec, CrashOnAction)
                        else None
                    ),
                    on_fire=on_fire,
                )

        # Byzantine liars: wrapped AFTER the crash loop so the LyingAgent
        # (and its ``byzantine`` marker, which the runtime's Write path
        # checks on ``rec.agent``) is the outermost wrapper.  A crashed
        # liar stops lying — crashes dominate, as in the fault lattice.
        for spec in self.faults:
            if isinstance(spec, ByzantineAgent):
                rec = sim.records[spec.agent]
                agent_idx = spec.agent

                def on_lie(
                    behavior: str, _idx: int = agent_idx, **info: Any
                ) -> None:
                    log.record(f"byzantine-{behavior}", agent=_idx, **info)

                rec.agent = LyingAgent(
                    rec.agent,
                    behaviors=spec.behaviors,
                    power=spec.power,
                    seed=spec.seed,
                    on_lie=on_lie,
                )

        # Board faults: group specs per node, one faulty board per node.
        drops: Dict[int, List[int]] = {}
        corruptions: Dict[int, List[Tuple[int, int]]] = {}
        for spec in self.faults:
            if isinstance(spec, WriteDrop):
                drops.setdefault(spec.node, []).append(spec.nth)
            elif isinstance(spec, WriteCorrupt):
                corruptions.setdefault(spec.node, []).append(
                    (spec.nth, spec.delta)
                )
        boards: List[FaultyWhiteboard] = []
        for node in sorted(set(drops) | set(corruptions)):
            board = FaultyWhiteboard(
                node,
                drops=drops.get(node, ()),
                corruptions=corruptions.get(node, ()),
                log=log,
            )
            sim.boards[node] = board
            boards.append(board)

        # Scheduler delays: one decorator carrying every window.
        windows = [s for s in self.faults if isinstance(s, StallWindow)]
        if windows:
            sim.scheduler = DelayScheduler(sim.scheduler, windows)

        # Dynamic-network churn: swap in a mutable network copy and register
        # one driver per spec on the runtime's step hooks.
        churn_specs = [s for s in self.faults if isinstance(s, EdgeChurn)]
        if churn_specs:
            net = ChurnableNetwork.from_network(sim.network)
            sim.network = net
            for spec in churn_specs:
                sim.step_hooks.append(ChurnDriver(spec, net, log))

        return InstalledFaults(plan=self, log=log, boards=boards)


#: The spec kinds :func:`random_fault_plans` draws from.
PLAN_KINDS: Tuple[str, ...] = (
    "crash-at-step",
    "crash-on-action",
    "stall-window",
    "write-drop",
    "write-corrupt",
)


def _random_spec(
    rng: random.Random, kind: str, num_agents: int, num_nodes: int
) -> FaultSpec:
    if kind == "crash-at-step":
        return CrashAtStep(
            agent=rng.randrange(num_agents),
            after_actions=rng.randrange(1, 150),
        )
    if kind == "crash-on-action":
        return CrashOnAction(
            agent=rng.randrange(num_agents),
            action_kind=rng.choice(
                ("move", "write", "try-acquire", "wait-until")
            ),
        )
    if kind == "stall-window":
        return StallWindow(
            agent=rng.randrange(num_agents),
            at_step=rng.randrange(0, 200),
            duration=rng.randrange(20, 250),
        )
    if kind == "write-drop":
        return WriteDrop(
            node=rng.randrange(num_nodes), nth=rng.randrange(1, 15)
        )
    if kind == "write-corrupt":
        return WriteCorrupt(
            node=rng.randrange(num_nodes),
            nth=rng.randrange(1, 15),
            delta=rng.randrange(1, 7),
        )
    raise FaultError(f"unknown plan kind {kind!r}")


def _random_byzantine_spec(
    rng: random.Random, num_agents: int
) -> ByzantineAgent:
    behaviors = tuple(
        sorted(rng.sample(BEHAVIORS, rng.randrange(1, len(BEHAVIORS) + 1)))
    )
    return ByzantineAgent(
        agent=rng.randrange(num_agents),
        behaviors=behaviors,
        power=rng.randrange(1, 4),
        seed=rng.randrange(1 << 16),
    )


def random_fault_plans(
    count: int,
    num_agents: int,
    num_nodes: int,
    seed: int = 0,
    kinds: Optional[Tuple[str, ...]] = None,
    combine_probability: float = 0.3,
    byzantine: int = 0,
) -> List[FaultPlan]:
    """Generate ``count`` seeded fault plans for an instance shape.

    Kinds round-robin through ``kinds`` (default :data:`PLAN_KINDS`) so
    every battery covers every fault family; with probability
    ``combine_probability`` a plan carries a second, independently drawn
    spec (compound faults).  Deterministic in ``(seed, count, shape)``.

    ``byzantine`` mixes lying adversaries in: that many of the generated
    plans (chosen by a seed-derived rng) additionally carry one random
    :class:`~repro.fault.byzantine.ByzantineAgent` spec.  The knob uses a
    **separate** rng stream, so ``byzantine=0`` (the default) reproduces
    historical batteries byte for byte — the base rng's draw sequence is
    untouched.
    """
    kinds = kinds or PLAN_KINDS
    rng = random.Random(seed)
    plans = []
    for k in range(count):
        kind = kinds[k % len(kinds)]
        specs: List[FaultSpec] = [
            _random_spec(rng, kind, num_agents, num_nodes)
        ]
        if rng.random() < combine_probability:
            extra_kind = kinds[rng.randrange(len(kinds))]
            specs.append(
                _random_spec(rng, extra_kind, num_agents, num_nodes)
            )
        plans.append(FaultPlan(faults=tuple(specs), name=f"plan{k}-{kind}"))
    if byzantine > 0:
        brng = random.Random(f"{seed}:byzantine")
        chosen = sorted(brng.sample(range(count), min(byzantine, count)))
        for k in chosen:
            base = plans[k]
            spec = _random_byzantine_spec(brng, num_agents)
            plans[k] = FaultPlan(
                faults=base.faults + (spec,), name=f"{base.name}+byz"
            )
    return plans
