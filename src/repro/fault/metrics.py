"""Fault-layer metrics: an always-enabled ``"fault"`` collector.

Mirrors the ``perf.cache`` pattern: counters live in a dedicated
always-enabled :class:`~repro.obs.registry.MetricsRegistry` registered as
the ``"fault"`` collector, so they appear in
:func:`repro.obs.collect_snapshot` without the default registry being
switched on, and tests can assert on injection counts regardless of global
metrics state.

Metrics
-------
* ``fault_injections_total{kind=…}`` — faults that actually *fired*
  (crash, write-drop, write-corrupt), fed by
  :meth:`repro.fault.plan.InjectionLog.record` via :func:`count_injection`;
* ``campaign_outcomes_total{outcome=…}`` — campaign rows per
  classification, fed by the campaign classifier;
* ``cheat_detections_total{kind=…}`` — cheat-detection findings surfaced
  by :class:`repro.fault.detect.CheatDetector` sweeps (``forged`` /
  ``consistency`` / ``strict``), counted once per distinct finding.

The per-run watchdog counters (``watchdog_stalls_total`` /
``watchdog_restarts_total``) live in the *run's* registry instead — they
are per-agent observations of one simulation, wired in
:meth:`repro.sim.runtime.Simulation._arm_metrics` like the move counters.
"""

from __future__ import annotations

from typing import Dict

from ..obs.registry import MetricsRegistry, register_collector

_metrics = MetricsRegistry(enabled=True)
register_collector("fault", _metrics)

_injections = _metrics.counter(
    "fault_injections_total", help="fault injections that fired, by kind"
)
_outcomes = _metrics.counter(
    "campaign_outcomes_total",
    help="fault-campaign rows, by outcome classification",
)
_detections = _metrics.counter(
    "cheat_detections_total",
    help="cheat-detection findings, by evidence kind",
)


def count_injection(kind: str) -> None:
    """Record one fired injection (``crash``/``write-drop``/…)."""
    _injections.inc(kind=kind)


def count_outcome(outcome: str) -> None:
    """Record one classified campaign row."""
    _outcomes.inc(outcome=outcome)


def count_detection(kind: str) -> None:
    """Record one cheat-detection finding (``forged``/``consistency``/…)."""
    _detections.inc(kind=kind)


def detection_stats() -> Dict[str, int]:
    """``{kind: count}`` of cheat-detection findings since the last reset."""
    data = _metrics.snapshot()["metrics"].get("cheat_detections_total", {})
    out: Dict[str, int] = {}
    for series in data.get("series", []):
        out[series["labels"].get("kind", "?")] = int(series["value"])
    return out


def injection_stats() -> Dict[str, int]:
    """``{kind: count}`` of fired injections since the last reset."""
    data = _metrics.snapshot()["metrics"].get("fault_injections_total", {})
    out: Dict[str, int] = {}
    for series in data.get("series", []):
        out[series["labels"].get("kind", "?")] = int(series["value"])
    return out


def reset() -> None:
    """Zero the fault counters (explicit, like ``perf.cache.reset``)."""
    _metrics.reset()
