"""Whiteboard faults: lost/corrupted writes, CRC detection, provenance.

:class:`FaultyWhiteboard` replaces a node's board and misbehaves on a
declaratively chosen agent write — the *nth* runtime-era append is dropped
(the agent believes it wrote; nothing lands) or corrupted (an integer delta
is applied to the payload).  Every append also journals the CRC-32
fingerprint of the sign the agent *asked* to store
(:meth:`repro.sim.signs.Sign.fingerprint`), so :meth:`FaultyWhiteboard.audit`
can afterwards detect any surviving corrupted sign — the detection side of
the fault model, analogous to checksummed storage.

The board additionally keeps a **provenance journal**: for every stored
sign it records the color of the agent that *performed* the write (the
``writer=`` the runtime threads through :meth:`Whiteboard.append`).  A sign
whose claimed color differs from its recorded writer is a *forgery* — a
Byzantine lie, not a bit flip — and :meth:`audit_findings` reports the two
evidence kinds separately so the campaign classifier can tell injection
kinds apart.

Home-base marks (``kind == "homebase"``) are exempt from both faults and
from the nth-write counting: the paper treats them as part of the *instance*
("the home-base of a is marked with a sign of color c(a)"), not as runtime
messages, and dropping one would change which election problem is being
solved rather than perturb how it is solved.  They still enter the
provenance journal: a *forged* home-base mark (an agent planting another
color's home claim) is precisely the spoofed-ownership lie the detection
layer exists to catch.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from ..colors import Color
from ..sim.signs import HOMEBASE, Sign
from ..sim.whiteboard import Whiteboard

#: Audit finding kinds (first element of :meth:`FaultyWhiteboard.audit_findings`).
CORRUPTED = "corrupted"
FORGED = "forged"


class FaultyWhiteboard(Whiteboard):
    """A whiteboard that drops or corrupts selected agent writes."""

    __slots__ = (
        "node",
        "_drops",
        "_corruptions",
        "_appends",
        "journal",
        "provenance",
        "_log",
    )

    def __init__(
        self,
        node: int,
        drops: Sequence[int] = (),
        corruptions: Sequence[Tuple[int, int]] = (),
        log: Optional[object] = None,
    ):
        """``drops`` are 1-based agent-write indices to lose; ``corruptions``
        are ``(nth, delta)`` pairs applying ``delta`` to the first payload
        element of the nth agent write.  ``log`` is the fault plan's
        injection journal (anything with ``record(kind, **info)``)."""
        super().__init__()
        self.node = node
        self._drops = frozenset(drops)
        self._corruptions = dict(corruptions)
        self._appends = 0
        #: ``(stored_sign, requested_fingerprint)`` pairs.  Strong
        #: references on purpose: the audit must be able to recompute the
        #: fingerprint of exactly the object that was stored.
        self.journal: List[Tuple[Sign, int]] = []
        #: ``(stored_sign, writer_color)`` pairs for every stored write
        #: (home-base marks included, dropped writes excluded — nothing
        #: landed, so nothing can mislead).  ``writer`` is ``None`` for
        #: direct board pokes that bypass the runtime.
        self.provenance: List[Tuple[Sign, Optional[Color]]] = []
        self._log = log

    def append(
        self, sign: Sign, writer: Optional[Color] = None
    ) -> Optional[Sign]:
        if sign.kind == HOMEBASE:
            stored = super().append(sign, writer)
            if stored is not None:
                self.provenance.append((stored, writer))
            return stored
        self._appends += 1
        nth = self._appends
        if nth in self._drops:
            if self._log is not None:
                self._log.record(
                    "write-drop", node=self.node, sign=sign.kind, nth=nth
                )
            # The write is lost: no board mutation, no version bump.  The
            # runtime's Write path returns None to signal the loss (the
            # *agent* is not told — that is the point of the fault).
            return None
        requested = sign
        delta = self._corruptions.get(nth)
        if delta is not None:
            payload = sign.payload
            payload = (
                (payload[0] + delta,) + payload[1:] if payload else (delta,)
            )
            sign = Sign(kind=sign.kind, color=sign.color, payload=payload)
            if self._log is not None:
                self._log.record(
                    "write-corrupt",
                    node=self.node,
                    sign=sign.kind,
                    nth=nth,
                    delta=delta,
                )
        stored = super().append(sign, writer)
        self.journal.append((stored, requested.fingerprint()))
        self.provenance.append((stored, writer))
        return stored

    def audit_findings(self) -> List[Tuple[str, str]]:
        """Typed audit: ``(kind, message)`` per detectable bad sign.

        Two evidence kinds, distinguishable by the classifier:

        * :data:`CORRUPTED` — a surviving sign whose bits mismatch the
          write-time CRC fingerprint (a benign fault: storage corruption);
        * :data:`FORGED` — a surviving sign whose claimed color differs
          from the recorded writer's color (a Byzantine lie: the sign was
          planted, not corrupted — its CRC is intact).

        Erased signs cannot mislead anyone and are skipped in both cases.
        """
        # Read the raw list (not snapshot()) so audits do not perturb the
        # whiteboard observation hook's counters.
        live = {id(s) for s in self._signs}
        findings: List[Tuple[str, str]] = []
        for stored, requested_fp in self.journal:
            if id(stored) not in live:
                continue
            if stored.fingerprint() != requested_fp:
                findings.append(
                    (
                        CORRUPTED,
                        f"node {self.node}: stored {stored.kind} sign "
                        f"payload={stored.payload} fails its write-time CRC",
                    )
                )
        for stored, writer in self.provenance:
            if writer is None or id(stored) not in live:
                continue
            if stored.color is not None and stored.color != writer:
                findings.append(
                    (
                        FORGED,
                        f"node {self.node}: {stored.kind} sign claims color "
                        f"{stored.color.name or '?'} but was written by "
                        f"{writer.name or '?'} (forged provenance)",
                    )
                )
        return findings

    def audit(self) -> List[str]:
        """Human-readable findings (see :meth:`audit_findings`).

        An empty list means every surviving write is bit-identical to what
        its writer requested *and* carries its true writer's color.
        """
        return [message for _, message in self.audit_findings()]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"FaultyWhiteboard(node={self.node}, {len(self._signs)} signs, "
            f"drops={sorted(self._drops)}, corruptions={self._corruptions})"
        )
