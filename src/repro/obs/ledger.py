"""The persistent run ledger: an append-only record of what actually ran.

Campaign reports (:class:`repro.fault.campaign.CampaignReport`,
:class:`repro.adversary.fuzz.FuzzReport`) are in-memory and die with the
process; the serve layer caches *answers* but not the fact that a query
ran.  The ledger is the durable complement: every battery case, campaign
pair, fuzz case and serve compute appends one row to a schema-versioned
SQLite file — instance canonical hash, seed, outcome classification,
move count against the Theorem 3.1 ``C·r·|E|`` budget, wall time, and
the flight-recorder trace ids — so "what did last night's run actually
do?" is a query, not an archaeology dig.  This is the substrate the
ROADMAP's "one campaign engine, million-case scale" item checkpoints
into.

Schema (version 1)::

    meta(key TEXT PRIMARY KEY, value TEXT)
        -- 'schema_version', 'canonical_hash_version'
    runs(id INTEGER PRIMARY KEY AUTOINCREMENT,
         kind TEXT, campaign TEXT, case_index INTEGER,
         instance TEXT, family TEXT, chash TEXT,
         seed INTEGER, predicted TEXT, outcome TEXT, detail TEXT,
         moves INTEGER, budget REAL, steps INTEGER,
         wall_ms REAL, trace_id TEXT, span_id TEXT, created REAL)
    checkpoints(kind TEXT, campaign TEXT,
                shard_index INTEGER, shard_count INTEGER,
                done INTEGER, fingerprint TEXT, version INTEGER,
                state TEXT, updated REAL,
                PRIMARY KEY (kind, campaign, shard_index, shard_count))

Versioning mirrors :class:`repro.serve.store.CanonicalStore`: both
stamps are enforced on open (``wipe_on_mismatch=True`` rebuilds —
ledger rows are derived data in the sense that re-running the campaign
regenerates them byte-identically, wall times aside).

Concurrency: the ledger opens in WAL journal mode with a generous busy
timeout, so several shard processes of one campaign can append to the
same file concurrently — each :meth:`RunLedger.append` (and each
:meth:`RunLedger.append_with_checkpoint`) is a single serialized
transaction.  :meth:`append_with_checkpoint` is the campaign engine's
durability primitive: a chunk of rows and the shard's advanced
checkpoint commit **atomically**, so a SIGKILL at any instant leaves
either both or neither — resuming from the stored checkpoint can never
duplicate or skip a case, which is what makes a resumed run's
:meth:`digest` byte-identical to an uninterrupted one.

Determinism contract: for a fixed campaign config, every column except
``wall_ms`` and ``created`` is a pure function of the seed — including
``trace_id``/``span_id``, which are minted deterministically whether or
not the flight recorder is on.  :meth:`RunLedger.digest` hashes exactly
those deterministic columns in ``case_index`` order, so two ledgers
written by runs with different worker counts compare equal by digest.
"""

from __future__ import annotations

import hashlib
import json
import sqlite3
import threading
import time
from dataclasses import dataclass
from typing import Any, Dict, Iterable, List, Optional

from ..errors import MetricsError

LEDGER_SCHEMA_VERSION = 1

#: Version stamp carried by every checkpoint row; a campaign resume
#: refuses checkpoints written by an incompatible engine.
CHECKPOINT_SCHEMA_VERSION = 1

#: Columns hashed by :meth:`RunLedger.digest`, in order.  ``wall_ms`` and
#: ``created`` are deliberately absent: they are the only
#: machine-dependent columns.
DIGEST_COLUMNS = (
    "kind",
    "campaign",
    "case_index",
    "instance",
    "family",
    "chash",
    "seed",
    "predicted",
    "outcome",
    "moves",
    "budget",
    "steps",
    "trace_id",
    "span_id",
)


_INSERT_RUN = (
    "INSERT INTO runs (kind, campaign, case_index, instance,"
    " family, chash, seed, predicted, outcome, detail, moves,"
    " budget, steps, wall_ms, trace_id, span_id, created)"
    " VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?)"
)


@dataclass
class LedgerRow:
    """One appended run record (field semantics in the module docstring)."""

    kind: str
    campaign: str
    case_index: int
    instance: str
    family: str
    chash: str
    seed: int
    predicted: str
    outcome: str
    detail: str = ""
    moves: int = 0
    budget: float = 0.0
    steps: int = 0
    wall_ms: float = 0.0
    trace_id: str = ""
    span_id: str = ""

    def to_dict(self) -> Dict[str, Any]:
        return {
            "kind": self.kind,
            "campaign": self.campaign,
            "case_index": self.case_index,
            "instance": self.instance,
            "family": self.family,
            "chash": self.chash,
            "seed": self.seed,
            "predicted": self.predicted,
            "outcome": self.outcome,
            "detail": self.detail,
            "moves": self.moves,
            "budget": self.budget,
            "steps": self.steps,
            "wall_ms": self.wall_ms,
            "trace_id": self.trace_id,
            "span_id": self.span_id,
        }


@dataclass
class Checkpoint:
    """One shard's durable progress marker inside a campaign.

    ``done`` counts this shard's committed cases (the first ``done``
    positions of the shard's deterministic index sequence).
    ``fingerprint`` hashes the campaign configuration so a resume with a
    different grid is refused instead of silently mixing sweeps.
    ``state`` carries the JSON state of the engine's resumable stages
    (outcome counts, dedup signature sets) as of the last commit.
    """

    kind: str
    campaign: str
    shard_index: int = 0
    shard_count: int = 1
    done: int = 0
    fingerprint: str = ""
    state: Dict[str, Any] = None  # type: ignore[assignment]
    version: int = CHECKPOINT_SCHEMA_VERSION

    def __post_init__(self) -> None:
        if self.state is None:
            self.state = {}

    def to_dict(self) -> Dict[str, Any]:
        return {
            "kind": self.kind,
            "campaign": self.campaign,
            "shard_index": self.shard_index,
            "shard_count": self.shard_count,
            "done": self.done,
            "fingerprint": self.fingerprint,
            "version": self.version,
        }


class RunLedger:
    """SQLite-backed append-only run ledger.

    Parameters
    ----------
    path:
        Database file, or ``":memory:"`` for an ephemeral ledger (tests).
    wipe_on_mismatch:
        When the file carries a different schema or canonical-encoding
        version, drop its contents instead of raising.
    busy_timeout_ms:
        How long a writer waits on a locked database before giving up —
        generous by default so concurrent shard appends queue instead of
        failing.
    """

    def __init__(
        self,
        path: str,
        wipe_on_mismatch: bool = False,
        busy_timeout_ms: int = 30_000,
    ):
        self.path = path
        self._lock = threading.RLock()
        self._conn = sqlite3.connect(path, check_same_thread=False)
        self._conn.execute(f"PRAGMA busy_timeout={int(busy_timeout_ms)}")
        # WAL lets shard readers (progress polls, digests) proceed while a
        # writer commits, and keeps committed transactions durable across
        # a SIGKILL.  In-memory databases report "memory" and stay as-is.
        self._conn.execute("PRAGMA journal_mode=WAL")
        self._conn.execute("PRAGMA synchronous=NORMAL")
        self._init_schema(wipe_on_mismatch)

    def _init_schema(self, wipe_on_mismatch: bool) -> None:
        # Imported here, not at module top: obs is a low layer and
        # graphs.canonical pulls in the refinement stack.
        from ..graphs.canonical import CANONICAL_HASH_VERSION

        with self._lock, self._conn:
            self._conn.execute(
                "CREATE TABLE IF NOT EXISTS meta ("
                "key TEXT PRIMARY KEY, value TEXT NOT NULL)"
            )
            self._conn.execute(
                "CREATE TABLE IF NOT EXISTS runs ("
                "id INTEGER PRIMARY KEY AUTOINCREMENT,"
                "kind TEXT NOT NULL, campaign TEXT NOT NULL,"
                "case_index INTEGER NOT NULL,"
                "instance TEXT NOT NULL, family TEXT NOT NULL,"
                "chash TEXT NOT NULL,"
                "seed INTEGER NOT NULL, predicted TEXT NOT NULL,"
                "outcome TEXT NOT NULL, detail TEXT NOT NULL DEFAULT '',"
                "moves INTEGER NOT NULL DEFAULT 0,"
                "budget REAL NOT NULL DEFAULT 0,"
                "steps INTEGER NOT NULL DEFAULT 0,"
                "wall_ms REAL NOT NULL DEFAULT 0,"
                "trace_id TEXT NOT NULL DEFAULT '',"
                "span_id TEXT NOT NULL DEFAULT '',"
                "created REAL NOT NULL)"
            )
            self._conn.execute(
                "CREATE INDEX IF NOT EXISTS runs_kind_campaign "
                "ON runs (kind, campaign, case_index)"
            )
            self._conn.execute(
                "CREATE TABLE IF NOT EXISTS checkpoints ("
                "kind TEXT NOT NULL, campaign TEXT NOT NULL,"
                "shard_index INTEGER NOT NULL, shard_count INTEGER NOT NULL,"
                "done INTEGER NOT NULL, fingerprint TEXT NOT NULL,"
                "version INTEGER NOT NULL,"
                "state TEXT NOT NULL DEFAULT '{}',"
                "updated REAL NOT NULL,"
                "PRIMARY KEY (kind, campaign, shard_index, shard_count))"
            )
            stamps = {
                "schema_version": str(LEDGER_SCHEMA_VERSION),
                "canonical_hash_version": str(CANONICAL_HASH_VERSION),
            }
            existing = dict(
                self._conn.execute("SELECT key, value FROM meta").fetchall()
            )
            stale = {
                key: existing[key]
                for key, want in stamps.items()
                if key in existing and existing[key] != want
            }
            if stale:
                if not wipe_on_mismatch:
                    raise MetricsError(
                        f"ledger {self.path!r} version mismatch {stale}; "
                        f"expected schema_version={LEDGER_SCHEMA_VERSION}, "
                        "canonical_hash_version="
                        f"{CANONICAL_HASH_VERSION} (pass wipe_on_mismatch "
                        "to rebuild)"
                    )
                self._conn.execute("DELETE FROM runs")
                self._conn.execute("DELETE FROM checkpoints")
                self._conn.execute("DELETE FROM meta")
            for key, value in stamps.items():
                self._conn.execute(
                    "INSERT OR REPLACE INTO meta (key, value) VALUES (?, ?)",
                    (key, value),
                )

    # ------------------------------------------------------------------
    # Append and query
    # ------------------------------------------------------------------

    @staticmethod
    def _row_tuple(r: LedgerRow):
        return (
            r.kind, r.campaign, r.case_index, r.instance, r.family,
            r.chash, r.seed, r.predicted, r.outcome, r.detail,
            r.moves, r.budget, r.steps, r.wall_ms,
            r.trace_id, r.span_id, time.time(),
        )

    def append(self, rows: Iterable[LedgerRow]) -> int:
        """Append rows (one transaction); returns the number written."""
        payload = [self._row_tuple(r) for r in rows]
        with self._lock, self._conn:
            self._conn.executemany(_INSERT_RUN, payload)
        return len(payload)

    def append_with_checkpoint(
        self, rows: Iterable[LedgerRow], checkpoint: Checkpoint
    ) -> int:
        """Append ``rows`` and advance ``checkpoint`` in ONE transaction.

        This is the campaign engine's commit primitive: either the chunk's
        rows land *and* the shard's checkpoint moves past them, or (after a
        crash) neither happened.  Returns the number of rows written.
        """
        payload = [self._row_tuple(r) for r in rows]
        with self._lock, self._conn:
            if payload:
                self._conn.executemany(_INSERT_RUN, payload)
            self._conn.execute(
                "INSERT OR REPLACE INTO checkpoints (kind, campaign,"
                " shard_index, shard_count, done, fingerprint, version,"
                " state, updated) VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?)",
                (
                    checkpoint.kind,
                    checkpoint.campaign,
                    checkpoint.shard_index,
                    checkpoint.shard_count,
                    checkpoint.done,
                    checkpoint.fingerprint,
                    checkpoint.version,
                    json.dumps(checkpoint.state, sort_keys=True),
                    time.time(),
                ),
            )
        return len(payload)

    def checkpoint(
        self,
        kind: str,
        campaign: str,
        shard_index: int = 0,
        shard_count: int = 1,
    ) -> Optional[Checkpoint]:
        """The stored checkpoint for one campaign shard, if any."""
        with self._lock:
            row = self._conn.execute(
                "SELECT done, fingerprint, version, state FROM checkpoints"
                " WHERE kind = ? AND campaign = ? AND shard_index = ?"
                " AND shard_count = ?",
                (kind, campaign, shard_index, shard_count),
            ).fetchone()
        if row is None:
            return None
        done, fingerprint, version, state = row
        if int(version) != CHECKPOINT_SCHEMA_VERSION:
            raise MetricsError(
                f"ledger {self.path!r} holds a checkpoint with schema "
                f"version {version}; this engine speaks "
                f"{CHECKPOINT_SCHEMA_VERSION}"
            )
        return Checkpoint(
            kind=kind,
            campaign=campaign,
            shard_index=shard_index,
            shard_count=shard_count,
            done=int(done),
            fingerprint=str(fingerprint),
            state=json.loads(state),
            version=int(version),
        )

    def checkpoints(self) -> List[Dict[str, Any]]:
        """Every stored checkpoint (shard progress roll-up for ``status``)."""
        with self._lock:
            rows = self._conn.execute(
                "SELECT kind, campaign, shard_index, shard_count, done,"
                " fingerprint, version, updated FROM checkpoints"
                " ORDER BY kind, campaign, shard_count, shard_index"
            ).fetchall()
        columns = (
            "kind", "campaign", "shard_index", "shard_count", "done",
            "fingerprint", "version", "updated",
        )
        return [dict(zip(columns, row)) for row in rows]

    def clear_checkpoint(
        self,
        kind: str,
        campaign: str,
        shard_index: int = 0,
        shard_count: int = 1,
    ) -> None:
        with self._lock, self._conn:
            self._conn.execute(
                "DELETE FROM checkpoints WHERE kind = ? AND campaign = ?"
                " AND shard_index = ? AND shard_count = ?",
                (kind, campaign, shard_index, shard_count),
            )

    def merge_from(self, source: Any) -> int:
        """Copy every run row from ``source`` (a path or ledger) into this
        ledger, preserving all columns including ``created``.

        The shard-merge path: N shard processes each write their own
        ledger file, then CI merges them and checks
        :meth:`digest` equality against a single-shard run — the digest
        orders rows by ``case_index``, so the union of disjoint shards
        hashes identically to the uninterrupted sweep.  Checkpoints are
        deliberately **not** merged (they are per-file shard state).
        Returns the number of rows copied.
        """
        src = source if isinstance(source, RunLedger) else RunLedger(str(source))
        try:
            rows = src.rows()
        finally:
            if src is not source:
                src.close()
        payload = [
            (
                r["kind"], r["campaign"], r["case_index"], r["instance"],
                r["family"], r["chash"], r["seed"], r["predicted"],
                r["outcome"], r["detail"], r["moves"], r["budget"],
                r["steps"], r["wall_ms"], r["trace_id"], r["span_id"],
                r["created"],
            )
            for r in rows
        ]
        with self._lock, self._conn:
            self._conn.executemany(_INSERT_RUN, payload)
        return len(payload)

    def _where(
        self,
        kind: Optional[str],
        campaign: Optional[str],
        outcome: Optional[str] = None,
    ):
        clauses, params = [], []
        for column, value in (
            ("kind", kind), ("campaign", campaign), ("outcome", outcome)
        ):
            if value is not None:
                clauses.append(f"{column} = ?")
                params.append(value)
        where = (" WHERE " + " AND ".join(clauses)) if clauses else ""
        return where, params

    def count(
        self, kind: Optional[str] = None, campaign: Optional[str] = None
    ) -> int:
        where, params = self._where(kind, campaign)
        with self._lock:
            (n,) = self._conn.execute(
                f"SELECT COUNT(*) FROM runs{where}", params
            ).fetchone()
        return int(n)

    def outcomes(
        self, kind: Optional[str] = None, campaign: Optional[str] = None
    ) -> Dict[str, int]:
        """Outcome-class histogram (matches a report's ``counts``)."""
        where, params = self._where(kind, campaign)
        with self._lock:
            rows = self._conn.execute(
                f"SELECT outcome, COUNT(*) FROM runs{where} "
                "GROUP BY outcome ORDER BY outcome",
                params,
            ).fetchall()
        return {outcome: int(n) for outcome, n in rows}

    def rows(
        self,
        kind: Optional[str] = None,
        campaign: Optional[str] = None,
        outcome: Optional[str] = None,
        limit: Optional[int] = None,
    ) -> List[Dict[str, Any]]:
        """Matching rows as dicts, ordered by ``(campaign, case_index)``."""
        where, params = self._where(kind, campaign, outcome)
        sql = (
            "SELECT kind, campaign, case_index, instance, family, chash,"
            " seed, predicted, outcome, detail, moves, budget, steps,"
            " wall_ms, trace_id, span_id, created"
            f" FROM runs{where} ORDER BY kind, campaign, case_index, id"
        )
        if limit is not None:
            sql += " LIMIT ?"
            params = params + [limit]
        with self._lock:
            fetched = self._conn.execute(sql, params).fetchall()
        columns = (
            "kind", "campaign", "case_index", "instance", "family", "chash",
            "seed", "predicted", "outcome", "detail", "moves", "budget",
            "steps", "wall_ms", "trace_id", "span_id", "created",
        )
        return [dict(zip(columns, row)) for row in fetched]

    def campaigns(self) -> List[Dict[str, Any]]:
        """Per-``(kind, campaign)`` roll-up: rows, outcomes, total moves."""
        with self._lock:
            groups = self._conn.execute(
                "SELECT kind, campaign, COUNT(*), SUM(moves), SUM(wall_ms)"
                " FROM runs GROUP BY kind, campaign ORDER BY kind, campaign"
            ).fetchall()
        out = []
        for kind, campaign, n, moves, wall in groups:
            out.append(
                {
                    "kind": kind,
                    "campaign": campaign,
                    "rows": int(n),
                    "moves": int(moves or 0),
                    "wall_ms": round(float(wall or 0.0), 3),
                    "outcomes": self.outcomes(kind, campaign),
                }
            )
        return out

    def digest(
        self, kind: Optional[str] = None, campaign: Optional[str] = None
    ) -> str:
        """SHA-256 over the deterministic columns, in case order.

        Two runs of the same campaign config — any worker count, any
        machine — must produce equal digests; that is the acceptance
        check for byte-identical ledger writes.
        """
        digest = hashlib.sha256()
        for row in self.rows(kind, campaign):
            record = {col: row[col] for col in DIGEST_COLUMNS}
            digest.update(
                json.dumps(record, sort_keys=True, separators=(",", ":"))
                .encode("utf-8")
            )
            digest.update(b"\n")
        return digest.hexdigest()

    def stats(self) -> Dict[str, Any]:
        return {
            "path": self.path,
            "rows": self.count(),
            "campaigns": self.campaigns(),
        }

    def close(self) -> None:
        with self._lock:
            self._conn.close()

    def __enter__(self) -> "RunLedger":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    def __len__(self) -> int:
        return self.count()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"RunLedger({self.path!r}, rows={self.count()})"


def open_ledger(ledger: Any) -> "RunLedger":
    """Coerce a path or :class:`RunLedger` to a ledger (campaign runners
    accept either)."""
    if isinstance(ledger, RunLedger):
        return ledger
    return RunLedger(str(ledger))
