"""Observability: metrics registry, phase spans, budget gauges, exporters.

The unified cost-measurement layer of the reproduction (DESIGN §8.3).
Where :mod:`repro.trace` records *what happened* for replay and post-hoc
audit, this package measures *what it cost*, live:

* :mod:`repro.obs.registry` — :class:`MetricsRegistry` of counters,
  gauges and histograms (p50/p90/p99) with labeled series and a
  zero-cost disabled path;
* :mod:`repro.obs.spans` — :func:`span` and :class:`PhaseClock`
  wall-time profiling of ELECT's phases (MAP-DRAWING, COMPUTE & ORDER,
  AGENT-REDUCE, NODE-REDUCE) plus scheduler steps;
* :mod:`repro.obs.budget` — :class:`BudgetTracker`, live Theorem 3.1
  ``O(r·|E|)`` accounting with overrun findings;
* :mod:`repro.obs.exporters` — Prometheus text exposition, JSON
  snapshots and snapshot diffs;
* :mod:`repro.obs.flight` — the flight recorder: deterministic
  :class:`TraceContext` propagation across batteries, workers, the serve
  HTTP layer and campaigns, with Chrome-trace/Perfetto and JSONL
  exporters (DESIGN §8.7);
* :mod:`repro.obs.ledger` — :class:`~repro.obs.ledger.RunLedger`, the
  persistent SQLite append-only record of campaign/battery/serve runs;
* :mod:`repro.obs.regress` — the perf-regression sentinel comparing
  fresh bench JSON against committed baselines;
* ``python -m repro.obs`` — the ``report`` / ``export`` / ``diff`` /
  ``flight`` / ``ledger`` / ``regress`` CLI.

Metrics ship **disabled**: enable them with :func:`enable`, the
``REPRO_METRICS=1`` environment variable, or by handing an enabled
registry to :class:`repro.sim.runtime.Simulation` as ``metrics=``.

Subsystems with always-on counters register themselves as *collectors*
(merged into :func:`collect_snapshot`): ``"perf"`` (memo-cache hit/miss),
``"fault"`` (:mod:`repro.fault.metrics` — fired injections by kind and
campaign outcome classifications) and ``"serve"``
(:mod:`repro.serve.metrics` — request, cache-tier, coalescing and
back-pressure counters; the election service's ``GET /metrics`` endpoint
serves the merged exposition of *all* collectors).  A metrics-armed
supervised run also exposes ``watchdog_stalls_total`` /
``watchdog_restarts_total`` in its own registry.
"""

from .budget import ACCESSES, DEFAULT_CONSTANT, MOVES, BudgetTracker
from .flight import (
    FlightRecorder,
    FlightSpan,
    TraceContext,
    assert_valid_chrome,
    disable_flight,
    enable_flight,
    entrypoint_span,
    flight_recorder,
    flight_span,
    map_with_flight,
    to_chrome_trace,
    validate_chrome,
)
from .exporters import (
    FORMATS,
    diff_snapshots,
    load_snapshot,
    render_diff,
    to_json,
    to_prometheus,
    write_snapshot,
)
from .registry import (
    QUANTILES,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    ObsFinding,
    collect_snapshot,
    collectors,
    disable,
    enable,
    get_registry,
    register_collector,
    reset_all_collectors,
    set_registry,
)
from .spans import (
    AGENT_REDUCE,
    ANNOUNCE,
    AWAIT,
    COMPUTE_ORDER,
    ELECT_PHASES,
    MAP_DRAWING,
    NODE_REDUCE,
    SPAN_METRIC,
    PhaseClock,
    span,
)

__all__ = [
    # registry
    "MetricsRegistry",
    "Counter",
    "Gauge",
    "Histogram",
    "ObsFinding",
    "QUANTILES",
    "get_registry",
    "set_registry",
    "enable",
    "disable",
    "register_collector",
    "collectors",
    "collect_snapshot",
    "reset_all_collectors",
    # flight recorder
    "TraceContext",
    "FlightSpan",
    "FlightRecorder",
    "enable_flight",
    "disable_flight",
    "flight_recorder",
    "entrypoint_span",
    "flight_span",
    "map_with_flight",
    "to_chrome_trace",
    "validate_chrome",
    "assert_valid_chrome",
    # spans
    "span",
    "PhaseClock",
    "SPAN_METRIC",
    "ELECT_PHASES",
    "MAP_DRAWING",
    "COMPUTE_ORDER",
    "AGENT_REDUCE",
    "NODE_REDUCE",
    "ANNOUNCE",
    "AWAIT",
    # budget
    "BudgetTracker",
    "DEFAULT_CONSTANT",
    "MOVES",
    "ACCESSES",
    # exporters
    "FORMATS",
    "to_prometheus",
    "to_json",
    "write_snapshot",
    "load_snapshot",
    "diff_snapshots",
    "render_diff",
    # wiring
    "instrument_whiteboards",
]


def instrument_whiteboards(registry=None):
    """Feed whiteboard operations into ``whiteboard_ops_total{op=...}``.

    Installs the module-level observation hook of
    :mod:`repro.sim.whiteboard` (boards carry no registry reference, so
    per-operation counting goes through one process-global hook).  Returns
    a zero-argument callable restoring the previous hook::

        restore = instrument_whiteboards(reg)
        try:
            ...  # run simulations
        finally:
            restore()

    Passing ``None`` binds the *default* registry at call time.
    """
    from ..sim.whiteboard import set_observation_hook

    reg = registry if registry is not None else get_registry()
    counter = reg.counter(
        "whiteboard_ops_total",
        help="whiteboard primitive invocations, by operation",
    )

    def _hook(op):
        counter.inc(op=op)

    previous = set_observation_hook(_hook)

    def restore():
        set_observation_hook(previous)

    return restore
