"""The flight recorder: causal trace propagation across execution surfaces.

One election can cross five boundaries — a battery loop, a
:class:`~repro.perf.parallel.ParallelBatteryRunner` worker process, the
``repro.serve`` HTTP service, a fault campaign, an adversary fuzz sweep —
and until now nothing tied those fragments together.  This module mints a
**trace context** (a 128-bit trace id plus 64-bit span ids, deterministic
from the run seed) at every entry point and threads it through all of
them, so "where did this election go?" has one answer: a single trace id
joining the HTTP span, the coalescing link, the worker-side compute span
and the ELECT phase spans.

Model (OpenTelemetry-shaped, stdlib-only):

* :class:`TraceContext` — ``(trace_id, span_id, parent_id)`` plus a child
  counter.  ``mint(name, seed)`` derives the ids from SHA-256 over the
  seed, so the same run produces the same trace id in every process.
* :class:`FlightSpan` — one recorded span: ids, name, kind, wall-clock
  start, duration, pid/tid, attributes, and *links* to spans in other
  traces (how a coalesced follower points at the leader's compute span).
* :class:`FlightRecorder` — a bounded, thread-safe span sink.  The
  process-global recorder is ``None`` unless :func:`enable_flight` (or
  ``REPRO_FLIGHT=1``) installed one, so the disabled path costs one
  context-variable read — the same <5% contract as the metrics registry
  (measured in ``benchmarks/bench_flight_overhead.py``).
* Exporters — Chrome trace-event / Perfetto-compatible JSON
  (:func:`to_chrome_trace`, with flow events for links) and a compact
  JSONL span stream (:func:`write_jsonl`), plus a structural validator
  (:func:`validate_chrome`) so CI asserts exported files are well-formed
  instead of eyeballing them.

Worker propagation: :func:`map_with_flight` wraps a picklable battery
function so each item runs under its shipped context inside the worker,
captures the spans it produced there (:func:`capture` installs a local
recorder), and ships them back with the result for the parent to merge.
Results stay byte-identical to a plain ``runner.map`` for any worker
count — only the span stream is added.

This module is a leaf: stdlib plus :mod:`repro.errors` only, so every
layer can join the flight record without import cycles.
"""

from __future__ import annotations

import hashlib
import json
import os
import re
import threading
import time
from contextlib import contextmanager
from contextvars import ContextVar
from dataclasses import dataclass, field
from typing import (
    Any,
    Callable,
    Dict,
    Iterable,
    Iterator,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
)

from ..errors import MetricsError

#: Grammar of the wire-format ids (W3C traceparent sizes).
TRACE_ID_PATTERN = re.compile(r"^[0-9a-f]{32}$")
SPAN_ID_PATTERN = re.compile(r"^[0-9a-f]{16}$")

#: A link target: ``(trace_id, span_id)`` of the span being pointed at.
SpanRef = Tuple[str, str]


def _digest(payload: str, hexdigits: int) -> str:
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:hexdigits]


def child_span_id(parent_span_id: str, name: str, index: int) -> str:
    """The deterministic span id of ``parent``'s ``index``-th ``name`` child.

    Pure, so a parent process can *predict* the id a worker will assign
    (the serve layer links coalesced followers to the leader's compute
    span before the leader has even started computing).
    """
    return _digest(f"{parent_span_id}|{name}|{index}", 16)


class TraceContext:
    """One position in a trace: ids plus a deterministic child counter.

    Contexts are cheap value-ish objects.  The child counter is the only
    mutable state; pickling drops it (a worker restarts its children at
    index 0, which stays collision-free because ids include the span
    name and every shipped context is derived per item).
    """

    __slots__ = ("trace_id", "span_id", "parent_id", "_children")

    def __init__(
        self,
        trace_id: str,
        span_id: str,
        parent_id: Optional[str] = None,
    ):
        self.trace_id = trace_id
        self.span_id = span_id
        self.parent_id = parent_id
        self._children = 0

    @classmethod
    def mint(cls, name: str, seed: Any) -> "TraceContext":
        """A fresh root context, deterministic in ``(name, seed)``."""
        trace_id = _digest(f"repro-flight|{name}|{seed}", 32)
        return cls(trace_id, _digest(f"{trace_id}|root", 16))

    def child(self, name: str, index: Optional[int] = None) -> "TraceContext":
        """Derive a child context.

        With ``index=None`` the context's own counter assigns the next
        slot (the common nested-span case); an explicit ``index`` is a
        *pure* derivation — no counter touched — for when two sides must
        agree on the id (serve leader/follower rendezvous).
        """
        if index is None:
            index = self._children
            self._children += 1
        return TraceContext(
            self.trace_id, child_span_id(self.span_id, name, index), self.span_id
        )

    def ref(self) -> SpanRef:
        return (self.trace_id, self.span_id)

    def __reduce__(self):
        return (TraceContext, (self.trace_id, self.span_id, self.parent_id))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"TraceContext({self.trace_id[:8]}…/{self.span_id})"


@dataclass
class FlightSpan:
    """One recorded span (JSON-safe via :meth:`to_dict`)."""

    trace_id: str
    span_id: str
    parent_id: Optional[str]
    name: str
    kind: str
    #: Wall-clock start, seconds since the epoch.
    ts: float
    #: Duration in seconds (monotonic-clock measured).
    dur: float
    pid: int
    tid: int
    attrs: Dict[str, str] = field(default_factory=dict)
    links: Tuple[SpanRef, ...] = ()

    def to_dict(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "kind": self.kind,
            "ts": self.ts,
            "dur": self.dur,
            "pid": self.pid,
            "tid": self.tid,
        }
        if self.attrs:
            out["attrs"] = dict(self.attrs)
        if self.links:
            out["links"] = [list(ref) for ref in self.links]
        return out

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "FlightSpan":
        return cls(
            trace_id=data["trace_id"],
            span_id=data["span_id"],
            parent_id=data.get("parent_id"),
            name=data["name"],
            kind=data.get("kind", "span"),
            ts=float(data["ts"]),
            dur=float(data["dur"]),
            pid=int(data.get("pid", 0)),
            tid=int(data.get("tid", 0)),
            attrs=dict(data.get("attrs", {})),
            links=tuple(
                (str(t), str(s)) for t, s in data.get("links", [])
            ),
        )


class FlightRecorder:
    """A bounded, thread-safe span sink.

    ``max_spans`` caps memory on long recordings; spans past the cap are
    counted in :attr:`dropped` instead of silently vanishing.
    """

    def __init__(self, max_spans: int = 200_000):
        self.max_spans = max_spans
        self.dropped = 0
        self._spans: List[FlightSpan] = []
        self._lock = threading.Lock()

    def record(self, span: FlightSpan) -> None:
        with self._lock:
            if len(self._spans) >= self.max_spans:
                self.dropped += 1
                return
            self._spans.append(span)

    def extend(self, spans: Iterable[FlightSpan]) -> None:
        for span in spans:
            self.record(span)

    def spans(self) -> List[FlightSpan]:
        with self._lock:
            return list(self._spans)

    def reset(self) -> None:
        with self._lock:
            self._spans.clear()
            self.dropped = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._spans)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"FlightRecorder({len(self)} spans, dropped={self.dropped})"


# ---------------------------------------------------------------------------
# Process-global state
# ---------------------------------------------------------------------------

#: The global recorder; ``None`` keeps every hook on its early-return path.
_global_recorder: Optional[FlightRecorder] = (
    FlightRecorder() if os.environ.get("REPRO_FLIGHT", "") not in ("", "0") else None
)

#: Worker/test-local override (:func:`capture`); wins over the global.
_local_recorder: "ContextVar[Optional[FlightRecorder]]" = ContextVar(
    "repro_flight_local_recorder", default=None
)

#: The current position in a trace (set by the span context managers).
_current: "ContextVar[Optional[TraceContext]]" = ContextVar(
    "repro_flight_context", default=None
)


def enable_flight(recorder: Optional[FlightRecorder] = None) -> FlightRecorder:
    """Install (and return) the process-global recorder."""
    global _global_recorder
    _global_recorder = recorder if recorder is not None else FlightRecorder()
    return _global_recorder


def disable_flight() -> Optional[FlightRecorder]:
    """Remove the global recorder; returns it so callers can export."""
    global _global_recorder
    recorder, _global_recorder = _global_recorder, None
    return recorder


def flight_recorder() -> Optional[FlightRecorder]:
    """The active recorder (local capture override, then global)."""
    local = _local_recorder.get()
    return local if local is not None else _global_recorder


def recording() -> bool:
    return flight_recorder() is not None


def current_context() -> Optional[TraceContext]:
    return _current.get()


def active() -> Optional[FlightRecorder]:
    """The recorder, but only when a trace context is current.

    This is the guard instrumentation hooks (:func:`repro.obs.spans.span`,
    :class:`~repro.obs.spans.PhaseClock`) use: spans outside any trace are
    not recorded, so enabling the recorder never floods the file with
    orphans from unrelated code paths.
    """
    if _current.get() is None:
        return None
    return flight_recorder()


@contextmanager
def use_context(ctx: Optional[TraceContext]) -> Iterator[Optional[TraceContext]]:
    """Make ``ctx`` the current trace position for the enclosed block."""
    token = _current.set(ctx)
    try:
        yield ctx
    finally:
        _current.reset(token)


# ---------------------------------------------------------------------------
# Recording primitives
# ---------------------------------------------------------------------------


def _as_attrs(attrs: Optional[Mapping[str, Any]]) -> Dict[str, str]:
    if not attrs:
        return {}
    return {str(k): str(v) for k, v in attrs.items()}


def record_for(
    ctx: TraceContext,
    name: str,
    kind: str = "span",
    wall: Optional[float] = None,
    dur: float = 0.0,
    attrs: Optional[Mapping[str, Any]] = None,
    links: Sequence[SpanRef] = (),
) -> None:
    """Record one finished span *for* ``ctx`` (ids straight from it)."""
    rec = flight_recorder()
    if rec is None:
        return
    rec.record(
        FlightSpan(
            trace_id=ctx.trace_id,
            span_id=ctx.span_id,
            parent_id=ctx.parent_id,
            name=name,
            kind=kind,
            ts=time.time() if wall is None else wall,
            dur=dur,
            pid=os.getpid(),
            tid=threading.get_ident() & 0xFFFFFFFF,
            attrs=_as_attrs(attrs),
            links=tuple(links),
        )
    )


def observe(
    name: str,
    wall: float,
    dur: float,
    kind: str = "span",
    attrs: Optional[Mapping[str, Any]] = None,
    links: Sequence[SpanRef] = (),
) -> None:
    """Record an already-measured span as a child of the current context.

    The hook :func:`repro.obs.spans.span` and :class:`PhaseClock` call
    after timing a block themselves.  No-ops without a recorder or a
    current context.
    """
    ctx = _current.get()
    if ctx is None or flight_recorder() is None:
        return
    record_for(ctx.child(name), name, kind, wall, dur, attrs, links)


def link(
    name: str,
    target: SpanRef,
    parent: Optional[TraceContext] = None,
    index: Optional[int] = None,
    **attrs: Any,
) -> None:
    """Record a zero-duration link span pointing at ``target``.

    How a coalesced serve follower joins its own trace to the leader's
    compute span in another trace.
    """
    rec = flight_recorder()
    if rec is None:
        return
    parent = parent if parent is not None else _current.get()
    if parent is None:
        return
    ctx = parent.child(name, index=index)
    record_for(ctx, name, "link", None, 0.0, attrs, links=(target,))


@contextmanager
def root_span(
    ctx: TraceContext,
    name: str,
    kind: str = "span",
    links: Sequence[SpanRef] = (),
    **attrs: Any,
) -> Iterator[TraceContext]:
    """Run the block *as* ``ctx``: its span is recorded with ctx's ids."""
    wall = time.time()
    start = time.perf_counter()
    token = _current.set(ctx)
    try:
        yield ctx
    finally:
        _current.reset(token)
        record_for(
            ctx, name, kind, wall, time.perf_counter() - start, attrs, links
        )


@contextmanager
def flight_span(
    name: str,
    kind: str = "span",
    links: Sequence[SpanRef] = (),
    **attrs: Any,
) -> Iterator[Optional[TraceContext]]:
    """Open a child span under the current context for the enclosed block.

    Yields the child's :class:`TraceContext` (``None`` when not recording
    or outside any trace — the block still runs, nothing is recorded).
    """
    if flight_recorder() is None:
        yield None
        return
    parent = _current.get()
    if parent is None:
        yield None
        return
    with root_span(parent.child(name), name, kind, links, **attrs) as ctx:
        yield ctx


@contextmanager
def entrypoint_span(
    name: str, mint_seed: Any, **attrs: Any
) -> Iterator[Optional[TraceContext]]:
    """The entry-point hook: join the current trace or mint a new one.

    Called at the top of ``run_election`` / ``evaluate_battery`` — nested
    entry points (an election inside a campaign case) become child spans
    of the enclosing trace instead of starting fresh ones.  ``mint_seed``
    feeds :meth:`TraceContext.mint` when a fresh trace is needed (it is a
    positional-style parameter so ``attrs`` may carry a ``seed`` label).
    Yields the span's context (``None`` when no recorder is installed).
    """
    if flight_recorder() is None:
        yield None
        return
    if _current.get() is not None:
        with flight_span(name, **attrs) as ctx:
            yield ctx
        return
    with root_span(TraceContext.mint(name, mint_seed), name, **attrs) as ctx:
        yield ctx


# ---------------------------------------------------------------------------
# Worker propagation
# ---------------------------------------------------------------------------


@contextmanager
def capture(max_spans: int = 200_000) -> Iterator[FlightRecorder]:
    """Divert recording to a fresh local recorder for the enclosed block.

    The worker half of :func:`map_with_flight`: spans recorded in the
    block land in the yielded recorder (only), ready to ship back to the
    parent.  Context-variable scoped, so concurrent threads capture
    independently.
    """
    local = FlightRecorder(max_spans=max_spans)
    token = _local_recorder.set(local)
    try:
        yield local
    finally:
        _local_recorder.reset(token)


class RecordedCall:
    """Picklable wrapper: run ``fn(item)`` under a shipped context.

    Each mapped item arrives as ``(ctx, item)``; the call runs inside a
    span recorded *as* ``ctx`` (so the parent knows the span id in
    advance) with worker-side sub-spans captured and returned alongside
    the result as ``(result, span_dicts)``.
    """

    __slots__ = ("fn", "name", "attrs_of")

    def __init__(
        self,
        fn: Callable[[Any], Any],
        name: str,
        attrs_of: Optional[Callable[[Any], Mapping[str, Any]]] = None,
    ):
        self.fn = fn
        self.name = name
        self.attrs_of = attrs_of

    def __call__(self, pair: Tuple[TraceContext, Any]) -> Tuple[Any, Tuple[Dict[str, Any], ...]]:
        ctx, item = pair
        attrs = self.attrs_of(item) if self.attrs_of is not None else {}
        with capture() as local:
            with root_span(ctx, self.name, **dict(attrs)):
                result = self.fn(item)
        return result, tuple(span.to_dict() for span in local.spans())


def map_with_flight(
    runner: Any,
    fn: Callable[[Any], Any],
    items: Sequence[Any],
    name: str,
    contexts: Sequence[TraceContext],
    attrs_of: Optional[Callable[[Any], Mapping[str, Any]]] = None,
) -> List[Any]:
    """``runner.map`` with per-item trace contexts and span shipping.

    Every item runs under its context (one span per item, named
    ``name``), worker-side spans are merged into the caller's recorder,
    and the returned results are byte-identical to ``runner.map(fn,
    items)`` for any worker count.  Falls back to a plain map when no
    recorder is installed.
    """
    items = list(items)
    rec = flight_recorder()
    if rec is None:
        return runner.map(fn, items)
    if len(contexts) != len(items):
        raise MetricsError(
            f"map_with_flight: {len(contexts)} contexts for {len(items)} items"
        )
    wrapped = runner.map(RecordedCall(fn, name, attrs_of), list(zip(contexts, items)))
    results: List[Any] = []
    for result, span_dicts in wrapped:
        rec.extend(FlightSpan.from_dict(d) for d in span_dicts)
        results.append(result)
    return results


# ---------------------------------------------------------------------------
# Exporters: Chrome trace-event JSON (Perfetto-compatible) and JSONL
# ---------------------------------------------------------------------------


def to_chrome_trace(spans: Sequence[FlightSpan]) -> Dict[str, Any]:
    """Render spans as a Chrome trace-event document (Perfetto loads it).

    Spans become complete (``ph="X"``) events carrying their trace ids in
    ``args``; links become flow-event pairs (``ph="s"`` at the target,
    ``ph="f"`` at the linking span) so the coalescing arrow renders in
    the viewer.  Deterministic ordering: events sorted by ``(ts, span
    id)`` so identical recordings export byte-identically.
    """
    by_id: Dict[str, FlightSpan] = {s.span_id: s for s in spans}
    events: List[Dict[str, Any]] = []
    for pid in sorted({s.pid for s in spans}):
        events.append(
            {
                "ph": "M",
                "name": "process_name",
                "pid": pid,
                "tid": 0,
                "args": {"name": "repro"},
            }
        )
    flow_sources: set = set()
    for span in spans:
        args: Dict[str, Any] = {
            "trace_id": span.trace_id,
            "span_id": span.span_id,
            "parent_id": span.parent_id,
        }
        args.update(span.attrs)
        if span.links:
            args["links"] = [f"{t}/{s}" for t, s in span.links]
        events.append(
            {
                "ph": "X",
                "name": span.name,
                "cat": span.kind,
                "ts": span.ts * 1e6,
                "dur": max(span.dur, 1e-7) * 1e6,
                "pid": span.pid,
                "tid": span.tid,
                "args": args,
            }
        )
        for _ltrace, lspan in span.links:
            target = by_id.get(lspan)
            if target is None:
                continue  # validator flags the dangling link on the span
            flow_id = f"{lspan}->{span.span_id}"
            if flow_id not in flow_sources:
                flow_sources.add(flow_id)
                events.append(
                    {
                        "ph": "s",
                        "name": "coalesce",
                        "cat": "flow",
                        "id": flow_id,
                        "ts": target.ts * 1e6,
                        "pid": target.pid,
                        "tid": target.tid,
                    }
                )
                events.append(
                    {
                        "ph": "f",
                        "bp": "e",
                        "name": "coalesce",
                        "cat": "flow",
                        "id": flow_id,
                        "ts": max(span.ts, target.ts + target.dur) * 1e6,
                        "pid": span.pid,
                        "tid": span.tid,
                    }
                )
    events.sort(key=lambda e: (e.get("ts", 0.0), str(e.get("id", "")), e.get("ph", ""), str(e.get("args", {}).get("span_id", ""))))
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def write_chrome(spans: Sequence[FlightSpan], path: str) -> Dict[str, Any]:
    doc = to_chrome_trace(spans)
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(doc, fh, indent=1, sort_keys=True)
        fh.write("\n")
    return doc


def write_jsonl(spans: Sequence[FlightSpan], path: str) -> None:
    """The compact span sink: one JSON object per line."""
    with open(path, "w", encoding="utf-8") as fh:
        for span in spans:
            fh.write(json.dumps(span.to_dict(), sort_keys=True))
            fh.write("\n")


def read_jsonl(path: str) -> List[FlightSpan]:
    spans: List[FlightSpan] = []
    with open(path, "r", encoding="utf-8") as fh:
        for lineno, line in enumerate(fh, 1):
            line = line.strip()
            if not line:
                continue
            try:
                spans.append(FlightSpan.from_dict(json.loads(line)))
            except (ValueError, KeyError) as exc:
                raise MetricsError(f"{path}:{lineno}: bad span record: {exc}")
    return spans


def load_chrome(path: str) -> Dict[str, Any]:
    with open(path, "r", encoding="utf-8") as fh:
        data = json.load(fh)
    if not isinstance(data, dict) or "traceEvents" not in data:
        raise MetricsError(f"{path}: not a Chrome trace (no 'traceEvents')")
    return data


def validate_chrome(doc: Mapping[str, Any]) -> List[str]:
    """Structural validation of a Chrome trace-event document.

    Returns a list of problems (empty = valid): event shape, id grammar,
    span-id uniqueness, parent references resolving within the file, and
    flow events pairing up.  This is what ``python -m repro.obs flight
    assert-valid`` and the acceptance tests run, so "Perfetto-valid" is a
    checked property, not a claim.
    """
    problems: List[str] = []
    events = doc.get("traceEvents")
    if not isinstance(events, list):
        return ["traceEvents is not a list"]
    span_ids: Dict[str, int] = {}
    parents: List[Tuple[int, str]] = []
    link_refs: List[Tuple[int, str]] = []
    flows: Dict[str, Dict[str, int]] = {}
    for i, event in enumerate(events):
        if not isinstance(event, dict):
            problems.append(f"event {i}: not an object")
            continue
        ph = event.get("ph")
        if not isinstance(ph, str) or not ph:
            problems.append(f"event {i}: missing ph")
            continue
        for field_name in ("pid", "tid"):
            if not isinstance(event.get(field_name), int):
                problems.append(f"event {i}: missing integer {field_name}")
        if ph == "M":
            continue
        if not isinstance(event.get("name"), str):
            problems.append(f"event {i}: missing name")
        ts = event.get("ts")
        if not isinstance(ts, (int, float)) or ts < 0:
            problems.append(f"event {i}: bad ts {ts!r}")
        if ph in ("s", "f"):
            flow_id = event.get("id")
            if not isinstance(flow_id, (str, int)):
                problems.append(f"event {i}: flow event without id")
            else:
                flows.setdefault(str(flow_id), {})[ph] = (
                    flows.setdefault(str(flow_id), {}).get(ph, 0) + 1
                )
            continue
        if ph != "X":
            problems.append(f"event {i}: unsupported ph {ph!r}")
            continue
        dur = event.get("dur")
        if not isinstance(dur, (int, float)) or dur < 0:
            problems.append(f"event {i}: bad dur {dur!r}")
        args = event.get("args")
        if not isinstance(args, dict):
            problems.append(f"event {i}: X event without args")
            continue
        trace_id = args.get("trace_id")
        span_id = args.get("span_id")
        if not isinstance(trace_id, str) or not TRACE_ID_PATTERN.match(trace_id):
            problems.append(f"event {i}: bad trace_id {trace_id!r}")
        if not isinstance(span_id, str) or not SPAN_ID_PATTERN.match(span_id):
            problems.append(f"event {i}: bad span_id {span_id!r}")
            continue
        if span_id in span_ids:
            problems.append(
                f"event {i}: span_id {span_id} duplicates event {span_ids[span_id]}"
            )
        span_ids[span_id] = i
        parent_id = args.get("parent_id")
        if parent_id is not None:
            if not isinstance(parent_id, str) or not SPAN_ID_PATTERN.match(parent_id):
                problems.append(f"event {i}: bad parent_id {parent_id!r}")
            else:
                parents.append((i, parent_id))
        for ref in args.get("links", []):
            if not isinstance(ref, str) or "/" not in ref:
                problems.append(f"event {i}: bad link {ref!r}")
            else:
                link_refs.append((i, ref.rsplit("/", 1)[1]))
    for i, parent_id in parents:
        if parent_id not in span_ids:
            problems.append(
                f"event {i}: parent span {parent_id} not present in file"
            )
    for i, lspan in link_refs:
        if lspan not in span_ids:
            problems.append(f"event {i}: linked span {lspan} not present in file")
    for flow_id, sides in sorted(flows.items()):
        if set(sides) != {"s", "f"}:
            problems.append(
                f"flow {flow_id}: unpaired (has {sorted(sides)} of ['f', 's'])"
            )
    return problems


def assert_valid_chrome(doc: Mapping[str, Any]) -> None:
    problems = validate_chrome(doc)
    if problems:
        head = "; ".join(problems[:5])
        more = f" (+{len(problems) - 5} more)" if len(problems) > 5 else ""
        raise MetricsError(f"invalid Chrome trace: {head}{more}")


def summarize(spans: Sequence[FlightSpan]) -> Dict[str, Any]:
    """Per-trace and per-name roll-up for ``flight summary``."""
    traces: Dict[str, int] = {}
    names: Dict[str, Dict[str, float]] = {}
    links = 0
    for span in spans:
        traces[span.trace_id] = traces.get(span.trace_id, 0) + 1
        slot = names.setdefault(span.name, {"count": 0, "seconds": 0.0})
        slot["count"] += 1
        slot["seconds"] += span.dur
        links += len(span.links)
    return {
        "spans": len(spans),
        "traces": len(traces),
        "links": links,
        "processes": len({s.pid for s in spans}),
        "by_name": {
            name: {"count": int(v["count"]), "seconds": round(v["seconds"], 6)}
            for name, v in sorted(names.items())
        },
        "largest_trace": max(traces.values()) if traces else 0,
    }
