"""Exporters: Prometheus text exposition, JSON snapshots, snapshot diffs.

A *snapshot* is the JSON-safe dict produced by
:meth:`~repro.obs.registry.MetricsRegistry.snapshot` /
:func:`~repro.obs.registry.collect_snapshot`::

    {"metrics": {name: {"type", "help", "series": [{"labels", "value"}]}},
     "findings": [{"name", "detail", "stats"}]}

* :func:`to_prometheus` renders it in the Prometheus text exposition
  format (counters and gauges verbatim; histograms as summaries with
  ``quantile`` labels plus ``_count``/``_sum``), so a scrape endpoint or a
  pushgateway upload needs nothing beyond this string;
* :func:`to_json` / :func:`load_snapshot` round-trip snapshots through
  files — the interchange format of ``python -m repro.obs export``;
* :func:`diff_snapshots` compares two snapshots series-by-series — the
  backing of ``python -m repro.obs diff``, used to answer "what did this
  change cost?" between two recorded runs.
"""

from __future__ import annotations

import json
from typing import IO, Any, Dict, List, Mapping, Optional, Tuple, Union

from ..errors import MetricsError
from .registry import QUANTILES

FORMATS = ("prom", "json")


def _sanitize(name: str) -> str:
    """Project a metric/label name onto the Prometheus grammar."""
    return "".join(c if c.isalnum() or c == "_" else "_" for c in name)


def _escape_label_value(value: str) -> str:
    """Escape a label value per the text exposition format.

    Backslash, double-quote and newline are the three characters the
    format requires escaping inside quoted label values.
    """
    return (
        value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
    )


def _label_str(labels: Mapping[str, Any], extra: Optional[Tuple[str, str]] = None) -> str:
    pairs = [(str(k), str(v)) for k, v in sorted(labels.items())]
    if extra is not None:
        pairs.append(extra)
    if not pairs:
        return ""
    body = ",".join(
        f'{_sanitize(k)}="{_escape_label_value(v)}"' for k, v in pairs
    )
    return "{" + body + "}"


def _fmt(value: Any) -> str:
    if value is None:
        return "NaN"
    f = float(value)
    return repr(int(f)) if f == int(f) else repr(f)


def to_prometheus(snapshot: Mapping[str, Any], prefix: str = "repro_") -> str:
    """Render a snapshot in the Prometheus text exposition format."""
    lines: List[str] = []
    for name in sorted(snapshot.get("metrics", {})):
        data = snapshot["metrics"][name]
        full = _sanitize(prefix + name)
        kind = data.get("type", "untyped")
        prom_kind = "summary" if kind == "histogram" else kind
        if data.get("help"):
            lines.append(f"# HELP {full} {data['help']}")
        lines.append(f"# TYPE {full} {prom_kind}")
        for series in data.get("series", []):
            labels = series.get("labels", {})
            value = series.get("value")
            if kind == "histogram":
                assert isinstance(value, Mapping)
                for q in QUANTILES:
                    lines.append(
                        f"{full}{_label_str(labels, ('quantile', str(q)))} "
                        f"{_fmt(value.get(f'p{int(q * 100)}'))}"
                    )
                lines.append(f"{full}_count{_label_str(labels)} {_fmt(value['count'])}")
                lines.append(f"{full}_sum{_label_str(labels)} {_fmt(value['sum'])}")
            else:
                lines.append(f"{full}{_label_str(labels)} {_fmt(value)}")
    return "\n".join(lines) + "\n"


def to_json(snapshot: Mapping[str, Any], indent: Optional[int] = 2) -> str:
    """Serialize a snapshot (sorted keys: snapshots diff cleanly as text)."""
    return json.dumps(snapshot, indent=indent, sort_keys=True)


def write_snapshot(
    snapshot: Mapping[str, Any], path: str, format: str = "json"
) -> None:
    """Write a snapshot to ``path`` in ``"json"`` or ``"prom"`` format."""
    if format not in FORMATS:
        raise MetricsError(f"unknown export format {format!r}; use {FORMATS}")
    rendered = (
        to_json(snapshot) if format == "json" else to_prometheus(snapshot)
    )
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(rendered)
        if not rendered.endswith("\n"):
            fh.write("\n")


def load_snapshot(source: Union[str, IO[str]]) -> Dict[str, Any]:
    """Read a JSON snapshot back (path or open file)."""
    if isinstance(source, str):
        with open(source, "r", encoding="utf-8") as fh:
            return load_snapshot(fh)
    data = json.load(source)
    if not isinstance(data, dict) or "metrics" not in data:
        raise MetricsError("not a metrics snapshot (no 'metrics' key)")
    return data


# ---------------------------------------------------------------------------
# Diff
# ---------------------------------------------------------------------------


def _series_index(
    snapshot: Mapping[str, Any],
) -> Dict[Tuple[str, Tuple[Tuple[str, str], ...]], Tuple[str, Any]]:
    index: Dict[Tuple[str, Tuple[Tuple[str, str], ...]], Tuple[str, Any]] = {}
    for name, data in snapshot.get("metrics", {}).items():
        for series in data.get("series", []):
            key = (
                name,
                tuple(sorted(
                    (str(k), str(v))
                    for k, v in series.get("labels", {}).items()
                )),
            )
            index[key] = (data.get("type", "untyped"), series.get("value"))
    return index


def _scalar_of(kind: str, value: Any) -> Optional[float]:
    """The comparable scalar of a series value (histograms: the sum)."""
    if value is None:
        return None
    if kind == "histogram":
        return float(value.get("sum", 0.0))
    return float(value)


def diff_snapshots(
    before: Mapping[str, Any], after: Mapping[str, Any]
) -> List[Dict[str, Any]]:
    """Per-series deltas between two snapshots.

    Returns one record per series present in either snapshot —
    ``{"metric", "labels", "type", "before", "after", "delta"}`` — sorted
    by metric name then labels, with ``before``/``after`` ``None`` for
    series that exist on only one side.  Histogram series compare by
    ``sum`` (and carry counts in ``before_count``/``after_count``).
    """
    left = _series_index(before)
    right = _series_index(after)
    rows: List[Dict[str, Any]] = []
    for key in sorted(set(left) | set(right)):
        name, labels = key
        l_kind, l_value = left.get(key, (None, None))
        r_kind, r_value = right.get(key, (None, None))
        kind = r_kind or l_kind or "untyped"
        b = _scalar_of(kind, l_value)
        a = _scalar_of(kind, r_value)
        row: Dict[str, Any] = {
            "metric": name,
            "labels": dict(labels),
            "type": kind,
            "before": b,
            "after": a,
            "delta": None if b is None or a is None else a - b,
        }
        if kind == "histogram":
            row["before_count"] = None if l_value is None else l_value.get("count")
            row["after_count"] = None if r_value is None else r_value.get("count")
        rows.append(row)
    return rows


def render_diff(rows: List[Dict[str, Any]], only_changed: bool = True) -> str:
    """ASCII table of a snapshot diff (``only_changed`` hides zero deltas)."""
    from ..analysis.report import render_table

    def _show(row: Dict[str, Any]) -> bool:
        if not only_changed:
            return True
        return row["delta"] is None or abs(row["delta"]) > 0

    table_rows = []
    for row in rows:
        if not _show(row):
            continue
        labels = ",".join(f"{k}={v}" for k, v in sorted(row["labels"].items()))
        table_rows.append([
            row["metric"],
            labels or "-",
            "-" if row["before"] is None else f"{row['before']:g}",
            "-" if row["after"] is None else f"{row['after']:g}",
            "-" if row["delta"] is None else f"{row['delta']:+g}",
        ])
    if not table_rows:
        return "no differing series"
    return render_table(
        ["metric", "labels", "before", "after", "delta"], table_rows
    )
