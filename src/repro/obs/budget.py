"""Theorem 3.1 budget gauges: live cost accounting against ``C·r·|E|``.

Theorem 3.1 bounds protocol ELECT at ``O(r·|E|)`` total moves and
whiteboard accesses.  The trace subsystem audits that bound *post hoc*
(:func:`repro.trace.invariants.check_theorem31`); this module tracks it
**live**: a :class:`BudgetTracker` is armed by the runtime at simulation
start with the instance parameters and updated on every move and access,
so the gauges can be scraped mid-run and an overrun is detected at the
step it happens, not after the run ends.

Gauges (labels: ``resource`` ∈ {moves, accesses}, plus any instance
labels the caller adds):

* ``theorem31_budget``    — the bound ``C·r·|E|`` (constant);
* ``theorem31_used``      — resources consumed so far;
* ``theorem31_headroom``  — ``budget - used`` (goes negative on overrun);
* ``theorem31_overrun``   — 0/1 flag.

On the first overrun of either resource the tracker records a structured
:class:`~repro.obs.registry.ObsFinding` ("theorem-3.1-budget") on its
registry; with ``strict=True`` it additionally raises
:class:`~repro.errors.InvariantViolation`.  The default is to record, not
raise — the constant ``C`` is an empirical envelope (it mirrors the E7
benchmark's bound), and observability must never kill the observed run.
"""

from __future__ import annotations

from typing import Any, Dict, Optional

from ..errors import InvariantViolation
from .registry import MetricsRegistry, ObsFinding, get_registry

#: Default bound constant — same envelope as the trace-level audit
#: (:data:`repro.trace.invariants.THEOREM31_CONSTANT`) and the E7 sweep.
DEFAULT_CONSTANT = 15.0

MOVES = "moves"
ACCESSES = "accesses"


class BudgetTracker:
    """Live ``O(r·|E|)`` accounting for one simulation run.

    Built by :class:`repro.sim.runtime.Simulation` when metrics are
    enabled; exposed for direct use by experiments that drive the runtime
    themselves.
    """

    __slots__ = (
        "registry", "budget", "num_agents", "num_edges", "constant",
        "strict", "_labels", "_used", "_overrun",
        "_g_used", "_g_headroom", "_g_overrun",
    )

    def __init__(
        self,
        num_agents: int,
        num_edges: int,
        registry: Optional[MetricsRegistry] = None,
        constant: float = DEFAULT_CONSTANT,
        strict: bool = False,
        **labels: Any,
    ):
        self.registry = registry if registry is not None else get_registry()
        self.num_agents = num_agents
        self.num_edges = num_edges
        self.constant = constant
        self.strict = strict
        self.budget = constant * num_agents * max(1, num_edges)
        self._labels = dict(labels)
        self._used = {MOVES: 0, ACCESSES: 0}
        self._overrun = {MOVES: False, ACCESSES: False}

        reg = self.registry
        reg.gauge(
            "theorem31_budget",
            help="Theorem 3.1 bound C*r*|E| on moves and whiteboard accesses",
        ).set(self.budget, resource=MOVES, **labels)
        reg.gauge("theorem31_budget").set(self.budget, resource=ACCESSES, **labels)
        self._g_used = reg.gauge(
            "theorem31_used", help="resources consumed so far this run"
        )
        self._g_headroom = reg.gauge(
            "theorem31_headroom", help="budget minus used (negative = overrun)"
        )
        self._g_overrun = reg.gauge(
            "theorem31_overrun", help="1 once the Theorem 3.1 bound is exceeded"
        )
        for resource in (MOVES, ACCESSES):
            self._g_used.set(0, resource=resource, **labels)
            self._g_headroom.set(self.budget, resource=resource, **labels)
            self._g_overrun.set(0, resource=resource, **labels)

    # -- recording ---------------------------------------------------------

    def record_move(self) -> None:
        self._record(MOVES)

    def record_access(self) -> None:
        self._record(ACCESSES)

    def _record(self, resource: str) -> None:
        used = self._used[resource] + 1
        self._used[resource] = used
        self._g_used.set(used, resource=resource, **self._labels)
        self._g_headroom.set(
            self.budget - used, resource=resource, **self._labels
        )
        if used > self.budget and not self._overrun[resource]:
            self._overrun[resource] = True
            self._g_overrun.set(1, resource=resource, **self._labels)
            finding = ObsFinding(
                name="theorem-3.1-budget",
                detail=(
                    f"{resource} exceeded {self.constant}·r·|E| = "
                    f"{self.budget:.0f} (r={self.num_agents}, "
                    f"|E|={self.num_edges})"
                ),
                stats={
                    "budget": self.budget,
                    "used": float(used),
                    "constant": self.constant,
                    "num_agents": float(self.num_agents),
                    "num_edges": float(self.num_edges),
                },
            )
            self.registry.add_finding(finding)
            if self.strict:
                raise InvariantViolation(str(finding))

    # -- inspection --------------------------------------------------------

    def used(self, resource: str = MOVES) -> int:
        return self._used[resource]

    def headroom(self, resource: str = MOVES) -> float:
        return self.budget - self._used[resource]

    @property
    def overrun(self) -> bool:
        return self._overrun[MOVES] or self._overrun[ACCESSES]

    def summary(self) -> Dict[str, Any]:
        """JSON-safe state for reports."""
        return {
            "budget": self.budget,
            "constant": self.constant,
            "num_agents": self.num_agents,
            "num_edges": self.num_edges,
            "used": dict(self._used),
            "overrun": self.overrun,
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"BudgetTracker(budget={self.budget:.0f}, "
            f"moves={self._used[MOVES]}, accesses={self._used[ACCESSES]})"
        )
