"""The perf-regression sentinel: gate CI on committed bench baselines.

Where :mod:`repro.perf.bench_compare` flags *timing* drift between two
pytest-benchmark JSON files, this sentinel is the hard CI gate.  It
compares a fresh run against the committed ``benchmarks/baselines``
files with per-metric tolerance bands and exits non-zero on regression:

* **timing** — ``stats.mean`` ratio beyond ``--time-tolerance`` (wide by
  default: CI machines differ from the baseline machine, so only gross
  slowdowns trip it);
* **extra-info ratios** — numeric ``extra_info`` entries (overhead
  ratios, speedup factors) compared by ratio against
  ``--info-tolerance``.  These are *machine-independent* — a ratio of
  two timings taken on the same box — so the band is tight;
* **absolute limits** — ``--limit key=value`` caps an ``extra_info``
  entry outright (e.g. ``--limit disabled_overhead_ratio=1.05`` encodes
  the <5% disabled-path contract independent of any baseline);
* **coverage** — a baseline benchmark missing from the fresh run is a
  finding: a silently skipped benchmark must not read as a pass.

Usage (exit 0 clean, 1 on findings, 2 on malformed input)::

    python -m repro.obs regress BASELINE.json FRESH.json \
        [--time-tolerance 3.0] [--info-tolerance 1.25] \
        [--limit disabled_overhead_ratio=1.05 ...]
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Any, Dict, List, Mapping, Optional

from ..errors import MetricsError


@dataclass
class RegressFinding:
    """One sentinel violation (rendered one per line by the CLI)."""

    benchmark: str
    metric: str
    kind: str  # "timing" | "extra_info" | "limit" | "coverage"
    baseline: Optional[float]
    fresh: Optional[float]
    bound: float
    detail: str = ""

    def render(self) -> str:
        def fmt(v: Optional[float]) -> str:
            return "-" if v is None else f"{v:.6g}"

        return (
            f"REGRESSION [{self.kind}] {self.benchmark} :: {self.metric}: "
            f"baseline={fmt(self.baseline)} fresh={fmt(self.fresh)} "
            f"bound={self.bound:.6g}{' — ' + self.detail if self.detail else ''}"
        )

    def to_dict(self) -> Dict[str, Any]:
        return {
            "benchmark": self.benchmark,
            "metric": self.metric,
            "kind": self.kind,
            "baseline": self.baseline,
            "fresh": self.fresh,
            "bound": self.bound,
            "detail": self.detail,
        }


def load_bench_doc(path: str) -> Dict[str, Any]:
    with open(path, "r", encoding="utf-8") as fh:
        data = json.load(fh)
    if not isinstance(data, dict) or not isinstance(
        data.get("benchmarks"), list
    ):
        raise MetricsError(f"{path}: not a pytest-benchmark JSON document")
    return data


def _index(doc: Mapping[str, Any]) -> Dict[str, Dict[str, Any]]:
    out: Dict[str, Dict[str, Any]] = {}
    for bench in doc.get("benchmarks", []):
        name = bench.get("fullname") or bench.get("name")
        if name:
            out[str(name)] = bench
    return out


def _numeric_extra_info(bench: Mapping[str, Any]) -> Dict[str, float]:
    info = bench.get("extra_info") or {}
    return {
        str(k): float(v)
        for k, v in info.items()
        if isinstance(v, (int, float)) and not isinstance(v, bool)
    }


def compare_benchmarks(
    baseline_doc: Mapping[str, Any],
    fresh_doc: Mapping[str, Any],
    time_tolerance: float = 3.0,
    info_tolerance: float = 1.25,
    limits: Optional[Mapping[str, float]] = None,
) -> List[RegressFinding]:
    """All sentinel findings (empty = the gate passes).

    ``time_tolerance`` / ``info_tolerance`` are *ratios* (fresh/baseline
    must stay **below** them); ``limits`` maps an ``extra_info`` key to an
    absolute ceiling applied to every fresh benchmark carrying that key.
    """
    findings: List[RegressFinding] = []
    base_by_name = _index(baseline_doc)
    fresh_by_name = _index(fresh_doc)

    for name in sorted(base_by_name):
        base = base_by_name[name]
        fresh = fresh_by_name.get(name)
        if fresh is None:
            findings.append(
                RegressFinding(
                    benchmark=name,
                    metric="presence",
                    kind="coverage",
                    baseline=None,
                    fresh=None,
                    bound=1.0,
                    detail="baseline benchmark missing from the fresh run",
                )
            )
            continue
        base_mean = (base.get("stats") or {}).get("mean")
        fresh_mean = (fresh.get("stats") or {}).get("mean")
        if (
            isinstance(base_mean, (int, float))
            and isinstance(fresh_mean, (int, float))
            and base_mean > 0
        ):
            ratio = float(fresh_mean) / float(base_mean)
            if ratio > time_tolerance:
                findings.append(
                    RegressFinding(
                        benchmark=name,
                        metric="stats.mean",
                        kind="timing",
                        baseline=float(base_mean),
                        fresh=float(fresh_mean),
                        bound=time_tolerance,
                        detail=f"{ratio:.2f}x slower than baseline",
                    )
                )
        base_info = _numeric_extra_info(base)
        fresh_info = _numeric_extra_info(fresh)
        for key in sorted(set(base_info) & set(fresh_info)):
            if base_info[key] <= 0:
                continue
            ratio = fresh_info[key] / base_info[key]
            if ratio > info_tolerance:
                findings.append(
                    RegressFinding(
                        benchmark=name,
                        metric=f"extra_info.{key}",
                        kind="extra_info",
                        baseline=base_info[key],
                        fresh=fresh_info[key],
                        bound=info_tolerance,
                        detail=f"{ratio:.2f}x worse than baseline",
                    )
                )

    if limits:
        for name in sorted(fresh_by_name):
            fresh_info = _numeric_extra_info(fresh_by_name[name])
            for key, ceiling in sorted(limits.items()):
                if key in fresh_info and fresh_info[key] > ceiling:
                    findings.append(
                        RegressFinding(
                            benchmark=name,
                            metric=f"extra_info.{key}",
                            kind="limit",
                            baseline=None,
                            fresh=fresh_info[key],
                            bound=float(ceiling),
                            detail="absolute ceiling exceeded",
                        )
                    )
    return findings


def parse_limits(pairs: List[str]) -> Dict[str, float]:
    """Parse repeated ``--limit key=value`` arguments."""
    limits: Dict[str, float] = {}
    for pair in pairs:
        key, sep, value = pair.partition("=")
        if not sep or not key:
            raise MetricsError(f"--limit expects key=value, got {pair!r}")
        try:
            limits[key] = float(value)
        except ValueError:
            raise MetricsError(f"--limit {key}: {value!r} is not a number")
    return limits


def run_regress(
    baseline_path: str,
    fresh_path: str,
    time_tolerance: float = 3.0,
    info_tolerance: float = 1.25,
    limits: Optional[Mapping[str, float]] = None,
) -> List[RegressFinding]:
    """Load both documents and compare (the CLI body, importable)."""
    return compare_benchmarks(
        load_bench_doc(baseline_path),
        load_bench_doc(fresh_path),
        time_tolerance=time_tolerance,
        info_tolerance=info_tolerance,
        limits=limits,
    )
