"""The metrics registry: counters, gauges, histograms with labeled series.

One queryable surface for every cost signal in the reproduction.  The
design mirrors the Prometheus client model, trimmed to what the analysis
layer actually needs:

* a :class:`MetricsRegistry` owns named metrics; each metric owns *series*
  keyed by sorted ``label=value`` pairs (``phase``, ``agent``,
  ``instance``, …);
* :class:`Counter` (monotone), :class:`Gauge` (set/inc), and
  :class:`Histogram` (count/sum/min/max plus p50/p90/p99 quantiles from a
  bounded, deterministically decimated sample buffer);
* a **disabled fast path**: ``registry.enabled = False`` makes every
  ``inc``/``set``/``observe`` an attribute test + early return, mirroring
  the trace-sink zero-cost contract (the runtime additionally normalizes a
  disabled registry to ``None`` so its hot loop pays a single ``is not
  None`` test, exactly like ``trace=``);
* a **label-cardinality guard**: each metric holds at most
  ``max_series`` distinct label combinations; excess increments fold into
  a reserved overflow series and raise one structured
  :class:`ObsFinding` instead of growing without bound;
* **findings** — structured audit records (budget overruns, cardinality
  overflows) that ride along with the numeric snapshot.

Module-level helpers manage the *default* registry (what instrumentation
points fall back to when not handed one explicitly) and a collector table
so independent registries — e.g. the always-on one owned by
:mod:`repro.perf.cache` — are merged into one snapshot by
:func:`collect_snapshot`.

This module is a leaf: it imports only the stdlib and
:mod:`repro.errors`, so every layer (sim, core, perf, analysis) can
instrument itself without import cycles.
"""

from __future__ import annotations

import math
import os
import threading
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Mapping, Optional, Tuple

from ..errors import MetricsError

#: Label key/value pairs, sorted — the identity of one series.
LabelKey = Tuple[Tuple[str, str], ...]

#: Reserved series absorbing increments past the cardinality guard.
OVERFLOW_LABELS: LabelKey = (("overflow", "true"),)

#: Quantiles every histogram reports.
QUANTILES: Tuple[float, ...] = (0.5, 0.9, 0.99)


def _label_key(labels: Mapping[str, Any]) -> LabelKey:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


@dataclass
class ObsFinding:
    """A structured audit finding attached to a registry.

    The metrics analogue of :class:`repro.trace.invariants.InvariantReport`:
    ``name`` identifies the check ("theorem-3.1-budget",
    "label-cardinality"), ``detail`` is human-readable, ``stats`` carries
    the numbers the check was made from.
    """

    name: str
    detail: str = ""
    stats: Dict[str, float] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, Any]:
        return {"name": self.name, "detail": self.detail, "stats": dict(self.stats)}

    def __str__(self) -> str:
        suffix = f" — {self.detail}" if self.detail else ""
        return f"{self.name}{suffix}"


class _HistogramState:
    """Per-series histogram accumulator with a bounded sample buffer.

    Quantiles need samples; unbounded sample lists would leak on long
    runs.  When the buffer fills, every other sample is dropped and the
    keep-stride doubles — a deterministic decimation (no RNG, so recorded
    runs stay reproducible) that keeps an evenly spaced subsample of the
    observation sequence.
    """

    __slots__ = (
        "count", "total", "min", "max", "samples",
        "_stride", "_skip", "_max_samples",
    )

    def __init__(self, max_samples: int):
        self.count = 0
        self.total = 0.0
        self.min = math.inf
        self.max = -math.inf
        self.samples: List[float] = []
        self._stride = 1
        self._skip = 0
        self._max_samples = max_samples

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        if self._skip:
            self._skip -= 1
            return
        self._skip = self._stride - 1
        self.samples.append(value)
        if len(self.samples) >= self._max_samples:
            self.samples = self.samples[::2]
            self._stride *= 2

    def quantile(self, q: float) -> Optional[float]:
        """Nearest-rank quantile over the retained samples."""
        if not self.samples:
            return None
        ordered = sorted(self.samples)
        rank = max(0, min(len(ordered) - 1, math.ceil(q * len(ordered)) - 1))
        return ordered[rank]

    def to_dict(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {
            "count": self.count,
            "sum": self.total,
            "min": None if self.count == 0 else self.min,
            "max": None if self.count == 0 else self.max,
        }
        for q in QUANTILES:
            out[f"p{int(q * 100)}"] = self.quantile(q)
        return out


class _Metric:
    """Common machinery: named series under a cardinality guard."""

    kind = "untyped"

    def __init__(self, registry: "MetricsRegistry", name: str, help: str = ""):
        self._registry = registry
        self.name = name
        self.help = help
        self._series: Dict[LabelKey, Any] = {}

    # -- series management -------------------------------------------------

    def _new_value(self) -> Any:
        return 0.0

    def _slot(self, labels: Mapping[str, Any]) -> LabelKey:
        """Resolve labels to a series key, enforcing the cardinality guard."""
        key = _label_key(labels)
        if key in self._series:
            return key
        if len(self._series) >= self._registry.max_series:
            if OVERFLOW_LABELS not in self._series:
                self._series[OVERFLOW_LABELS] = self._new_value()
                self._registry.add_finding(
                    ObsFinding(
                        name="label-cardinality",
                        detail=(
                            f"metric {self.name!r} exceeded "
                            f"{self._registry.max_series} label combinations; "
                            f"further series fold into {{overflow=\"true\"}}"
                        ),
                        stats={"max_series": float(self._registry.max_series)},
                    )
                )
            return OVERFLOW_LABELS
        self._series[key] = self._new_value()
        return key

    def series(self) -> Dict[LabelKey, Any]:
        """Raw label-key → value mapping (histograms: accumulator states)."""
        with self._registry._lock:
            return dict(self._series)

    def clear(self) -> None:
        with self._registry._lock:
            self._series.clear()

    def snapshot_series(self) -> List[Dict[str, Any]]:
        with self._registry._lock:
            items = sorted(self._series.items())
        return [
            {"labels": dict(key), "value": self._project(value)}
            for key, value in items
        ]

    def _project(self, value: Any) -> Any:
        return value

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}({self.name!r}, {len(self._series)} series)"


class Counter(_Metric):
    """A monotonically increasing count (moves, accesses, cache hits…)."""

    kind = "counter"

    def inc(self, amount: float = 1.0, **labels: Any) -> None:
        if not self._registry.enabled:
            return
        if amount < 0:
            raise MetricsError(f"counter {self.name!r} cannot decrease")
        with self._registry._lock:
            key = self._slot(labels)
            self._series[key] += amount

    def labels(self, **labels: Any) -> "_BoundCounter":
        """Pre-resolve a label set for hot-loop increments."""
        return _BoundCounter(self, _label_key(labels))

    def value(self, **labels: Any) -> float:
        with self._registry._lock:
            return float(self._series.get(_label_key(labels), 0.0))

    def total(self) -> float:
        with self._registry._lock:
            return float(sum(self._series.values()))


class _BoundCounter:
    """A counter child bound to one label combination.

    ``inc`` skips label normalization — the per-step cost when the runtime
    is instrumented is one enabled test, one lock, one dict add.
    """

    __slots__ = ("_metric", "_key")

    def __init__(self, metric: Counter, key: LabelKey):
        self._metric = metric
        self._key = key
        with metric._registry._lock:
            metric._slot(dict(key))

    def inc(self, amount: float = 1.0) -> None:
        metric = self._metric
        if not metric._registry.enabled:
            return
        with metric._registry._lock:
            if self._key in metric._series:
                metric._series[self._key] += amount
            else:  # cleared since binding: re-resolve through the guard
                metric._series[metric._slot(dict(self._key))] += amount


class Gauge(_Metric):
    """A value that can go up and down (budget headroom, queue depth…)."""

    kind = "gauge"

    def set(self, value: float, **labels: Any) -> None:
        if not self._registry.enabled:
            return
        with self._registry._lock:
            self._series[self._slot(labels)] = float(value)

    def inc(self, amount: float = 1.0, **labels: Any) -> None:
        if not self._registry.enabled:
            return
        with self._registry._lock:
            self._series[self._slot(labels)] += amount

    def value(self, **labels: Any) -> Optional[float]:
        with self._registry._lock:
            got = self._series.get(_label_key(labels))
        return None if got is None else float(got)


class Histogram(_Metric):
    """An observed distribution with snapshot-time quantiles."""

    kind = "histogram"

    def __init__(
        self,
        registry: "MetricsRegistry",
        name: str,
        help: str = "",
        max_samples: int = 1024,
    ):
        super().__init__(registry, name, help)
        self.max_samples = max_samples

    def _new_value(self) -> _HistogramState:
        return _HistogramState(self.max_samples)

    def observe(self, value: float, **labels: Any) -> None:
        if not self._registry.enabled:
            return
        with self._registry._lock:
            self._series[self._slot(labels)].observe(float(value))

    def state(self, **labels: Any) -> Optional[_HistogramState]:
        with self._registry._lock:
            return self._series.get(_label_key(labels))

    def _project(self, value: _HistogramState) -> Dict[str, Any]:
        return value.to_dict()


class MetricsRegistry:
    """A named collection of metrics with one on/off switch.

    Parameters
    ----------
    enabled:
        When False every write is a no-op; reads see empty metrics.  The
        switch can be flipped at any time (:meth:`enable` /
        :meth:`disable`).
    max_series:
        Cardinality guard — maximum label combinations per metric before
        writes fold into the overflow series.
    """

    def __init__(self, enabled: bool = True, max_series: int = 512):
        self.enabled = enabled
        self.max_series = max_series
        self._metrics: Dict[str, _Metric] = {}
        self._findings: List[ObsFinding] = []
        self._lock = threading.RLock()

    # -- switch ------------------------------------------------------------

    def enable(self) -> "MetricsRegistry":
        self.enabled = True
        return self

    def disable(self) -> "MetricsRegistry":
        self.enabled = False
        return self

    # -- metric constructors (idempotent by name) --------------------------

    def _get(self, cls: type, name: str, help: str, **kwargs: Any) -> Any:
        with self._lock:
            metric = self._metrics.get(name)
            if metric is None:
                metric = cls(self, name, help=help, **kwargs)
                self._metrics[name] = metric
            elif not isinstance(metric, cls):
                raise MetricsError(
                    f"metric {name!r} already registered as {metric.kind}, "
                    f"not {cls.kind}"
                )
            return metric

    def counter(self, name: str, help: str = "") -> Counter:
        return self._get(Counter, name, help)

    def gauge(self, name: str, help: str = "") -> Gauge:
        return self._get(Gauge, name, help)

    def histogram(
        self, name: str, help: str = "", max_samples: int = 1024
    ) -> Histogram:
        return self._get(Histogram, name, help, max_samples=max_samples)

    def get(self, name: str) -> Optional[_Metric]:
        with self._lock:
            return self._metrics.get(name)

    def __iter__(self) -> Iterator[_Metric]:
        with self._lock:
            return iter(list(self._metrics.values()))

    # -- findings ----------------------------------------------------------

    def add_finding(self, finding: ObsFinding) -> None:
        with self._lock:
            self._findings.append(finding)

    @property
    def findings(self) -> Tuple[ObsFinding, ...]:
        with self._lock:
            return tuple(self._findings)

    # -- lifecycle ---------------------------------------------------------

    def reset(self) -> None:
        """Zero every series and drop findings; metric handles stay valid.

        Bound counter children survive a reset (they re-resolve their slot
        on the next increment), so long-lived instrumentation never holds a
        stale reference.
        """
        with self._lock:
            for metric in self._metrics.values():
                metric._series.clear()
            self._findings.clear()

    # -- snapshots ---------------------------------------------------------

    def snapshot(self) -> Dict[str, Any]:
        """JSON-safe view: ``{"metrics": {...}, "findings": [...]}``."""
        with self._lock:
            metrics = list(self._metrics.values())
            findings = list(self._findings)
        return {
            "metrics": {
                m.name: {
                    "type": m.kind,
                    "help": m.help,
                    "series": m.snapshot_series(),
                }
                for m in metrics
            },
            "findings": [f.to_dict() for f in findings],
        }


# ---------------------------------------------------------------------------
# Default registry & collectors
# ---------------------------------------------------------------------------

#: The process-wide default.  Ships **disabled** so the hot paths keep
#: their zero-cost contract; opt in with ``repro.obs.enable()``, the
#: ``REPRO_METRICS=1`` environment variable, or by passing an enabled
#: registry as ``metrics=`` to :class:`repro.sim.runtime.Simulation`.
_default = MetricsRegistry(enabled=bool(int(os.environ.get("REPRO_METRICS", "0") or 0)))

#: Named registries merged by :func:`collect_snapshot` (e.g. the always-on
#: cache-counter registry owned by :mod:`repro.perf.cache`).
_collectors: Dict[str, MetricsRegistry] = {"default": _default}


def get_registry() -> MetricsRegistry:
    """The process-wide default registry."""
    return _default


def set_registry(registry: MetricsRegistry) -> MetricsRegistry:
    """Swap the default registry; returns the previous one."""
    global _default
    previous = _default
    _default = registry
    _collectors["default"] = registry
    return previous


def enable() -> MetricsRegistry:
    """Enable the default registry and return it."""
    return get_registry().enable()


def disable() -> MetricsRegistry:
    """Disable the default registry and return it."""
    return get_registry().disable()


def register_collector(name: str, registry: MetricsRegistry) -> None:
    """Expose an independent registry to :func:`collect_snapshot`."""
    _collectors[name] = registry


def collectors() -> Dict[str, MetricsRegistry]:
    return dict(_collectors)


def reset_all_collectors() -> None:
    """Reset every registered collector (and the default registry).

    The test-isolation hammer: the ``perf`` / ``fault`` / ``adversary`` /
    ``serve`` collectors are always-enabled module globals, so without a
    fixture calling this, one test's cache hits or campaign outcomes leak
    into the next test's snapshot.  Series and findings are cleared; the
    metric *definitions* (and any bound-series handles, which re-resolve
    lazily after a reset) survive.
    """
    for registry in _collectors.values():
        registry.reset()


def collect_snapshot() -> Dict[str, Any]:
    """Merge every registered collector into one snapshot.

    Metric names are expected to be globally unique (the shipped
    instrumentation namespaces them: ``agent_*``, ``cache_*``,
    ``theorem31_*``…); on a clash the later collector's metric is skipped
    and a finding records the collision.
    """
    merged: Dict[str, Any] = {"metrics": {}, "findings": []}
    for name in sorted(_collectors):
        snap = _collectors[name].snapshot()
        for metric_name, data in snap["metrics"].items():
            if metric_name in merged["metrics"]:
                merged["findings"].append(
                    ObsFinding(
                        name="metric-name-collision",
                        detail=f"{metric_name!r} in collector {name!r} shadowed",
                    ).to_dict()
                )
                continue
            merged["metrics"][metric_name] = data
        merged["findings"].extend(snap["findings"])
    return merged
