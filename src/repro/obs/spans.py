"""Span-based profiling: where did the wall time go, per phase?

Two instruments, both writing into a registry's ``span_seconds``
histogram (labels: ``span`` plus whatever the caller adds):

* :func:`span` — a plain context manager for synchronous computations
  (``with span("build_schedule"): ...``);
* :class:`PhaseClock` — for generator-based protocol code, where a phase
  is not a lexical block but a stretch of an agent's lifetime between two
  transitions.  ``enter(name)`` closes the previous phase's span and opens
  the next; ``close()`` ends the last one (the runtime calls it when the
  agent terminates).

Because the simulation interleaves agents in one thread, a phase span
measures **wall time between that agent's phase transitions** — it
includes steps other agents took in between.  That is the observability
question being answered ("where did the run's time go while this agent
was in MAP-DRAWING?"), not a per-agent CPU profile; DESIGN §8.3 spells
out the semantics.

Both instruments no-op against a disabled registry: :func:`span` yields
immediately, and a :class:`PhaseClock` built against a disabled registry
pins itself off (``_registry = None``) so every call is one attribute
test.

When the flight recorder (:mod:`repro.obs.flight`) is active *and* a
trace context is current, both instruments additionally emit flight
spans — so the same timing feeds the histogram and the causal trace
without double measurement.  The check is one context-variable read
(:func:`repro.obs.flight.active`), preserving the disabled-path
overhead contract.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Any, Dict, Iterator, Optional

from . import flight
from .registry import Histogram, MetricsRegistry, get_registry

#: Histogram receiving every span duration.
SPAN_METRIC = "span_seconds"

# The four phases of protocol ELECT (Figure 3), as span names.
MAP_DRAWING = "map_drawing"
COMPUTE_ORDER = "compute_order"
AGENT_REDUCE = "agent_reduce"
NODE_REDUCE = "node_reduce"
#: Terminal activities outside the four numbered phases.
ANNOUNCE = "announce"
AWAIT = "await"

#: All ELECT phase names, in protocol order (for reporting).
ELECT_PHASES = (MAP_DRAWING, COMPUTE_ORDER, AGENT_REDUCE, NODE_REDUCE,
                ANNOUNCE, AWAIT)


def _span_histogram(registry: MetricsRegistry) -> Histogram:
    return registry.histogram(
        SPAN_METRIC, help="wall-time of instrumented spans, by span name"
    )


@contextmanager
def span(
    name: str,
    registry: Optional[MetricsRegistry] = None,
    **labels: Any,
) -> Iterator[None]:
    """Record the wall time of the enclosed block as one span observation."""
    reg = registry if registry is not None else get_registry()
    frec = flight.active()
    if not reg.enabled and frec is None:
        yield
        return
    wall = time.time()
    start = time.perf_counter()
    try:
        yield
    finally:
        dur = time.perf_counter() - start
        if reg.enabled:
            _span_histogram(reg).observe(dur, span=name, **labels)
        if frec is not None:
            flight.observe(name, wall, dur, kind="span", attrs=labels)


class PhaseClock:
    """Tracks an agent's current phase and records span durations.

    ``labels`` (typically ``agent=<color name>``) are attached to every
    span this clock emits.  The clock also maintains a ``phase`` attribute
    the runtime may read to attribute per-step costs.
    """

    __slots__ = ("_registry", "_hist", "_labels", "phase", "_entered",
                 "_flight", "_wall")

    def __init__(
        self,
        registry: Optional[MetricsRegistry] = None,
        **labels: Any,
    ):
        reg = registry if registry is not None else get_registry()
        self.phase: Optional[str] = None
        self._flight = flight.active() is not None
        self._wall = 0.0
        if not reg.enabled and not self._flight:
            self._registry: Optional[MetricsRegistry] = None
            self._hist: Optional[Histogram] = None
            self._labels: Dict[str, Any] = {}
            self._entered = 0.0
            return
        self._registry = reg if reg.enabled else None
        self._hist = _span_histogram(reg) if reg.enabled else None
        self._labels = dict(labels)
        self._entered = 0.0

    def _emit(self, now: float) -> None:
        dur = now - self._entered
        if self._hist is not None:
            self._hist.observe(dur, span=self.phase, **self._labels)
        if self._flight:
            flight.observe(
                self.phase, self._wall, dur, kind="phase", attrs=self._labels
            )

    def enter(self, phase: str) -> None:
        """Close the current phase's span (if any) and start ``phase``."""
        if self._registry is None and not self._flight:
            self.phase = phase
            return
        now = time.perf_counter()
        if self.phase is not None:
            self._emit(now)
        self.phase = phase
        self._entered = now
        self._wall = time.time()
        if self._registry is not None:
            self._registry.counter(
                "phase_entries_total", help="phase transitions, by phase"
            ).inc(phase=phase, **self._labels)

    def close(self) -> None:
        """End the final phase (idempotent)."""
        if (self._registry is None and not self._flight) or self.phase is None:
            self.phase = None
            return
        self._emit(time.perf_counter())
        self.phase = None
