"""Metrics CLI: run an instrumented instance and report, export, or diff.

Usage::

    python -m repro.obs report                     # default Table-1 instance
    python -m repro.obs report --graph cycle --graph-args 6 --homes 0 2 4
    python -m repro.obs export --out metrics.json  # JSON snapshot
    python -m repro.obs export --out metrics.prom --format prom
    python -m repro.obs diff before.json after.json

    # flight recorder: record a quick campaign, export + validate traces
    python -m repro.obs flight record --out flight.json --ledger runs.db
    python -m repro.obs flight export --jsonl spans.jsonl --out flight.json
    python -m repro.obs flight summary spans.jsonl
    python -m repro.obs flight assert-valid flight.json

    # run ledger queries
    python -m repro.obs ledger summary --db runs.db
    python -m repro.obs ledger query --db runs.db --outcome recovered

    # perf-regression sentinel (CI gate)
    python -m repro.obs regress benchmarks/baselines/BENCH_flight.json \\
        fresh.json --limit disabled_overhead_ratio=1.05

``report`` and ``export`` run one registered instance (default: ELECT on
the 3-hypercube with homes 0 3 5 — a Table 1 cell) against a fresh
enabled registry, so the numbers cover exactly that run.  ``report``
prints per-phase wall time, per-agent move/access counters, the live
Theorem 3.1 budget gauges and the memo-cache counters, then
cross-checks the registry's move total against the trace summary —
a mismatch means an instrumentation bug and exits non-zero.

``flight record`` runs a quick fault campaign under the flight recorder,
writes the Chrome-trace export (and optionally a JSONL span sink and a
run ledger), validates the export, and cross-checks ledger rows against
the case count — any inconsistency exits non-zero.  ``regress`` compares
a fresh pytest-benchmark JSON document against a committed baseline and
exits 1 on any regression finding (2 on malformed input), which is the
CI perf gate.
"""

from __future__ import annotations

import argparse
import sys
from typing import Any, Dict, List, Optional, Tuple

from ..errors import ReproError
from . import instrument_whiteboards
from .budget import ACCESSES, MOVES
from .exporters import (
    FORMATS,
    diff_snapshots,
    load_snapshot,
    render_diff,
    write_snapshot,
)
from .registry import (
    MetricsRegistry,
    collect_snapshot,
    set_registry,
)
from .spans import ELECT_PHASES, SPAN_METRIC


def _run_instrumented(
    args: argparse.Namespace,
) -> Tuple[MetricsRegistry, Dict[str, Any], Any, Any]:
    """Run the requested instance against a fresh enabled registry.

    Returns ``(registry, merged_snapshot, outcome, trace_summary)``.
    """
    from ..perf import cache as perf_cache
    from ..trace import record_run, summarize

    registry = MetricsRegistry(enabled=True)
    previous = set_registry(registry)
    restore_boards = instrument_whiteboards(registry)
    perf_cache.reset()
    try:
        outcome, sink = record_run(
            args.graph,
            list(args.graph_args),
            list(args.homes),
            protocol=args.protocol,
            seed=args.seed,
        )
        summary = summarize(sink.events, header=sink.header)
        snapshot = collect_snapshot()
    finally:
        restore_boards()
        set_registry(previous)
    return registry, snapshot, outcome, summary


def _phase_rows(registry: MetricsRegistry) -> List[List[Any]]:
    """Aggregate ``span_seconds`` across agents into one row per phase."""
    metric = registry.get(SPAN_METRIC)
    if metric is None:
        return []
    totals: Dict[str, List[float]] = {}  # span -> [count, seconds]
    for series in metric.snapshot_series():
        name = series["labels"].get("span", "?")
        slot = totals.setdefault(name, [0.0, 0.0])
        slot[0] += series["value"]["count"]
        slot[1] += series["value"]["sum"]
    grand = sum(slot[1] for slot in totals.values()) or 1.0
    order = {name: i for i, name in enumerate(ELECT_PHASES)}
    rows = []
    for name in sorted(totals, key=lambda n: (order.get(n, len(order)), n)):
        count, seconds = totals[name]
        rows.append(
            [name, int(count), f"{seconds:.4f}", f"{seconds / grand:.0%}"]
        )
    return rows


def _agent_rows(registry: MetricsRegistry) -> List[List[Any]]:
    moves = registry.get("agent_moves_total")
    accesses = registry.get("agent_accesses_total")
    by_agent: Dict[str, List[int]] = {}
    for metric, column in ((moves, 0), (accesses, 1)):
        if metric is None:
            continue
        for series in metric.snapshot_series():
            agent = series["labels"].get("agent", "?")
            by_agent.setdefault(agent, [0, 0])[column] = int(series["value"])
    return [
        [agent, counts[0], counts[1]]
        for agent, counts in sorted(by_agent.items())
    ]


def _gauge(registry: MetricsRegistry, name: str, resource: str) -> float:
    metric = registry.get(name)
    value = metric.value(resource=resource) if metric is not None else None
    return 0.0 if value is None else value


def _cmd_report(args: argparse.Namespace) -> int:
    from ..analysis.report import render_kv, render_table
    from ..perf import stats_rows

    registry, snapshot, outcome, summary = _run_instrumented(args)

    print(
        render_kv(
            "instance",
            [
                ("graph", f"{args.graph} {list(args.graph_args)}"),
                ("homes", list(args.homes)),
                ("protocol", args.protocol),
                ("seed", args.seed),
                ("elected", getattr(outcome, "elected", None)),
                ("steps", summary.steps),
            ],
        )
    )
    phase_rows = _phase_rows(registry)
    if phase_rows:
        print()
        print(render_table(["phase", "spans", "wall s", "share"], phase_rows))
    agent_rows = _agent_rows(registry)
    if agent_rows:
        print()
        print(render_table(["agent", "moves", "accesses"], agent_rows))

    budget = _gauge(registry, "theorem31_budget", MOVES)
    used_moves = _gauge(registry, "theorem31_used", MOVES)
    used_accesses = _gauge(registry, "theorem31_used", ACCESSES)
    print()
    print(
        render_kv(
            "theorem 3.1 budget (C·r·|E|)",
            [
                ("budget", f"{budget:.0f}"),
                ("moves used", f"{used_moves:.0f}"),
                ("accesses used", f"{used_accesses:.0f}"),
                (
                    "headroom (moves)",
                    f"{_gauge(registry, 'theorem31_headroom', MOVES):.0f}",
                ),
                (
                    "overrun",
                    bool(
                        _gauge(registry, "theorem31_overrun", MOVES)
                        or _gauge(registry, "theorem31_overrun", ACCESSES)
                    ),
                ),
            ],
        )
    )
    cache_rows = stats_rows()
    if cache_rows:
        print()
        print(
            render_table(["cache kind", "hits", "misses", "hit rate"], cache_rows)
        )
    findings = [f.to_dict() for f in registry.findings] + list(
        snapshot.get("findings", [])
    )
    if findings:
        print()
        for finding in findings:
            detail = finding.get("detail", "")
            print(f"finding: {finding['name']}" + (f" — {detail}" if detail else ""))

    counter = registry.get("agent_moves_total")
    counter_moves = int(counter.total()) if counter is not None else 0
    print()
    ok = counter_moves == int(used_moves) == summary.total_moves
    print(
        f"move accounting: registry={counter_moves} "
        f"budget={int(used_moves)} trace={summary.total_moves} "
        f"-> {'consistent' if ok else 'MISMATCH'}"
    )
    if args.export is not None:
        write_snapshot(snapshot, args.export, format=args.format)
        print(f"snapshot written to {args.export} ({args.format})")
    return 0 if ok else 1


def _cmd_export(args: argparse.Namespace) -> int:
    _, snapshot, _, _ = _run_instrumented(args)
    write_snapshot(snapshot, args.out, format=args.format)
    print(f"snapshot written to {args.out} ({args.format})")
    return 0


def _cmd_diff(args: argparse.Namespace) -> int:
    rows = diff_snapshots(load_snapshot(args.before), load_snapshot(args.after))
    print(render_diff(rows, only_changed=not args.all))
    return 0


# ---------------------------------------------------------------------------
# flight subcommands
# ---------------------------------------------------------------------------


def _cmd_flight_record(args: argparse.Namespace) -> int:
    import json

    from ..fault.campaign import CampaignConfig, run_campaign
    from . import flight
    from .ledger import RunLedger

    recorder = flight.enable_flight(flight.FlightRecorder())
    try:
        report = run_campaign(
            pairs=args.pairs,
            config=CampaignConfig(seed=args.seed),
            workers=args.workers,
            quick=True,
            ledger=args.ledger,
        )
    finally:
        flight.disable_flight()
    spans = recorder.spans()
    doc = flight.write_chrome(spans, args.out)
    problems = flight.validate_chrome(doc)
    if args.jsonl:
        flight.write_jsonl(spans, args.jsonl)

    ledger_rows = None
    if args.ledger:
        with RunLedger(args.ledger) as ledger:
            ledger_rows = ledger.count(kind="fault")
    cases = len(report.rows)
    summary = flight.summarize(spans)
    summary.update(
        {
            "cases": cases,
            "ledger_rows": ledger_rows,
            "validation_problems": problems,
            "out": args.out,
        }
    )
    print(json.dumps(summary, indent=2, sort_keys=True))
    ok = not problems and (ledger_rows is None or ledger_rows == cases)
    if problems:
        print(f"invalid chrome trace: {problems[0]}", file=sys.stderr)
    if ledger_rows is not None and ledger_rows != cases:
        print(
            f"ledger row count {ledger_rows} != case count {cases}",
            file=sys.stderr,
        )
    return 0 if ok else 1


def _cmd_flight_export(args: argparse.Namespace) -> int:
    from . import flight

    spans = flight.read_jsonl(args.jsonl)
    doc = flight.write_chrome(spans, args.out)
    flight.assert_valid_chrome(doc)
    print(f"{len(spans)} spans -> {args.out}")
    return 0


def _cmd_flight_summary(args: argparse.Namespace) -> int:
    import json

    from . import flight

    spans = flight.read_jsonl(args.path)
    print(json.dumps(flight.summarize(spans), indent=2, sort_keys=True))
    return 0


def _cmd_flight_assert_valid(args: argparse.Namespace) -> int:
    from . import flight

    doc = flight.load_chrome(args.path)
    problems = flight.validate_chrome(doc)
    if problems:
        for problem in problems:
            print(f"invalid: {problem}", file=sys.stderr)
        return 1
    events = doc.get("traceEvents", [])
    print(f"{args.path}: valid ({len(events)} events)")
    return 0


# ---------------------------------------------------------------------------
# ledger subcommands
# ---------------------------------------------------------------------------


def _cmd_ledger_summary(args: argparse.Namespace) -> int:
    import json

    from .ledger import RunLedger

    with RunLedger(args.db) as ledger:
        payload = {
            "stats": ledger.stats(),
            "campaigns": ledger.campaigns(),
        }
    print(json.dumps(payload, indent=2, sort_keys=True))
    return 0


def _cmd_ledger_query(args: argparse.Namespace) -> int:
    import json

    from .ledger import RunLedger

    with RunLedger(args.db) as ledger:
        rows = ledger.rows(
            kind=args.kind,
            campaign=args.campaign,
            outcome=args.outcome,
            limit=args.limit,
        )
        digest = ledger.digest(kind=args.kind, campaign=args.campaign)
    print(
        json.dumps(
            {"rows": rows, "count": len(rows), "digest": digest},
            indent=2,
            sort_keys=True,
        )
    )
    return 0


# ---------------------------------------------------------------------------
# regress subcommand
# ---------------------------------------------------------------------------


def _cmd_regress(args: argparse.Namespace) -> int:
    from .regress import parse_limits, run_regress

    findings = run_regress(
        args.baseline,
        args.fresh,
        time_tolerance=args.time_tolerance,
        info_tolerance=args.info_tolerance,
        limits=parse_limits(args.limit),
    )
    if not findings:
        print(f"no regressions: {args.fresh} vs baseline {args.baseline}")
        return 0
    for finding in findings:
        print(finding.render())
    print(f"{len(findings)} regression finding(s)")
    return 0 if args.warn_only else 1


def _add_instance_args(parser: argparse.ArgumentParser) -> None:
    from ..trace import GRAPH_BUILDERS, PROTOCOL_RUNNERS

    parser.add_argument(
        "--graph",
        default="hypercube",
        choices=sorted(GRAPH_BUILDERS),
        help="graph family (default: hypercube)",
    )
    parser.add_argument(
        "--graph-args",
        type=int,
        nargs="*",
        default=[3],
        help="builder arguments (default: 3)",
    )
    parser.add_argument(
        "--homes",
        type=int,
        nargs="+",
        default=[0, 3, 5],
        help="home-base nodes (default: 0 3 5)",
    )
    parser.add_argument(
        "--protocol",
        default="elect",
        choices=sorted(PROTOCOL_RUNNERS),
        help="protocol to run (default: elect)",
    )
    parser.add_argument("--seed", type=int, default=11)


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs",
        description="Metrics reports, exports and diffs for recorded runs.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_report = sub.add_parser(
        "report", help="run one instance and print its metrics report"
    )
    _add_instance_args(p_report)
    p_report.add_argument(
        "--export", default=None, help="also write the snapshot to this path"
    )
    p_report.add_argument("--format", default="json", choices=FORMATS)
    p_report.set_defaults(func=_cmd_report)

    p_export = sub.add_parser(
        "export", help="run one instance and write its metrics snapshot"
    )
    _add_instance_args(p_export)
    p_export.add_argument("--out", required=True, help="output path")
    p_export.add_argument("--format", default="json", choices=FORMATS)
    p_export.set_defaults(func=_cmd_export)

    p_diff = sub.add_parser("diff", help="compare two JSON snapshots")
    p_diff.add_argument("before")
    p_diff.add_argument("after")
    p_diff.add_argument(
        "--all", action="store_true", help="include unchanged series"
    )
    p_diff.set_defaults(func=_cmd_diff)

    p_flight = sub.add_parser(
        "flight", help="flight-recorder capture, export and validation"
    )
    flight_sub = p_flight.add_subparsers(dest="flight_command", required=True)

    f_record = flight_sub.add_parser(
        "record",
        help="run a quick fault campaign under the recorder and export",
    )
    f_record.add_argument("--out", required=True, help="Chrome-trace JSON path")
    f_record.add_argument(
        "--jsonl", default=None, help="also write the compact JSONL span sink"
    )
    f_record.add_argument(
        "--ledger", default=None, help="also append rows to this run ledger"
    )
    f_record.add_argument("--pairs", type=int, default=12)
    f_record.add_argument("--seed", type=int, default=0)
    f_record.add_argument("--workers", type=int, default=1)
    f_record.set_defaults(func=_cmd_flight_record)

    f_export = flight_sub.add_parser(
        "export", help="convert a JSONL span sink to Chrome-trace JSON"
    )
    f_export.add_argument("--jsonl", required=True, help="JSONL span input")
    f_export.add_argument("--out", required=True, help="Chrome-trace output")
    f_export.set_defaults(func=_cmd_flight_export)

    f_summary = flight_sub.add_parser(
        "summary", help="summarize a JSONL span sink"
    )
    f_summary.add_argument("path", help="JSONL span file")
    f_summary.set_defaults(func=_cmd_flight_summary)

    f_valid = flight_sub.add_parser(
        "assert-valid", help="validate a Chrome-trace JSON export"
    )
    f_valid.add_argument("path", help="Chrome-trace JSON file")
    f_valid.set_defaults(func=_cmd_flight_assert_valid)

    p_ledger = sub.add_parser("ledger", help="query a persistent run ledger")
    ledger_sub = p_ledger.add_subparsers(dest="ledger_command", required=True)

    l_summary = ledger_sub.add_parser(
        "summary", help="stats and per-campaign roll-up"
    )
    l_summary.add_argument("--db", required=True, help="ledger SQLite path")
    l_summary.set_defaults(func=_cmd_ledger_summary)

    l_query = ledger_sub.add_parser("query", help="row-level queries")
    l_query.add_argument("--db", required=True, help="ledger SQLite path")
    l_query.add_argument("--kind", default=None)
    l_query.add_argument("--campaign", default=None)
    l_query.add_argument("--outcome", default=None)
    l_query.add_argument("--limit", type=int, default=20)
    l_query.set_defaults(func=_cmd_ledger_query)

    p_regress = sub.add_parser(
        "regress", help="perf-regression sentinel over pytest-benchmark JSON"
    )
    p_regress.add_argument("baseline", help="committed baseline JSON")
    p_regress.add_argument("fresh", help="freshly generated benchmark JSON")
    p_regress.add_argument(
        "--time-tolerance",
        type=float,
        default=3.0,
        help="max fresh/baseline mean-time ratio (default: 3.0 — timings "
        "are machine-dependent, so the band is wide)",
    )
    p_regress.add_argument(
        "--info-tolerance",
        type=float,
        default=1.25,
        help="max ratio for numeric extra_info metrics (default: 1.25 — "
        "ratios are machine-independent, so the band is tight)",
    )
    p_regress.add_argument(
        "--limit",
        action="append",
        default=[],
        metavar="KEY=VALUE",
        help="absolute ceiling on a fresh extra_info metric (repeatable)",
    )
    p_regress.add_argument(
        "--warn-only",
        action="store_true",
        help="report findings but exit 0",
    )
    p_regress.set_defaults(func=_cmd_regress)

    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except (ReproError, OSError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
