"""Wire format: JSON query payloads ↔ election instances, canonical bodies.

One module owns the serialization conventions so the server, the client,
the CLI and the tests render the same bytes:

* **Network specs.**  Either a named builder from the shared registry
  (``{"graph": "cycle", "graph_args": [6]}`` — the same names
  ``python -m repro.trace record --graph`` accepts) or an explicit edge
  list (``{"num_nodes": n, "edges": [[u, pu, v, pv], ...]}``).  Port
  labels must be JSON scalars; they only matter for validity (locally
  distinct), never for answers — every served query is a function of the
  port-free colored underlying graph (see
  :func:`repro.graphs.canonical.canonical_hash`).
* **Queries.**  ``{"op": <feasibility|elect|classify>, "network": <spec>,
  "homes": [..]}``; batches wrap a list of queries.
* **Canonical JSON.**  :func:`canonical_json` renders with sorted keys
  and fixed separators.  Responses are byte-identical wherever they are
  produced — cold compute, memory hit, persistent-store hit, or the
  offline ``python -m repro.serve query --local`` path — which is what the
  burst-correctness acceptance test compares.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Sequence, Tuple

from ..core.placement import Placement
from ..errors import PlacementError, ReproError, ServeError
from ..graphs.network import AnonymousNetwork

OPS = ("feasibility", "elect", "classify")


def canonical_json(obj: Any) -> bytes:
    """The one JSON rendering used on every wire (sorted keys, no spaces)."""
    return json.dumps(obj, sort_keys=True, separators=(",", ":")).encode("utf-8")


def network_payload(network: AnonymousNetwork) -> Dict[str, Any]:
    """Serialize a network as an explicit edge-list spec.

    Non-scalar port labels (e.g. :class:`repro.colors.Color` symbols) are
    sent as their ``str()`` names; this preserves the per-node distinctness
    the constructor validates, and answers never depend on label identity.
    """
    def scalar(p: Any) -> Any:
        return p if isinstance(p, (int, str)) else str(p)

    return {
        "num_nodes": network.num_nodes,
        "edges": [[u, scalar(pu), v, scalar(pv)] for (u, pu, v, pv) in network.edges()],
    }


def build_network(spec: Any) -> AnonymousNetwork:
    """Materialize a network from a wire spec (named builder or edge list).

    Only **simple** networks are accepted: the canonical machinery the
    cache is keyed by (:func:`repro.graphs.canonical.canonical_hash`) is
    defined on simple underlying graphs, so self-loops and parallel edges
    — which :class:`AnonymousNetwork` itself tolerates — must be rejected
    here, at the wire boundary, as a 400 rather than deep in the compute
    path.
    """
    if not isinstance(spec, dict):
        raise ServeError("network spec must be a JSON object")
    if "graph" in spec:
        from ..trace.replay import GRAPH_BUILDERS

        name = spec["graph"]
        builder = GRAPH_BUILDERS.get(name)
        if builder is None:
            raise ServeError(
                f"unknown graph {name!r}; registered: "
                f"{', '.join(sorted(GRAPH_BUILDERS))}"
            )
        args = spec.get("graph_args", [])
        if not isinstance(args, list):
            raise ServeError("graph_args must be a JSON array")
        try:
            network = builder(*args)
        except (ReproError, TypeError, ValueError) as exc:
            raise ServeError(f"graph builder {name!r} rejected {args!r}: {exc}")
    else:
        if "edges" not in spec or "num_nodes" not in spec:
            raise ServeError(
                "network spec needs either 'graph' (+ 'graph_args') or "
                "'num_nodes' + 'edges'"
            )
        edges = spec["edges"]
        if not isinstance(edges, list) or not all(
            isinstance(e, (list, tuple)) and len(e) == 4 for e in edges
        ):
            raise ServeError("edges must be an array of [u, port_u, v, port_v]")
        try:
            network = AnonymousNetwork(
                int(spec["num_nodes"]),
                [(int(u), pu, int(v), pv) for (u, pu, v, pv) in edges],
                name=spec.get("name"),
            )
        except (ReproError, TypeError, ValueError) as exc:
            raise ServeError(f"invalid network spec: {exc}")
    if not network.is_simple:
        raise ServeError(
            "network must be simple (no self-loops or parallel edges): "
            "canonical hashing is defined on simple graphs only"
        )
    return network


def parse_query(payload: Any) -> Tuple[str, AnonymousNetwork, Placement]:
    """Validate one query payload into ``(op, network, placement)``."""
    if not isinstance(payload, dict):
        raise ServeError("query must be a JSON object")
    op = payload.get("op")
    if op not in OPS:
        raise ServeError(f"unknown op {op!r}; one of {', '.join(OPS)}")
    network = build_network(payload.get("network"))
    homes = payload.get("homes")
    if (
        not isinstance(homes, list)
        or not homes
        or not all(isinstance(h, int) for h in homes)
    ):
        raise ServeError("homes must be a non-empty array of node indices")
    try:
        placement = Placement.of(homes)
        placement.bicoloring(network)  # range-checks the homes
    except PlacementError as exc:
        raise ServeError(str(exc))
    return op, network, placement


def parse_batch(payload: Any) -> List[Dict[str, Any]]:
    """Validate the ``/v1/batch`` envelope into its query list."""
    if not isinstance(payload, dict) or not isinstance(payload.get("queries"), list):
        raise ServeError("batch payload must be {'queries': [...]}")
    queries = payload["queries"]
    if not queries:
        raise ServeError("batch needs at least one query")
    return queries


def query_payload(
    op: str, network: Any, homes: Sequence[int]
) -> Dict[str, Any]:
    """Assemble a query payload from a network (object or spec) and homes."""
    spec = (
        network_payload(network)
        if isinstance(network, AnonymousNetwork)
        else network
    )
    return {"op": op, "network": spec, "homes": list(homes)}
