"""The election service: tiered canonical-form cache over batched compute.

:class:`ElectionService` answers the three query ops (``feasibility``,
``elect``, ``classify``) through three tiers, keyed everywhere by
``(op, canonical_hash(network, bicoloring))``:

1. **memory** — a per-process LRU dict of finished answers (bounded by
   ``memory_limit``);
2. **sqlite** — the persistent :class:`~repro.serve.store.CanonicalStore`
   (write-through by default; with ``write_through=False`` entries stay
   in memory until :meth:`~ElectionService.promote_to_store`);
3. **compute** — cache misses are deduplicated (single-flight: exactly one
   backend computation per distinct key, concurrent duplicates wait on the
   leader) and fanned out as one batch on a
   :class:`~repro.perf.parallel.ParallelBatteryRunner`.

Because every payload is a pure function of the isomorphism class of the
bicolored instance (port labels never matter — see
:func:`repro.graphs.canonical.canonical_hash`), a hash hit may legally be
served for a different-but-isomorphic network than the one that populated
it.  Payloads therefore carry only isomorphism-invariant data: verdicts,
gcds, class *sizes* (in canonical ≺ order), schedule outcomes — never node
indices.

``verify_every=N`` enables the cache-consistency mode: every Nth
persistent-store hit is recomputed from scratch and byte-compared against
the stored answer (``serve_verify_total{outcome=...}``); a mismatch is
repaired in place and the fresh answer served.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..core.feasibility import classify, elect_prediction
from ..core.placement import Placement
from ..errors import ServeError
from ..graphs.canonical import canonical_hash
from ..graphs.network import AnonymousNetwork
from ..obs import flight
from ..obs.ledger import LedgerRow, RunLedger, open_ledger
from ..perf.parallel import ParallelBatteryRunner
from . import metrics as _m
from .store import CanonicalStore
from .wire import OPS, build_network, canonical_json, network_payload

#: A parsed query: ``(op, network, placement)``.
Query = Tuple[str, AnonymousNetwork, Placement]


# ----------------------------------------------------------------------
# Answer payloads — isomorphism-invariant only (shared across iso copies)
# ----------------------------------------------------------------------


def feasibility_payload(
    network: AnonymousNetwork, placement: Placement
) -> Dict[str, Any]:
    """Theorem 3.1's criterion: the gcd over the Definition 2.1 classes."""
    prediction = elect_prediction(network, placement)
    structure = prediction.structure
    return {
        "op": "feasibility",
        "gcd": structure.gcd,
        "elects": prediction.succeeds,
        "class_sizes": list(structure.sizes),
        "num_agent_classes": structure.num_agent_classes,
    }


def elect_payload(
    network: AnonymousNetwork, placement: Placement
) -> Dict[str, Any]:
    """Generic ELECT's full schedule outcome (phases, final count)."""
    prediction = elect_prediction(network, placement)
    schedule = prediction.schedule
    return {
        "op": "elect",
        "succeeds": schedule.succeeds,
        "final_count": schedule.final_count,
        "num_phases": len(schedule.phases),
        "class_sizes": list(schedule.sizes),
        "num_agent_classes": schedule.num_agent_classes,
    }


def classify_payload(
    network: AnonymousNetwork, placement: Placement
) -> Dict[str, Any]:
    """Three-valued feasibility with its reason (possible/impossible/unknown)."""
    result = classify(network, placement)
    structure = result.elect.structure
    return {
        "op": "classify",
        "verdict": result.verdict.value,
        "reason": result.reason,
        "gcd": structure.gcd,
        "class_sizes": list(structure.sizes),
        "num_agent_classes": structure.num_agent_classes,
    }


_PAYLOADS = {
    "feasibility": feasibility_payload,
    "elect": elect_payload,
    "classify": classify_payload,
}


def compute_payload(
    op: str, network: AnonymousNetwork, placement: Placement
) -> Dict[str, Any]:
    """Run the backend pipeline for one query (no caching)."""
    try:
        fn = _PAYLOADS[op]
    except KeyError:
        raise ServeError(f"unknown op {op!r}; one of {', '.join(OPS)}")
    return fn(network, placement)


def compute_item(item: Tuple[str, Dict[str, Any], List[int]]) -> Dict[str, Any]:
    """Picklable batch worker: ``(op, network_spec, homes) → payload``.

    Module-level over primitive specs so the process-pool executor of
    :class:`~repro.perf.parallel.ParallelBatteryRunner` can ship it.
    """
    op, spec, homes = item
    return compute_payload(op, build_network(spec), Placement.of(homes))


def query_key(op: str, network: AnonymousNetwork, placement: Placement) -> str:
    """The cache key: canonical hash of the bicolored instance."""
    return canonical_hash(network, placement.bicoloring(network))


class _InFlight:
    """Single-flight rendezvous: followers wait for the leader's answer.

    ``flight_ref`` carries the ``(trace_id, span_id)`` of the leader's
    compute span (when the flight recorder is on), so cross-batch
    followers can record a link span pointing at the work they rode.
    """

    __slots__ = ("event", "value", "error", "flight_ref")

    def __init__(self) -> None:
        self.event = threading.Event()
        self.value: Optional[Dict[str, Any]] = None
        self.error: Optional[BaseException] = None
        self.flight_ref: Optional[Tuple[str, str]] = None


def _serve_outcome(op: str, value: Dict[str, Any]) -> str:
    """The ledger outcome class of one computed serve answer."""
    if op == "feasibility":
        return "feasible" if value.get("elects") else "infeasible"
    if op == "elect":
        return "elects" if value.get("succeeds") else "no-election"
    if op == "classify":
        return str(value.get("verdict", "unknown"))
    return "unknown"


class ElectionService:
    """Cached, deduplicated, batched election queries.

    Parameters
    ----------
    store:
        Persistent tier; ``None`` runs memory-only (hits/misses still
        counted, ``tier="sqlite"`` simply never fires).
    runner:
        Batch executor for cache misses; default is a serial
        :class:`ParallelBatteryRunner` (workers=1).
    verify_every:
        ``N > 0`` recomputes every Nth persistent-store hit and
        byte-compares it against the stored answer; ``0`` disables.
    write_through:
        When ``False``, computed answers stay in the memory tier until
        :meth:`promote_to_store` is called explicitly.
    memory_limit:
        LRU capacity of the memory tier (the sqlite tier has its own
        ``max_entries``); ``None`` disables eviction.  Bounded by default
        so a long-running server over a large instance space cannot grow
        RSS without limit.  Pass ``None`` when running with
        ``write_through=False``: eviction before
        :meth:`promote_to_store` would silently drop answers.
    ledger:
        Optional :class:`~repro.obs.ledger.RunLedger` (or a path to one):
        every *computed* answer appends one ``kind="serve"`` row with its
        canonical hash, outcome class and trace ids.  Cache hits are not
        ledger events — the ledger records work done, not questions asked.
    """

    def __init__(
        self,
        store: Optional[CanonicalStore] = None,
        runner: Optional[ParallelBatteryRunner] = None,
        verify_every: int = 0,
        write_through: bool = True,
        memory_limit: Optional[int] = 65536,
        ledger: Optional[Any] = None,
    ):
        if verify_every < 0:
            raise ServeError(f"verify_every must be >= 0, got {verify_every}")
        if memory_limit is not None and memory_limit < 1:
            raise ServeError(f"memory_limit must be >= 1, got {memory_limit}")
        self.store = store
        self.runner = runner or ParallelBatteryRunner(workers=1)
        self.verify_every = verify_every
        self.write_through = write_through
        self.memory_limit = memory_limit
        self._owns_ledger = ledger is not None and not isinstance(
            ledger, RunLedger
        )
        self.ledger: Optional[RunLedger] = (
            open_ledger(ledger) if ledger is not None else None
        )
        self._ledger_index = 0  # serve rows get monotone case indices
        self._memory: "OrderedDict[Tuple[str, str], Dict[str, Any]]" = (
            OrderedDict()
        )
        self._inflight: Dict[Tuple[str, str], _InFlight] = {}
        self._mu = threading.Lock()
        self._store_hits = 0  # drives the every-Nth verification sample
        self.verify_mismatches = 0
        self.memory_evictions = 0

    # ------------------------------------------------------------------
    # Tiered lookup
    # ------------------------------------------------------------------

    def _lookup(
        self, op: str, chash: str, network: AnonymousNetwork, placement: Placement
    ) -> Tuple[Optional[Dict[str, Any]], Optional[str]]:
        """Memory then persistent tier; ``(None, None)`` means compute."""
        key = (op, chash)
        with self._mu:
            value = self._memory.get(key)
            if value is not None:
                self._memory.move_to_end(key)  # refresh LRU recency
        if value is not None:
            _m.STORE_HITS.inc(tier="memory")
            return value, "memory"
        if self.store is not None:
            value = self.store.get(op, chash)
            if value is not None:
                _m.STORE_HITS.inc(tier="sqlite")
                value = self._maybe_verify(op, chash, network, placement, value)
                self._remember(key, value)
                return value, "sqlite"
        _m.STORE_MISSES.inc()
        return None, None

    def _maybe_verify(
        self,
        op: str,
        chash: str,
        network: AnonymousNetwork,
        placement: Placement,
        stored: Dict[str, Any],
    ) -> Dict[str, Any]:
        """Every Nth sqlite hit: recompute, byte-compare, repair mismatches."""
        with self._mu:
            self._store_hits += 1
            due = self.verify_every > 0 and self._store_hits % self.verify_every == 0
        if not due:
            return stored
        fresh = compute_payload(op, network, placement)
        if canonical_json(fresh) == canonical_json(stored):
            _m.VERIFY.inc(outcome="ok")
            return stored
        _m.VERIFY.inc(outcome="mismatch")
        self.verify_mismatches += 1
        assert self.store is not None
        self.store.put(op, chash, fresh)  # repair in place, serve the truth
        return fresh

    def _remember(self, key: Tuple[str, str], value: Dict[str, Any]) -> None:
        """Insert into the bounded memory tier, evicting LRU past capacity."""
        with self._mu:
            self._memory[key] = value
            self._memory.move_to_end(key)
            if self.memory_limit is not None:
                while len(self._memory) > self.memory_limit:
                    self._memory.popitem(last=False)
                    self.memory_evictions += 1

    def _insert(self, op: str, chash: str, value: Dict[str, Any]) -> None:
        self._remember((op, chash), value)
        if self.store is not None and self.write_through:
            self.store.put(op, chash, value)

    # ------------------------------------------------------------------
    # Answering
    # ------------------------------------------------------------------

    def answer(
        self, op: str, network: AnonymousNetwork, placement: Placement
    ) -> Dict[str, Any]:
        """One query through the full tier stack (single-flight protected)."""
        return self.answer_batch([(op, network, placement)])[0]

    def answer_batch(
        self,
        queries: Sequence[Query],
        sources: Optional[List[str]] = None,
        contexts: Optional[Sequence[Optional["flight.TraceContext"]]] = None,
    ) -> List[Dict[str, Any]]:
        """Answer queries in input order; misses run as **one** batch.

        Exactly one backend computation happens per distinct cache key,
        no matter how many duplicates appear — within this batch or in
        concurrently running batches (those wait on the leader's result
        and count as ``serve_coalesced_total``).

        ``sources``, if given, receives one provenance string per query
        (``memory`` / ``sqlite`` / ``compute`` / ``coalesced``) — the HTTP
        layer surfaces it as the ``X-Repro-Source`` header, never in the
        body (bodies stay byte-identical across tiers).

        ``contexts``, if given, supplies one flight
        :class:`~repro.obs.flight.TraceContext` per query (the HTTP
        layer's per-request context; ``run_in_executor`` does not carry
        context variables, so they travel explicitly).  When the flight
        recorder is on, each leader's computation runs under a compute
        span derived from its query's context, and coalesced queries —
        in-batch duplicates and cross-batch waiters alike — record link
        spans pointing at the leader's compute span.
        """
        results: List[Optional[Dict[str, Any]]] = [None] * len(queries)
        src: List[Optional[str]] = [None] * len(queries)
        on_flight = flight.recording()
        # key -> (rendezvous, picklable item, slots we lead for, span ctx)
        leading: Dict[
            Tuple[str, str],
            Tuple[_InFlight, Any, List[int], Optional[flight.TraceContext]],
        ] = {}
        waiting: List[Tuple[int, _InFlight]] = []

        def _ctx(i: int) -> Optional["flight.TraceContext"]:
            return contexts[i] if contexts is not None else None

        try:
            for i, (op, network, placement) in enumerate(queries):
                if op not in OPS:
                    raise ServeError(
                        f"unknown op {op!r}; one of {', '.join(OPS)}"
                    )
                chash = query_key(op, network, placement)
                key = (op, chash)
                value, tier = self._lookup(op, chash, network, placement)
                if value is not None:
                    results[i], src[i] = value, tier
                    continue
                with self._mu:
                    if key in leading:
                        leading[key][2].append(i)  # duplicate in this batch
                        src[i] = "coalesced"
                        _m.COALESCED.inc(op=op)
                        continue
                    theirs = self._inflight.get(key)
                    if theirs is not None:  # another batch is computing it
                        waiting.append((i, theirs))
                        src[i] = "coalesced"
                        _m.COALESCED.inc(op=op)
                        continue
                    mine = _InFlight()
                    cctx: Optional[flight.TraceContext] = None
                    if on_flight:
                        rctx = _ctx(i)
                        # The compute span id is fixed *here*, before the
                        # computation runs, so followers can link to it.
                        cctx = (
                            rctx.child("serve.compute", index=i)
                            if rctx is not None
                            else flight.TraceContext.mint(
                                "serve.compute", f"{op}:{chash}"
                            )
                        )
                        mine.flight_ref = cctx.ref()
                    self._inflight[key] = mine
                    item = (op, network_payload(network), list(placement.homes))
                    leading[key] = (mine, item, [i], cctx)
                    src[i] = "compute"

            if leading:
                self._run_leaders(leading, results)
                if on_flight:
                    # In-batch duplicates link to the (now recorded)
                    # leader compute span — recorded after the compute so
                    # the flow arrow points backward in time correctly.
                    for key, (entry, _item, slots, cctx) in leading.items():
                        if cctx is None:
                            continue
                        for i in slots[1:]:
                            flight.link(
                                "serve.coalesced",
                                cctx.ref(),
                                parent=_ctx(i),
                                index=i,
                                op=key[0],
                            )
        except BaseException as exc:
            # A failure anywhere above — a later query raising in
            # query_key/_lookup (non-simple network, corrupt store row) or
            # the runner dying — must not strand the single-flight entries
            # this call already registered: followers of an unresolved
            # entry would block forever in ``event.wait()``.  Resolve them
            # with the error and deregister before propagating.
            self._abort_leaders(leading, exc)
            raise
        for i, entry in waiting:
            entry.event.wait()
            if entry.error is not None:
                raise entry.error
            results[i] = entry.value
            if on_flight and entry.flight_ref is not None:
                flight.link(
                    "serve.coalesced",
                    entry.flight_ref,
                    parent=_ctx(i),
                    index=i,
                )
        assert all(r is not None for r in results)
        if sources is not None:
            sources.extend(s or "coalesced" for s in src)
        return results  # type: ignore[return-value]

    def _run_leaders(
        self,
        leading: Dict[
            Tuple[str, str],
            Tuple[_InFlight, Any, List[int], Optional["flight.TraceContext"]],
        ],
        results: List[Optional[Dict[str, Any]]],
    ) -> None:
        """Dispatch the distinct misses as one batch; publish to followers.

        Runner failures propagate; the caller's :meth:`_abort_leaders`
        handler resolves and deregisters every registered entry.
        """
        keys = list(leading)
        items = [leading[k][1] for k in keys]
        cctxs = [leading[k][3] for k in keys]
        _m.BATCH_SIZE.observe(len(items))
        started = time.perf_counter()
        if all(c is not None for c in cctxs) and flight.recording():
            values = flight.map_with_flight(
                self.runner, compute_item, items, "serve.compute", cctxs,
            )
        else:
            values = self.runner.map(compute_item, items)
        elapsed = time.perf_counter() - started
        with self._mu:
            for key, value in zip(keys, values):
                entry, item, slots, cctx = leading[key]
                _m.COMPUTES.inc(op=key[0])
                entry.value = value
                entry.event.set()
                self._inflight.pop(key, None)
                for i in slots:
                    results[i] = value
        for key, value in zip(keys, values):
            self._insert(key[0], key[1], value)
        if self.ledger is not None:
            self._ledger_append(keys, values, cctxs, elapsed / len(items))

    def _ledger_append(
        self,
        keys: List[Tuple[str, str]],
        values: List[Dict[str, Any]],
        cctxs: List[Optional["flight.TraceContext"]],
        wall_each: float,
    ) -> None:
        """One ``kind="serve"`` ledger row per computed key.

        ``wall_each`` is the batch wall time divided evenly across its
        items — the runner computes them as one batch, so per-item wall
        time is a mean, not a measurement.
        """
        rows = []
        with self._mu:
            for (op, chash), value, cctx in zip(keys, values, cctxs):
                ctx = cctx if cctx is not None else flight.TraceContext.mint(
                    "serve.compute", f"{op}:{chash}"
                )
                rows.append(
                    LedgerRow(
                        kind="serve",
                        campaign="serve",
                        case_index=self._ledger_index,
                        instance=f"{op}:{chash[:12]}",
                        family=op,
                        chash=chash,
                        seed=0,
                        predicted="",
                        outcome=_serve_outcome(op, value),
                        wall_ms=round(wall_each * 1000.0, 3),
                        trace_id=ctx.trace_id,
                        span_id=ctx.span_id,
                    )
                )
                self._ledger_index += 1
        assert self.ledger is not None
        self.ledger.append(rows)

    def _abort_leaders(
        self,
        leading: Dict[
            Tuple[str, str],
            Tuple[_InFlight, Any, List[int], Optional["flight.TraceContext"]],
        ],
        exc: BaseException,
    ) -> None:
        """Resolve this call's unresolved in-flight entries with ``exc``.

        Idempotent: entries :meth:`_run_leaders` already published are
        left untouched, and the ``is entry`` guard never deregisters a
        fresh entry a concurrent batch registered for the same key.
        """
        with self._mu:
            for key, (entry, _item, _slots, _cctx) in leading.items():
                if not entry.event.is_set():
                    entry.error = exc
                    entry.event.set()
                if self._inflight.get(key) is entry:
                    del self._inflight[key]

    # ------------------------------------------------------------------
    # Promotion and maintenance
    # ------------------------------------------------------------------

    def promote_to_store(self) -> int:
        """Flush memory-tier answers into the persistent store.

        The explicit promotion path for services running with
        ``write_through=False`` (warm-up runs, read-mostly replicas).
        Returns the number of entries written.
        """
        if self.store is None:
            raise ServeError("no persistent store configured")
        promoted = 0
        with self._mu:
            snapshot = list(self._memory.items())
        for (op, chash), value in snapshot:
            if (op, chash) not in self.store:
                self.store.put(op, chash, value)
                promoted += 1
        return promoted

    def stats(self) -> Dict[str, Any]:
        """Tier sizes and health facts (for ``/healthz`` and reports)."""
        return {
            "memory_entries": len(self._memory),
            "memory_limit": self.memory_limit,
            "memory_evictions": self.memory_evictions,
            "inflight": len(self._inflight),
            "verify_mismatches": self.verify_mismatches,
            "store": self.store.stats() if self.store is not None else None,
        }

    def close(self) -> None:
        self.runner.close()
        if self.store is not None:
            self.store.close()
        if self.ledger is not None and self._owns_ledger:
            self.ledger.close()

    def __enter__(self) -> "ElectionService":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()
