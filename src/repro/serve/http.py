"""The asyncio HTTP/JSON front end (stdlib only — no web framework).

:class:`ElectionServer` speaks a minimal but correct subset of HTTP/1.1
over ``asyncio.start_server``:

* ``POST /v1/feasibility`` | ``/v1/elect`` | ``/v1/classify`` — one query
  (the ``op`` field is implied by the path);
* ``POST /v1/batch`` — ``{"queries": [...]}``, answered in order;
* ``GET /healthz`` — liveness plus service/store stats;
* ``GET /metrics`` — Prometheus text exposition of **all** registered
  collectors (:func:`repro.obs.registry.collect_snapshot`), so the serve
  counters appear next to the perf-cache and battery metrics.

Request flow: every accepted query lands in a pending list; a dispatcher
task wakes, lets a short *coalescing window* pass so concurrent arrivals
pile up, then drains the whole backlog as **one**
:meth:`~repro.serve.service.ElectionService.answer_batch` call in a worker
thread (the event loop never blocks on refinement).  Back-pressure is a
hard bound on backlogged queries: past ``queue_limit`` the server sheds
with ``429`` + ``Retry-After`` instead of growing the queue.  Each request
carries a deadline (``X-Repro-Deadline`` header, seconds; default
``deadline``) enforced with ``asyncio.wait_for`` → ``504``; the underlying
computation still completes and populates the caches for the retry.

Response bodies are rendered by :func:`~repro.serve.wire.canonical_json`
and never mention which tier answered; provenance travels in the
``X-Repro-Source`` header (``compute`` / ``memory`` / ``sqlite`` /
``coalesced``, comma-joined for batches).
"""

from __future__ import annotations

import asyncio
import functools
import json
import time
from typing import Any, Dict, List, Optional, Tuple

from ..errors import ServeError
from ..obs import flight
from ..obs.exporters import to_prometheus
from ..obs.registry import collect_snapshot
from . import metrics as _m
from .service import ElectionService, Query
from .wire import OPS, canonical_json, parse_batch, parse_query

_STATUS_TEXT = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    408: "Request Timeout",
    413: "Payload Too Large",
    429: "Too Many Requests",
    431: "Request Header Fields Too Large",
    500: "Internal Server Error",
    501: "Not Implemented",
    504: "Gateway Timeout",
}

_JSON = "application/json"
_PROM = "text/plain; version=0.0.4; charset=utf-8"

#: Header-section bounds: past either, the request is refused with 431
#: (the per-line StreamReader limit alone does not cap the total).
_MAX_HEADER_COUNT = 100
_MAX_HEADER_BYTES = 32 * 1024


class _Work:
    """One request's share of the dispatcher backlog.

    ``ctx`` is the request's flight :class:`~repro.obs.flight.TraceContext`
    (``None`` when the recorder is off); the dispatcher ships it alongside
    each of the request's queries because ``run_in_executor`` does not
    propagate context variables.
    """

    __slots__ = ("queries", "future", "ctx")

    def __init__(
        self,
        queries: List[Query],
        future: "asyncio.Future[Any]",
        ctx: Optional["flight.TraceContext"] = None,
    ):
        self.queries = queries
        self.future = future
        self.ctx = ctx


#: ``X-Repro-Source`` tier precedence for the latency histogram label: a
#: batch touching any compute is a compute-priced request.
_TIER_RANK = ("compute", "coalesced", "sqlite", "memory")


def _source_tier(extra: Dict[str, str]) -> str:
    """The most expensive tier named in a response's X-Repro-Source."""
    raw = extra.get("X-Repro-Source", "")
    if not raw:
        return "-"
    tiers = set(raw.split(","))
    for tier in _TIER_RANK:
        if tier in tiers:
            return tier
    return "-"


class ElectionServer:
    """Serve an :class:`ElectionService` over HTTP.

    Parameters
    ----------
    service:
        The (shared, thread-safe) backend.
    host, port:
        Bind address; ``port=0`` picks a free port (see :attr:`port`).
    queue_limit:
        Maximum backlogged queries before load shedding (429).
    batch_window:
        Seconds the dispatcher waits after waking so that concurrent
        requests coalesce into one batch.
    deadline:
        Default per-request deadline in seconds (clients override with
        the ``X-Repro-Deadline`` header).
    max_body:
        Largest accepted request body, bytes (413 past it).
    """

    def __init__(
        self,
        service: ElectionService,
        host: str = "127.0.0.1",
        port: int = 8421,
        queue_limit: int = 64,
        batch_window: float = 0.005,
        deadline: float = 30.0,
        max_body: int = 1 << 20,
    ):
        self.service = service
        self.host = host
        self._requested_port = port
        self.queue_limit = queue_limit
        self.batch_window = batch_window
        self.deadline = deadline
        self.max_body = max_body
        self._server: Optional[asyncio.AbstractServer] = None
        self._dispatcher_task: Optional["asyncio.Task[None]"] = None
        self._pending: List[_Work] = []
        self._backlog = 0
        self._wake: Optional[asyncio.Event] = None
        self._request_seq = 0  # salt for per-request flight trace ids

    @property
    def port(self) -> int:
        """The actually bound port (resolves ``port=0``)."""
        if self._server is None:
            return self._requested_port
        return self._server.sockets[0].getsockname()[1]

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    async def start(self) -> None:
        self._wake = asyncio.Event()
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self._requested_port
        )
        self._dispatcher_task = asyncio.ensure_future(self._dispatch_loop())

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        if self._dispatcher_task is not None:
            self._dispatcher_task.cancel()
            try:
                await self._dispatcher_task
            except asyncio.CancelledError:
                pass
            self._dispatcher_task = None

    async def serve_forever(self) -> None:
        """Start (if needed) and run until cancelled."""
        if self._server is None:
            await self.start()
        assert self._server is not None
        try:
            await self._server.serve_forever()
        finally:
            await self.stop()

    # ------------------------------------------------------------------
    # Dispatcher: coalesce the backlog into single batches
    # ------------------------------------------------------------------

    def _submit(
        self,
        queries: List[Query],
        ctx: Optional["flight.TraceContext"] = None,
    ) -> "asyncio.Future[Any]":
        """Enqueue queries; raises ServeError(429) past the queue limit."""
        if self._backlog + len(queries) > self.queue_limit:
            _m.REJECTED.inc(reason="queue-full")
            raise _Reject(429, "queue full, retry later", retry_after=1)
        future: "asyncio.Future[Any]" = asyncio.get_event_loop().create_future()
        self._pending.append(_Work(queries, future, ctx))
        self._backlog += len(queries)
        _m.QUEUE_DEPTH.set(self._backlog)
        assert self._wake is not None
        self._wake.set()
        return future

    async def _dispatch_loop(self) -> None:
        assert self._wake is not None
        loop = asyncio.get_event_loop()
        while True:
            await self._wake.wait()
            self._wake.clear()
            if self.batch_window > 0:
                await asyncio.sleep(self.batch_window)  # let arrivals pile up
            batch, self._pending = self._pending, []
            self._backlog = 0
            _m.QUEUE_DEPTH.set(0)
            if not batch:
                continue
            queries = [q for work in batch for q in work.queries]
            contexts = [work.ctx for work in batch for _ in work.queries]
            sources: List[str] = []
            try:
                values = await loop.run_in_executor(
                    None,
                    functools.partial(
                        self.service.answer_batch, queries, sources,
                        contexts=contexts,
                    ),
                )
            except Exception:
                # One bad query (e.g. a corrupt store row) must not fail
                # the unrelated requests that merely coalesced into this
                # batch window: retry each request separately so the error
                # lands only on the request that caused it.
                await self._answer_each(batch, loop)
                continue
            offset = 0
            for work in batch:
                n = len(work.queries)
                if not work.future.done():
                    work.future.set_result(
                        (values[offset : offset + n], sources[offset : offset + n])
                    )
                offset += n

    async def _answer_each(
        self, batch: List[_Work], loop: asyncio.AbstractEventLoop
    ) -> None:
        """Failure-isolation fallback: answer each request on its own.

        Loses cross-request batching for this round only; the service's
        cache tiers and single-flight dedup still apply.
        """
        for work in batch:
            sources: List[str] = []
            try:
                values = await loop.run_in_executor(
                    None,
                    functools.partial(
                        self.service.answer_batch, work.queries, sources,
                        contexts=[work.ctx] * len(work.queries),
                    ),
                )
            except Exception as exc:
                if not work.future.done():
                    work.future.set_exception(exc)
            else:
                if not work.future.done():
                    work.future.set_result((values, sources))

    # ------------------------------------------------------------------
    # HTTP plumbing
    # ------------------------------------------------------------------

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            while True:
                try:
                    request = await self._read_request(reader)
                except _Reject as reject:
                    _m.REQUESTS.inc(endpoint="?", status=str(reject.status))
                    self._write_response(
                        writer,
                        reject.status,
                        _JSON,
                        canonical_json({"error": reject.message}),
                        {},
                        keep_alive=False,
                    )
                    await writer.drain()
                    break
                if request is None:
                    break
                method, path, headers, body = request
                keep_alive = headers.get("connection", "").lower() != "close"
                fctx: Optional[flight.TraceContext] = None
                if flight.recording():
                    self._request_seq += 1
                    fctx = flight.TraceContext.mint(
                        "http-request", f"{id(self):x}:{self._request_seq}"
                    )
                wall = time.time()
                started = time.perf_counter()
                status, ctype, payload, extra = await self._route(
                    method, path, headers, body, fctx
                )
                elapsed = time.perf_counter() - started
                _m.REQUESTS.inc(endpoint=path, status=str(status))
                _m.REQUEST_SECONDS.observe(
                    elapsed, endpoint=path, source=_source_tier(extra)
                )
                if fctx is not None:
                    flight.record_for(
                        fctx,
                        f"{method} {path}",
                        kind="http",
                        wall=wall,
                        dur=elapsed,
                        attrs={"endpoint": path, "status": str(status)},
                    )
                    extra = dict(extra)
                    extra["X-Repro-Trace-Id"] = fctx.trace_id
                self._write_response(
                    writer, status, ctype, payload, extra, keep_alive
                )
                await writer.drain()
                if not keep_alive:
                    break
        except (
            asyncio.IncompleteReadError,
            ConnectionError,
            asyncio.LimitOverrunError,
        ):
            pass
        except asyncio.CancelledError:
            pass  # server shutdown while the connection idled
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except ConnectionError:  # pragma: no cover - platform dependent
                pass

    async def _read_request(
        self, reader: asyncio.StreamReader
    ) -> Optional[Tuple[str, str, Dict[str, str], bytes]]:
        line = await reader.readline()
        if not line or not line.strip():
            return None
        parts = line.decode("latin-1").split()
        if len(parts) != 3:
            raise ConnectionError("malformed request line")
        method, target = parts[0].upper(), parts[1]
        headers: Dict[str, str] = {}
        header_count = 0
        header_bytes = 0
        while True:
            raw = await reader.readline()
            if raw in (b"\r\n", b"\n", b""):
                break
            header_count += 1
            header_bytes += len(raw)
            if (
                header_count > _MAX_HEADER_COUNT
                or header_bytes > _MAX_HEADER_BYTES
            ):
                raise _Reject(431, "header section too large")
            name, _, value = raw.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        if "transfer-encoding" in headers:
            # Not implemented; treating a chunked body as length 0 would
            # desync the connection (its bytes would be parsed as the next
            # pipelined request).
            raise _Reject(
                501, "Transfer-Encoding is not supported; send Content-Length"
            )
        try:
            length = int(headers.get("content-length", "0") or "0")
        except ValueError:
            raise _Reject(400, "malformed Content-Length")
        if length < 0:
            raise _Reject(400, "malformed Content-Length")
        if length > self.max_body:
            raise _Reject(413, f"body exceeds {self.max_body} bytes")
        body = await reader.readexactly(length) if length else b""
        return method, target.split("?", 1)[0], headers, body

    def _write_response(
        self,
        writer: asyncio.StreamWriter,
        status: int,
        ctype: str,
        payload: bytes,
        extra: Dict[str, str],
        keep_alive: bool,
    ) -> None:
        head = [
            f"HTTP/1.1 {status} {_STATUS_TEXT.get(status, 'Unknown')}",
            f"Content-Type: {ctype}",
            f"Content-Length: {len(payload)}",
            f"Connection: {'keep-alive' if keep_alive else 'close'}",
        ]
        head.extend(f"{k}: {v}" for k, v in sorted(extra.items()))
        writer.write(("\r\n".join(head) + "\r\n\r\n").encode("latin-1"))
        writer.write(payload)

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------

    async def _route(
        self,
        method: str,
        path: str,
        headers: Dict[str, str],
        body: bytes,
        fctx: Optional["flight.TraceContext"] = None,
    ) -> Tuple[int, str, bytes, Dict[str, str]]:
        try:
            return await self._route_inner(method, path, headers, body, fctx)
        except _Reject as reject:
            extra = {}
            if reject.retry_after is not None:
                extra["Retry-After"] = str(reject.retry_after)
            return (
                reject.status,
                _JSON,
                canonical_json({"error": reject.message}),
                extra,
            )
        except ServeError as exc:
            return 400, _JSON, canonical_json({"error": str(exc)}), {}
        except Exception as exc:  # noqa: BLE001 - the server must not die
            return (
                500,
                _JSON,
                canonical_json({"error": f"internal error: {exc}"}),
                {},
            )

    async def _route_inner(
        self,
        method: str,
        path: str,
        headers: Dict[str, str],
        body: bytes,
        fctx: Optional["flight.TraceContext"] = None,
    ) -> Tuple[int, str, bytes, Dict[str, str]]:
        if path == "/healthz":
            if method != "GET":
                raise _Reject(405, "healthz is GET")
            payload = {"status": "ok", "service": self.service.stats()}
            return 200, _JSON, canonical_json(payload), {}
        if path == "/metrics":
            if method != "GET":
                raise _Reject(405, "metrics is GET")
            text = to_prometheus(collect_snapshot())
            return 200, _PROM, text.encode("utf-8"), {}
        if path == "/v1/batch":
            if method != "POST":
                raise _Reject(405, "batch is POST")
            queries = [
                parse_query(q) for q in parse_batch(self._decode_json(body))
            ]
            values, sources = await self._answer(queries, headers, fctx)
            return (
                200,
                _JSON,
                canonical_json({"results": values}),
                {"X-Repro-Source": ",".join(sources)},
            )
        if path.startswith("/v1/"):
            op = path[len("/v1/") :]
            if op not in OPS:
                raise _Reject(404, f"unknown endpoint {path}")
            if method != "POST":
                raise _Reject(405, f"{path} is POST")
            payload = self._decode_json(body)
            if not isinstance(payload, dict):
                raise ServeError("query must be a JSON object")
            declared = payload.get("op", op)
            if declared != op:
                raise ServeError(
                    f"payload op {declared!r} contradicts endpoint {path}"
                )
            query = parse_query({**payload, "op": op})
            values, sources = await self._answer([query], headers, fctx)
            return (
                200,
                _JSON,
                canonical_json(values[0]),
                {"X-Repro-Source": sources[0]},
            )
        raise _Reject(404, f"unknown endpoint {path}")

    async def _answer(
        self,
        queries: List[Query],
        headers: Dict[str, str],
        fctx: Optional["flight.TraceContext"] = None,
    ) -> Tuple[List[Dict[str, Any]], List[str]]:
        deadline = self.deadline
        raw = headers.get("x-repro-deadline")
        if raw:
            try:
                deadline = float(raw)
            except ValueError:
                raise ServeError(f"bad X-Repro-Deadline {raw!r}")
        future = self._submit(queries, fctx)
        try:
            return await asyncio.wait_for(future, timeout=deadline)
        except asyncio.TimeoutError:
            _m.REJECTED.inc(reason="deadline")
            raise _Reject(
                504, f"deadline of {deadline}s exceeded", retry_after=1
            )

    @staticmethod
    def _decode_json(body: bytes) -> Any:
        try:
            return json.loads(body.decode("utf-8"))
        except (ValueError, UnicodeDecodeError) as exc:
            raise ServeError(f"request body is not valid JSON: {exc}")


class _Reject(Exception):
    """An HTTP-level rejection with a status code (and maybe Retry-After)."""

    def __init__(
        self, status: int, message: str, retry_after: Optional[int] = None
    ):
        super().__init__(message)
        self.status = status
        self.message = message
        self.retry_after = retry_after
