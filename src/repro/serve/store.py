"""The persistent canonical-form answer cache (SQLite, cross-run).

Where :mod:`repro.perf.cache` memoizes per *network object* and dies with
the process, this store is keyed by the content-addressed
:func:`~repro.graphs.canonical.canonical_hash` of an instance and survives
restarts: a second server process pointed at the same file answers warm
queries without ever running refinement.

Schema (version 1)::

    meta(key TEXT PRIMARY KEY, value TEXT)
        -- 'schema_version', 'canonical_hash_version'
    entries(op TEXT, chash TEXT, value TEXT,       -- canonical JSON
            created REAL, last_used REAL, hits INTEGER,
            PRIMARY KEY (op, chash))

Both version stamps are enforced on open: a store written under a
different schema or a different canonical encoding is refused (a hash
computed under encoding v1 must never address an answer computed under
v2), with ``wipe_on_mismatch=True`` offered for caches that are pure
derived data.

Eviction is LRU by ``last_used`` once ``max_entries`` is exceeded, counted
in ``serve_store_evictions_total``.  All access goes through one
connection guarded by an ``RLock`` — the serve layer calls in from
executor threads — and every value is canonical JSON text, so a row read
back is byte-identical to the bytes that were served when it was written.
"""

from __future__ import annotations

import json
import sqlite3
import threading
import time
from typing import Any, Dict, Iterator, Optional, Tuple

from ..errors import ServeError
from ..graphs.canonical import CANONICAL_HASH_VERSION
from . import metrics as _m

SCHEMA_VERSION = 1


class CanonicalStore:
    """SQLite-backed ``(op, canonical_hash) → answer`` cache.

    Parameters
    ----------
    path:
        Database file, or ``":memory:"`` for an ephemeral store (tests).
    max_entries:
        LRU capacity; ``None`` disables eviction.
    wipe_on_mismatch:
        When the file carries a different schema or canonical-encoding
        version, drop its contents instead of raising.  Safe because the
        store holds only derived data.
    """

    def __init__(
        self,
        path: str,
        max_entries: Optional[int] = 100_000,
        wipe_on_mismatch: bool = False,
    ):
        self.path = path
        self.max_entries = max_entries
        self._lock = threading.RLock()
        self._conn = sqlite3.connect(path, check_same_thread=False)
        self._conn.execute("PRAGMA synchronous=NORMAL")
        self._init_schema(wipe_on_mismatch)

    # ------------------------------------------------------------------
    # Schema and versioning
    # ------------------------------------------------------------------

    def _init_schema(self, wipe_on_mismatch: bool) -> None:
        with self._lock, self._conn:
            self._conn.execute(
                "CREATE TABLE IF NOT EXISTS meta ("
                "key TEXT PRIMARY KEY, value TEXT NOT NULL)"
            )
            self._conn.execute(
                "CREATE TABLE IF NOT EXISTS entries ("
                "op TEXT NOT NULL, chash TEXT NOT NULL, value TEXT NOT NULL,"
                "created REAL NOT NULL, last_used REAL NOT NULL,"
                "hits INTEGER NOT NULL DEFAULT 0,"
                "PRIMARY KEY (op, chash))"
            )
            stamps = {
                "schema_version": str(SCHEMA_VERSION),
                "canonical_hash_version": str(CANONICAL_HASH_VERSION),
            }
            existing = dict(
                self._conn.execute("SELECT key, value FROM meta").fetchall()
            )
            stale = {
                key: existing[key]
                for key, want in stamps.items()
                if key in existing and existing[key] != want
            }
            if stale:
                if not wipe_on_mismatch:
                    raise ServeError(
                        f"store {self.path!r} version mismatch {stale}; "
                        "expected schema_version="
                        f"{SCHEMA_VERSION}, canonical_hash_version="
                        f"{CANONICAL_HASH_VERSION} (pass wipe_on_mismatch "
                        "to rebuild)"
                    )
                self._conn.execute("DELETE FROM entries")
                self._conn.execute("DELETE FROM meta")
            for key, value in stamps.items():
                self._conn.execute(
                    "INSERT OR REPLACE INTO meta (key, value) VALUES (?, ?)",
                    (key, value),
                )

    # ------------------------------------------------------------------
    # Lookup and insert
    # ------------------------------------------------------------------

    def get(self, op: str, chash: str) -> Optional[Dict[str, Any]]:
        """The cached answer, or ``None``.  A hit refreshes LRU recency."""
        with self._lock:
            row = self._conn.execute(
                "SELECT value FROM entries WHERE op = ? AND chash = ?",
                (op, chash),
            ).fetchone()
            if row is None:
                return None
            with self._conn:
                self._conn.execute(
                    "UPDATE entries SET last_used = ?, hits = hits + 1 "
                    "WHERE op = ? AND chash = ?",
                    (time.time(), op, chash),
                )
        try:
            return json.loads(row[0])
        except ValueError as exc:
            raise ServeError(
                f"corrupt store entry ({op}, {chash[:12]}…): {exc}"
            )

    def put(self, op: str, chash: str, value: Dict[str, Any]) -> None:
        """Insert (or overwrite) an answer; evicts LRU past capacity."""
        text = json.dumps(value, sort_keys=True, separators=(",", ":"))
        now = time.time()
        with self._lock, self._conn:
            self._conn.execute(
                "INSERT OR REPLACE INTO entries "
                "(op, chash, value, created, last_used, hits) "
                "VALUES (?, ?, ?, ?, ?, 0)",
                (op, chash, text, now, now),
            )
            _m.STORE_PUTS.inc()
            if self.max_entries is not None:
                (count,) = self._conn.execute(
                    "SELECT COUNT(*) FROM entries"
                ).fetchone()
                excess = count - self.max_entries
                if excess > 0:
                    self._conn.execute(
                        "DELETE FROM entries WHERE (op, chash) IN ("
                        "SELECT op, chash FROM entries "
                        "ORDER BY last_used ASC, op ASC, chash ASC LIMIT ?)",
                        (excess,),
                    )
                    _m.STORE_EVICTIONS.inc(excess)

    def delete(self, op: str, chash: str) -> None:
        """Drop one entry (used when verification finds a mismatch)."""
        with self._lock, self._conn:
            self._conn.execute(
                "DELETE FROM entries WHERE op = ? AND chash = ?", (op, chash)
            )

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        with self._lock:
            (count,) = self._conn.execute(
                "SELECT COUNT(*) FROM entries"
            ).fetchone()
            return int(count)

    def __contains__(self, key: Tuple[str, str]) -> bool:
        op, chash = key
        with self._lock:
            return (
                self._conn.execute(
                    "SELECT 1 FROM entries WHERE op = ? AND chash = ?",
                    (op, chash),
                ).fetchone()
                is not None
            )

    def keys(self) -> Iterator[Tuple[str, str]]:
        """All ``(op, chash)`` keys (snapshot, deterministic order)."""
        with self._lock:
            rows = self._conn.execute(
                "SELECT op, chash FROM entries ORDER BY op, chash"
            ).fetchall()
        return iter([(op, chash) for (op, chash) in rows])

    def stats(self) -> Dict[str, Any]:
        """Row counts per op plus totals (for /healthz and reports)."""
        with self._lock:
            by_op = dict(
                self._conn.execute(
                    "SELECT op, COUNT(*) FROM entries GROUP BY op ORDER BY op"
                ).fetchall()
            )
            (hits,) = self._conn.execute(
                "SELECT COALESCE(SUM(hits), 0) FROM entries"
            ).fetchone()
        return {
            "path": self.path,
            "entries": sum(by_op.values()),
            "by_op": by_op,
            "persistent_hits": int(hits),
        }

    def clear(self) -> None:
        """Drop every entry (version stamps survive)."""
        with self._lock, self._conn:
            self._conn.execute("DELETE FROM entries")

    def close(self) -> None:
        with self._lock:
            self._conn.close()

    def __enter__(self) -> "CanonicalStore":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"CanonicalStore({self.path!r}, entries={len(self)})"
