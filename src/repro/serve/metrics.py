"""The ``"serve"`` metrics collector: request, cache-tier and queue signals.

Like :mod:`repro.perf.cache`, the serve layer owns an **always-enabled**
:class:`~repro.obs.registry.MetricsRegistry` registered as the ``"serve"``
collector: hit/miss accounting across the cache tiers is part of the
service's contract (the restart-persistence acceptance test reads
``serve_store_hits_total{tier="sqlite"}`` off a live ``/metrics`` scrape),
not an opt-in diagnostic.

Metric inventory
----------------
* ``serve_requests_total{endpoint,status}`` — every HTTP response sent;
* ``serve_rejected_total{reason}`` — load shedding (``queue-full``) and
  deadline misses (``deadline``);
* ``serve_compute_total{op}`` — actual backend computations, i.e. cache
  misses that ran the feasibility/classification pipeline.  The
  concurrent-client tests pin this to exactly one per distinct canonical
  hash;
* ``serve_coalesced_total{op}`` — queries answered by waiting on another
  request's in-flight computation (single-flight dedup);
* ``serve_store_hits_total{tier}`` / ``serve_store_misses_total`` —
  lookups by cache tier (``memory`` = per-process memo, ``sqlite`` = the
  persistent store);
* ``serve_store_puts_total`` / ``serve_store_evictions_total`` —
  persistent-store writes and LRU evictions;
* ``serve_verify_total{outcome}`` — cache-consistency verification
  recomputations (``ok`` / ``mismatch``);
* ``serve_queue_depth`` — current dispatcher backlog (gauge);
* ``serve_batch_size`` — sizes of the batches dispatched onto the
  battery runner (histogram);
* ``serve_request_seconds{endpoint,source}`` — request wall time
  (histogram; ``/metrics`` exposes its p50/p90/p99 as quantile series).
  ``source`` is the most expensive ``X-Repro-Source`` tier the response
  touched (``compute`` > ``coalesced`` > ``sqlite`` > ``memory``; ``-``
  for non-query endpoints), so warm-path and compute-path service time
  distributions are separable.
"""

from __future__ import annotations

from ..obs.registry import MetricsRegistry, register_collector

#: The serve layer's own registry — always enabled, independent of the
#: global default (mirrors ``repro.perf.cache``).
_metrics = MetricsRegistry(enabled=True)

REQUESTS = _metrics.counter(
    "serve_requests_total", help="HTTP responses sent, by endpoint and status"
)
REJECTED = _metrics.counter(
    "serve_rejected_total", help="requests shed (back-pressure) or timed out"
)
COMPUTES = _metrics.counter(
    "serve_compute_total", help="actual backend computations, by op"
)
COALESCED = _metrics.counter(
    "serve_coalesced_total",
    help="queries coalesced onto another request's in-flight computation",
)
STORE_HITS = _metrics.counter(
    "serve_store_hits_total", help="cache hits, by tier (memory/sqlite)"
)
STORE_MISSES = _metrics.counter(
    "serve_store_misses_total", help="queries that missed every cache tier"
)
STORE_PUTS = _metrics.counter(
    "serve_store_puts_total", help="persistent-store inserts"
)
STORE_EVICTIONS = _metrics.counter(
    "serve_store_evictions_total", help="persistent-store LRU evictions"
)
VERIFY = _metrics.counter(
    "serve_verify_total",
    help="cache-consistency verification recomputations, by outcome",
)
QUEUE_DEPTH = _metrics.gauge(
    "serve_queue_depth", help="requests waiting in the dispatcher queue"
)
BATCH_SIZE = _metrics.histogram(
    "serve_batch_size", help="batch sizes dispatched onto the battery runner"
)
REQUEST_SECONDS = _metrics.histogram(
    "serve_request_seconds",
    help="request wall time, by endpoint and source tier",
)

register_collector("serve", _metrics)


def metrics_registry() -> MetricsRegistry:
    """The serve layer's always-enabled registry (the ``"serve"`` collector)."""
    return _metrics


def reset() -> None:
    """Zero all serve counters (test isolation helper)."""
    _metrics.reset()
