"""Thin stdlib client for the election service (``http.client`` based).

One :class:`ServeClient` wraps one keep-alive connection (reconnecting
transparently when the server closes it), so it is cheap to issue many
queries in a row — but it is **not** thread-safe: concurrent callers each
create their own client (as the burst tests do).

Non-2xx responses raise :class:`ServeHTTPError` carrying the status and,
for 429/504, the server's ``Retry-After`` hint.  The raw response body of
the last successful call is kept in :attr:`ServeClient.last_body` and its
cache provenance in :attr:`ServeClient.last_source` — the acceptance tests
byte-compare ``last_body`` across clients and tiers.
"""

from __future__ import annotations

import http.client
import json
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

from ..errors import ServeError
from ..graphs.network import AnonymousNetwork
from .wire import canonical_json, query_payload

NetworkLike = Union[AnonymousNetwork, Dict[str, Any]]


class ServeHTTPError(ServeError):
    """A non-2xx response from the election service."""

    def __init__(
        self,
        status: int,
        message: str,
        retry_after: Optional[float] = None,
    ):
        super().__init__(f"HTTP {status}: {message}")
        self.status = status
        self.retry_after = retry_after


class ServeClient:
    """Talk to a running :class:`~repro.serve.http.ElectionServer`."""

    def __init__(
        self, host: str = "127.0.0.1", port: int = 8421, timeout: float = 60.0
    ):
        self.host = host
        self.port = port
        self.timeout = timeout
        self._conn: Optional[http.client.HTTPConnection] = None
        self.last_body: bytes = b""
        self.last_source: Optional[str] = None

    # ------------------------------------------------------------------
    # Transport
    # ------------------------------------------------------------------

    def _connection(self) -> http.client.HTTPConnection:
        if self._conn is None:
            self._conn = http.client.HTTPConnection(
                self.host, self.port, timeout=self.timeout
            )
        return self._conn

    def close(self) -> None:
        if self._conn is not None:
            self._conn.close()
            self._conn = None

    def __enter__(self) -> "ServeClient":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    def request(
        self,
        method: str,
        path: str,
        payload: Optional[Any] = None,
        deadline: Optional[float] = None,
    ) -> Tuple[int, Dict[str, str], bytes]:
        """One HTTP round-trip; reconnects once on a stale keep-alive."""
        body = canonical_json(payload) if payload is not None else None
        headers = {"Content-Type": "application/json"} if body else {}
        if deadline is not None:
            headers["X-Repro-Deadline"] = str(deadline)
        for attempt in (0, 1):
            conn = self._connection()
            try:
                conn.request(method, path, body=body, headers=headers)
                response = conn.getresponse()
                data = response.read()
                return (
                    response.status,
                    {k.lower(): v for k, v in response.getheaders()},
                    data,
                )
            except (
                http.client.RemoteDisconnected,
                BrokenPipeError,
                ConnectionResetError,
            ):
                self.close()
                if attempt:
                    raise
        raise AssertionError("unreachable")  # pragma: no cover

    def _json(
        self,
        method: str,
        path: str,
        payload: Optional[Any] = None,
        deadline: Optional[float] = None,
    ) -> Any:
        status, headers, body = self.request(method, path, payload, deadline)
        if not 200 <= status < 300:
            message = body.decode("utf-8", "replace")
            try:
                message = json.loads(message).get("error", message)
            except ValueError:
                pass
            retry_after = headers.get("retry-after")
            raise ServeHTTPError(
                status,
                message,
                float(retry_after) if retry_after else None,
            )
        self.last_body = body
        self.last_source = headers.get("x-repro-source")
        return json.loads(body.decode("utf-8"))

    # ------------------------------------------------------------------
    # Endpoints
    # ------------------------------------------------------------------

    def feasibility(
        self,
        network: NetworkLike,
        homes: Sequence[int],
        deadline: Optional[float] = None,
    ) -> Dict[str, Any]:
        return self.query("feasibility", network, homes, deadline=deadline)

    def elect(
        self,
        network: NetworkLike,
        homes: Sequence[int],
        deadline: Optional[float] = None,
    ) -> Dict[str, Any]:
        return self.query("elect", network, homes, deadline=deadline)

    def classify(
        self,
        network: NetworkLike,
        homes: Sequence[int],
        deadline: Optional[float] = None,
    ) -> Dict[str, Any]:
        return self.query("classify", network, homes, deadline=deadline)

    def query(
        self,
        op: str,
        network: NetworkLike,
        homes: Sequence[int],
        deadline: Optional[float] = None,
    ) -> Dict[str, Any]:
        payload = query_payload(op, network, homes)
        return self._json("POST", f"/v1/{op}", payload, deadline)

    def batch(
        self,
        queries: Sequence[Dict[str, Any]],
        deadline: Optional[float] = None,
    ) -> List[Dict[str, Any]]:
        """POST /v1/batch; each query is a wire payload (see ``wire.py``)."""
        data = self._json(
            "POST", "/v1/batch", {"queries": list(queries)}, deadline
        )
        return data["results"]

    def healthz(self) -> Dict[str, Any]:
        return self._json("GET", "/healthz")

    def metrics(self) -> str:
        """The raw Prometheus text exposition."""
        status, _, body = self.request("GET", "/metrics")
        if status != 200:
            raise ServeHTTPError(status, body.decode("utf-8", "replace"))
        return body.decode("utf-8")
