"""Election-as-a-service CLI: serve, query, warm.

Usage::

    # boot the server (persistent cache in elections.db)
    python -m repro.serve serve --port 8421 --store elections.db --workers 4

    # query a running server...
    python -m repro.serve query --op classify --graph cycle --graph-args 6 \\
        --homes 0 3 --port 8421

    # ...or answer locally, no server involved (same bytes on stdout)
    python -m repro.serve query --op classify --graph cycle --graph-args 6 \\
        --homes 0 3 --local --store elections.db

    # pre-populate a store from a named battery, then ship the file
    python -m repro.serve warm --store elections.db --battery impossibility

``query`` prints exactly the canonical JSON the server would send as a
response body (plus a trailing newline), so ``--local`` output is
byte-comparable against an HTTP response — that equality is an acceptance
test.  ``warm`` runs every instance of the named batteries through an
:class:`~repro.serve.service.ElectionService` with write-through disabled
and then promotes the answers in one pass (the explicit promotion path).
"""

from __future__ import annotations

import argparse
import asyncio
import json
import sys
from typing import List

from ..errors import ReproError
from ..perf.parallel import ParallelBatteryRunner
from .client import ServeClient
from .http import ElectionServer
from .service import ElectionService
from .store import CanonicalStore
from .wire import OPS, canonical_json, parse_query, query_payload


def _add_instance_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--op", choices=OPS, default="classify", help="query operation"
    )
    parser.add_argument(
        "--graph", default="cycle", help="named builder (see repro.trace)"
    )
    parser.add_argument(
        "--graph-args",
        type=int,
        nargs="*",
        default=None,
        help="builder arguments (default: 6 for the default cycle, else none)",
    )
    parser.add_argument(
        "--homes",
        type=int,
        nargs="+",
        default=[0],
        help="agent home-bases (node indices)",
    )


def _add_endpoint_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=8421)


def _build_service(args: argparse.Namespace, write_through: bool = True) -> ElectionService:
    store = None
    if args.store:
        store = CanonicalStore(
            args.store, wipe_on_mismatch=getattr(args, "wipe_on_mismatch", False)
        )
    runner = ParallelBatteryRunner(
        workers=args.workers, executor=args.executor
    )
    # Deferred promotion (warm) needs the memory tier complete until
    # promote_to_store(); LRU eviction would silently drop answers.
    extra = {} if write_through else {"memory_limit": None}
    return ElectionService(
        store=store,
        runner=runner,
        verify_every=getattr(args, "verify_every", 0),
        write_through=write_through,
        ledger=getattr(args, "ledger", None),
        **extra,
    )


def cmd_serve(args: argparse.Namespace) -> int:
    service = _build_service(args)
    server = ElectionServer(
        service,
        host=args.host,
        port=args.port,
        queue_limit=args.queue_limit,
        batch_window=args.batch_window,
        deadline=args.deadline,
    )

    async def main() -> None:
        await server.start()
        print(
            f"repro.serve listening on http://{args.host}:{server.port} "
            f"(store={args.store or 'memory-only'})",
            file=sys.stderr,
        )
        assert server._server is not None
        await server._server.serve_forever()

    try:
        asyncio.run(main())
    except KeyboardInterrupt:
        pass
    finally:
        service.close()
    return 0


def cmd_query(args: argparse.Namespace) -> int:
    if args.graph_args is None:
        args.graph_args = [6] if args.graph == "cycle" else []
    payload = query_payload(
        args.op,
        {"graph": args.graph, "graph_args": list(args.graph_args)},
        args.homes,
    )
    if args.local:
        service = _build_service(args)
        try:
            op, network, placement = parse_query(payload)
            body = canonical_json(service.answer(op, network, placement))
        finally:
            service.close()
    else:
        with ServeClient(args.host, args.port) as client:
            client.query(args.op, payload["network"], args.homes)
            body = client.last_body
            if args.verbose and client.last_source:
                print(f"source: {client.last_source}", file=sys.stderr)
    sys.stdout.buffer.write(body + b"\n")
    return 0


def cmd_warm(args: argparse.Namespace) -> int:
    from ..analysis.instances import battery_by_name

    if not args.store:
        print("warm needs --store PATH", file=sys.stderr)
        return 2
    service = _build_service(args, write_through=False)
    try:
        queries = []
        for name in args.battery:
            for inst in battery_by_name(name):
                for op in args.ops:
                    queries.append((op, inst.network, inst.placement))
        service.answer_batch(queries)
        promoted = service.promote_to_store()
        report = {
            "batteries": list(args.battery),
            "ops": list(args.ops),
            "queries": len(queries),
            "promoted": promoted,
            "store": service.store.stats() if service.store else None,
        }
        print(json.dumps(report, indent=2, sort_keys=True))
    finally:
        service.close()
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.serve", description=__doc__.split("\n")[0]
    )
    sub = parser.add_subparsers(dest="command", required=True)

    serve = sub.add_parser("serve", help="run the HTTP service")
    _add_endpoint_args(serve)
    serve.add_argument("--store", default=None, help="SQLite cache path")
    serve.add_argument("--workers", type=int, default=1)
    serve.add_argument("--executor", choices=("process", "thread"), default="process")
    serve.add_argument("--queue-limit", type=int, default=64)
    serve.add_argument("--batch-window", type=float, default=0.005)
    serve.add_argument("--deadline", type=float, default=30.0)
    serve.add_argument(
        "--verify-every",
        type=int,
        default=0,
        help="recompute every Nth persistent-store hit (0 = off)",
    )
    serve.add_argument(
        "--wipe-on-mismatch",
        action="store_true",
        help="rebuild the store if its version stamps mismatch",
    )
    serve.add_argument(
        "--ledger",
        default=None,
        help="append one run-ledger row per backend computation to this "
        "SQLite database (see python -m repro.obs ledger)",
    )
    serve.set_defaults(fn=cmd_serve)

    query = sub.add_parser("query", help="one query (HTTP or --local)")
    _add_endpoint_args(query)
    _add_instance_args(query)
    query.add_argument(
        "--local",
        action="store_true",
        help="answer in-process instead of contacting a server",
    )
    query.add_argument("--store", default=None, help="SQLite cache (with --local)")
    query.add_argument("--workers", type=int, default=1)
    query.add_argument("--executor", choices=("process", "thread"), default="process")
    query.add_argument("--verbose", action="store_true")
    query.set_defaults(fn=cmd_query)

    warm = sub.add_parser("warm", help="pre-populate a store from batteries")
    warm.add_argument("--store", required=True, help="SQLite cache path")
    warm.add_argument(
        "--battery",
        nargs="+",
        default=["impossibility"],
        help="named batteries (see repro.analysis.instances.BATTERIES)",
    )
    warm.add_argument(
        "--ops", nargs="+", choices=OPS, default=["feasibility", "classify"]
    )
    warm.add_argument("--workers", type=int, default=1)
    warm.add_argument("--executor", choices=("process", "thread"), default="process")
    warm.add_argument("--wipe-on-mismatch", action="store_true")
    warm.set_defaults(fn=cmd_warm)
    return parser


def main(argv: List[str] = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return args.fn(args)
    except (ReproError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":
    sys.exit(main())
