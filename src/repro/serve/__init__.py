"""Election-as-a-service: HTTP front end over the feasibility pipeline.

The subsystem turns the repo's pure election machinery into a long-lived
service with a content-addressed answer cache:

* :mod:`repro.serve.wire` — JSON wire format and the canonical response
  rendering (byte-identical across every cache tier and the offline CLI);
* :mod:`repro.serve.store` — persistent SQLite cache keyed by
  :func:`repro.graphs.canonical.canonical_hash` (survives restarts,
  version-stamped against canonical-encoding changes);
* :mod:`repro.serve.service` — :class:`ElectionService`: tiered lookup
  (memory → sqlite → compute), single-flight dedup, batched dispatch onto
  :class:`~repro.perf.parallel.ParallelBatteryRunner`;
* :mod:`repro.serve.http` — :class:`ElectionServer`: stdlib asyncio
  HTTP/1.1 with request coalescing, bounded queues (429 + Retry-After) and
  per-request deadlines (504);
* :mod:`repro.serve.client` — :class:`ServeClient`, a thin stdlib client;
* :mod:`repro.serve.metrics` — the always-enabled ``"serve"`` collector;
* ``python -m repro.serve`` — ``serve`` / ``query`` / ``warm``.
"""

from .client import ServeClient, ServeHTTPError
from .http import ElectionServer
from .metrics import metrics_registry
from .service import ElectionService, compute_payload, query_key
from .store import CanonicalStore
from .wire import build_network, canonical_json, network_payload, query_payload

__all__ = [
    "CanonicalStore",
    "ElectionServer",
    "ElectionService",
    "ServeClient",
    "ServeHTTPError",
    "build_network",
    "canonical_json",
    "compute_payload",
    "metrics_registry",
    "network_payload",
    "query_key",
    "query_payload",
]
