"""Election outcomes: what each agent reports and the aggregated verdict."""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import List, Optional, Sequence

from ..colors import Color
from ..errors import ProtocolError


class Verdict(Enum):
    """An individual agent's final state."""

    LEADER = "leader"
    DEFEATED = "defeated"  # knows the leader's color
    FAILED = "failed"  # protocol determined election is not solvable
    NOT_CAYLEY = "not-cayley"  # Cayley-variant run on a non-Cayley graph
    AMBIGUOUS = "ambiguous"  # class order not agreeable (see DESIGN.md)


@dataclass(frozen=True)
class AgentReport:
    """What one agent returns at the end of a protocol."""

    verdict: Verdict
    leader_color: Optional[Color] = None

    def __post_init__(self) -> None:
        if self.verdict in (Verdict.LEADER, Verdict.DEFEATED):
            if self.leader_color is None:
                raise ProtocolError("elected outcomes must carry the leader color")


@dataclass
class ElectionOutcome:
    """Aggregate of all agents' reports plus run metrics.

    ``elected`` requires *unanimity*: exactly one LEADER, everyone else
    DEFEATED, and every report naming the same leader color.  Anything less
    is a protocol bug and raises at aggregation time.
    """

    reports: List[AgentReport]
    total_moves: int
    total_accesses: int
    steps: int

    @property
    def elected(self) -> bool:
        return any(r.verdict is Verdict.LEADER for r in self.reports)

    @property
    def leader_color(self) -> Optional[Color]:
        for r in self.reports:
            if r.verdict is Verdict.LEADER:
                return r.leader_color
        return None

    @property
    def failed(self) -> bool:
        return all(
            r.verdict in (Verdict.FAILED, Verdict.NOT_CAYLEY, Verdict.AMBIGUOUS)
            for r in self.reports
        )

    def validate(self) -> "ElectionOutcome":
        """Check global consistency of the reports; return self.

        Raises :class:`ProtocolError` on split-brain outcomes: several
        leaders, a mix of elected and failed verdicts, or defeated agents
        naming different leaders.
        """
        leaders = [r for r in self.reports if r.verdict is Verdict.LEADER]
        if len(leaders) > 1:
            raise ProtocolError(f"{len(leaders)} agents claim leadership")
        if leaders:
            leader_color = leaders[0].leader_color
            for r in self.reports:
                if r.verdict is Verdict.LEADER:
                    continue
                if r.verdict is not Verdict.DEFEATED:
                    raise ProtocolError(
                        f"mixed verdicts: leader elected but {r.verdict} present"
                    )
                if r.leader_color != leader_color:
                    raise ProtocolError("defeated agents disagree on the leader")
        else:
            if not self.failed:
                raise ProtocolError(
                    "no leader, yet not all agents report failure"
                )
        return self


def aggregate(
    reports: Sequence[AgentReport],
    total_moves: int,
    total_accesses: int,
    steps: int,
) -> ElectionOutcome:
    """Build and validate an :class:`ElectionOutcome`."""
    return ElectionOutcome(
        reports=list(reports),
        total_moves=total_moves,
        total_accesses=total_accesses,
        steps=steps,
    ).validate()
