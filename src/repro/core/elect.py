"""Protocol ELECT (paper Figure 3) — full asynchronous whiteboard protocol.

Every agent executes, independently and asynchronously:

1. **MAP-DRAWING** — whiteboard DFS (:func:`repro.sim.traversal.draw_map`),
   waking sleeping agents it passes; yields a private map with home-base
   colors.
2. **COMPUTE & ORDER** — equivalence classes of the bi-colored map in the
   canonical ``≺`` order (:mod:`repro.core.ordering`).  Because the classes
   and their order are isomorphism-invariant, all agents agree on them.
3. If ``gcd(|C_1|,…,|C_k|) > 1`` the protocol cannot elect: the agent
   reports failure directly — *every* agent reaches the same conclusion
   from its own map, which realises the paper's "ELECT lets the agents know
   about the failure of the election" without extra traversals.
4. Otherwise the gcd-reduction stages run (AGENT-REDUCE phases over agent
   classes, then NODE-REDUCE phases over node classes), driving the active
   set down to a single leader, who tours the network announcing its color.

Run-time coordination uses only model-legal *colored signs* (payloads are
ints; an agent writes its own color only).  The deterministic **schedule**
(:mod:`repro.core.reduce_phases`) fixes every phase/round's set *sizes*;
identities are resolved by whiteboard races:

* A waiting agent posts ``STATUS(phase, round, WAITING)`` at its home and
  blocks until ``ROUND_DONE(phase, round)`` signs from ``|S|`` distinct
  colors appear there.
* A searching agent tours the waiting home-bases; at each it awaits the
  ``WAITING`` status and, if still unmatched, races a one-slot
  ``MATCH(phase, round)`` acquisition.  After matching it posts
  ``SEARCH_DONE`` at its own home, awaits every other searcher's
  ``SEARCH_DONE``, then tours the waiting homes once more — reading the
  complete matched set ``P`` and stamping ``ROUND_DONE`` everywhere.
* NODE-REDUCE rounds race ``NODE_ACQUIRED(phase, round)`` signs with the
  capacities of the paper's Case 1/Case 2 arithmetic, and synchronize on
  ``STATUS(phase, round, NODE_DONE)`` at the active agents' homes.
* Agent classes beyond ``C_2`` are *activated* by ``ACTIVATE(phase)``
  signs written on their home-bases by the incoming active set; the
  activation colors double as the identities of that active set.

The move/access count is ``O(r·|E|)`` up to the schedule's round counts,
as Theorem 3.1 requires; the benchmarks measure it.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Set, Tuple

from ..colors import Color
from ..errors import ProtocolError
from ..obs.spans import (
    AGENT_REDUCE,
    ANNOUNCE,
    AWAIT,
    COMPUTE_ORDER,
    MAP_DRAWING,
    NODE_REDUCE,
    PhaseClock,
)
from ..sim.actions import Log, NodeView, Read, TryAcquire, WaitUntil, Write
from ..sim.agent import Agent, ProtocolGen
from ..sim.signs import (
    ACTIVATE,
    DFS_VISITED,
    LEADER_ANNOUNCE,
    MATCH,
    NODE_ACQUIRED,
    ROUND_DONE,
    STATUS,
    Sign,
)
from ..sim.traversal import LocalMap, Navigator, draw_map, draw_map_frontier
from .ordering import ClassStructure, compute_class_structure
from .reduce_phases import PhaseSpec, Schedule, build_schedule
from .result import AgentReport, Verdict

# STATUS role codes (part of integer payloads).
ROLE_WAITING = 0
ROLE_SEARCH_DONE = 1
ROLE_NODE_DONE = 2


def _has_status(view: NodeView, color: Color, phase: int, rnd: int, role: int) -> bool:
    """Whether ``color`` posted the given STATUS on this board."""
    return any(
        s.kind == STATUS and s.color == color and s.payload == (phase, rnd, role)
        for s in view.signs
    )


def _round_done_colors(view: NodeView, phase: int, rnd: int) -> Set[Color]:
    return {
        s.color
        for s in view.signs
        if s.kind == ROUND_DONE and s.payload == (phase, rnd) and s.color is not None
    }


def _match_present(view: NodeView, phase: int, rnd: int) -> bool:
    return any(
        s.kind == MATCH and s.payload == (phase, rnd) for s in view.signs
    )


def _leader_sign(view: NodeView) -> Optional[Color]:
    for s in view.signs:
        if s.kind == LEADER_ANNOUNCE:
            return s.color
    return None


class ElectAgent(Agent):
    """An agent running protocol ELECT.

    The constructor takes only the color (plus optional private rng); all
    knowledge of the network is acquired at run time, as the paper's
    *generic* protocols require.  ``map_strategy`` selects the MAP-DRAWING
    traversal: ``"dfs"`` (the paper's whiteboard DFS, default) or
    ``"frontier"`` (nearest-frontier exploration — same map, usually fewer
    moves; see ablation A4).

    ``matching`` is **test-only** plumbing for the adversarial fuzzer:
    ``"atomic"`` (default) uses the paper's one-slot ``TryAcquire`` race
    for AGENT-REDUCE matching; ``"toctou"`` deliberately replaces it with
    a non-atomic read-then-write, reintroducing the time-of-check/
    time-of-use race the atomic acquisition exists to prevent.  Under most
    schedules the broken variant still works; under fine-grained
    interleavings two searchers both claim the same waiter and the
    round's readback fails loudly.  The fuzzer acceptance test proves the
    interleaving fuzzer finds such a schedule and ddmin shrinks it.
    """

    def __init__(
        self, *args, map_strategy: str = "dfs", matching: str = "atomic", **kwargs
    ):
        super().__init__(*args, **kwargs)
        if map_strategy not in ("dfs", "frontier"):
            raise ProtocolError(f"unknown map strategy {map_strategy!r}")
        if matching not in ("atomic", "toctou"):
            raise ProtocolError(f"unknown matching mode {matching!r}")
        self.map_strategy = map_strategy
        self.matching = matching

    # ------------------------------------------------------------------
    # Top level
    # ------------------------------------------------------------------

    def protocol(self, start: NodeView) -> ProtocolGen:
        # Phase spans (DESIGN §8.3): the clock attributes the agent's wall
        # time between phase transitions to the four ELECT phases.  The
        # runtime injects its registry as ``obs_registry`` when metrics are
        # enabled and closes the clock when the agent terminates; against a
        # disabled registry every call below is a no-op.
        self.obs_clock = PhaseClock(
            registry=getattr(self, "obs_registry", None),
            agent=self.color.name or "?",
        )
        self.obs_clock.enter(MAP_DRAWING)
        # Checkpoint hook: our own dfs-visited mark on the start view means
        # this protocol instance was restarted by the watchdog after a crash
        # — the whiteboards *are* the checkpoint.  MAP-DRAWING re-enters
        # idempotently (deterministic port order revisits the old numbering)
        # and every later stage keys off persistent signs, so the restarted
        # run resumes the same election.  The Log is purely diagnostic.
        if any(
            s.kind == DFS_VISITED and s.color == self.color
            for s in start.signs
        ):
            yield Log("restart-from-checkpoint", ())
        drawer = draw_map if self.map_strategy == "dfs" else draw_map_frontier
        local_map: LocalMap = yield from drawer(self.color, start)
        self._map = local_map
        self._nav = Navigator(local_map)
        self.obs_clock.enter(COMPUTE_ORDER)
        structure = compute_class_structure(
            local_map.network, local_map.bicoloring()
        )
        schedule = build_schedule(structure.sizes, structure.num_agent_classes)
        self._structure = structure
        self._schedule = schedule

        early = self._check_feasibility(local_map, structure, schedule)
        if early is not None:
            # Every agent reaches this verdict from its own (isomorphic)
            # map; no announcement traversal is needed.
            return early

        my_class = structure.class_of_node(local_map.home)
        agent_classes = structure.agent_classes

        if len(agent_classes[0]) == 1 and my_class == 0:
            # |C_1| = 1: this agent is the leader outright (the schedule has
            # no phases starting from a singleton D).
            return (yield from self._become_leader())

        if my_class >= 2:
            join_phase = schedule.phase_for_agent_class(my_class)
            if join_phase < 0:
                # The reduction reaches |D| = 1 before this class would be
                # activated: just await the leader's announcement.
                return (yield from self._await_announcement())
            incoming = self._phase_by_id(join_phase).incoming
            active = yield from self._await_activation(join_phase, incoming)
            start_phase = join_phase
        elif my_class == 1:
            # C_2 joins phase 1 with D = C_1 (both known from the map).
            if not schedule.phases or schedule.phases[0].kind != "agent":
                # Happens only if |C_1| == 1, handled above; defensive.
                return (yield from self._await_announcement())
            active = set(agent_classes[0])
            start_phase = 1
        else:  # my_class == 0
            active = set(agent_classes[0])
            start_phase = 1

        survivor = yield from self._run_phases(start_phase, active)
        if survivor is None:
            return (yield from self._await_announcement())
        if len(survivor) != 1 or self._map.home not in survivor:
            raise ProtocolError("phase loop ended without a unique survivor")
        return (yield from self._become_leader())

    def _check_feasibility(
        self,
        local_map: LocalMap,
        structure: ClassStructure,
        schedule: Schedule,
    ) -> Optional[AgentReport]:
        """Early-verdict hook run right after COMPUTE & ORDER.

        The generic protocol declares failure iff the gcd condition fails
        (Theorem 3.1); the Cayley variant overrides this with the
        Theorem 4.1 criteria.  Returning ``None`` proceeds to the
        reduction stages.
        """
        if not schedule.succeeds:
            return AgentReport(verdict=Verdict.FAILED)
        return None

    # ------------------------------------------------------------------
    # Phase driver
    # ------------------------------------------------------------------

    def _phase_by_id(self, phase_id: int) -> PhaseSpec:
        for spec in self._schedule.phases:
            if spec.phase_id == phase_id:
                return spec
        raise ProtocolError(f"no phase {phase_id} in schedule")

    def _run_phases(self, start_phase: int, active: Set[int]) -> ProtocolGen:
        """Run phases from ``start_phase`` while this agent stays active.

        ``active`` is the set of *map home nodes* of the current active set
        D (this agent included).  Returns the final singleton survivor set
        if this agent is the survivor, else ``None`` (agent went passive).
        """
        for spec in self._schedule.phases:
            if spec.phase_id < start_phase:
                continue
            if len(active) != spec.incoming:
                raise ProtocolError(
                    f"active set size {len(active)} != scheduled {spec.incoming}"
                )
            yield Log(
                "phase-start",
                (spec.phase_id, 0 if spec.kind == "agent" else 1, len(active)),
            )
            self.obs_clock.enter(
                AGENT_REDUCE if spec.kind == "agent" else NODE_REDUCE
            )
            if spec.kind == "agent":
                if spec.phase_id >= 2:
                    yield from self._activate_class(spec)
                active = yield from self._agent_phase(spec, active)
            else:
                active = yield from self._node_phase(spec, active)
            if active is None or self._map.home not in active:
                return None
        return active

    # ------------------------------------------------------------------
    # Activation of later agent classes
    # ------------------------------------------------------------------

    def _activate_class(self, spec: PhaseSpec) -> ProtocolGen:
        """Write ACTIVATE(phase) on every home of the joining class."""
        targets = set(self._structure.classes[spec.class_index])

        def visit(node: int, view: NodeView) -> ProtocolGen:
            yield Write(Sign(kind=ACTIVATE, color=self.color, payload=(spec.phase_id,)))
            return None

        yield from self._nav.tour(visit=visit, only=lambda v: v in targets)
        return None

    def _await_activation(self, phase_id: int, incoming: int) -> ProtocolGen:
        """Block at home until ``incoming`` distinct ACTIVATE colors arrive.

        Returns the incoming active set D as map home nodes (via the colors
        of the activation signs and the map's home-base registry).
        """
        self.obs_clock.enter(AWAIT)

        def ready(view: NodeView) -> bool:
            colors = {
                s.color
                for s in view.signs
                if s.kind == ACTIVATE
                and s.payload == (phase_id,)
                and s.color is not None
            }
            return len(colors) >= incoming

        view = yield WaitUntil(ready, reason=f"activation for phase {phase_id}")
        colors = {
            s.color
            for s in view.signs
            if s.kind == ACTIVATE and s.payload == (phase_id,)
        }
        return {self._map.homebase_node_of(c) for c in colors}

    # ------------------------------------------------------------------
    # AGENT-REDUCE (Figure 4)
    # ------------------------------------------------------------------

    def _agent_phase(self, spec: PhaseSpec, incoming: Set[int]) -> ProtocolGen:
        """One AGENT-REDUCE phase.  Returns the survivor set (final S) if
        this agent survives, or ``None`` if it became passive."""
        phase = spec.phase_id
        joining = set(self._structure.classes[spec.class_index])
        me = self._map.home

        if spec.incoming <= spec.class_size:
            searchers, waiters = set(incoming), set(joining)
        else:
            searchers, waiters = set(joining), set(incoming)

        i_search = me in searchers
        i_wait = me in waiters
        if not (i_search or i_wait):
            raise ProtocolError("agent entered a phase it does not belong to")

        for rnd_idx, rnd in enumerate(spec.agent_rounds, start=1):
            if len(searchers) != rnd.searchers or len(waiters) != rnd.waiters:
                raise ProtocolError("role sets diverged from the schedule")
            yield Log(
                "agent-round",
                (phase, rnd_idx, len(searchers), len(waiters), 1 if i_search else 0),
            )
            if i_search:
                matched_set = yield from self._search_round(
                    phase, rnd_idx, searchers, waiters
                )
            else:
                got_matched = yield from self._wait_round(
                    phase, rnd_idx, rnd.searchers
                )
                if got_matched:
                    # Matched waiting agents turn passive once visited by
                    # every searcher (== all ROUND_DONE signs present).
                    return None
                matched_set = None  # unknown to a still-waiting agent

            if rnd.swap:
                if i_search:
                    new_searchers = waiters - matched_set
                    new_waiters = set(searchers)
                    i_search, i_wait = False, True
                else:
                    # I was waiting, unmatched: I become a searcher.  My new
                    # waiting set is exactly the old searcher set.
                    new_searchers = None  # filled below; I know I belong
                    new_waiters = set(searchers)
                    i_search, i_wait = True, False
                    # Reconstruct my co-searchers lazily: they are the old
                    # waiters minus the matched set, which is readable from
                    # the old waiting homes' boards.
                    matched_set = yield from self._read_matches(
                        phase, rnd_idx, waiters
                    )
                    new_searchers = waiters - matched_set
                searchers, waiters = new_searchers, new_waiters
            else:
                if i_search:
                    waiters = waiters - matched_set
                else:
                    # Still waiting; the searcher set is unchanged and the
                    # shrunken waiting set is irrelevant to a waiter (it
                    # only ever counts ROUND_DONE colors).  Track lazily.
                    matched_set = yield from self._read_matches(
                        phase, rnd_idx, waiters
                    )
                    waiters = waiters - matched_set

        # Sizes are now equal; final S survives, final W turns passive.
        if i_search:
            if me not in searchers:
                raise ProtocolError("searcher lost itself from its role set")
            return set(searchers)
        return None

    def _search_round(
        self,
        phase: int,
        rnd: int,
        searchers: Set[int],
        waiters: Set[int],
    ) -> ProtocolGen:
        """Execute one round as a searcher.  Returns the matched set P."""
        me = self._map.home
        matched_holder = {"done": False}

        def match_visit(node: int, view: NodeView) -> ProtocolGen:
            owner = self._map.homebases[node]

            def posted(v: NodeView) -> bool:
                return _has_status(v, owner, phase, rnd, ROLE_WAITING)

            yield WaitUntil(posted, reason=f"waiting status p{phase} r{rnd}")
            if not matched_holder["done"]:
                if self.matching == "atomic":
                    ok = yield TryAcquire(
                        kind=MATCH, payload=(phase, rnd), capacity=1
                    )
                else:
                    # Test-only TOCTOU variant: the check and the write are
                    # separate atomic actions, so another searcher can slip
                    # a MATCH in between and this round over-matches.
                    fresh = yield Read()
                    ok = not _match_present(fresh, phase, rnd)
                    if ok:
                        yield Write(
                            Sign(
                                kind=MATCH,
                                color=self.color,
                                payload=(phase, rnd),
                            )
                        )
                if ok:
                    matched_holder["done"] = True
            return None

        yield from self._nav.tour(visit=match_visit, only=lambda v: v in waiters)
        if not matched_holder["done"]:
            raise ProtocolError(
                "searcher finished its pass unmatched; violates |W| >= |S|"
            )

        # Announce completion at home, then await every other searcher.
        yield from self._nav.goto(me)
        yield Write(
            Sign(kind=STATUS, color=self.color, payload=(phase, rnd, ROLE_SEARCH_DONE))
        )

        def sync_visit(node: int, view: NodeView) -> ProtocolGen:
            owner = self._map.homebases[node]

            def done(v: NodeView) -> bool:
                return _has_status(v, owner, phase, rnd, ROLE_SEARCH_DONE)

            yield WaitUntil(done, reason=f"searcher sync p{phase} r{rnd}")
            return None

        others = searchers - {me}
        if others:
            yield from self._nav.tour(visit=sync_visit, only=lambda v: v in others)

        # All matches are final: read P and stamp ROUND_DONE everywhere.
        matched: Set[int] = set()

        def readback_visit(node: int, view: NodeView) -> ProtocolGen:
            if _match_present(view, phase, rnd):
                matched.add(node)
            yield Write(Sign(kind=ROUND_DONE, color=self.color, payload=(phase, rnd)))
            return None

        yield from self._nav.tour(visit=readback_visit, only=lambda v: v in waiters)
        if len(matched) != len(searchers):
            raise ProtocolError(
                f"round matched {len(matched)} agents, expected {len(searchers)}"
            )
        yield from self._nav.goto(me)
        return matched

    def _wait_round(self, phase: int, rnd: int, num_searchers: int) -> ProtocolGen:
        """Execute one round as a waiting agent (at home).

        Returns True if this agent was matched this round.
        """
        yield Write(
            Sign(kind=STATUS, color=self.color, payload=(phase, rnd, ROLE_WAITING))
        )

        def round_over(view: NodeView) -> bool:
            return len(_round_done_colors(view, phase, rnd)) >= num_searchers

        view = yield WaitUntil(round_over, reason=f"round end p{phase} r{rnd}")
        return _match_present(view, phase, rnd)

    def _read_matches(self, phase: int, rnd: int, waiters: Set[int]) -> ProtocolGen:
        """Tour the waiting homes and read which were matched in a round."""
        matched: Set[int] = set()

        def visit(node: int, view: NodeView) -> ProtocolGen:
            if _match_present(view, phase, rnd):
                matched.add(node)
            return None
            yield  # pragma: no cover - makes this a generator

        yield from self._nav.tour(visit=visit, only=lambda v: v in waiters)
        yield from self._nav.goto(self._map.home)
        return matched

    # ------------------------------------------------------------------
    # NODE-REDUCE (Section 3.3.2)
    # ------------------------------------------------------------------

    def _node_phase(self, spec: PhaseSpec, incoming: Set[int]) -> ProtocolGen:
        """One NODE-REDUCE phase.  Returns the survivor set, or ``None``."""
        phase = spec.phase_id
        me = self._map.home
        active = set(incoming)
        selected = set(self._structure.classes[spec.class_index])

        for rnd_idx, rnd in enumerate(spec.node_rounds, start=1):
            if len(active) != rnd.agents or len(selected) != rnd.nodes:
                raise ProtocolError("node phase sets diverged from schedule")
            yield Log(
                "node-round",
                (phase, rnd_idx, len(active), len(selected), rnd.case),
            )

            acquired_mine: Set[int] = set()
            capacity = rnd.q if rnd.case == 1 else 1
            quota = 1 if rnd.case == 1 else rnd.q

            def acquire_visit(node: int, view: NodeView) -> ProtocolGen:
                if len(acquired_mine) < quota:
                    ok = yield TryAcquire(
                        kind=NODE_ACQUIRED,
                        payload=(phase, rnd_idx),
                        capacity=capacity,
                    )
                    if ok:
                        acquired_mine.add(node)
                return None

            yield from self._nav.tour(
                visit=acquire_visit, only=lambda v: v in selected
            )
            if rnd.case == 2 and len(acquired_mine) != rnd.q:
                raise ProtocolError(
                    f"case-2 agent acquired {len(acquired_mine)} of {rnd.q} nodes"
                )

            # Round-end synchronization among the active agents.
            yield from self._nav.goto(me)
            yield Write(
                Sign(
                    kind=STATUS,
                    color=self.color,
                    payload=(phase, rnd_idx, ROLE_NODE_DONE),
                )
            )

            def sync_visit(node: int, view: NodeView) -> ProtocolGen:
                owner = self._map.homebases[node]

                def done(v: NodeView) -> bool:
                    return _has_status(v, owner, phase, rnd_idx, ROLE_NODE_DONE)

                yield WaitUntil(done, reason=f"node sync p{phase} r{rnd_idx}")
                return None

            others = active - {me}
            if others:
                yield from self._nav.tour(
                    visit=sync_visit, only=lambda v: v in others
                )

            # Read the round's acquisition outcome.
            acquirer_colors: Set[Color] = set()
            taken_nodes: Set[int] = set()

            def outcome_visit(node: int, view: NodeView) -> ProtocolGen:
                for s in view.signs:
                    if s.kind == NODE_ACQUIRED and s.payload == (phase, rnd_idx):
                        if s.color is not None:
                            acquirer_colors.add(s.color)
                        taken_nodes.add(node)
                return None
                yield  # pragma: no cover

            yield from self._nav.tour(
                visit=outcome_visit, only=lambda v: v in selected
            )

            if rnd.case == 1:
                acquirer_homes = {
                    self._map.homebase_node_of(c) for c in acquirer_colors
                }
                if len(acquirer_homes) != rnd.agents - rnd.rho:
                    raise ProtocolError("case-1 acquisition count mismatch")
                active -= acquirer_homes
                if acquired_mine:
                    yield from self._nav.goto(me)
                    return None
            else:
                if len(taken_nodes) != rnd.nodes - rnd.rho:
                    raise ProtocolError("case-2 acquisition count mismatch")
                selected -= taken_nodes

        yield from self._nav.goto(me)
        return active

    # ------------------------------------------------------------------
    # Terminal states
    # ------------------------------------------------------------------

    def _become_leader(self) -> ProtocolGen:
        """Tour the whole network announcing leadership, then finish."""
        self.obs_clock.enter(ANNOUNCE)

        def visit(node: int, view: NodeView) -> ProtocolGen:
            yield Write(Sign(kind=LEADER_ANNOUNCE, color=self.color))
            return None

        yield from self._nav.tour(visit=visit)
        return AgentReport(verdict=Verdict.LEADER, leader_color=self.color)

    def _await_announcement(self) -> ProtocolGen:
        """Wait at home for the leader's announcement sign."""
        self.obs_clock.enter(AWAIT)
        yield from self._nav.goto(self._map.home)

        def announced(view: NodeView) -> bool:
            return _leader_sign(view) is not None

        view = yield WaitUntil(announced, reason="leader announcement")
        leader = _leader_sign(view)
        return AgentReport(verdict=Verdict.DEFEATED, leader_color=leader)
