"""Placements: the injection ``p : A → V(G)`` and instance helpers."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence, Tuple

from ..colors import Color, ColorSpace
from ..errors import PlacementError
from ..graphs.network import AnonymousNetwork


@dataclass(frozen=True)
class Placement:
    """The home-bases of the agents, as a tuple of distinct node indices.

    An instance of the election problem is a pair ``(G, p)``; this class is
    the ``p``.  Agent *colors* are minted at run time (they are irrelevant
    to feasibility — only distinctness matters — and minting fresh colors
    per run doubles as a recoloring-invariance stressor).
    """

    homes: Tuple[int, ...]

    def __post_init__(self) -> None:
        if not self.homes:
            raise PlacementError("a placement needs at least one agent")
        if len(set(self.homes)) != len(self.homes):
            raise PlacementError("home-bases must be pairwise distinct")

    @staticmethod
    def of(homes: Iterable[int]) -> "Placement":
        return Placement(tuple(homes))

    @property
    def num_agents(self) -> int:
        return len(self.homes)

    def bicoloring(self, network: AnonymousNetwork) -> List[int]:
        """Black(1)/white(0) node coloring: black = home-base (Section 2)."""
        for h in self.homes:
            if not 0 <= h < network.num_nodes:
                raise PlacementError(f"home {h} outside the network")
        black = set(self.homes)
        return [1 if v in black else 0 for v in network.nodes()]

    def fresh_colors(self, space: Optional[ColorSpace] = None) -> List[Color]:
        """Mint one distinct color per agent."""
        space = space or ColorSpace(prefix="agent")
        return space.fresh_many(self.num_agents)


def all_placements(
    network: AnonymousNetwork, num_agents: int
) -> List[Placement]:
    """Every placement of ``num_agents`` agents, up to agent renaming.

    Because agents are interchangeable up to their (incomparable) colors,
    placements are node *subsets*; enumeration is deliberately exhaustive
    (used for the effectualness sweeps on small graphs).
    """
    import itertools

    if not 1 <= num_agents <= network.num_nodes:
        raise PlacementError(
            f"cannot place {num_agents} agents on {network.num_nodes} nodes"
        )
    return [
        Placement(combo)
        for combo in itertools.combinations(network.nodes(), num_agents)
    ]
