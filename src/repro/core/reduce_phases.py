"""Reduction schedules: the deterministic skeleton of AGENT-REDUCE/NODE-REDUCE.

The *sizes* involved in every phase and round of protocol ELECT are a pure
function of the class sizes — only the *identities* of matched agents and
acquired nodes are resolved at run time by whiteboard races.  This module
computes those deterministic tables:

* :func:`agent_reduce_rounds` — the subtractive-Euclid round table of
  AGENT-REDUCE (Figure 4): a sequence of ``(|S|, |W|, swap)`` records ending
  when ``|S| == |W| == gcd``.
* :func:`node_reduce_rounds` — the division-with-positive-remainder round
  table of NODE-REDUCE (Section 3.3.2): alternating Case 1 (more agents
  than nodes: nodes get capacity ``q``, ``ρ`` agents survive) and Case 2
  (fewer agents: each agent takes ``q`` nodes, ``ρ`` nodes stay selected).
* :func:`build_schedule` — the full phase script of ELECT (Figure 3): which
  class joins at each phase, with its round table and the running
  ``d_i = gcd(|C_1|,…,|C_{i+1}|)``.

Every ELECT agent computes the same schedule from its map; the paper's
``Theorem 3.1`` invariant — after phase *i* the active count equals
``gcd(|C_1|,…,|C_{i+1}|)`` — is checked structurally by the constructors
here and re-checked behaviorally by the tests.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import List, Sequence, Tuple

from ..errors import ProtocolError
from ..obs.spans import AGENT_REDUCE, NODE_REDUCE, span


@dataclass(frozen=True)
class AgentRound:
    """One AGENT-REDUCE round.

    ``searchers`` / ``waiters`` are the sizes *entering* the round; exactly
    ``searchers`` waiting agents get matched; ``swap`` tells whether the
    role sets exchange for the next round (the Euclid step type).
    """

    searchers: int
    waiters: int
    swap: bool


def agent_reduce_rounds(a: int, b: int) -> Tuple[List[AgentRound], int]:
    """Round table for AGENT-REDUCE on set sizes ``(a, b)``.

    ``a`` is the incoming active set ``D``, ``b`` the newly joined class
    ``C``.  Initially ``S`` is the smaller set (ties keep ``D`` searching,
    which makes the no-round case return ``D`` itself).  Returns the rounds
    and the final size, which always equals ``gcd(a, b)``.
    """
    if a < 1 or b < 1:
        raise ProtocolError(f"set sizes must be positive, got ({a}, {b})")
    s, w = (a, b) if a <= b else (b, a)
    rounds: List[AgentRound] = []
    while s < w:
        matched = s  # every searcher matches exactly one waiting agent
        remaining = w - matched
        swap = not (remaining >= s)
        rounds.append(AgentRound(searchers=s, waiters=w, swap=swap))
        if swap:
            s, w = remaining, s
        else:
            w = remaining
    if s != math.gcd(a, b):
        raise ProtocolError(
            f"round table for ({a},{b}) ended at {s} != gcd={math.gcd(a, b)}"
        )
    return rounds, s


@dataclass(frozen=True)
class NodeRound:
    """One NODE-REDUCE round.

    ``agents``/``nodes`` enter the round.  Case 1 (``agents > nodes``):
    each node accepts ``q`` acquirers; agents that acquire turn passive and
    ``rho`` agents survive.  Case 2 (``agents < nodes``): each agent takes
    exactly ``q`` nodes; the ``rho`` untaken nodes stay selected.
    """

    agents: int
    nodes: int
    case: int  # 1 or 2
    q: int
    rho: int


def _division_positive_remainder(x: int, y: int) -> Tuple[int, int]:
    """``x = q·y + ρ`` with ``0 < ρ ≤ y`` (the paper's convention)."""
    q, rho = divmod(x, y)
    if rho == 0:
        q -= 1
        rho = y
    return q, rho


def node_reduce_rounds(a: int, b: int) -> Tuple[List[NodeRound], int]:
    """Round table for NODE-REDUCE with ``a`` agents and ``b`` nodes.

    Returns the rounds and the final active-agent count ``gcd(a, b)``.
    """
    if a < 1 or b < 1:
        raise ProtocolError(f"sizes must be positive, got ({a}, {b})")
    alpha, beta = a, b
    rounds: List[NodeRound] = []
    while alpha != beta:
        if alpha > beta:
            q, rho = _division_positive_remainder(alpha, beta)
            rounds.append(NodeRound(alpha, beta, case=1, q=q, rho=rho))
            alpha = rho
        else:
            q, rho = _division_positive_remainder(beta, alpha)
            rounds.append(NodeRound(alpha, beta, case=2, q=q, rho=rho))
            beta = rho
    if alpha != math.gcd(a, b):
        raise ProtocolError(
            f"node round table for ({a},{b}) ended at {alpha} != gcd"
        )
    return rounds, alpha


@dataclass(frozen=True)
class PhaseSpec:
    """One phase of ELECT's reduction stages.

    ``kind`` is ``"agent"`` (AGENT-REDUCE against agent class
    ``class_index``) or ``"node"`` (NODE-REDUCE against node class
    ``class_index``).  ``incoming`` is ``|D|`` entering the phase and
    ``outgoing`` the guaranteed ``|D|`` after it.
    """

    phase_id: int
    kind: str
    class_index: int  # index into ClassStructure.classes
    incoming: int
    class_size: int
    outgoing: int
    agent_rounds: Tuple[AgentRound, ...] = field(default_factory=tuple)
    node_rounds: Tuple[NodeRound, ...] = field(default_factory=tuple)


@dataclass(frozen=True)
class Schedule:
    """The full deterministic script of ELECT for given class sizes."""

    phases: Tuple[PhaseSpec, ...]
    final_count: int
    sizes: Tuple[int, ...]
    num_agent_classes: int

    @property
    def succeeds(self) -> bool:
        """Whether ELECT will elect (``final_count == 1``)."""
        return self.final_count == 1

    def phase_for_agent_class(self, class_index: int) -> int:
        """The phase id at which agent class ``class_index`` joins, or -1.

        Classes 0 and 1 join at phase 1 (no activation signal needed);
        later classes join at the phase that reduces against them — if the
        schedule reaches them.
        """
        for spec in self.phases:
            if spec.kind == "agent" and spec.class_index == class_index:
                return spec.phase_id
        return -1


def build_schedule(sizes: Sequence[int], num_agent_classes: int) -> Schedule:
    """The phase script of Figure 3 for the given ordered class sizes.

    ``sizes`` lists ``|C_1|,…,|C_k|`` (agent classes first).  Phases are
    emitted while the running gcd exceeds 1 and classes remain, exactly as
    the two while-loops of Figure 3.
    """
    with span("build_schedule"):
        return _build_schedule(sizes, num_agent_classes)


def _build_schedule(sizes: Sequence[int], num_agent_classes: int) -> Schedule:
    if num_agent_classes < 1 or num_agent_classes > len(sizes):
        raise ProtocolError("invalid number of agent classes")
    phases: List[PhaseSpec] = []
    current = sizes[0]
    phase_id = 1
    for idx in range(1, num_agent_classes):
        if current == 1:
            break
        with span(AGENT_REDUCE, phase=str(phase_id), class_index=str(idx)):
            rounds, out = agent_reduce_rounds(current, sizes[idx])
        phases.append(
            PhaseSpec(
                phase_id=phase_id,
                kind="agent",
                class_index=idx,
                incoming=current,
                class_size=sizes[idx],
                outgoing=out,
                agent_rounds=tuple(rounds),
            )
        )
        current = out
        phase_id += 1
    for idx in range(num_agent_classes, len(sizes)):
        if current == 1:
            break
        with span(NODE_REDUCE, phase=str(phase_id), class_index=str(idx)):
            rounds, out = node_reduce_rounds(current, sizes[idx])
        phases.append(
            PhaseSpec(
                phase_id=phase_id,
                kind="node",
                class_index=idx,
                incoming=current,
                class_size=sizes[idx],
                outgoing=out,
                node_rounds=tuple(rounds),
            )
        )
        current = out
        phase_id += 1
    expected = math.gcd(*sizes) if len(sizes) > 1 else sizes[0]
    if current == 1 and expected != 1:
        raise ProtocolError("schedule reached 1 but gcd of sizes exceeds 1")
    if current != 1 and current != expected:
        # The loops stop early only when current hits 1; otherwise they run
        # through every class, so the invariant of Theorem 3.1 applies.
        raise ProtocolError(
            f"schedule ended at {current}, expected gcd {expected}"
        )
    return Schedule(
        phases=tuple(phases),
        final_count=current,
        sizes=tuple(sizes),
        num_agent_classes=num_agent_classes,
    )


def euclid_pair_sequence(a: int, b: int) -> List[Tuple[int, int]]:
    """The (|S|, |W|) size pairs AGENT-REDUCE walks through (test oracle).

    The paper's Theorem 3.1 proof: "the sequence of pairs (|S|, |W|) is the
    sequence of pairs of integers obtained by computing gcd(|C|, |D|) using
    Euclid's algorithm".
    """
    rounds, final = agent_reduce_rounds(a, b)
    pairs = [(r.searchers, r.waiters) for r in rounds]
    pairs.append((final, final))
    return pairs
