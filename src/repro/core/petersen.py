"""The Petersen counterexample protocol (paper Section 4, Figure 5).

Two agents sit on *adjacent* nodes of the Petersen graph.  The equivalence
classes have sizes (2, 4, 4), so ``gcd = 2`` and protocol ELECT declares
failure — yet this bespoke protocol elects, proving ELECT is not effectual
on arbitrary (here: vertex-transitive non-Cayley) graphs.

The paper's steps for each of the two agents:

1. wake the other agent (map drawing does);
2. go to a neighbor of your home-base distinct from the other agent's
   home-base, and mark its whiteboard;
3. find which of the other agent's neighbors *it* marked;
4. race to acquire the unique common neighbor ``x`` of the two marked
   nodes (Petersen is strongly regular with μ = 1: non-adjacent nodes have
   exactly one common neighbor, and the two marks are never adjacent);
5. the acquirer of ``x`` is the leader.

Asynchrony hardening (documented deviation): after marking, each agent also
posts a ``marked`` status on the *other agent's home-base*, so step 3 can
block on a single whiteboard instead of busy-polling the neighbor set; this
adds O(1) signs and changes nothing about who can win the race.
"""

from __future__ import annotations

from typing import List, Optional, Set

from ..colors import Color
from ..errors import ProtocolError
from ..sim.actions import NodeView, TryAcquire, WaitUntil, Write
from ..sim.agent import Agent, ProtocolGen
from ..sim.signs import MARK, STATUS, Sign
from ..sim.traversal import Navigator, draw_map
from .result import AgentReport, Verdict

MARKED_STATUS = 100  # role code for "I have placed my mark"
ACQUIRE_X = "acquire-x"


class PetersenDuelAgent(Agent):
    """One of the two duellists of the Figure 5 counterexample."""

    def protocol(self, start: NodeView) -> ProtocolGen:
        local_map = yield from draw_map(self.color, start)
        nav = Navigator(local_map)
        net = local_map.network

        if net.num_nodes != 10 or net.degree_sequence() != (3,) * 10:
            raise ProtocolError("this protocol is specific to the Petersen graph")
        homes = sorted(local_map.homebases)
        if len(homes) != 2:
            raise ProtocolError("this protocol is specific to two agents")
        me = local_map.home
        other = next(h for h in homes if h != me)
        if other not in net.neighbors(me):
            raise ProtocolError("the two home-bases must be adjacent")

        # Step 2: mark a neighbor of my home distinct from the other's home.
        candidates = [v for v in net.neighbors(me) if v != other]
        my_mark = candidates[self.rng.randrange(len(candidates))]
        yield from nav.goto(my_mark)
        yield Write(Sign(kind=MARK, color=self.color))

        # Hardening: tell the other agent (at its home-base) that my mark is
        # placed, then wait at my own home for its symmetric notice.
        yield from nav.goto(other)
        yield Write(Sign(kind=STATUS, color=self.color, payload=(0, 0, MARKED_STATUS)))
        yield from nav.goto(me)
        other_color = local_map.homebases[other]

        def other_marked(view: NodeView) -> bool:
            return any(
                s.kind == STATUS
                and s.color == other_color
                and s.payload == (0, 0, MARKED_STATUS)
                for s in view.signs
            )

        yield WaitUntil(other_marked, reason="other agent's mark notice")

        # Step 3: find which neighbor of the other's home carries its mark.
        its_mark: Optional[int] = None
        for v in net.neighbors(other):
            if v == me:
                continue
            view = yield from nav.goto(v)
            if any(s.kind == MARK and s.color == other_color for s in view.signs):
                its_mark = v
                break
        if its_mark is None:
            raise ProtocolError("the other agent's mark was not found")

        # Step 4: the unique common neighbor of the two marked nodes.
        common = set(net.neighbors(my_mark)) & set(net.neighbors(its_mark))
        if len(common) != 1:
            raise ProtocolError(
                f"expected a unique common neighbor, found {sorted(common)}"
            )
        x = common.pop()
        yield from nav.goto(x)
        won = yield TryAcquire(kind=ACQUIRE_X, payload=(), capacity=1)

        # Step 5: winner leads.  The loser reads the winner's color straight
        # off the acquisition sign on x's whiteboard.
        if won:
            yield from nav.goto(me)
            return AgentReport(verdict=Verdict.LEADER, leader_color=self.color)
        view = yield from nav.goto(x)
        winner: Optional[Color] = None
        for s in view.signs:
            if s.kind == ACQUIRE_X:
                winner = s.color
        if winner is None:
            raise ProtocolError("lost the race but found no winner sign")
        yield from nav.goto(me)
        return AgentReport(verdict=Verdict.DEFEATED, leader_color=winner)
