"""The paper's core contribution: qualitative leader election protocols."""

from .cayley_elect import CayleyElectAgent
from .elect import ElectAgent
from .feasibility import (
    Classification,
    ElectPrediction,
    Feasibility,
    SymmetryCertificate,
    TranslationCertificate,
    cayley_election_possible,
    classify,
    elect_prediction,
    gcd_of_sizes,
    natural_labeling_certificate,
    theorem21_certificate,
    translation_certificates,
)
from .ordering import ClassStructure, compute_class_structure
from .petersen import PetersenDuelAgent
from .placement import Placement, all_placements
from .quantitative import QuantitativeAgent
from .reduce_phases import (
    AgentRound,
    NodeRound,
    PhaseSpec,
    Schedule,
    agent_reduce_rounds,
    build_schedule,
    euclid_pair_sequence,
    node_reduce_rounds,
)
from .result import AgentReport, ElectionOutcome, Verdict, aggregate
from .runner import (
    run_cayley_elect,
    run_elect,
    run_election,
    run_petersen_duel,
    run_quantitative,
)

__all__ = [
    "ElectAgent",
    "CayleyElectAgent",
    "QuantitativeAgent",
    "PetersenDuelAgent",
    "Placement",
    "all_placements",
    "ClassStructure",
    "compute_class_structure",
    "AgentRound",
    "NodeRound",
    "PhaseSpec",
    "Schedule",
    "agent_reduce_rounds",
    "node_reduce_rounds",
    "build_schedule",
    "euclid_pair_sequence",
    "AgentReport",
    "ElectionOutcome",
    "Verdict",
    "aggregate",
    "run_election",
    "run_elect",
    "run_cayley_elect",
    "run_quantitative",
    "run_petersen_duel",
    "Feasibility",
    "Classification",
    "ElectPrediction",
    "TranslationCertificate",
    "SymmetryCertificate",
    "classify",
    "elect_prediction",
    "translation_certificates",
    "cayley_election_possible",
    "theorem21_certificate",
    "natural_labeling_certificate",
    "gcd_of_sizes",
]
