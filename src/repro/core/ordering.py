"""COMPUTE & ORDER: equivalence classes of ``(G, p)`` in the ``≺`` order.

Every ELECT agent runs this computation on its privately-drawn map.  The
output is *physically canonical*: class membership of a node is determined
by the isomorphism class of its surrounding (Lemma 3.1), and the class
order is the canonical-key order — so agents with different private node
numberings of the same network agree on which physical node lies in which
class, and on the class order.  That is exactly the paper's "all agents
agree on the classes … and on the order ≺".

Per the protocol (Figure 3), the ``ℓ`` classes containing home-bases come
first (in ``≺`` order among themselves), followed by the node-only classes
(in ``≺`` order among themselves).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Sequence, Tuple

from ..errors import GraphError
from ..graphs.automorphisms import equivalence_classes
from ..graphs.network import AnonymousNetwork
from ..graphs.surroundings import order_equivalence_classes


@dataclass(frozen=True)
class ClassStructure:
    """The ordered equivalence classes of a bi-colored instance.

    Attributes
    ----------
    classes:
        All classes, agent classes first: ``classes[:num_agent_classes]``
        are ``C_1 ≺ … ≺ C_ℓ`` (contain home-bases), the rest are
        ``C_{ℓ+1} ≺ … ≺ C_k``.
    num_agent_classes:
        ``ℓ``.
    """

    classes: Tuple[Tuple[int, ...], ...]
    num_agent_classes: int

    @property
    def num_classes(self) -> int:
        return len(self.classes)

    @property
    def agent_classes(self) -> Tuple[Tuple[int, ...], ...]:
        return self.classes[: self.num_agent_classes]

    @property
    def node_classes(self) -> Tuple[Tuple[int, ...], ...]:
        return self.classes[self.num_agent_classes :]

    @property
    def sizes(self) -> Tuple[int, ...]:
        return tuple(len(c) for c in self.classes)

    @property
    def gcd(self) -> int:
        """``gcd(|C_1|, …, |C_k|)`` — ELECT's feasibility threshold."""
        return math.gcd(*self.sizes) if len(self.sizes) > 1 else self.sizes[0]

    def class_of_node(self, node: int) -> int:
        """Index (into ``classes``) of the class containing ``node``."""
        for idx, cls in enumerate(self.classes):
            if node in cls:
                return idx
        raise GraphError(f"node {node} is in no class")


def compute_class_structure(
    network: AnonymousNetwork,
    bicoloring: Sequence[int],
) -> ClassStructure:
    """Classes of Definition 2.1 in the order protocol ELECT uses.

    ``bicoloring[v]`` is 1 for home-bases (black), 0 otherwise.  Because
    color-preserving automorphisms map black to black, every class is
    monochromatic; classes are split into agent classes and node classes
    accordingly.
    """
    raw = equivalence_classes(network, bicoloring)
    ordered = order_equivalence_classes(network, raw, bicoloring)
    agent_classes = [c for c in ordered if bicoloring[c[0]] == 1]
    node_classes = [c for c in ordered if bicoloring[c[0]] == 0]
    for cls in ordered:
        colors = {bicoloring[v] for v in cls}
        if len(colors) != 1:
            raise GraphError(
                f"class {cls} mixes home-bases and plain nodes; "
                "equivalence classes must be monochromatic"
            )
    classes = tuple(tuple(c) for c in agent_classes + node_classes)
    return ClassStructure(classes=classes, num_agent_classes=len(agent_classes))
