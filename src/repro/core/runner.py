"""One-call election runners: wire protocol agents into the runtime.

These helpers are the primary public entry points: build agents with fresh
colors, place them, run the asynchronous simulation, and aggregate the
per-agent reports into a validated :class:`ElectionOutcome`.
"""

from __future__ import annotations

import random
from typing import Any, Callable, List, Optional, Sequence

from ..colors import Color, ColorSpace
from ..errors import PlacementError
from ..graphs.network import AnonymousNetwork
from ..obs import flight
from ..sim.agent import Agent
from ..sim.runtime import Simulation
from ..sim.scheduler import RandomScheduler, Scheduler
from .cayley_elect import CayleyElectAgent
from .elect import ElectAgent
from .petersen import PetersenDuelAgent
from .placement import Placement
from .quantitative import QuantitativeAgent
from .result import AgentReport, ElectionOutcome, aggregate

AgentFactory = Callable[[Color, random.Random], Agent]


def run_election(
    network: AnonymousNetwork,
    placement: Placement,
    agent_factory: AgentFactory,
    scheduler: Optional[Scheduler] = None,
    seed: int = 0,
    colors: Optional[Sequence[Color]] = None,
    trace: Optional[Any] = None,
    fault: Optional[Any] = None,
    watchdog: Optional[Any] = None,
    **sim_kwargs: Any,
) -> ElectionOutcome:
    """Run any election protocol on ``(G, p)`` and aggregate the outcome.

    Parameters
    ----------
    agent_factory:
        Called once per agent with ``(color, private_rng)``; must return an
        :class:`Agent` whose protocol finishes with an
        :class:`~repro.core.result.AgentReport`.
    scheduler:
        Interleaving adversary (default: :class:`RandomScheduler` seeded
        with ``seed``).
    colors:
        Explicit agent colors (default: fresh ones — also exercising
        recoloring invariance across runs).  Must match the placement's
        agent count exactly.
    trace:
        Optional :class:`~repro.trace.sinks.TraceSink` recording the run as
        a structured event stream (annotated with the agent type and seed).
    fault:
        Optional :class:`~repro.fault.plan.FaultPlan` compiled onto the
        run (crashes, stall windows, board faults).  A faulted run either
        completes, or fails loudly with a classified stall — never returns
        a silently wrong outcome (the fault campaign sweeps exactly this).
    watchdog:
        Optional :class:`~repro.fault.watchdog.Watchdog` supervising the
        run: blocked-too-long classification, checkpoint restarts within
        budget, :class:`~repro.errors.StallDetected` on exhaustion.
    """
    if colors is None:
        colors = placement.fresh_colors()
    elif len(colors) != placement.num_agents:
        raise PlacementError(
            f"got {len(colors)} colors for {placement.num_agents} agents "
            f"(placement homes {placement.homes}): colors must be "
            f"one-per-agent, in home order"
        )
    with flight.entrypoint_span(
        "run_election", seed, seed=seed, agents=placement.num_agents
    ) as fctx:
        agents = [
            agent_factory(color, random.Random(f"{seed}:{i}"))
            for i, color in enumerate(colors)
        ]
        if trace is not None:
            annotations = {
                "protocol_agent": type(agents[0]).__name__, "seed": seed
            }
            if fctx is not None:
                annotations["flight_trace_id"] = fctx.trace_id
                annotations["flight_span_id"] = fctx.span_id
            trace.annotate(annotations)
        sim = Simulation(
            network,
            list(zip(agents, placement.homes)),
            scheduler=scheduler or RandomScheduler(seed=seed),
            trace=trace,
            fault=fault,
            watchdog=watchdog,
            **sim_kwargs,
        )
        result = sim.run()
        reports: List[AgentReport] = []
        for r in result.results:
            if not isinstance(r, AgentReport):
                raise TypeError(f"agent returned {r!r}, expected AgentReport")
            reports.append(r)
        return aggregate(
            reports,
            total_moves=result.total_moves,
            total_accesses=result.total_accesses,
            steps=result.steps,
        )


def run_elect(
    network: AnonymousNetwork,
    placement: Placement,
    scheduler: Optional[Scheduler] = None,
    seed: int = 0,
    **sim_kwargs: Any,
) -> ElectionOutcome:
    """Run protocol ELECT (Figure 3) on ``(G, p)``."""
    return run_election(
        network,
        placement,
        lambda color, rng: ElectAgent(color, rng=rng),
        scheduler=scheduler,
        seed=seed,
        **sim_kwargs,
    )


def run_cayley_elect(
    network: AnonymousNetwork,
    placement: Placement,
    scheduler: Optional[Scheduler] = None,
    seed: int = 0,
    **sim_kwargs: Any,
) -> ElectionOutcome:
    """Run the effectual Cayley variant (Theorem 4.1) on ``(G, p)``."""
    return run_election(
        network,
        placement,
        lambda color, rng: CayleyElectAgent(color, rng=rng),
        scheduler=scheduler,
        seed=seed,
        **sim_kwargs,
    )


def run_quantitative(
    network: AnonymousNetwork,
    placement: Placement,
    labels: Optional[Sequence[int]] = None,
    scheduler: Optional[Scheduler] = None,
    seed: int = 0,
    **sim_kwargs: Any,
) -> ElectionOutcome:
    """Run the universal quantitative protocol (comparable integer labels)."""
    if labels is None:
        rng = random.Random(seed)
        labels = rng.sample(range(10 * placement.num_agents), placement.num_agents)
    labels = list(labels)
    if len(labels) != placement.num_agents:
        raise ValueError("one label per agent required")
    counter = iter(labels)
    return run_election(
        network,
        placement,
        lambda color, rng: QuantitativeAgent(color, label=next(counter), rng=rng),
        scheduler=scheduler,
        seed=seed,
        **sim_kwargs,
    )


def run_petersen_duel(
    network: AnonymousNetwork,
    placement: Placement,
    scheduler: Optional[Scheduler] = None,
    seed: int = 0,
    **sim_kwargs: Any,
) -> ElectionOutcome:
    """Run the Figure 5 bespoke protocol (two adjacent agents on Petersen)."""
    return run_election(
        network,
        placement,
        lambda color, rng: PetersenDuelAgent(color, rng=rng),
        scheduler=scheduler,
        seed=seed,
        **sim_kwargs,
    )
