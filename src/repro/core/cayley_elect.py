"""The effectual election protocol for Cayley graphs (Theorem 4.1).

The paper modifies ELECT so that, after MAP-DRAWING, each agent tests
whether its map is a Cayley graph ("time-consuming, but decidable") and, if
so, decides feasibility using *translation* classes instead of arbitrary
automorphism classes.

Concretely (see DESIGN.md §"Theorem 4.1 fidelity"):

* Because left-translations act **freely**, every translation class of a
  regular subgroup ``R ≤ Aut(G)`` has the same size
  ``d_R = |{γ ∈ R : γ(blacks) = blacks}|``, so the paper's
  ``gcd(|C_1|,…,|C_k|)`` for that subgroup is just ``d_R``.
* A Cayley graph may admit several non-conjugate regular subgroups whose
  ``d_R`` values *differ* (e.g. C₄ with two adjacent agents: ℤ₄ gives
  ``d = 1``, the Klein subgroup gives ``d = 2``).  Any subgroup with
  ``d_R > 1`` yields a Theorem 2.1 impossibility certificate via its
  natural labeling, so the agent declares failure if **any** regular
  subgroup does.
* When every regular subgroup has ``d_R = 1``, election is possible, and —
  as verified exhaustively by the Theorem 4.1 experiment (bench E8) — the
  generic gcd condition holds as well, so the agent proceeds with the
  ordinary ELECT reduction stages (whose class agreement is
  isomorphism-invariant and therefore unproblematic).  Should the two
  criteria ever diverge, the agent reports ``AMBIGUOUS`` instead of
  electing; the experiments assert this never fires.

The protocol is *generic*: a :class:`CayleyElectAgent` dropped on a
non-Cayley network reports ``NOT_CAYLEY`` (it is only claimed effectual for
the Cayley class).
"""

from __future__ import annotations

from typing import List, Optional

from ..graphs.automorphisms import color_preserving_automorphisms
from ..groups.permgroup import find_regular_subgroups
from ..sim.traversal import LocalMap
from .elect import ElectAgent
from .ordering import ClassStructure
from .reduce_phases import Schedule
from .result import AgentReport, Verdict


class CayleyElectAgent(ElectAgent):
    """ELECT with the Theorem 4.1 feasibility test for Cayley graphs."""

    def __init__(self, *args, automorphism_limit: int = 1_000_000, **kwargs):
        super().__init__(*args, **kwargs)
        self.automorphism_limit = automorphism_limit

    def _check_feasibility(
        self,
        local_map: LocalMap,
        structure: ClassStructure,
        schedule: Schedule,
    ) -> Optional[AgentReport]:
        network = local_map.network
        bicolor = local_map.bicoloring()
        blacks = {v for v, c in enumerate(bicolor) if c == 1}

        autos = color_preserving_automorphisms(
            network, node_colors=None, limit=self.automorphism_limit
        )
        subgroups = find_regular_subgroups(autos, network.num_nodes)
        if not subgroups:
            return AgentReport(verdict=Verdict.NOT_CAYLEY)

        stabilizer_sizes: List[int] = []
        for subgroup in subgroups:
            d = sum(
                1
                for phi in subgroup
                if all((phi[v] in blacks) == (v in blacks) for v in network.nodes())
            )
            stabilizer_sizes.append(d)

        if any(d > 1 for d in stabilizer_sizes):
            # Theorem 4.1 impossibility: the natural labeling of that
            # subgroup's presentation has label classes of size d > 1.
            return AgentReport(verdict=Verdict.FAILED)

        if not schedule.succeeds:
            # All translation certificates say "possible" but the generic
            # gcd condition fails: outside the empirically-verified
            # equivalence (never observed; see bench E8).  Refuse to guess.
            return AgentReport(verdict=Verdict.AMBIGUOUS)
        return None
