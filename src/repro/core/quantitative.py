"""The quantitative baseline: universal election with comparable labels.

Paper Section 1.3: "If agents are labeled with distinct elements that are
also comparable, then there is a universal election protocol … during
phase 1, every agent performs a traversal of the graph to collect all agent
labels; during phase 2, every agent elects the agent of maximum label."

:class:`QuantitativeAgent` implements exactly that two-phase protocol.  The
agent still owns a distinct *color* (the runtime's identity for whiteboard
marking — in the quantitative world one would encode the label in binary;
keeping a color changes nothing observable), plus an integer ``label``
which is what the protocol actually compares.

The label is published as an integer-payload sign at the agent's home-base,
so every traversing agent can read the full label set; the maximum label's
home-base sign color identifies the leader without any further
communication round.
"""

from __future__ import annotations

from typing import Dict, Optional

from ..colors import Color
from ..errors import ProtocolError
from ..sim.actions import NodeView, WaitUntil, Write
from ..sim.agent import Agent, ProtocolGen
from ..sim.signs import HOMEBASE, Sign
from ..sim.traversal import Navigator, draw_map
from .result import AgentReport, Verdict

LABEL = "label"


class QuantitativeAgent(Agent):
    """Universal election for the quantitative world (comparable labels)."""

    def __init__(self, color: Color, label: int, **kwargs):
        super().__init__(color, **kwargs)
        if not isinstance(label, int):
            raise ProtocolError("quantitative labels must be integers")
        self.label = label

    def protocol(self, start: NodeView) -> ProtocolGen:
        # Publish my label at my home-base before anything else, so any
        # traversing collector (possibly faster than me) can block on it.
        yield Write(Sign(kind=LABEL, color=self.color, payload=(self.label,)))

        local_map = yield from draw_map(self.color, start)
        nav = Navigator(local_map)

        # Collect every agent's label: tour the home-bases, waiting at each
        # for its owner's label sign (the owner is awake — map-drawing wakes
        # everyone — and posting the label is its first action).
        labels: Dict[int, int] = {}

        def visit(node: int, view: NodeView) -> ProtocolGen:
            owner = local_map.homebases[node]

            def posted(v: NodeView) -> bool:
                return any(
                    s.kind == LABEL and s.color == owner for s in v.signs
                )

            v = yield WaitUntil(posted, reason="label publication")
            for s in v.signs:
                if s.kind == LABEL and s.color == owner:
                    labels[node] = s.payload[0]
            return None

        homebase_nodes = set(local_map.homebases)
        yield from nav.tour(visit=visit, only=lambda v: v in homebase_nodes)
        yield from nav.goto(local_map.home)

        if len(set(labels.values())) != len(labels):
            raise ProtocolError("quantitative labels are not distinct")

        winner_node = max(labels, key=lambda node: labels[node])
        winner_color = local_map.homebases[winner_node]
        if winner_node == local_map.home:
            return AgentReport(verdict=Verdict.LEADER, leader_color=self.color)
        return AgentReport(verdict=Verdict.DEFEATED, leader_color=winner_color)
