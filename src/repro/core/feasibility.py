"""Feasibility theory: Theorem 2.1, Theorem 4.1 certificates, classification.

This module is the *analysis* side of the paper (no agents involved):

* :func:`elect_prediction` — Theorem 3.1's criterion: ELECT elects iff
  ``gcd(|C_1|,…,|C_k|) = 1`` over the Definition 2.1 classes.
* :func:`translation_certificates` — for Cayley graphs, one certificate per
  regular subgroup ``R ≤ Aut(G)``: the size ``d`` of the black-preserving
  stabilizer ``{γ ∈ R : γ(B) = B}``.  Because translations act freely, all
  translation classes of ``R`` share that size ``d``, so the gcd of
  Theorem 4.1 is just ``d``.  Any certificate with ``d > 1`` proves
  impossibility via the paper's Theorem 4.1 proof: the *natural labeling* of
  the corresponding presentation has label-equivalence classes of size
  ``d > 1``, and Theorem 2.1 applies.
* :func:`classify` — three-valued ground truth used by the experiment
  harness: POSSIBLE (constructive: ELECT succeeds), IMPOSSIBLE (a
  label-symmetric certificate exists), or UNKNOWN (the paper's open
  problem 1 territory, e.g. some non-Cayley vertex-transitive instances).

The Theorem 2.1 pipeline is independently checkable on *concrete labeled*
networks with :func:`theorem21_certificate`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from enum import Enum
from typing import List, Optional, Sequence, Tuple

from ..errors import RecognitionError
from ..graphs.automorphisms import (
    color_preserving_automorphisms,
    label_equivalence_classes,
)
from ..graphs.cayley import CayleyGraph
from ..graphs.network import AnonymousNetwork
from ..graphs.recognition import color_preserving_translations
from ..graphs.views import symmetricity_of_labeling
from ..perf import cache as _perf_cache
from ..groups.permgroup import find_regular_subgroups, orbits_of
from ..groups.symmetric import Permutation
from .ordering import ClassStructure, compute_class_structure
from .placement import Placement
from .reduce_phases import Schedule, build_schedule


@dataclass(frozen=True)
class ElectPrediction:
    """What Theorem 3.1 predicts for generic ELECT on ``(G, p)``."""

    structure: ClassStructure
    schedule: Schedule

    @property
    def succeeds(self) -> bool:
        return self.schedule.succeeds

    @property
    def gcd(self) -> int:
        return self.structure.gcd


def elect_prediction(
    network: AnonymousNetwork, placement: Placement
) -> ElectPrediction:
    """Classes, schedule and success prediction for generic ELECT."""
    structure = compute_class_structure(network, placement.bicoloring(network))
    schedule = build_schedule(structure.sizes, structure.num_agent_classes)
    return ElectPrediction(structure=structure, schedule=schedule)


@dataclass(frozen=True)
class TranslationCertificate:
    """One regular subgroup's verdict on a Cayley instance.

    ``stabilizer_size`` is ``d = |{γ ∈ R : γ(B) = B}|``; the translation
    classes of ``R`` (orbits of that stabilizer) all have size ``d``.
    ``d > 1`` certifies impossibility (Theorem 4.1 → Theorem 2.1).
    """

    subgroup: Tuple[Permutation, ...]
    stabilizer_size: int
    classes: Tuple[Tuple[int, ...], ...]

    @property
    def proves_impossible(self) -> bool:
        return self.stabilizer_size > 1


def regular_subgroups_of(network: AnonymousNetwork) -> List[Tuple[Permutation, ...]]:
    """Regular subgroups of the uncolored automorphism group, memoized.

    ``classify`` consults this in up to three branches per instance (and
    the Table 1 batteries re-classify the same networks under many
    placements); the subgroup search runs once per network.
    """
    cached = _perf_cache.memo(
        network,
        "regular_subgroups",
        None,
        lambda: tuple(
            tuple(sub)
            for sub in find_regular_subgroups(
                color_preserving_automorphisms(network), network.num_nodes
            )
        ),
    )
    return [tuple(sub) for sub in cached]


def translation_certificates(
    network: AnonymousNetwork,
    placement: Placement,
    automorphisms: Optional[Sequence[Permutation]] = None,
) -> List[TranslationCertificate]:
    """All regular-subgroup certificates of a Cayley instance.

    Raises :class:`RecognitionError` if the network has no regular subgroup
    (i.e. is not a Cayley graph).
    """
    if automorphisms is None:
        subgroups = regular_subgroups_of(network)
    else:
        subgroups = find_regular_subgroups(automorphisms, network.num_nodes)
    if not subgroups:
        raise RecognitionError("network is not a Cayley graph")
    bicolor = placement.bicoloring(network)
    certificates: List[TranslationCertificate] = []
    for subgroup in subgroups:
        preserving = color_preserving_translations(subgroup, bicolor)
        classes = orbits_of(preserving, network.num_nodes)
        certificates.append(
            TranslationCertificate(
                subgroup=tuple(subgroup),
                stabilizer_size=len(preserving),
                classes=tuple(tuple(c) for c in classes),
            )
        )
    return certificates


def cayley_election_possible(
    network: AnonymousNetwork,
    placement: Placement,
    automorphisms: Optional[Sequence[Permutation]] = None,
) -> bool:
    """Theorem 4.1 feasibility: no regular subgroup certifies impossibility.

    Note the quantification: a single subgroup with a nontrivial
    black-preserving stabilizer suffices for impossibility.  (The paper
    states the criterion for "the" translation classes; enumerating all
    regular subgroups closes the gap when a graph is a Cayley graph of
    several non-conjugate groups — see DESIGN.md.)
    """
    return all(
        not cert.proves_impossible
        for cert in translation_certificates(network, placement, automorphisms)
    )


class Feasibility(Enum):
    """Ground-truth classification of an election instance."""

    POSSIBLE = "possible"
    IMPOSSIBLE = "impossible"
    UNKNOWN = "unknown"


@dataclass(frozen=True)
class Classification:
    """Feasibility verdict with its supporting evidence."""

    verdict: Feasibility
    reason: str
    elect: ElectPrediction
    translation: Tuple[TranslationCertificate, ...] = ()


def classify(network: AnonymousNetwork, placement: Placement) -> Classification:
    """Three-valued feasibility of ``(G, p)`` in the qualitative model.

    * ELECT's gcd condition holding is a *constructive* possibility proof.
    * A color-preserving automorphism whose cyclic group acts freely yields
      a symmetric labeling (the generalized Theorem 4.1 construction —
      :mod:`repro.graphs.symmetric_labelings`) and hence a Theorem 2.1
      impossibility proof.  On Cayley graphs this subsumes the
      regular-subgroup criterion, whose certificates are still attached as
      corroborating evidence.
    * Otherwise the instance lands in the paper's open problem: UNKNOWN
      (e.g. the Petersen instance of Figure 5, where a bespoke protocol is
      known — our harness upgrades such instances to POSSIBLE explicitly).
    """
    from ..graphs.symmetric_labelings import free_automorphism_certificate

    prediction = elect_prediction(network, placement)
    if prediction.succeeds:
        return Classification(
            verdict=Feasibility.POSSIBLE,
            reason="gcd of equivalence classes is 1; ELECT elects (Thm 3.1)",
            elect=prediction,
        )
    bicolor = placement.bicoloring(network)
    certificate = free_automorphism_certificate(network, bicolor)
    if certificate is not None:
        translation: Tuple[TranslationCertificate, ...] = ()
        if regular_subgroups_of(network):
            translation = tuple(translation_certificates(network, placement))
        return Classification(
            verdict=Feasibility.IMPOSSIBLE,
            reason=(
                "a color-preserving automorphism acts freely: its orbit "
                "labeling has symmetric label classes (Thm 2.1 via the "
                "generalized Thm 4.1 construction)"
            ),
            elect=prediction,
            translation=translation,
        )
    if regular_subgroups_of(network):
        certs = translation_certificates(network, placement)
        if any(c.proves_impossible for c in certs):
            return Classification(
                verdict=Feasibility.IMPOSSIBLE,
                reason=(
                    "Cayley graph with a regular subgroup whose "
                    "black-preserving stabilizer is nontrivial (Thm 4.1)"
                ),
                elect=prediction,
                translation=tuple(certs),
            )
        return Classification(
            verdict=Feasibility.POSSIBLE,
            reason=(
                "Cayley graph with all translation certificates trivial "
                "(Thm 4.1 feasibility side)"
            ),
            elect=prediction,
            translation=tuple(certs),
        )
    return Classification(
        verdict=Feasibility.UNKNOWN,
        reason=(
            "gcd > 1, no free automorphism, non-Cayley: outside both the "
            "ELECT sufficiency and the symmetric-labeling impossibility "
            "criteria (open problem 1)"
        ),
        elect=prediction,
    )


# ----------------------------------------------------------------------
# Theorem 2.1 machinery on concrete labeled networks
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class SymmetryCertificate:
    """Evidence that a *concrete labeling* makes election impossible.

    ``label_class_size > 1`` triggers Theorem 2.1.  ``symmetricity`` is
    σ_ℓ(G) of the same labeling; Equation (1) guarantees
    ``symmetricity >= label_class_size``.
    """

    label_class_size: int
    label_classes: Tuple[Tuple[int, ...], ...]
    symmetricity: int

    @property
    def proves_impossible(self) -> bool:
        return self.label_class_size > 1


def theorem21_certificate(
    network: AnonymousNetwork, placement: Placement
) -> SymmetryCertificate:
    """Evaluate Theorem 2.1's condition on a concretely-labeled instance."""
    bicolor = placement.bicoloring(network)
    classes = label_equivalence_classes(network, bicolor)
    sizes = {len(c) for c in classes}
    if len(sizes) != 1:
        raise RecognitionError(
            f"label-equivalence classes of unequal sizes {sorted(sizes)}; "
            "contradicts Lemma 2.1"
        )
    return SymmetryCertificate(
        label_class_size=sizes.pop(),
        label_classes=tuple(tuple(c) for c in classes),
        symmetricity=symmetricity_of_labeling(network, bicolor),
    )


def natural_labeling_certificate(
    cayley: CayleyGraph, placement: Placement
) -> SymmetryCertificate:
    """Theorem 4.1's construction, checked concretely.

    The natural labeling ``ℓ_x({x, x·s}) = s`` of ``Cay(Γ, S)`` has
    label-equivalence classes equal to the translation classes, all of size
    ``d`` — the gcd of the translation-class sizes.  This function evaluates
    the label classes of the natural labeling directly; the tests compare
    the result against the group-theoretic stabilizer size.
    """
    return theorem21_certificate(cayley.network, placement)


def gcd_of_sizes(sizes: Sequence[int]) -> int:
    """Convenience: gcd of a non-empty size vector."""
    if not sizes:
        raise ValueError("empty size vector")
    return math.gcd(*sizes) if len(sizes) > 1 else sizes[0]
