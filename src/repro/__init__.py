"""repro — qualitative leader election among mobile agents.

A faithful, executable reproduction of

    L. Barrière, P. Flocchini, P. Fraigniaud, N. Santoro,
    "Can we elect if we cannot compare?", 15th ACM SPAA, 2003.

Layers (each usable on its own):

* :mod:`repro.colors` — incomparable labels, the qualitative primitive;
* :mod:`repro.groups` — finite groups, permutation actions, regular
  subgroups (Cayley recognition);
* :mod:`repro.graphs` — anonymous port-labeled networks, Cayley families,
  views/symmetricity, automorphism classes, canonical forms, surroundings;
* :mod:`repro.sim` — the asynchronous mobile-agent runtime (whiteboards,
  schedulers, map-drawing DFS) and the Figure 1 message-passing engine;
* :mod:`repro.core` — protocol ELECT, its effectual Cayley variant, the
  quantitative baseline, the Petersen counterexample protocol, and the
  feasibility theory (Theorems 2.1/3.1/4.1);
* :mod:`repro.analysis` — experiment harness reproducing the paper's table
  and figures;
* :mod:`repro.trace` — structured event tracing, deterministic replay, and
  trace-level invariant auditing for the runtime.

Quickstart::

    from repro import cycle_graph, Placement, run_elect
    outcome = run_elect(cycle_graph(5), Placement.of([0, 1]))
    assert outcome.elected
"""

from .apps import GatheringAgent, run_gathering
from .colors import Color, ColorSpace, LocalColorEncoding, qualitative_symbols
from .core import (
    AgentReport,
    CayleyElectAgent,
    ElectAgent,
    ElectionOutcome,
    Feasibility,
    PetersenDuelAgent,
    Placement,
    QuantitativeAgent,
    Verdict,
    all_placements,
    classify,
    compute_class_structure,
    elect_prediction,
    run_cayley_elect,
    run_elect,
    run_election,
    run_petersen_duel,
    run_quantitative,
)
from .errors import (
    DeadlockError,
    GraphError,
    GroupError,
    IncomparabilityError,
    InvariantViolation,
    PlacementError,
    ProtocolError,
    ReplayDivergence,
    ReproError,
    SimulationError,
    StepBudgetExceeded,
    TraceError,
)
from .graphs import (
    AnonymousNetwork,
    CayleyGraph,
    complete_graph,
    cycle_cayley,
    cycle_graph,
    grid_graph,
    hypercube_cayley,
    path_graph,
    petersen_graph,
    star_graph,
    torus_cayley,
)
from .sim import (
    RandomScheduler,
    RecordingScheduler,
    RoundRobinScheduler,
    Scheduler,
    Simulation,
    default_scheduler_suite,
)
from .trace import (
    JsonlSink,
    MemorySink,
    NullSink,
    ReplayScheduler,
    TraceEvent,
    TraceHeader,
    TraceSink,
    assert_invariants,
    audit_trace,
    load_trace,
    record_run,
    replay_trace,
    summarize,
)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # colors
    "Color",
    "ColorSpace",
    "LocalColorEncoding",
    "qualitative_symbols",
    # errors
    "ReproError",
    "IncomparabilityError",
    "GroupError",
    "GraphError",
    "PlacementError",
    "SimulationError",
    "DeadlockError",
    "StepBudgetExceeded",
    "ProtocolError",
    "TraceError",
    "ReplayDivergence",
    "InvariantViolation",
    # graphs
    "AnonymousNetwork",
    "CayleyGraph",
    "path_graph",
    "cycle_graph",
    "complete_graph",
    "star_graph",
    "grid_graph",
    "petersen_graph",
    "cycle_cayley",
    "hypercube_cayley",
    "torus_cayley",
    # sim
    "Simulation",
    "Scheduler",
    "RandomScheduler",
    "RoundRobinScheduler",
    "RecordingScheduler",
    "default_scheduler_suite",
    # trace
    "TraceEvent",
    "TraceHeader",
    "TraceSink",
    "NullSink",
    "MemorySink",
    "JsonlSink",
    "ReplayScheduler",
    "record_run",
    "replay_trace",
    "load_trace",
    "summarize",
    "audit_trace",
    "assert_invariants",
    # core
    "Placement",
    "all_placements",
    "ElectAgent",
    "CayleyElectAgent",
    "QuantitativeAgent",
    "PetersenDuelAgent",
    "AgentReport",
    "ElectionOutcome",
    "Verdict",
    "Feasibility",
    "classify",
    "elect_prediction",
    "compute_class_structure",
    "run_election",
    "run_elect",
    "run_cayley_elect",
    "run_quantitative",
    "run_petersen_duel",
    "GatheringAgent",
    "run_gathering",
]
