"""Run the full experiment suite from the command line.

Usage::

    python -m repro.analysis             # everything (a few seconds)
    python -m repro.analysis --quick     # trimmed batteries
    python -m repro.analysis table1 complexity   # selected experiments
    python -m repro.analysis --workers 4 --perf-stats table1

Prints each experiment's reproduced artifact next to the paper's claim.
``--workers N`` fans the instance batteries out over a process pool
(deterministic: the artifacts are identical to the serial run);
``--perf-stats`` appends one line of JSON — the memo-cache hit/miss
counters plus the merged metrics snapshot — so scripts can pipe the tail
of the output straight into ``json.loads`` / ``jq``.
The same code paths back the pytest benchmarks in ``benchmarks/``.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from typing import Callable, Dict, List

from ..obs.registry import collect_snapshot
from ..perf import ParallelBatteryRunner, cache_stats
from .complexity import complexity_sweep, max_ratio, ratio_table
from .instances import (
    cayley_effectualness_instances,
    evaluate_battery,
    petersen_duel_instances,
)
from .matrix import (
    _eval_cayley_effectualness,
    _eval_petersen_duel,
    reproduce_table1,
)
from .report import render_kv

#: Worker count for the current invocation (set by ``main`` from --workers).
_WORKERS = 1


def _experiment_table1(quick: bool) -> None:
    result = reproduce_table1(quick=quick, workers=_WORKERS)
    print(result.render())
    print(f"\nall cells match the paper: {result.all_match}")


def _experiment_complexity(quick: bool) -> None:
    counts = (1, 2) if quick else (1, 2, 3, 4)
    points = complexity_sweep(agent_counts=counts)
    print(ratio_table(points))
    print(f"\nmax moves/(r|E|) ratio: {max_ratio(points):.2f}  (Theorem 3.1: O(r|E|))")


def _experiment_effectual(quick: bool) -> None:
    instances = cayley_effectualness_instances(
        agent_counts=(1, 2) if quick else (1, 2, 3),
        max_per_count=3 if quick else 6,
    )
    outcomes = evaluate_battery(
        [(inst, 0) for inst in instances],
        _eval_cayley_effectualness,
        workers=_WORKERS,
    )
    feasible = sum(possible for (_, possible, _) in outcomes)
    violations = sum(
        elected != possible for (_, possible, elected) in outcomes
    )
    print(
        render_kv(
            "Theorem 4.1 — effectual election on Cayley graphs",
            [
                ("instances", len(instances)),
                ("feasible", feasible),
                ("impossible", len(instances) - feasible),
                ("effectualness violations", violations),
            ],
        )
    )


def _experiment_petersen(quick: bool) -> None:
    duels = petersen_duel_instances()
    duels = duels[:3] if quick else duels
    outcomes = evaluate_battery(
        [(inst, 0) for inst in duels], _eval_petersen_duel, workers=_WORKERS
    )
    elect_failures = sum(failed for (_, failed, _) in outcomes)
    duel_wins = sum(elected for (_, _, elected) in outcomes)
    print(
        render_kv(
            "Figure 5 — the Petersen counterexample",
            [
                ("adjacent placements", len(duels)),
                ("ELECT failures (expected: all)", elect_failures),
                ("bespoke-protocol elections (expected: all)", duel_wins),
            ],
        )
    )


def _experiment_trace(quick: bool) -> None:
    from ..trace import audit_trace, record_run, render_summary, replay_trace, summarize

    spec = ("cycle", [5], [0, 1]) if quick else ("hypercube", [3], [0, 3, 5])
    graph, graph_args, homes = spec
    outcome, sink = record_run(
        graph, graph_args, homes, protocol="elect", seed=1
    )
    print(render_summary(summarize(sink.events, header=sink.header),
                         header=sink.header))
    print()
    reports = audit_trace(sink.events, header=sink.header)
    for report in reports:
        print(report)
    replayed = replay_trace((sink.header, sink.events))
    print(
        render_kv(
            "deterministic replay",
            [
                ("recorded events", len(sink.events)),
                ("replayed events", len(replayed.events)),
                ("streams identical", replayed.matches),
                ("same outcome", replayed.outcome.elected == outcome.elected),
            ],
        )
    )


def _experiment_faults(quick: bool) -> None:
    from ..fault.campaign import run_campaign

    report = run_campaign(
        pairs=40 if quick else 208, workers=_WORKERS, quick=quick
    )
    print(report.render())
    print(
        "\nno-silent-wrong-answer oracle holds: "
        f"{not report.impossible_rows}"
    )


def _experiment_adversary(quick: bool) -> None:
    from ..adversary import fuzz_stats, run_fuzz

    report = run_fuzz(
        runs=60 if quick else 500, workers=_WORKERS, quick=quick
    )
    print(report.render())
    stats = fuzz_stats()
    print(
        render_kv(
            "schedule-space coverage",
            [
                ("distinct interleavings", report.distinct_schedules),
                ("dedup hits", report.duplicate_schedules),
                ("silent wrong answers", report.counts["silent-wrong-answer"]),
                ("schedule failures", report.counts["schedule-failure"]),
                ("runs counted", sum(stats["runs"].values())),
            ],
        )
    )


def _experiment_campaign(quick: bool) -> None:
    from .campaign import run_battery_campaign

    result = run_battery_campaign(
        battery="quantitative" if quick else "cayley-effectualness",
        repetitions=1 if quick else 2,
        workers=_WORKERS,
    )
    print(result.render())
    print(
        "\nstreamed battery sweep on the campaign engine "
        "(see python -m repro.campaign for sharded/resumable runs)"
    )


EXPERIMENTS: Dict[str, Callable[[bool], None]] = {
    "table1": _experiment_table1,
    "complexity": _experiment_complexity,
    "effectual": _experiment_effectual,
    "petersen": _experiment_petersen,
    "trace": _experiment_trace,
    "faults": _experiment_faults,
    "adversary": _experiment_adversary,
    "campaign": _experiment_campaign,
}


def main(argv: List[str] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="Reproduce the SPAA'03 qualitative-election experiments.",
    )
    parser.add_argument(
        "experiments",
        nargs="*",
        help=f"which experiments to run: {', '.join(EXPERIMENTS)}, all (default)",
    )
    parser.add_argument("--quick", action="store_true", help="trim batteries")
    parser.add_argument(
        "--workers",
        type=int,
        default=1,
        help="process-pool size for the instance batteries (1 = serial; "
        "results are identical for any value)",
    )
    parser.add_argument(
        "--perf-stats",
        action="store_true",
        help="print one JSON line of cache counters and the merged metrics "
        "snapshot after the experiments",
    )
    args = parser.parse_args(argv)
    global _WORKERS
    _WORKERS = args.workers

    requested = args.experiments or ["all"]
    unknown = [x for x in requested if x != "all" and x not in EXPERIMENTS]
    if unknown:
        parser.error(
            f"unknown experiments {unknown}; choose from "
            f"{', '.join(EXPERIMENTS)}, all"
        )
    chosen = list(EXPERIMENTS) if "all" in requested else requested
    for name in chosen:
        print("=" * 68)
        print(f"experiment: {name}")
        print("=" * 68)
        t0 = time.perf_counter()
        EXPERIMENTS[name](args.quick)
        print(f"\n[{name} done in {time.perf_counter() - t0:.1f}s]\n")
    if args.perf_stats:
        # One line, valid JSON: earlier versions printed an ASCII table
        # here, which broke every consumer that piped the stats onward.
        print(
            json.dumps(
                {"cache": cache_stats(), "metrics": collect_snapshot()},
                sort_keys=True,
            )
        )
    return 0


if __name__ == "__main__":
    sys.exit(main())
