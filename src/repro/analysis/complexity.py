"""Theorem 3.1 move-complexity measurements: total work vs ``r·|E|``.

The theorem bounds the total number of moves *and* whiteboard accesses of
protocol ELECT by ``O(r·|E|)``.  :func:`complexity_sweep` runs ELECT across
scaling families (cycles, hypercubes, tori, complete graphs), records the
measured totals, and reports the normalized ratio ``moves / (r·|E|)``; the
experiment's acceptance criterion is that the ratio stays bounded by a
small constant across the sweep (shape reproduction, not absolute numbers).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, Tuple

from ..core.placement import Placement
from ..core.runner import run_elect
from ..graphs.builders import complete_graph, cycle_graph, grid_graph, path_graph
from ..graphs.cayley import hypercube_cayley, torus_cayley
from ..graphs.network import AnonymousNetwork


@dataclass(frozen=True)
class ComplexityPoint:
    """One measured run."""

    family: str
    n: int
    m: int
    r: int
    moves: int
    accesses: int
    elected: bool

    @property
    def moves_ratio(self) -> float:
        """``moves / (r·|E|)`` — Theorem 3.1's normalized cost."""
        return self.moves / (self.r * self.m)

    @property
    def accesses_ratio(self) -> float:
        return self.accesses / (self.r * self.m)


def _feasible_placement(
    network: AnonymousNetwork, r: int, seed: int
) -> Optional[Placement]:
    """A placement of ``r`` agents on which ELECT is predicted to succeed."""
    from ..core.feasibility import elect_prediction

    rng = random.Random(seed)
    nodes = list(network.nodes())
    for _ in range(200):
        homes = rng.sample(nodes, r)
        placement = Placement.of(sorted(homes))
        if elect_prediction(network, placement).succeeds:
            return placement
    return None


def default_families() -> List[Tuple[str, AnonymousNetwork]]:
    """The scaling battery of the complexity experiment."""
    return [
        ("P_8", path_graph(8)),
        ("P_16", path_graph(16)),
        ("P_24", path_graph(24)),
        ("C_9", cycle_graph(9)),
        ("C_15", cycle_graph(15)),
        ("C_21", cycle_graph(21)),
        ("Grid3x4", grid_graph(3, 4)),
        ("Grid4x5", grid_graph(4, 5)),
        ("Q_3", hypercube_cayley(3).network),
        ("Q_4", hypercube_cayley(4).network),
        ("T_3x4", torus_cayley([3, 4]).network),
        ("K_6", complete_graph(6)),
        ("K_8", complete_graph(8)),
    ]


def complexity_sweep(
    families: Optional[Sequence[Tuple[str, AnonymousNetwork]]] = None,
    agent_counts: Sequence[int] = (1, 2, 3, 4),
    seed: int = 0,
) -> List[ComplexityPoint]:
    """Run ELECT across the battery and record the move/access totals."""
    points: List[ComplexityPoint] = []
    for family, network in families or default_families():
        for r in agent_counts:
            if r > network.num_nodes:
                continue
            placement = _feasible_placement(network, r, seed)
            if placement is None:
                continue
            outcome = run_elect(network, placement, seed=seed)
            points.append(
                ComplexityPoint(
                    family=family,
                    n=network.num_nodes,
                    m=network.num_edges,
                    r=r,
                    moves=outcome.total_moves,
                    accesses=outcome.total_accesses,
                    elected=outcome.elected,
                )
            )
    return points


def max_ratio(points: Sequence[ComplexityPoint]) -> float:
    """The worst normalized cost over the sweep (the Theorem 3.1 constant)."""
    return max(p.moves_ratio for p in points)


@dataclass(frozen=True)
class ComplexityFit:
    """Least-squares fit of ``moves ≈ c · r·|E| + b`` over a sweep.

    ``slope`` estimates the Theorem 3.1 constant; ``r_squared`` close to 1
    means the linear model in ``r·|E|`` explains the measured cost — the
    quantitative form of the "O(r|E|) shape holds" claim.
    """

    slope: float
    intercept: float
    r_squared: float


def fit_complexity(points: Sequence[ComplexityPoint]) -> ComplexityFit:
    """Fit total moves against ``r·|E|`` by ordinary least squares."""
    import numpy as np

    if len(points) < 3:
        raise ValueError("need at least 3 points to fit")
    x = np.array([p.r * p.m for p in points], dtype=float)
    y = np.array([p.moves for p in points], dtype=float)
    design = np.vstack([x, np.ones_like(x)]).T
    (slope, intercept), residual, _, _ = np.linalg.lstsq(design, y, rcond=None)
    predictions = design @ np.array([slope, intercept])
    ss_res = float(np.sum((y - predictions) ** 2))
    ss_tot = float(np.sum((y - y.mean()) ** 2))
    r_squared = 1.0 - ss_res / ss_tot if ss_tot > 0 else 1.0
    return ComplexityFit(
        slope=float(slope), intercept=float(intercept), r_squared=r_squared
    )


def ratio_table(points: Sequence[ComplexityPoint]) -> str:
    """Render the sweep as the Theorem 3.1 experiment's output table."""
    from .report import render_table

    header = ["family", "n", "|E|", "r", "moves", "accesses", "moves/(r|E|)"]
    rows = [
        [
            p.family,
            p.n,
            p.m,
            p.r,
            p.moves,
            p.accesses,
            f"{p.moves_ratio:.2f}",
        ]
        for p in points
    ]
    return render_table(header, rows)
