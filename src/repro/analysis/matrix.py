"""Table 1 reproduction: the election-feasibility matrix.

The paper's Table 1 summarises which protocol guarantees exist per agent
model (rows: anonymous / qualitative / quantitative agents) and per
guarantee (columns: universal, effectual on arbitrary graphs, effectual on
Cayley graphs):

    |              | Universal | Effectual (arbitrary) | Effectual (Cayley) |
    | Anonymous    |    No     |          No           |         No         |
    | Qualitative  |    No     |          ?            |        Yes         |
    | Quantitative |    Yes    |          Yes          |        Yes         |

Each cell is re-derived *empirically* by :func:`reproduce_table1`:

* **No** cells are established by exhibiting a counterexample instance and
  verifying its impossibility certificate computationally (symmetric
  label-equivalence classes / symmetricity > 1 — Theorem 2.1 machinery).
* **Yes** cells are established by running the corresponding protocol over
  an instance battery and checking it elects on every feasible instance
  and reports failure exactly on the infeasible ones.
* The **?** cell is reproduced as the paper leaves it: the Petersen
  counterexample shows generic ELECT is not effectual, while the bespoke
  Figure 5 protocol shows the instance itself is solvable.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..colors import ColorSpace
from ..core.feasibility import (
    cayley_election_possible,
    elect_prediction,
    theorem21_certificate,
)
from ..core.placement import Placement
from ..core.runner import (
    run_cayley_elect,
    run_elect,
    run_petersen_duel,
    run_quantitative,
)
from ..errors import ReproductionError
from ..graphs.builders import complete_graph, cycle_graph, petersen_graph
from ..graphs.cayley import cycle_cayley, hypercube_cayley
from ..graphs.network import AnonymousNetwork
from ..perf import ParallelBatteryRunner
from .instances import (
    Instance,
    asymmetric_instances,
    cayley_effectualness_instances,
    evaluate_battery,
    impossibility_instances,
    petersen_duel_instances,
    quantitative_battery,
)

ROWS = ("anonymous", "qualitative", "quantitative")
COLUMNS = ("universal", "effectual_arbitrary", "effectual_cayley")

#: The paper's Table 1, as ground truth for comparison.
PAPER_TABLE1: Dict[Tuple[str, str], str] = {
    ("anonymous", "universal"): "No",
    ("anonymous", "effectual_arbitrary"): "No",
    ("anonymous", "effectual_cayley"): "No",
    ("qualitative", "universal"): "No",
    ("qualitative", "effectual_arbitrary"): "?",
    ("qualitative", "effectual_cayley"): "Yes",
    ("quantitative", "universal"): "Yes",
    ("quantitative", "effectual_arbitrary"): "Yes",
    ("quantitative", "effectual_cayley"): "Yes",
}


@dataclass
class CellResult:
    """One reproduced cell: verdict plus the evidence behind it."""

    verdict: str
    evidence: str
    instances_checked: int = 0

    def matches_paper(self, row: str, column: str) -> bool:
        return self.verdict == PAPER_TABLE1[(row, column)]


@dataclass
class Table1Result:
    """The full reproduced matrix."""

    cells: Dict[Tuple[str, str], CellResult] = field(default_factory=dict)

    @property
    def all_match(self) -> bool:
        return all(
            cell.matches_paper(row, col) for (row, col), cell in self.cells.items()
        )

    def render(self) -> str:
        from .report import render_table

        header = ["agents"] + [c.replace("_", " ") for c in COLUMNS]
        rows = []
        for row in ROWS:
            cells = [self.cells[(row, col)].verdict for col in COLUMNS]
            rows.append([row] + cells)
        return render_table(header, rows)


def _anonymous_counterexample_evidence() -> Tuple[str, int]:
    """Anonymous agents: symmetric executions defeat any protocol.

    Certificate: the 6-ring with antipodal agents admits a labeling whose
    label-equivalence classes have size 2 (Theorem 2.1); anonymity only
    makes matters worse (the paper's Section 1.3 argument with the
    synchronous scheduler on C3 vs C6 applies to all three columns, since
    rings are Cayley graphs).
    """
    net = cycle_cayley(6).network  # natural labeling: maximally symmetric
    cert = theorem21_certificate(net, Placement.of([0, 3]))
    if not cert.proves_impossible:
        raise ReproductionError(
            "C_6 antipodal certificate does not prove impossibility: "
            f"label classes of size {cert.label_class_size} (expected > 1)"
        )
    return (
        f"C_6 antipodal: label classes of size {cert.label_class_size}, "
        f"symmetricity {cert.symmetricity} (Thm 2.1); rings are Cayley",
        1,
    )


def _qualitative_universal_evidence() -> Tuple[str, int]:
    """K_2 kills universality in the qualitative world.

    The adversary labels both ends of the single edge with the *same*
    symbol; the label-equivalence classes then have size 2.
    """
    from ..colors import ColorSpace

    space = ColorSpace()
    sym = space.fresh("*")
    net = AnonymousNetwork(2, [(0, sym, 1, sym)], name="K_2-sym")
    cert = theorem21_certificate(net, Placement.of([0, 1]))
    if not cert.proves_impossible:
        raise ReproductionError(
            "symmetric K_2 certificate does not prove impossibility: "
            f"label classes of size {cert.label_class_size} (expected 2)"
        )
    return (
        f"K_2 with equal port symbols: label classes of size "
        f"{cert.label_class_size} (Thm 2.1)",
        1,
    )


# Battery evaluators.  Module-level so the process executor can pickle
# them; each takes (instance, seed) and returns a small plain tuple, and
# the reduction below runs serially in input order — so the cells (verdict,
# evidence, instances_checked) are byte-identical for any worker count.


def _eval_cayley_effectualness(item: Tuple[Instance, int]) -> Tuple[str, bool, bool]:
    inst, seed = item
    possible = cayley_election_possible(inst.network, inst.placement)
    outcome = run_cayley_elect(inst.network, inst.placement, seed=seed)
    return (inst.label, possible, outcome.elected)


def _eval_petersen_duel(item: Tuple[Instance, int]) -> Tuple[str, bool, bool]:
    inst, seed = item
    elect_out = run_elect(inst.network, inst.placement, seed=seed)
    duel_out = run_petersen_duel(inst.network, inst.placement, seed=seed)
    return (inst.label, elect_out.failed, duel_out.elected)


def _eval_quantitative(item: Tuple[Instance, int]) -> Tuple[str, bool]:
    inst, seed = item
    outcome = run_quantitative(inst.network, inst.placement, seed=seed)
    return (inst.label, outcome.elected)


def reproduce_table1(
    seed: int = 0,
    quick: bool = False,
    workers: Optional[int] = 1,
    runner: Optional[ParallelBatteryRunner] = None,
) -> Table1Result:
    """Re-derive every cell of Table 1 empirically.

    ``quick`` trims the instance batteries (used by unit tests; the
    benchmark runs the full version).  ``workers`` (or an explicit
    ``runner``) fans the independent battery instances out over a process
    pool; results are reduced in input order, so the returned cells are
    byte-identical to the serial run.
    """
    owns_runner = runner is None
    if runner is None:
        runner = ParallelBatteryRunner(workers=workers)
    try:
        return _reproduce_table1(seed, quick, runner)
    finally:
        if owns_runner:
            runner.close()


def _reproduce_table1(
    seed: int, quick: bool, runner: ParallelBatteryRunner
) -> Table1Result:
    result = Table1Result()

    # ----- Row: anonymous ------------------------------------------------
    evidence, n = _anonymous_counterexample_evidence()
    for col in COLUMNS:
        result.cells[("anonymous", col)] = CellResult(
            verdict="No", evidence=evidence, instances_checked=n
        )

    # ----- Row: qualitative ----------------------------------------------
    evidence, n = _qualitative_universal_evidence()
    result.cells[("qualitative", "universal")] = CellResult(
        verdict="No", evidence=evidence, instances_checked=n
    )

    # Effectual on Cayley graphs: run the Cayley variant across the battery
    # and check it elects exactly on the feasible instances.
    battery = cayley_effectualness_instances(
        agent_counts=(1, 2) if quick else (1, 2, 3),
        max_per_count=3 if quick else 8,
        seed=seed,
    )
    outcomes = evaluate_battery(
        [(inst, seed) for inst in battery], _eval_cayley_effectualness, runner
    )
    violation = next(
        (
            (idx, label)
            for idx, (label, possible, elected) in enumerate(outcomes)
            if elected != possible
        ),
        None,
    )
    if violation is not None:
        idx, label = violation
        result.cells[("qualitative", "effectual_cayley")] = CellResult(
            verdict="No",
            evidence=f"effectualness violated on {label}",
            instances_checked=idx,
        )
    else:
        result.cells[("qualitative", "effectual_cayley")] = CellResult(
            verdict="Yes",
            evidence="Cayley-ELECT elects iff election is possible on the battery",
            instances_checked=len(outcomes),
        )

    # Effectual on arbitrary graphs: the paper's open question.  Reproduce
    # the evidence: ELECT fails on the Petersen instance although the
    # bespoke protocol solves it.
    duels = petersen_duel_instances()[: 2 if quick else 5]
    for label, elect_failed, duel_elected in evaluate_battery(
        [(inst, seed) for inst in duels], _eval_petersen_duel, runner
    ):
        if not elect_failed:
            raise ReproductionError(
                f"generic ELECT unexpectedly elected on {label}; the Petersen "
                "instance should defeat it (Section 4)"
            )
        if not duel_elected:
            raise ReproductionError(
                f"the bespoke Figure 5 protocol failed to elect on {label}"
            )
    petersen_evidence = len(duels)
    result.cells[("qualitative", "effectual_arbitrary")] = CellResult(
        verdict="?",
        evidence=(
            "ELECT fails on Petersen-adjacent instances that the bespoke "
            "Figure 5 protocol solves; existence of an effectual protocol "
            "is the paper's open problem 1"
        ),
        instances_checked=petersen_evidence,
    )

    # ----- Row: quantitative ----------------------------------------------
    battery = quantitative_battery(seed=seed)
    if quick:
        battery = battery[:5]
    for label, elected in evaluate_battery(
        [(inst, seed) for inst in battery], _eval_quantitative, runner
    ):
        if not elected:
            raise ReproductionError(
                f"quantitative protocol failed on {label}; Table 1's "
                "quantitative row claims universal election"
            )
    checked = len(battery)
    for col in COLUMNS:
        result.cells[("quantitative", col)] = CellResult(
            verdict="Yes",
            evidence=(
                "max-label election succeeded on every instance, including "
                "all qualitative-impossible ones"
            ),
            instances_checked=checked,
        )
    return result
