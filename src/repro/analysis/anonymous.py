"""Anonymous agents: the Section 1.3 impossibility argument, executable.

The paper rules out effectual election for *anonymous* agents with a
lifting argument: an agent running any deterministic protocol behaves
identically on the 3-ring (where it is alone) and on the 6-ring (where an
antipodal twin runs in lockstep), because the 6-ring with the symmetric
schedule is a 2-fold covering of the 3-ring.  Election is required in the
first instance and impossible in the second, so no effectual protocol
exists.

This module makes the argument executable:

* :class:`LockstepAnonymousSimulation` — a synchronous runtime for
  *colorless* deterministic agents.  Observations contain no identities:
  degree, the port the agent entered through (as a label), and the
  multiset of anonymous marks on the whiteboard.  All agents run the same
  transition function and act simultaneously (the paper's synchronous
  adversary).
* :func:`covering_indistinguishability` — runs one protocol on a base
  network and on a covering network (port labels aligned along the
  covering, the adversary's prerogative) and returns the observation
  traces; the lifting theorem says corresponding traces are equal, and
  the tests check exactly that for the paper's C₃ / C₆ pair (and for
  other quotient pairs derived from :func:`repro.graphs.views.view_quotient`).

Anonymous protocols here are plain functions
``f(state, observation) -> (state', action)`` with actions
``("move", port)``, ``("mark", payload)``, or ``("halt",)`` — a
deterministic automaton, which is fully general for the impossibility
argument (any deterministic anonymous protocol has this shape).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Hashable, List, Optional, Sequence, Tuple

from ..errors import ProtocolError, SimulationError
from ..graphs.network import AnonymousNetwork, PortLabel

#: What an anonymous agent perceives in one lockstep round.
Observation = Tuple[int, Optional[PortLabel], Tuple[Tuple[int, ...], ...]]
#: Transition: (state, observation) -> (state, action).
Action = Tuple
AnonymousProtocol = Callable[[Hashable, Observation], Tuple[Hashable, Action]]


@dataclass
class AnonymousTrace:
    """Everything one anonymous agent experienced, round by round."""

    observations: List[Observation]
    actions: List[Action]
    states: List[Hashable]


class LockstepAnonymousSimulation:
    """Synchronous execution of identical colorless agents.

    Every round, each non-halted agent observes (degree, entry port label,
    sorted mark payloads on the board), feeds the observation through the
    shared transition function, and all chosen actions are applied
    *simultaneously* (marks first, then moves) — the paper's synchronous
    scheduler, which maximally preserves symmetry.
    """

    def __init__(
        self,
        network: AnonymousNetwork,
        homes: Sequence[int],
        protocol: AnonymousProtocol,
        initial_state: Hashable = 0,
    ):
        if len(set(homes)) != len(homes):
            raise ProtocolError("home-bases must be distinct")
        self.network = network
        self.protocol = protocol
        self.positions: List[int] = list(homes)
        self.entries: List[Optional[PortLabel]] = [None] * len(homes)
        self.states: List[Hashable] = [initial_state] * len(homes)
        self.halted: List[bool] = [False] * len(homes)
        self.marks: List[List[Tuple[int, ...]]] = [
            [] for _ in range(network.num_nodes)
        ]
        self.traces: List[AnonymousTrace] = [
            AnonymousTrace([], [], [initial_state]) for _ in homes
        ]

    def _observe(self, idx: int) -> Observation:
        node = self.positions[idx]
        return (
            self.network.degree(node),
            self.entries[idx],
            tuple(sorted(self.marks[node])),
        )

    def step(self) -> bool:
        """One lockstep round.  Returns False when every agent has halted."""
        if all(self.halted):
            return False
        decisions: List[Tuple[int, Action]] = []
        for idx in range(len(self.positions)):
            if self.halted[idx]:
                continue
            obs = self._observe(idx)
            state, action = self.protocol(self.states[idx], obs)
            self.states[idx] = state
            self.traces[idx].observations.append(obs)
            self.traces[idx].actions.append(action)
            self.traces[idx].states.append(state)
            decisions.append((idx, action))
        # Apply marks first (all simultaneously), then moves.
        for idx, action in decisions:
            if action[0] == "mark":
                payload = tuple(action[1])
                self.marks[self.positions[idx]].append(payload)
        for idx, action in decisions:
            if action[0] == "move":
                port = action[1]
                node = self.positions[idx]
                if port not in self.network.ports(node):
                    raise ProtocolError(
                        f"anonymous agent used missing port {port!r}"
                    )
                dest, entry = self.network.traverse(node, port)
                self.positions[idx] = dest
                self.entries[idx] = entry
            elif action[0] == "halt":
                self.halted[idx] = True
            elif action[0] != "mark":
                raise ProtocolError(f"unknown anonymous action {action!r}")
        return True

    def run(self, max_rounds: int) -> List[AnonymousTrace]:
        for _ in range(max_rounds):
            if not self.step():
                break
        return self.traces


def covering_indistinguishability(
    base: AnonymousNetwork,
    base_homes: Sequence[int],
    cover: AnonymousNetwork,
    cover_homes: Sequence[int],
    protocol: AnonymousProtocol,
    rounds: int,
) -> Tuple[List[AnonymousTrace], List[AnonymousTrace]]:
    """Run ``protocol`` on a base network and a covering network.

    The caller must supply networks whose port labelings commute with the
    covering (e.g. natural cycle labelings for C₃ / C₆) and homes that
    project onto each other.  Returns both trace lists; the lifting
    theorem — and the tests — assert that every cover trace equals the
    base trace.
    """
    base_sim = LockstepAnonymousSimulation(base, base_homes, protocol)
    cover_sim = LockstepAnonymousSimulation(cover, cover_homes, protocol)
    return base_sim.run(rounds), cover_sim.run(rounds)


def oriented_ring(n: int) -> AnonymousNetwork:
    """The n-ring with ports 1 (clockwise) / 2 (counter-clockwise).

    Unlike the natural Cayley labeling (whose backward generator is the
    *value* ``n-1`` and therefore differs between C₃ and C₆), this labeling
    is literally identical at every node of every ring, so the quotient map
    ``i ↦ i mod k`` between rings is label-preserving — exactly what the
    covering argument needs.
    """
    edges = [(i, 1, (i + 1) % n, 2) for i in range(n)]
    return AnonymousNetwork(n, edges, name=f"Ring_{n}")


# ----------------------------------------------------------------------
# Reference anonymous protocols (used by tests and the demo)
# ----------------------------------------------------------------------


def make_ring_walker(forward_label: PortLabel, rounds: int = 12) -> AnonymousProtocol:
    """A ring walker that always exits through ``forward_label``.

    On naturally-labeled cycles (ports ``+1``/``-1`` at every node) this is
    a legal anonymous protocol: the label set is identical at every node,
    so "always take +1" needs no identities.  It alternates marking and
    moving, halting after ``rounds`` rounds.
    """

    def protocol(state: Hashable, obs: Observation) -> Tuple[Hashable, Action]:
        round_no = state
        if round_no >= rounds:
            return round_no, ("halt",)
        if round_no % 2 == 0:
            return round_no + 1, ("mark", (round_no,))
        return round_no + 1, ("move", forward_label)

    return protocol
