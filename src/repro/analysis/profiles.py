"""Feasibility profiles: how often is election possible, per family and r?

A descriptive experiment beyond the paper's tables: for each Cayley family,
the fraction of ``r``-agent placements on which election is possible (per
Theorem 4.1's criterion).  The profiles make the structural story visible —
e.g. hypercubes are *always* hopeless at r = 2 (the XOR translation swaps
any pair) while odd cycles are always solvable at r = 2 — and give the
effectualness sweeps a quantitative summary.
"""

from __future__ import annotations

import itertools
import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..core.feasibility import translation_certificates
from ..core.placement import Placement
from ..graphs.automorphisms import color_preserving_automorphisms
from ..graphs.cayley import CayleyGraph
from ..groups.permgroup import find_regular_subgroups


@dataclass(frozen=True)
class FeasibilityProfile:
    """Feasible-placement counts for one family at one agent count."""

    family: str
    num_nodes: int
    agents: int
    sampled: int
    feasible: int

    @property
    def rate(self) -> float:
        return self.feasible / self.sampled if self.sampled else 0.0


def feasibility_profile(
    cayley: CayleyGraph,
    agent_counts: Sequence[int],
    max_per_count: Optional[int] = 40,
    seed: int = 0,
) -> List[FeasibilityProfile]:
    """Profile one Cayley graph across agent counts.

    Placements are normalized to contain node 0 (translations act
    transitively, so every placement is translation-equivalent to one
    containing 0 — sampling those loses no generality and cuts the space
    by a factor of n).  The feasibility test reuses the precomputed
    automorphism group and regular subgroups across all placements.
    """
    network = cayley.network
    n = network.num_nodes
    autos = color_preserving_automorphisms(network)
    subgroups = find_regular_subgroups(autos, n)
    rng = random.Random(seed)
    profiles: List[FeasibilityProfile] = []
    for r in agent_counts:
        if r > n:
            continue
        combos = [
            (0,) + rest
            for rest in itertools.combinations(range(1, n), r - 1)
        ]
        if max_per_count is not None and len(combos) > max_per_count:
            combos = rng.sample(combos, max_per_count)
        feasible = 0
        for homes in combos:
            blacks = set(homes)
            possible = all(
                sum(
                    1
                    for phi in subgroup
                    if all((phi[v] in blacks) == (v in blacks) for v in range(n))
                )
                == 1
                for subgroup in subgroups
            )
            feasible += possible
        profiles.append(
            FeasibilityProfile(
                family=cayley.name,
                num_nodes=n,
                agents=r,
                sampled=len(combos),
                feasible=feasible,
            )
        )
    return profiles


def profile_table(profiles: Sequence[FeasibilityProfile]) -> str:
    """Render profiles as the experiment's output table."""
    from .report import render_table

    header = ["family", "n", "r", "sampled", "feasible", "rate"]
    rows = [
        [p.family, p.num_nodes, p.agents, p.sampled, p.feasible, f"{p.rate:.2f}"]
        for p in profiles
    ]
    return render_table(header, rows)
