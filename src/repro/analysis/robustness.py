"""Robustness analysis: detected-vs-fooled rates per adversary power.

The Byzantine campaign streams a per-power outcome histogram
(:class:`~repro.fault.byzantine_campaign.PowerRateStage`, keys
``p<power>:<outcome>``).  This module turns that flat counter into the
paper-style measurement the robustness PR exists for: at each adversary
power, how often did lying end *detected* or *aborted-correctly* versus
*silently fooled*?

The rate's denominator deliberately counts only runs where the adversary
*changed something* (detected + aborted + fooled): runs the adversary lost
outright — correct elections despite lies — say nothing about the
detector, so they would only dilute the signal.
"""

from __future__ import annotations

from typing import Dict, Mapping, Optional

#: Outcome names (duplicated from the campaign to avoid an import cycle;
#: the campaign's test suite pins the two sets equal).
_DETECTED = "detected"
_ABORTED = "aborted-correctly"
_FOOLED = "silently-fooled"


def power_outcome_table(
    counts: Mapping[str, int]
) -> Dict[int, Dict[str, int]]:
    """Fold ``{"p<k>:<outcome>": n}`` keys into ``{power: {outcome: n}}``.

    Malformed keys (no ``p<int>:`` prefix) are ignored rather than raised:
    the counter is checkpoint state and may meet older layouts.
    """
    table: Dict[int, Dict[str, int]] = {}
    for key, n in counts.items():
        prefix, _, outcome = str(key).partition(":")
        if not outcome or not prefix.startswith("p"):
            continue
        try:
            power = int(prefix[1:])
        except ValueError:
            continue
        row = table.setdefault(power, {})
        row[outcome] = row.get(outcome, 0) + int(n)
    return {power: table[power] for power in sorted(table)}


def detection_rates(
    table: Mapping[int, Mapping[str, int]]
) -> Dict[int, Optional[float]]:
    """Per-power detection rate ``(detected + aborted) / (… + fooled)``.

    ``None`` for powers where the adversary never affected an outcome
    (nothing to detect — typically the whole power-0 column).
    """
    rates: Dict[int, Optional[float]] = {}
    for power in sorted(table):
        row = table[power]
        caught = row.get(_DETECTED, 0) + row.get(_ABORTED, 0)
        fooled = row.get(_FOOLED, 0)
        denominator = caught + fooled
        rates[power] = (caught / denominator) if denominator else None
    return rates


def render_detection_table(table: Mapping[int, Mapping[str, int]]) -> str:
    """Human-readable per-power table with the detection-rate column."""
    rates = detection_rates(table)
    lines = [
        "  power   cases  detected  aborted  fooled  other  detection-rate"
    ]
    for power in sorted(table):
        row = table[power]
        caught = row.get(_DETECTED, 0)
        aborted = row.get(_ABORTED, 0)
        fooled = row.get(_FOOLED, 0)
        total = sum(row.values())
        other = total - caught - aborted - fooled
        rate = rates[power]
        rate_text = "-" if rate is None else f"{rate:.3f}"
        lines.append(
            f"  p={power:<3}  {total:>6}  {caught:>8}  {aborted:>7}  "
            f"{fooled:>6}  {other:>5}  {rate_text:>14}"
        )
    if len(lines) == 1:
        lines.append("  (no cases)")
    return "\n".join(lines)
