"""Plain-text rendering of experiment tables (no plotting dependencies)."""

from __future__ import annotations

from typing import Any, List, Sequence


def render_table(header: Sequence[Any], rows: Sequence[Sequence[Any]]) -> str:
    """Render an aligned ASCII table with a header rule."""
    table = [[str(c) for c in header]] + [[str(c) for c in row] for row in rows]
    widths = [max(len(row[i]) for row in table) for i in range(len(header))]

    def fmt(row: Sequence[str]) -> str:
        return " | ".join(cell.ljust(width) for cell, width in zip(row, widths))

    rule = "-+-".join("-" * w for w in widths)
    lines = [fmt(table[0]), rule]
    lines.extend(fmt(row) for row in table[1:])
    return "\n".join(lines)


def render_kv(title: str, pairs: Sequence[Sequence[Any]]) -> str:
    """Render a titled key/value block."""
    width = max((len(str(k)) for k, _ in pairs), default=0)
    lines = [title, "=" * len(title)]
    lines.extend(f"{str(k).ljust(width)} : {v}" for k, v in pairs)
    return "\n".join(lines)
