"""Instance generators for the experiment sweeps.

An *instance* is a pair ``(G, p)``: an anonymous network plus a placement.
The families below are chosen to cover every regime the paper discusses:

* Cayley graphs (cycles, hypercubes, tori, complete graphs, circulants,
  dihedral Cayley graphs) — the Theorem 4.1 class;
* the Petersen graph — vertex-transitive but not Cayley (Section 4);
* asymmetric graphs (paths, grids, random connected graphs) — where
  generic ELECT usually succeeds;
* ``K_2`` — the paper's counterexample to universality in the qualitative
  world.
"""

from __future__ import annotations

import itertools
import random
from dataclasses import dataclass
from typing import Callable, Iterator, List, Optional, Sequence, Tuple

from ..core.placement import Placement, all_placements
from ..graphs.builders import (
    complete_bipartite_graph,
    complete_graph,
    cycle_graph,
    grid_graph,
    path_graph,
    petersen_graph,
    random_connected_graph,
)
from ..graphs.cayley import (
    CayleyGraph,
    circulant_cayley,
    complete_cayley,
    cycle_cayley,
    dihedral_cayley,
    hypercube_cayley,
    torus_cayley,
)
from ..graphs.network import AnonymousNetwork
from ..obs import flight
from ..perf import ParallelBatteryRunner


@dataclass(frozen=True)
class Instance:
    """One election problem instance ``(G, p)`` with provenance."""

    network: AnonymousNetwork
    placement: Placement
    family: str

    @property
    def label(self) -> str:
        return f"{self.family}[{','.join(map(str, self.placement.homes))}]"


def evaluate_battery(
    instances: Sequence[Instance],
    evaluate: Callable[[Instance], object],
    runner: Optional["ParallelBatteryRunner"] = None,
    workers: Optional[int] = 1,
) -> List[object]:
    """Apply ``evaluate`` to every instance, optionally in parallel.

    Results come back in input order regardless of the executor, so callers
    can reduce them exactly as a serial loop would (the Table 1 cells are
    byte-identical for any worker count).  ``evaluate`` must be a picklable
    module-level callable when ``workers > 1`` with the process executor.

    Batteries are runs of consecutive instances over the same network (see
    :func:`instances_for`); each run's network crosses into process workers
    once as shared-memory flat buffers via
    :meth:`~repro.perf.parallel.ParallelBatteryRunner.map_on_network`,
    and workers rebuild the ``Instance`` around the attached network — the
    per-task payload shrinks to ``(placement, family)`` plus any extra
    tuple elements.  Items may be bare instances or tuples whose first
    element is the instance (the ``(instance, seed)`` shape of the Table 1
    batteries); anything else falls back to the plain pickled map.
    """
    if runner is None:
        runner = ParallelBatteryRunner(workers=workers)
    instances = list(instances)
    with flight.entrypoint_span(
        "evaluate_battery", len(instances), items=len(instances)
    ):
        if runner.is_serial or len(instances) <= 1:
            return runner.map(evaluate, instances)
        anchors = [_instance_of(item) for item in instances]
        if any(anchor is None for anchor in anchors):
            return runner.map(evaluate, instances)
        results: List[object] = []
        adapter = _EvaluateOnNetwork(evaluate)
        start = 0
        while start < len(instances):
            network = anchors[start].network
            stop = start
            while stop < len(instances) and anchors[stop].network is network:
                stop += 1
            payloads = [
                _strip_network(instances[k], anchors[k])
                for k in range(start, stop)
            ]
            results.extend(runner.map_on_network(adapter, network, payloads))
            start = stop
        return results


def _instance_of(item: object) -> Optional[Instance]:
    """The instance anchoring an item (bare, or first element of a tuple)."""
    if isinstance(item, Instance):
        return item
    if isinstance(item, tuple) and item and isinstance(item[0], Instance):
        return item[0]
    return None


def _strip_network(item: object, anchor: Instance) -> Tuple:
    """The network-free payload shipped per task: (placement, family, rest).

    ``rest`` is ``None`` for a bare instance and the trailing tuple elements
    otherwise, so the worker can rebuild the exact original item shape.
    """
    rest = None if isinstance(item, Instance) else tuple(item[1:])
    return (anchor.placement, anchor.family, rest)


class _EvaluateOnNetwork:
    """Picklable adapter rebuilding the original item worker-side."""

    def __init__(self, evaluate: Callable[[Instance], object]):
        self.evaluate = evaluate

    def __call__(self, network: AnonymousNetwork, item: Tuple) -> object:
        placement, family, rest = item
        instance = Instance(network, placement, family)
        if rest is None:
            return self.evaluate(instance)
        return self.evaluate((instance, *rest))


def instances_for(
    network: AnonymousNetwork,
    family: str,
    agent_counts: Sequence[int],
    max_per_count: Optional[int] = None,
    seed: int = 0,
) -> List[Instance]:
    """All (or a seeded sample of) placements with the given agent counts."""
    rng = random.Random(seed)
    out: List[Instance] = []
    for r in agent_counts:
        if r > network.num_nodes:
            continue
        placements = all_placements(network, r)
        if max_per_count is not None and len(placements) > max_per_count:
            placements = rng.sample(placements, max_per_count)
        out.extend(Instance(network, p, family) for p in placements)
    return out


def small_cayley_graphs(extended: bool = False) -> List[CayleyGraph]:
    """The Cayley battery for the Theorem 4.1 effectualness sweep.

    ``extended=True`` adds the larger interconnection families (CCC,
    wrapped butterfly, quaternion Cayley graph) used by the full benches.
    """
    battery = [
        cycle_cayley(4),
        cycle_cayley(5),
        cycle_cayley(6),
        cycle_cayley(7),
        complete_cayley(4),
        complete_cayley(5),
        circulant_cayley(8, [1, 2]),
        hypercube_cayley(3),
        dihedral_cayley(3),
        torus_cayley([3, 3]),
    ]
    if extended:
        from ..graphs.cayley import (
            cube_connected_cycles,
            star_graph_cayley,
            wrapped_butterfly_cayley,
        )
        from ..groups.quaternion import quaternion_cayley

        battery += [
            quaternion_cayley(),
            cube_connected_cycles(3),
            wrapped_butterfly_cayley(3),
            star_graph_cayley(4),
        ]
    return battery


def cayley_effectualness_instances(
    agent_counts: Sequence[int] = (1, 2, 3),
    max_per_count: int = 12,
    seed: int = 0,
    extended: bool = False,
) -> List[Instance]:
    """Instances for the exhaustive/sampled Theorem 4.1 verification."""
    out: List[Instance] = []
    for cg in small_cayley_graphs(extended=extended):
        out.extend(
            instances_for(
                cg.network,
                cg.name,
                agent_counts,
                max_per_count=max_per_count,
                seed=seed,
            )
        )
    return out


def asymmetric_instances(seed: int = 0) -> List[Instance]:
    """Instances on graphs with little or no symmetry (ELECT succeeds)."""
    rng = random.Random(seed)
    out: List[Instance] = []
    for n in (5, 7, 9):
        net = path_graph(n)
        out.extend(instances_for(net, f"P_{n}", (1, 2, 3), max_per_count=8, seed=seed))
    grid = grid_graph(3, 4)
    out.extend(instances_for(grid, "Grid3x4", (2, 3), max_per_count=8, seed=seed))
    for i in range(3):
        net = random_connected_graph(8, 0.4, rng=random.Random(seed + i))
        out.extend(
            instances_for(net, f"GNP8#{i}", (2, 3), max_per_count=6, seed=seed + i)
        )
    return out


def impossibility_instances() -> List[Instance]:
    """Canonical impossible instances (gcd > 1 with certificates)."""
    return [
        Instance(complete_graph(2), Placement.of([0, 1]), "K_2"),
        Instance(cycle_graph(4), Placement.of([0, 2]), "C_4-antipodal"),
        Instance(cycle_graph(4), Placement.of([0, 1]), "C_4-adjacent"),
        Instance(cycle_graph(6), Placement.of([0, 3]), "C_6-antipodal"),
        Instance(cycle_graph(6), Placement.of([0, 2, 4]), "C_6-thirds"),
        Instance(hypercube_cayley(3).network, Placement.of([0, 7]), "Q_3-antipodal"),
    ]


def petersen_duel_instances() -> List[Instance]:
    """The Figure 5 setting: two adjacent agents on the Petersen graph."""
    net = petersen_graph()
    pairs = []
    for (u, _, v, _) in net.edges():
        pairs.append(Instance(net, Placement.of([u, v]), "Petersen-adjacent"))
    return pairs


def quantitative_battery(seed: int = 0) -> List[Instance]:
    """Instances where the quantitative protocol must elect although the
    qualitative one cannot (plus a few easy cases)."""
    out = impossibility_instances()
    out += [
        Instance(cycle_graph(5), Placement.of([0, 1]), "C_5"),
        Instance(complete_bipartite_graph(2, 3), Placement.of(range(5)), "K_2,3"),
        Instance(petersen_graph(), Placement.of([0, 1]), "Petersen-adjacent"),
    ]
    return out


#: Named battery registry: every sweep the CLI layers (``repro.analysis``,
#: ``repro.serve warm``) can address by name.  Each value is a zero-config
#: callable returning a deterministic instance list.
BATTERIES: dict = {
    "impossibility": impossibility_instances,
    "asymmetric": asymmetric_instances,
    "petersen-duel": petersen_duel_instances,
    "quantitative": quantitative_battery,
    "cayley-effectualness": cayley_effectualness_instances,
}


def battery_by_name(name: str) -> List[Instance]:
    """Instances of the named battery (see :data:`BATTERIES`).

    Raises ``KeyError``-free :class:`ValueError` with the known names, so
    CLI callers can surface it verbatim.
    """
    try:
        builder = BATTERIES[name]
    except KeyError:
        raise ValueError(
            f"unknown battery {name!r}; one of {', '.join(sorted(BATTERIES))}"
        )
    return builder()
