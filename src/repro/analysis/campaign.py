"""Table-1 batteries as streaming campaigns.

The analysis batteries (:data:`repro.analysis.instances.BATTERIES`) were
the last sweep family still shaped as "evaluate a list, keep the list":
fine for Table 1's dozens of cells, wrong for the randomized
million-placement sweeps the ROADMAP asks for.  This module projects a
named battery onto the :class:`repro.campaign.CampaignSpec` contract so
battery sweeps get the engine's streaming, sharding, checkpoint/resume
and ledger digests for free.

A case is ``(instance, repetition)``: repetition ``k`` of instance ``j``
re-runs ELECT under a fresh schedule/port-shuffle seed derived from the
case index, and the outcome is classified against the Theorem 3.1
prediction with the fault campaign's vocabulary (``elected-correctly`` /
``detected-stall`` / ``silent-wrong-answer`` — there is no fault plan and
no watchdog here, so ``recovered`` cannot occur and any wrong completed
answer is immediately the impossible bucket).
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..campaign.engine import (
    CampaignEngine,
    CampaignRunResult,
    CampaignSpec,
    FailureKeeper,
    OutcomeCounter,
    RowCollector,
    Shard,
    Stage,
)
from ..core.feasibility import elect_prediction
from ..errors import ReproError
from ..fault.campaign import DETECTED, ELECTED, IMPOSSIBLE
from ..obs import flight
from ..obs.ledger import LedgerRow
from .instances import Instance, battery_by_name

__all__ = [
    "BatteryCampaignSpec",
    "BatteryRow",
    "run_battery_campaign",
]


@dataclass
class BatteryRow:
    """One classified ``(instance, repetition)`` election run."""

    index: int
    instance: str
    family: str
    predicted: bool
    outcome: str
    detail: str = ""
    moves: int = 0
    steps: int = 0

    def to_dict(self) -> Dict[str, Any]:
        return {
            "index": self.index,
            "instance": self.instance,
            "family": self.family,
            "predicted": self.predicted,
            "outcome": self.outcome,
            "detail": self.detail,
            "moves": self.moves,
            "steps": self.steps,
        }


def _case_seed(seed: int, index: int, label: str) -> int:
    """Stable per-case seed (no ``hash()``: must survive process hopping)."""
    return zlib.crc32(f"battery:{seed}:{index}:{label}".encode("utf-8"))


def _case_context(seed: int, index: int, label: str) -> "flight.TraceContext":
    return flight.TraceContext.mint("battery-case", f"{seed}:{index}:{label}")


def _evaluate_instance(task: Tuple[int, Instance, int]) -> BatteryRow:
    """Run and classify one case.  Module-level: pickled to pool workers."""
    from ..core.runner import run_elect

    index, instance, sweep_seed = task
    case_seed = _case_seed(sweep_seed, index, instance.label)
    predicted = elect_prediction(instance.network, instance.placement).succeeds
    row = BatteryRow(
        index=index,
        instance=instance.label,
        family=instance.family,
        predicted=predicted,
        outcome=DETECTED,
    )
    try:
        outcome = run_elect(
            instance.network,
            instance.placement,
            seed=case_seed,
            port_shuffle_seed=case_seed,
        )
    except ReproError as exc:
        # No faults are injected, so a loud failure here is at least
        # *detected* — but it still fails the sweep via the counts below.
        row.detail = f"{type(exc).__name__}: {exc}"
        return row
    row.moves = outcome.total_moves
    row.steps = outcome.steps
    correct = (
        outcome.elected
        if predicted
        else (not outcome.elected and outcome.failed)
    )
    if correct:
        row.outcome = ELECTED
        if not predicted:
            row.detail = "correctly reported failure"
    else:
        row.outcome = IMPOSSIBLE
        got = "elected" if outcome.elected else "failed"
        row.detail = (
            f"predicted {'electable' if predicted else 'impossible'} "
            f"but run {got}"
        )
    return row


class BatteryCampaignSpec(CampaignSpec):
    """A named analysis battery × ``repetitions`` schedule seeds."""

    kind = "battery"
    span_name = "battery.case"

    def __init__(
        self,
        battery: str = "quantitative",
        repetitions: int = 1,
        seed: int = 0,
        instances: Optional[Sequence[Instance]] = None,
        collect: bool = False,
    ):
        if repetitions < 1:
            raise ValueError(f"repetitions must be >= 1, got {repetitions}")
        self.battery = battery
        self.repetitions = repetitions
        self.seed = seed
        self.instances = (
            list(instances) if instances is not None else battery_by_name(battery)
        )
        if not self.instances:
            raise ValueError(f"battery {battery!r} is empty")
        self.campaign = f"battery:{battery}:seed={seed}:reps={repetitions}"
        self._chash_cache: Dict[str, Tuple[str, float]] = {}
        self.counter = OutcomeCounter()
        self.failures = FailureKeeper(self.case_failed)
        self.collector: Optional[RowCollector] = (
            RowCollector() if collect else None
        )

    @property
    def total(self) -> int:
        return len(self.instances) * self.repetitions

    def task(self, index: int) -> Tuple[int, Instance, int]:
        return (index, self.instances[index % len(self.instances)], self.seed)

    @property
    def evaluate(self) -> Any:
        return _evaluate_instance

    def context(self, index: int) -> "flight.TraceContext":
        instance = self.instances[index % len(self.instances)]
        return _case_context(self.seed, index, instance.label)

    def ledger_row(self, index: int, row: BatteryRow) -> LedgerRow:
        from ..graphs.canonical import canonical_hash
        from ..trace.invariants import THEOREM31_CONSTANT

        instance = self.instances[index % len(self.instances)]
        cached = self._chash_cache.get(instance.label)
        if cached is None:
            chash = canonical_hash(
                instance.network,
                instance.placement.bicoloring(instance.network),
            )
            budget = (
                THEOREM31_CONSTANT
                * instance.placement.num_agents
                * max(1, instance.network.num_edges)
            )
            cached = (chash, budget)
            self._chash_cache[instance.label] = cached
        chash, budget = cached
        ctx = _case_context(self.seed, index, instance.label)
        return LedgerRow(
            kind=self.kind,
            campaign=self.campaign,
            case_index=row.index,
            instance=row.instance,
            family=row.family,
            chash=chash,
            seed=_case_seed(self.seed, index, instance.label),
            predicted="electable" if row.predicted else "impossible",
            outcome=row.outcome,
            detail=row.detail,
            moves=row.moves,
            budget=budget,
            steps=row.steps,
            trace_id=ctx.trace_id,
            span_id=ctx.span_id,
        )

    def spill_record(self, index: int, row: BatteryRow) -> Dict[str, Any]:
        record = row.to_dict()
        record["case_index"] = index
        return record

    def case_failed(self, row: BatteryRow) -> bool:
        # Strict: the batteries run fault-free, so anything short of the
        # predicted outcome (including loud failures) fails the sweep.
        return row.outcome != ELECTED

    def stages(self) -> Sequence[Stage]:
        stages: List[Stage] = [self.counter, self.failures]
        if self.collector is not None:
            stages.append(self.collector)
        return stages

    def describe(self) -> Dict[str, Any]:
        return {
            "kind": self.kind,
            "campaign": self.campaign,
            "battery": self.battery,
            "seed": self.seed,
            "repetitions": self.repetitions,
            "instances": [inst.label for inst in self.instances],
        }


def run_battery_campaign(
    battery: str = "quantitative",
    repetitions: int = 1,
    seed: int = 0,
    instances: Optional[Sequence[Instance]] = None,
    workers: Optional[int] = 1,
    ledger: Optional[Any] = None,
    shard: Optional[Any] = None,
    resume: bool = False,
    checkpoint_every: int = 64,
    max_cases: Optional[int] = None,
    spill: Optional[str] = None,
) -> CampaignRunResult:
    """Sweep a named battery on the campaign engine; return the run result.

    The new-style frontend: no in-memory report object, just the engine's
    :class:`~repro.campaign.CampaignRunResult` (streamed counts, resume
    accounting, ledger digest) plus whatever landed in the ledger/spill.
    """
    spec = BatteryCampaignSpec(
        battery=battery,
        repetitions=repetitions,
        seed=seed,
        instances=instances,
    )
    if shard is None:
        shard = Shard()
    elif not isinstance(shard, Shard):
        shard = Shard.parse(shard)
    engine = CampaignEngine(
        spec,
        ledger=ledger,
        workers=workers,
        shard=shard,
        checkpoint_every=checkpoint_every,
        max_cases=max_cases,
        spill=spill,
    )
    return engine.run(resume=resume)
