"""Experiment harness: instance batteries, Table 1 matrix, complexity sweeps."""

from .campaign import (
    BatteryCampaignSpec,
    BatteryRow,
    run_battery_campaign,
)
from .complexity import (
    ComplexityFit,
    ComplexityPoint,
    complexity_sweep,
    default_families,
    fit_complexity,
    max_ratio,
    ratio_table,
)
from .instances import (
    BATTERIES,
    Instance,
    asymmetric_instances,
    battery_by_name,
    cayley_effectualness_instances,
    impossibility_instances,
    instances_for,
    petersen_duel_instances,
    quantitative_battery,
    small_cayley_graphs,
)
from .profiles import FeasibilityProfile, feasibility_profile, profile_table
from .matrix import (
    PAPER_TABLE1,
    CellResult,
    Table1Result,
    reproduce_table1,
)
from .report import render_kv, render_table
from .robustness import (
    detection_rates,
    power_outcome_table,
    render_detection_table,
)

__all__ = [
    "BATTERIES",
    "BatteryCampaignSpec",
    "BatteryRow",
    "run_battery_campaign",
    "Instance",
    "battery_by_name",
    "instances_for",
    "small_cayley_graphs",
    "cayley_effectualness_instances",
    "asymmetric_instances",
    "impossibility_instances",
    "petersen_duel_instances",
    "quantitative_battery",
    "PAPER_TABLE1",
    "CellResult",
    "Table1Result",
    "reproduce_table1",
    "ComplexityPoint",
    "ComplexityFit",
    "fit_complexity",
    "complexity_sweep",
    "default_families",
    "max_ratio",
    "ratio_table",
    "render_table",
    "render_kv",
    "FeasibilityProfile",
    "feasibility_profile",
    "profile_table",
    "detection_rates",
    "power_outcome_table",
    "render_detection_table",
]
