"""Exception hierarchy for the ``repro`` package.

All library-raised exceptions derive from :class:`ReproError` so callers can
catch the whole family with a single ``except`` clause.  The hierarchy mirrors
the layers of the system: model violations (qualitative-model cheating),
graph-structure errors, simulation errors, and protocol-level outcomes that
are exceptional (deadlock, budget exhaustion).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all exceptions raised by the ``repro`` package."""


class IncomparabilityError(ReproError, TypeError):
    """Raised when code attempts to order qualitative labels.

    The qualitative model (paper Section 1.2) only permits equality tests
    between colors.  Any attempt to evaluate ``<``, ``<=``, ``>`` or ``>=``
    on a :class:`repro.colors.Color` raises this error, which doubles as a
    runtime guard that protocols under test do not silently rely on a total
    order.
    """


class GroupError(ReproError):
    """Raised for invalid group-theoretic constructions.

    Examples: a generating set that is not closed under inverses, an element
    that does not belong to the group, or a generating set that does not
    generate the whole group when one is required.
    """


class GraphError(ReproError):
    """Raised for structurally invalid networks.

    Examples: duplicate port labels at a node, a disconnected graph passed
    where the paper assumes connectivity, or an edge endpoint that does not
    exist.
    """


class PlacementError(ReproError):
    """Raised for invalid agent placements (e.g. two agents on one node)."""


class SimulationError(ReproError):
    """Base class for errors raised by the mobile-agent runtime."""


class DeadlockError(SimulationError):
    """Raised when no agent can make progress but none has terminated.

    A correct run of a paper protocol never deadlocks; this error indicates
    either a protocol bug or an intentionally adversarial scenario used by
    the impossibility-side experiments.
    """


class StallDetected(DeadlockError):
    """Raised by the watchdog when stalled agents exhaust their recovery budget.

    A refinement of :class:`DeadlockError`: the run was supervised by a
    :class:`~repro.fault.watchdog.Watchdog`, the stall was *classified*
    (per-agent blocked durations, restart attempts consumed), and recovery
    either was disabled or did not unstick the run.  Catching
    ``DeadlockError`` catches this too, so existing impossibility-side
    handlers keep working under supervision.
    """


class CheatDetected(SimulationError):
    """Raised when the cheat-detection audit aborts a run on live evidence.

    Only raised when a :class:`~repro.fault.detect.CheatDetector` runs with
    ``abort=True`` (the game-theory exemplar's abort-on-detection policy)
    and its periodic sweep finds fresh evidence — a forged-provenance sign,
    a cross-board consistency violation, or (at the strictest level)
    replay/gap anomalies.  The message carries the first finding; the
    detector object keeps the full list.  A run ending this way is a
    *successful* detection: the Byzantine campaign classifies it as
    ``aborted-correctly``, never as a silent wrong answer.
    """


class StepBudgetExceeded(SimulationError):
    """Raised when a simulation exceeds its configured step budget.

    Used to bound executions of protocols on instances where the protocol is
    not guaranteed to terminate (e.g. symmetric executions driven by an
    adversarial scheduler).
    """


class FaultError(ReproError):
    """Raised for invalid fault-injection configurations.

    Examples: a :class:`~repro.fault.plan.FaultPlan` targeting an agent or
    node the instance does not have, or an unknown action kind in a
    crash-on-action spec.  Note that *injected* faults never raise this —
    they surface as classified stalls or detected corruption; this error is
    strictly about misconfigured plans.
    """


class ProtocolError(ReproError):
    """Raised when an agent protocol violates its own invariants."""


class AdversaryError(ReproError):
    """Raised for invalid adversarial-testing configurations and artifacts.

    Examples: an unknown scheduler spec handed to the interleaving fuzzer,
    a reproducer artifact with an unsupported version, or a minimization
    request whose recorded schedule does not reproduce its failure in the
    first place.  Like :class:`FaultError`, this is strictly about
    *misconfiguration* — failures the fuzzer discovers surface as
    classified report rows, never as this error.
    """


class TraceError(ReproError):
    """Base class for errors raised by the trace subsystem.

    Examples: a malformed trace file, an event stream with gaps in its step
    sequence, or a trace whose header lacks the metadata an operation needs.
    """


class ReplayDivergence(TraceError):
    """Raised when a replayed run departs from its recorded schedule.

    A recorded schedule replays bit-for-bit only on the same instance
    (network, placements, agents, seeds).  If the replayed simulation asks
    the :class:`~repro.trace.replay.ReplayScheduler` for a step the
    recording never took — or the recorded agent is not runnable at that
    point — the executions have diverged and this error reports where.

    Structured fields (all optional, ``None`` when inapplicable) let tools
    inspect the divergence without parsing the message: ``step`` is the
    0-based replay step at which it was detected, ``expected`` the recorded
    choice (or runnable-set size, for a size-check divergence), and
    ``runnable`` the live runnable set at that step.
    """

    def __init__(
        self,
        message: str,
        *,
        step: "int | None" = None,
        expected: "int | None" = None,
        runnable: "tuple | None" = None,
    ):
        super().__init__(message)
        self.step = step
        self.expected = expected
        self.runnable = tuple(runnable) if runnable is not None else None


class InvariantViolation(TraceError):
    """Raised when a trace-level invariant audit fails.

    Each violation names the failing checker (mutual exclusion, accounting
    agreement, the Theorem 3.1 ``O(r·|E|)`` bound, …) and the offending
    step/agent so the trace can be inspected around the failure point.
    """


class MetricsError(ReproError):
    """Raised for invalid metrics-registry usage.

    Examples: registering one metric name as two different types,
    decrementing a counter, or asking an exporter for an unknown format.
    Note that *high label cardinality* does not raise — the registry folds
    excess series into an overflow series and records a structured finding
    instead, so instrumentation can never crash the instrumented run.
    """


class RecognitionError(ReproError):
    """Raised when Cayley-graph recognition fails or is ambiguous."""


class ReproductionError(ReproError):
    """Raised when an empirical reproduction contradicts the paper.

    The Table 1 matrix and the certificate helpers raise this (instead of
    ``assert``, which ``python -O`` would strip) when a protocol outcome or
    an impossibility certificate disagrees with the paper's claim — e.g. a
    quantitative election failing on a feasible instance, or the Petersen
    duel not electing.  The message names the offending instance.
    """


class ServeError(ReproError):
    """Raised by the election service layer (:mod:`repro.serve`).

    Covers malformed query payloads (unknown op, bad network spec,
    out-of-range homes), persistent-store corruption or schema-version
    mismatches, and client-side protocol failures.  HTTP handlers catch it
    and translate to a 4xx/5xx JSON error body; everything else escaping a
    handler is a 500.
    """


class CampaignError(ReproError):
    """Raised for invalid campaign-engine configurations and resume states.

    Examples: a shard spec outside ``0 <= index < count``, resuming a
    checkpoint whose configuration fingerprint does not match the grid
    being run, or re-running a campaign shard into a ledger that already
    holds its checkpoint without asking for ``resume``.  Like
    :class:`FaultError` and :class:`AdversaryError`, this is strictly
    about *misconfiguration* — failures a campaign discovers surface as
    classified rows and a non-zero exit code, never as this error.
    """
