"""Finite group abstraction used to build Cayley graphs.

A :class:`FiniteGroup` exposes the minimal interface the paper's machinery
needs: an element set, the group operation, inverses, and an identity.
Elements are arbitrary hashable Python values; each concrete subclass picks
its own representation (integers mod *n*, tuples, permutations, …).

Design notes
------------
* All groups here are *finite* and small enough to enumerate — the paper's
  networks are laptop-scale interconnection topologies.
* ``operate(a, b)`` computes the product ``a · b``.  For a Cayley graph
  ``Cay(Γ, S)`` the neighbors of node ``g`` are ``{g · s : s ∈ S}``
  (generators act on the right), while *translations* ``x ↦ γ · x`` act on
  the left — the distinction Theorem 4.1's proof leans on.
* :meth:`FiniteGroup.require_symmetric_generating_set` validates the paper's
  standing assumption ``S = S⁻¹`` and that ``S`` generates the whole group
  (so the Cayley graph is connected, as the paper assumes).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Dict, Hashable, Iterable, List, Sequence, Set, Tuple

from ..errors import GroupError

GroupElement = Hashable


class FiniteGroup(ABC):
    """Abstract finite group.

    Subclasses must implement element enumeration, the operation, inverse,
    and identity.  Everything else (order, closure checks, generated
    subgroup computation) is derived here.
    """

    @abstractmethod
    def elements(self) -> Sequence[GroupElement]:
        """All elements of the group, in a deterministic order."""

    @abstractmethod
    def operate(self, a: GroupElement, b: GroupElement) -> GroupElement:
        """The group product ``a · b``."""

    @abstractmethod
    def inverse(self, a: GroupElement) -> GroupElement:
        """The inverse ``a⁻¹``."""

    @abstractmethod
    def identity(self) -> GroupElement:
        """The identity element."""

    # ------------------------------------------------------------------
    # Derived functionality
    # ------------------------------------------------------------------

    @property
    def order(self) -> int:
        """The number of elements of the group."""
        return len(self.elements())

    def contains(self, a: GroupElement) -> bool:
        """Membership test (by enumeration; subclasses may override)."""
        return a in set(self.elements())

    def power(self, a: GroupElement, k: int) -> GroupElement:
        """Compute ``a^k`` for any integer ``k`` (square-and-multiply)."""
        if k < 0:
            return self.power(self.inverse(a), -k)
        result = self.identity()
        base = a
        while k:
            if k & 1:
                result = self.operate(result, base)
            base = self.operate(base, base)
            k >>= 1
        return result

    def element_order(self, a: GroupElement) -> int:
        """The multiplicative order of ``a``."""
        e = self.identity()
        current = a
        n = 1
        while current != e:
            current = self.operate(current, a)
            n += 1
            if n > self.order:
                raise GroupError(f"element {a!r} does not appear to have finite order")
        return n

    def conjugate(self, a: GroupElement, g: GroupElement) -> GroupElement:
        """Return ``g · a · g⁻¹``."""
        return self.operate(self.operate(g, a), self.inverse(g))

    def commutator(self, a: GroupElement, b: GroupElement) -> GroupElement:
        """Return ``a · b · a⁻¹ · b⁻¹``."""
        return self.operate(
            self.operate(a, b), self.operate(self.inverse(a), self.inverse(b))
        )

    def is_abelian(self) -> bool:
        """Check commutativity by exhausting pairs (small groups only)."""
        elems = self.elements()
        return all(
            self.operate(a, b) == self.operate(b, a)
            for i, a in enumerate(elems)
            for b in elems[i + 1 :]
        )

    def generated_subgroup(self, generators: Iterable[GroupElement]) -> Set[GroupElement]:
        """Closure of ``generators`` under the operation and inverses."""
        gens = list(generators)
        for g in gens:
            if not self.contains(g):
                raise GroupError(f"generator {g!r} is not a group element")
        closure: Set[GroupElement] = {self.identity()}
        frontier: List[GroupElement] = [self.identity()]
        step_gens = gens + [self.inverse(g) for g in gens]
        while frontier:
            x = frontier.pop()
            for g in step_gens:
                y = self.operate(x, g)
                if y not in closure:
                    closure.add(y)
                    frontier.append(y)
        return closure

    def generates(self, generators: Iterable[GroupElement]) -> bool:
        """Whether ``generators`` generate the entire group."""
        return len(self.generated_subgroup(generators)) == self.order

    def is_symmetric_generating_set(self, gens: Sequence[GroupElement]) -> bool:
        """Whether ``S = S⁻¹``, ``id ∉ S``, and ``S`` has no duplicates."""
        seen = set(gens)
        if len(seen) != len(gens):
            return False
        if self.identity() in seen:
            return False
        return all(self.inverse(g) in seen for g in gens)

    def require_symmetric_generating_set(self, gens: Sequence[GroupElement]) -> None:
        """Validate the paper's assumptions on ``S`` or raise :class:`GroupError`."""
        seen = set(gens)
        if len(seen) != len(gens):
            raise GroupError("generating set contains duplicates")
        if self.identity() in seen:
            raise GroupError("generating set must not contain the identity")
        for g in gens:
            if not self.contains(g):
                raise GroupError(f"generator {g!r} is not a group element")
            if self.inverse(g) not in seen:
                raise GroupError(
                    f"generating set is not symmetric: inverse of {g!r} missing"
                )
        if not self.generates(gens):
            raise GroupError("set does not generate the group (graph would be disconnected)")

    def cayley_table(self) -> Dict[Tuple[GroupElement, GroupElement], GroupElement]:
        """The full multiplication table (testing/diagnostics helper)."""
        elems = self.elements()
        return {(a, b): self.operate(a, b) for a in elems for b in elems}

    def check_axioms(self) -> None:
        """Verify the group axioms by brute force (tests only).

        Raises :class:`GroupError` on the first violated axiom.  Cost is
        O(n³) for associativity, so call this only on small groups.
        """
        elems = list(self.elements())
        e = self.identity()
        elem_set = set(elems)
        if len(elem_set) != len(elems):
            raise GroupError("duplicate elements in enumeration")
        if e not in elem_set:
            raise GroupError("identity not among elements")
        for a in elems:
            if self.operate(a, e) != a or self.operate(e, a) != a:
                raise GroupError(f"identity axiom fails for {a!r}")
            inv = self.inverse(a)
            if inv not in elem_set:
                raise GroupError(f"inverse of {a!r} not an element")
            if self.operate(a, inv) != e or self.operate(inv, a) != e:
                raise GroupError(f"inverse axiom fails for {a!r}")
        for a in elems:
            for b in elems:
                ab = self.operate(a, b)
                if ab not in elem_set:
                    raise GroupError(f"closure fails for {a!r}, {b!r}")
                for c in elems:
                    if self.operate(ab, c) != self.operate(a, self.operate(b, c)):
                        raise GroupError(f"associativity fails for {a!r}, {b!r}, {c!r}")

    def __len__(self) -> int:
        return self.order

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(order={self.order})"
