"""Semidirect products — the algebra behind CCC and wrapped butterflies.

The cube-connected-cycles and wrapped-butterfly networks the paper lists
among classical Cayley interconnection topologies are Cayley graphs of the
semidirect product ``ℤ_2^d ⋊ ℤ_d``, where ℤ_d acts on the hypercube group
by cyclically rotating coordinates.

:class:`SemidirectProductGroup` implements the general construction
``N ⋊_φ H``: elements are pairs ``(n, h)`` with

    ``(n1, h1) · (n2, h2) = (n1 · φ_{h1}(n2),  h1 · h2)``

for a homomorphism ``φ : H → Aut(N)`` supplied as a callable.  The inverse
is ``(n, h)⁻¹ = (φ_{h⁻¹}(n⁻¹), h⁻¹)``.
"""

from __future__ import annotations

from typing import Callable, List, Sequence, Tuple

from ..errors import GroupError
from .base import FiniteGroup, GroupElement
from .cyclic import CyclicGroup
from .product import DirectProductGroup

#: The action: maps an H-element to an automorphism of N (a callable on
#: N-elements).  Homomorphism-ness is validated on construction for small
#: groups via :meth:`SemidirectProductGroup.check_action`.
Action = Callable[[GroupElement], Callable[[GroupElement], GroupElement]]


class SemidirectProductGroup(FiniteGroup):
    """The outer semidirect product ``N ⋊_φ H``."""

    def __init__(
        self,
        normal: FiniteGroup,
        acting: FiniteGroup,
        action: Action,
        validate: bool = True,
    ):
        self.normal = normal
        self.acting = acting
        self.action = action
        self._elements: List[Tuple[GroupElement, GroupElement]] = [
            (n, h) for h in acting.elements() for n in normal.elements()
        ]
        if validate:
            self.check_action()

    # -- FiniteGroup interface ------------------------------------------

    def elements(self) -> Sequence[GroupElement]:
        return self._elements

    def operate(self, a: GroupElement, b: GroupElement) -> GroupElement:
        n1, h1 = a
        n2, h2 = b
        return (
            self.normal.operate(n1, self.action(h1)(n2)),
            self.acting.operate(h1, h2),
        )

    def inverse(self, a: GroupElement) -> GroupElement:
        n, h = a
        h_inv = self.acting.inverse(h)
        return (self.action(h_inv)(self.normal.inverse(n)), h_inv)

    def identity(self) -> GroupElement:
        return (self.normal.identity(), self.acting.identity())

    def contains(self, a: GroupElement) -> bool:
        if not isinstance(a, tuple) or len(a) != 2:
            return False
        n, h = a
        return self.normal.contains(n) and self.acting.contains(h)

    # -- validation -------------------------------------------------------

    def check_action(self) -> None:
        """Verify φ maps into Aut(N) homomorphically (small groups only).

        Checks, exhaustively: each ``φ_h`` is a bijective homomorphism of
        ``N``; ``φ_{h1·h2} = φ_{h1} ∘ φ_{h2}``; and ``φ_e = id``.
        """
        n_elems = list(self.normal.elements())
        h_elems = list(self.acting.elements())
        e_h = self.acting.identity()
        for n in n_elems:
            if self.action(e_h)(n) != n:
                raise GroupError("action of the identity is not the identity map")
        for h in h_elems:
            phi = self.action(h)
            images = [phi(n) for n in n_elems]
            if len(set(images)) != len(n_elems):
                raise GroupError(f"action of {h!r} is not a bijection of N")
            for a in n_elems:
                for b in n_elems:
                    if phi(self.normal.operate(a, b)) != self.normal.operate(
                        phi(a), phi(b)
                    ):
                        raise GroupError(f"action of {h!r} is not a homomorphism")
        for h1 in h_elems:
            for h2 in h_elems:
                combined = self.action(self.acting.operate(h1, h2))
                composed = self.action(h1)
                inner = self.action(h2)
                for n in n_elems:
                    if combined(n) != composed(inner(n)):
                        raise GroupError(
                            "action is not a homomorphism H -> Aut(N): "
                            f"φ_(h1 h2) != φ_h1 ∘ φ_h2 at ({h1!r}, {h2!r})"
                        )

    def __repr__(self) -> str:
        return (
            f"SemidirectProductGroup(|N|={self.normal.order}, "
            f"|H|={self.acting.order})"
        )


def hypercube_rotation_group(d: int, validate: bool = False) -> SemidirectProductGroup:
    """``ℤ_2^d ⋊ ℤ_d`` with ℤ_d cyclically rotating hypercube coordinates.

    The common algebraic substrate of CCC(d) and the wrapped butterfly
    BF(d).  ``validate=True`` runs the exhaustive action check — O(|N|²·
    |H|²) — so it defaults off for d ≥ 4 and is exercised by tests at d=3.
    """
    if d < 2:
        raise GroupError("need dimension >= 2")
    cube = DirectProductGroup(*(CyclicGroup(2) for _ in range(d)))
    shifts = CyclicGroup(d)

    def action(h: GroupElement) -> Callable[[GroupElement], GroupElement]:
        def rotate(v: GroupElement) -> GroupElement:
            # Rotate coordinates by h: bit j of the result is bit j-h of v,
            # i.e. e_j ↦ e_{j+h}.
            return tuple(v[(j - h) % d] for j in range(d))

        return rotate

    return SemidirectProductGroup(cube, shifts, action, validate=validate)
