"""Dihedral groups D_n — the smallest natural non-abelian Cayley substrates.

Elements are pairs ``(k, f)`` with rotation index ``k ∈ ℤ_n`` and flip flag
``f ∈ {0, 1}``; the element represents the map ``x ↦ (-1)^f · x + k`` on
ℤ_n.  Multiplication follows from composing those maps:

``(k1, f1) · (k2, f2) = (k1 + (-1)^{f1} k2 mod n, f1 xor f2)``.

``Cay(D_n, {r, r⁻¹, s})`` (rotation steps and one reflection) is a prism-like
cubic Cayley graph, a useful non-abelian test subject for Theorem 4.1.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from ..errors import GroupError
from .base import FiniteGroup, GroupElement

DihedralElement = Tuple[int, int]


class DihedralGroup(FiniteGroup):
    """The dihedral group of order ``2n`` (symmetries of the ``n``-gon)."""

    def __init__(self, n: int):
        if n < 1:
            raise GroupError(f"dihedral parameter must be >= 1, got {n}")
        self.n = n
        self._elements: List[DihedralElement] = [
            (k, f) for f in (0, 1) for k in range(n)
        ]

    def elements(self) -> Sequence[GroupElement]:
        return self._elements

    def operate(self, a: GroupElement, b: GroupElement) -> GroupElement:
        k1, f1 = a
        k2, f2 = b
        sign = -1 if f1 else 1
        return ((k1 + sign * k2) % self.n, f1 ^ f2)

    def inverse(self, a: GroupElement) -> GroupElement:
        k, f = a
        if f:
            return (k, 1)  # reflections are involutions
        return ((-k) % self.n, 0)

    def identity(self) -> GroupElement:
        return (0, 0)

    def contains(self, a: GroupElement) -> bool:
        return (
            isinstance(a, tuple)
            and len(a) == 2
            and isinstance(a[0], int)
            and 0 <= a[0] < self.n
            and a[1] in (0, 1)
        )

    def rotation(self, k: int = 1) -> DihedralElement:
        """The rotation by ``k`` steps."""
        return (k % self.n, 0)

    def reflection(self, k: int = 0) -> DihedralElement:
        """The reflection ``x ↦ -x + k``."""
        return (k % self.n, 1)

    def standard_generators(self) -> List[DihedralElement]:
        """Symmetric generating set ``{r, r⁻¹, s}`` (just ``{r, s}`` if n<=2)."""
        r = self.rotation(1)
        s = self.reflection(0)
        if self.n <= 2:
            return [g for g in (r, s) if g != self.identity()]
        return [r, self.inverse(r), s]

    def __repr__(self) -> str:
        return f"DihedralGroup(n={self.n})"
