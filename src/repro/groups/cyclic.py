"""Cyclic groups ℤ_n — the building block of rings, tori and circulants."""

from __future__ import annotations

from typing import List, Sequence

from ..errors import GroupError
from .base import FiniteGroup, GroupElement


class CyclicGroup(FiniteGroup):
    """The additive group of integers modulo ``n``.

    Elements are the Python ints ``0..n-1``.  ``Cay(ℤ_n, {+1, -1})`` is the
    ``n``-cycle used throughout the paper; ``Cay(ℤ_n, S)`` for a general
    symmetric ``S`` is a circulant graph.
    """

    def __init__(self, n: int):
        if n < 1:
            raise GroupError(f"cyclic group order must be >= 1, got {n}")
        self.n = n
        self._elements: List[int] = list(range(n))

    def elements(self) -> Sequence[GroupElement]:
        return self._elements

    def operate(self, a: GroupElement, b: GroupElement) -> GroupElement:
        return (a + b) % self.n

    def inverse(self, a: GroupElement) -> GroupElement:
        return (-a) % self.n

    def identity(self) -> GroupElement:
        return 0

    def contains(self, a: GroupElement) -> bool:
        return isinstance(a, int) and 0 <= a < self.n

    def standard_generators(self) -> List[int]:
        """The ``{+1, -1}`` generating set giving the ``n``-cycle.

        For ``n == 2`` the two coincide (1 is an involution) and the set is
        ``{1}``; for ``n == 1`` it is empty.
        """
        if self.n == 1:
            return []
        if self.n == 2:
            return [1]
        return [1, self.n - 1]

    def __repr__(self) -> str:
        return f"CyclicGroup(n={self.n})"
