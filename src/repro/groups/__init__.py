"""Finite group substrate for Cayley-graph construction and recognition."""

from .base import FiniteGroup, GroupElement
from .cyclic import CyclicGroup
from .dihedral import DihedralGroup
from .product import DirectProductGroup
from .permgroup import (
    GeneratedPermutationGroup,
    canonical_regular_subgroup,
    find_regular_subgroups,
    left_translations,
    orbits_of,
)
from .semidirect import SemidirectProductGroup, hypercube_rotation_group
from .symmetric import (
    Permutation,
    SymmetricGroup,
    compose,
    cycle_type,
    identity_permutation,
    invert,
    transposition,
)

__all__ = [
    "FiniteGroup",
    "GroupElement",
    "CyclicGroup",
    "DihedralGroup",
    "DirectProductGroup",
    "SemidirectProductGroup",
    "hypercube_rotation_group",
    "SymmetricGroup",
    "GeneratedPermutationGroup",
    "Permutation",
    "compose",
    "invert",
    "identity_permutation",
    "transposition",
    "cycle_type",
    "orbits_of",
    "find_regular_subgroups",
    "canonical_regular_subgroup",
    "left_translations",
]
