"""Direct products of finite groups — hypercubes, tori, and friends.

``Cay(ℤ_2^d, {e_1, …, e_d})`` is the ``d``-dimensional hypercube and
``Cay(ℤ_a × ℤ_b, {(±1,0), (0,±1)})`` the 2-D torus, both named in the paper
as canonical Cayley-graph interconnection networks.
"""

from __future__ import annotations

import itertools
from typing import List, Sequence, Tuple

from ..errors import GroupError
from .base import FiniteGroup, GroupElement


class DirectProductGroup(FiniteGroup):
    """The direct product ``G_1 × G_2 × … × G_k`` with componentwise operation.

    Elements are tuples whose *i*-th entry is an element of the *i*-th
    factor.
    """

    def __init__(self, *factors: FiniteGroup):
        if not factors:
            raise GroupError("direct product needs at least one factor")
        self.factors: Tuple[FiniteGroup, ...] = tuple(factors)
        self._elements: List[Tuple[GroupElement, ...]] = [
            tuple(combo)
            for combo in itertools.product(*(f.elements() for f in factors))
        ]

    def elements(self) -> Sequence[GroupElement]:
        return self._elements

    def operate(self, a: GroupElement, b: GroupElement) -> GroupElement:
        return tuple(
            f.operate(x, y) for f, x, y in zip(self.factors, a, b)
        )

    def inverse(self, a: GroupElement) -> GroupElement:
        return tuple(f.inverse(x) for f, x in zip(self.factors, a))

    def identity(self) -> GroupElement:
        return tuple(f.identity() for f in self.factors)

    def contains(self, a: GroupElement) -> bool:
        if not isinstance(a, tuple) or len(a) != len(self.factors):
            return False
        return all(f.contains(x) for f, x in zip(self.factors, a))

    def embed(self, index: int, element: GroupElement) -> Tuple[GroupElement, ...]:
        """Embed ``element`` of factor ``index`` into the product.

        All other coordinates are the respective identities — this is how the
        standard generator sets of hypercubes and tori are produced.
        """
        if not 0 <= index < len(self.factors):
            raise GroupError(f"factor index {index} out of range")
        return tuple(
            element if i == index else f.identity()
            for i, f in enumerate(self.factors)
        )

    def axis_generators(self) -> List[Tuple[GroupElement, ...]]:
        """Standard generators: each factor's standard generators, embedded.

        Requires every factor to provide ``standard_generators``; cyclic
        factors do.  For ``ℤ_2^d`` this yields the ``d`` unit vectors, for a
        torus the four ``(±1, 0), (0, ±1)`` steps.
        """
        gens: List[Tuple[GroupElement, ...]] = []
        for i, f in enumerate(self.factors):
            factor_gens = getattr(f, "standard_generators", None)
            if factor_gens is None:
                raise GroupError(
                    f"factor {f!r} has no standard_generators; pass explicit generators"
                )
            for g in factor_gens():
                gens.append(self.embed(i, g))
        return gens

    def __repr__(self) -> str:
        inner = " x ".join(repr(f) for f in self.factors)
        return f"DirectProductGroup({inner})"
