"""Symmetric groups S_n and permutation utilities.

Permutations are represented as tuples ``p`` of length ``n`` with
``p[i] = image of i`` (zero-based, one-line notation).  ``Cay(S_n, T)`` for
``T`` the set of "star transpositions" ``(0 i)`` is the *star graph*
interconnection network the paper cites among classical Cayley topologies.
"""

from __future__ import annotations

import itertools
from typing import List, Sequence, Tuple

from ..errors import GroupError
from .base import FiniteGroup, GroupElement

Permutation = Tuple[int, ...]


def identity_permutation(n: int) -> Permutation:
    """The identity of S_n in one-line notation."""
    return tuple(range(n))


def compose(p: Permutation, q: Permutation) -> Permutation:
    """Return the composition ``p ∘ q`` (apply ``q`` first, then ``p``)."""
    return tuple(p[q[i]] for i in range(len(p)))


def invert(p: Permutation) -> Permutation:
    """Return the inverse permutation."""
    inv = [0] * len(p)
    for i, img in enumerate(p):
        inv[img] = i
    return tuple(inv)


def transposition(n: int, i: int, j: int) -> Permutation:
    """The transposition swapping ``i`` and ``j`` in S_n."""
    if i == j:
        raise GroupError("a transposition must swap two distinct points")
    p = list(range(n))
    p[i], p[j] = p[j], p[i]
    return tuple(p)


def cycle_type(p: Permutation) -> Tuple[int, ...]:
    """The sorted cycle type of ``p`` (a partition of n, descending)."""
    n = len(p)
    seen = [False] * n
    lengths: List[int] = []
    for start in range(n):
        if seen[start]:
            continue
        length = 0
        i = start
        while not seen[i]:
            seen[i] = True
            i = p[i]
            length += 1
        lengths.append(length)
    return tuple(sorted(lengths, reverse=True))


def is_permutation(p: Sequence[int], n: int) -> bool:
    """Whether ``p`` is a valid one-line permutation of ``0..n-1``."""
    return len(p) == n and sorted(p) == list(range(n))


class SymmetricGroup(FiniteGroup):
    """The full symmetric group on ``n`` points (use only for small ``n``)."""

    def __init__(self, n: int):
        if n < 1:
            raise GroupError(f"symmetric group degree must be >= 1, got {n}")
        if n > 8:
            raise GroupError(
                f"S_{n} has {n}! elements; enumeration beyond n=8 is unsupported"
            )
        self.n = n
        self._elements: List[Permutation] = [
            tuple(p) for p in itertools.permutations(range(n))
        ]

    def elements(self) -> Sequence[GroupElement]:
        return self._elements

    def operate(self, a: GroupElement, b: GroupElement) -> GroupElement:
        return compose(a, b)

    def inverse(self, a: GroupElement) -> GroupElement:
        return invert(a)

    def identity(self) -> GroupElement:
        return identity_permutation(self.n)

    def contains(self, a: GroupElement) -> bool:
        return isinstance(a, tuple) and is_permutation(a, self.n)

    def star_generators(self) -> List[Permutation]:
        """Star-graph generators: transpositions ``(0 i)`` for ``i = 1..n-1``."""
        return [transposition(self.n, 0, i) for i in range(1, self.n)]

    def adjacent_transposition_generators(self) -> List[Permutation]:
        """Bubble-sort generators: transpositions ``(i, i+1)``."""
        return [transposition(self.n, i, i + 1) for i in range(self.n - 1)]

    def __repr__(self) -> str:
        return f"SymmetricGroup(n={self.n})"
