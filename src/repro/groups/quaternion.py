"""The quaternion group Q₈ — a non-abelian group with a cyclic center.

Adds a structurally distinctive Cayley substrate to the battery: unlike the
dihedral groups, every subgroup of Q₈ is normal, and its Cayley graph with
generators ``{i, -i, j, -j}`` is 4-regular on 8 nodes with girth 3 triangles
absent — useful variety for the recognition and effectualness sweeps.

Elements are encoded as pairs ``(axis, sign)`` with axis ∈ {1, i, j, k}
(indices 0–3) and sign ∈ {+1, −1}; multiplication follows the quaternion
relations ``i² = j² = k² = ijk = −1``.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from ..errors import GroupError
from .base import FiniteGroup, GroupElement

#: axis indices
_ONE, _I, _J, _K = 0, 1, 2, 3

#: multiplication table on axes: _MUL[a][b] = (axis, sign) of a·b.
_MUL = {
    (_ONE, _ONE): (_ONE, 1),
    (_ONE, _I): (_I, 1),
    (_ONE, _J): (_J, 1),
    (_ONE, _K): (_K, 1),
    (_I, _ONE): (_I, 1),
    (_J, _ONE): (_J, 1),
    (_K, _ONE): (_K, 1),
    (_I, _I): (_ONE, -1),
    (_J, _J): (_ONE, -1),
    (_K, _K): (_ONE, -1),
    (_I, _J): (_K, 1),
    (_J, _K): (_I, 1),
    (_K, _I): (_J, 1),
    (_J, _I): (_K, -1),
    (_K, _J): (_I, -1),
    (_I, _K): (_J, -1),
}

QuaternionElement = Tuple[int, int]


class QuaternionGroup(FiniteGroup):
    """Q₈ = {±1, ±i, ±j, ±k} under quaternion multiplication."""

    def __init__(self) -> None:
        self._elements: List[QuaternionElement] = [
            (axis, sign) for axis in range(4) for sign in (1, -1)
        ]

    def elements(self) -> Sequence[GroupElement]:
        return self._elements

    def operate(self, a: GroupElement, b: GroupElement) -> GroupElement:
        axis_a, sign_a = a
        axis_b, sign_b = b
        axis, sign = _MUL[(axis_a, axis_b)]
        return (axis, sign * sign_a * sign_b)

    def inverse(self, a: GroupElement) -> GroupElement:
        axis, sign = a
        if axis == _ONE:
            return (axis, sign)  # ±1 are self-inverse
        return (axis, -sign)  # i⁻¹ = -i, etc.

    def identity(self) -> GroupElement:
        return (_ONE, 1)

    def contains(self, a: GroupElement) -> bool:
        return (
            isinstance(a, tuple)
            and len(a) == 2
            and a[0] in range(4)
            and a[1] in (1, -1)
        )

    def standard_generators(self) -> List[QuaternionElement]:
        """The symmetric generating set ``{i, -i, j, -j}``."""
        return [(_I, 1), (_I, -1), (_J, 1), (_J, -1)]

    def center(self) -> List[QuaternionElement]:
        """The center {±1}."""
        elems = self._elements
        return [
            z
            for z in elems
            if all(self.operate(z, g) == self.operate(g, z) for g in elems)
        ]

    def __repr__(self) -> str:
        return "QuaternionGroup()"


def quaternion_cayley():
    """``Cay(Q₈, {±i, ±j})`` — 8 nodes, 4-regular, non-abelian substrate."""
    from ..graphs.cayley import CayleyGraph

    group = QuaternionGroup()
    return CayleyGraph(group, group.standard_generators(), name="Q8Cay")
