"""The trace event model: typed records of everything a run does.

A *trace* is the explicit event sequence of one simulation run — the object
that related work reasons about directly (executions as step sequences).
Each scheduler step of :class:`~repro.sim.runtime.Simulation` produces
exactly one **primary** event (the scheduled agent's atomic action, or its
termination), possibly followed by **secondary** events it caused in other
agents (a sleeper woken by an arrival, blocked agents unblocked by a board
change).  This one-primary-event-per-step discipline is what makes the
recorded schedule recoverable from the event stream alone
(:func:`repro.trace.replay.schedule_of`) and what the trace-level
mutual-exclusion audit checks.

Events carry the global step index, the acting agent's index and color
*name* (names — not :class:`~repro.colors.Color` objects — so that two runs
with freshly minted but identically named colors produce comparable
streams), and the node where the action happened.  Node indices appear in
traces even though agents never see them: a trace is an *observer's* record,
not an agent's.

Pre-run events (the initial wake-ups of the ``initially_awake`` agents)
carry step index ``-1``: they happen before the scheduler's first choice.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field
from typing import Any, Dict, Mapping, Optional, Tuple

# ---------------------------------------------------------------------------
# Event kinds
# ---------------------------------------------------------------------------

WAKE = "wake"  #: agent transitioned ASLEEP -> READY (secondary, or pre-run)
MOVE = "move"  #: agent traversed an edge (``port`` out, ``dest``/``entry`` in)
READ = "read"  #: agent observed the current node's whiteboard
WRITE = "write"  #: agent appended a sign (``sign`` kind, ``payload``)
ERASE = "erase"  #: agent erased own signs (``result`` = number removed)
ACQUIRE = "acquire"  #: test-and-write race (``result`` = 1 if won, 0 if lost)
WAIT = "wait"  #: WaitUntil whose predicate held immediately (no blocking)
BLOCK = "block"  #: WaitUntil that suspended the agent (``detail`` = reason)
UNBLOCK = "unblock"  #: a board change released a blocked agent (secondary)
LOG = "log"  #: protocol-level Log action (``detail`` = event name)
DONE = "done"  #: agent terminated (``result`` = 1 if it returned a value)
STALL = "stall"  #: watchdog classified a blocked episode as a stall
RESTART = "restart"  #: watchdog restarted the agent from its checkpoint
#: (``node`` = where it was stuck, ``dest`` = its home-base)
FORGE = "forge"  #: a Byzantine agent wrote a sign of another agent's color
#: (same step and agent as the WRITE it annotates)
DETECT = "detect"  #: the cheat-detection audit surfaced a finding
#: (system event: ``agent`` is -1, ``detail`` names the finding)
CHURN = "churn"  #: dynamic-network churn added or removed an edge
#: (system event: ``agent`` is -1, ``node``/``dest`` are the endpoints)

#: Step index used for system events (churn drivers, cheat detectors).
SYSTEM_AGENT = -1

#: All event kinds, in a stable presentation order.
KINDS: Tuple[str, ...] = (
    WAKE, MOVE, READ, WRITE, ERASE, ACQUIRE, WAIT, BLOCK, UNBLOCK, LOG, DONE,
    STALL, RESTART, FORGE, DETECT, CHURN,
)

#: Kinds that can be the scheduled agent's own step — exactly one of these
#: occurs per scheduler step, which is how the schedule is recovered.
#: STALL/RESTART are runtime (watchdog) interventions between steps, never
#: an agent's own action, so they stay out of this set and schedule
#: recovery is unchanged by fault supervision.  FORGE/DETECT/CHURN are
#: likewise secondary: a FORGE annotates the same step's WRITE, and
#: DETECT/CHURN are system events outside any agent's schedule.
PRIMARY_KINDS = frozenset({MOVE, READ, WRITE, ERASE, ACQUIRE, WAIT, BLOCK, LOG, DONE})

#: Kinds that count as one whiteboard access in the runtime's metrics
#: (mirrors ``AgentRecord.accesses`` accounting: a WaitUntil is charged once
#: when first executed, whether or not it blocks; being unblocked is free).
ACCESS_KINDS = frozenset({READ, WRITE, ERASE, ACQUIRE, WAIT, BLOCK})

#: Step index used for events that precede the first scheduler choice.
PRE_RUN_STEP = -1


def _jsonify(value: Any) -> Any:
    """Best-effort JSON-safe projection of an event field.

    Ints, strings, bools and ``None`` pass through; tuples become lists;
    anything else (e.g. a qualitative :class:`~repro.colors.Color` port
    label) is projected to its ``repr``.  The projection is stable for a
    deterministically rebuilt network, so serialized streams of a run and
    its replay still compare equal.
    """
    if value is None or isinstance(value, (int, str, bool)):
        return value
    if isinstance(value, (tuple, list)):
        return [_jsonify(v) for v in value]
    return repr(value)


@dataclass(frozen=True)
class TraceEvent:
    """One observed step of one agent.

    Only ``step``, ``kind``, ``agent`` and ``node`` are always meaningful;
    the remaining fields are populated per kind (see the kind constants).
    For :data:`MOVE`, ``node`` is the *origin* and ``dest``/``entry`` record
    the node entered and the entry port.
    """

    step: int
    kind: str
    agent: int
    node: int
    color: Optional[str] = None
    port: Any = None
    dest: Optional[int] = None
    entry: Any = None
    sign: Optional[str] = None
    payload: Optional[Tuple[int, ...]] = None
    result: Optional[int] = None
    detail: str = ""

    @property
    def is_primary(self) -> bool:
        """Whether this event is a scheduled agent's own step."""
        return self.kind in PRIMARY_KINDS and self.step != PRE_RUN_STEP

    @property
    def is_access(self) -> bool:
        """Whether this event counts as one whiteboard access."""
        return self.kind in ACCESS_KINDS

    def to_dict(self) -> Dict[str, Any]:
        """JSON-safe dict with defaulted fields omitted (compact JSONL)."""
        out: Dict[str, Any] = {
            "step": self.step,
            "kind": self.kind,
            "agent": self.agent,
            "node": self.node,
        }
        for key in ("color", "port", "dest", "entry", "sign", "payload", "result"):
            value = getattr(self, key)
            if value is not None:
                out[key] = _jsonify(value)
        if self.detail:
            out["detail"] = self.detail
        return out

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "TraceEvent":
        """Inverse of :meth:`to_dict` (payload lists become tuples again)."""
        payload = data.get("payload")
        return cls(
            step=int(data["step"]),
            kind=str(data["kind"]),
            agent=int(data["agent"]),
            node=int(data["node"]),
            color=data.get("color"),
            port=data.get("port"),
            dest=data.get("dest"),
            entry=data.get("entry"),
            sign=data.get("sign"),
            payload=None if payload is None else tuple(payload),
            result=data.get("result"),
            detail=str(data.get("detail", "")),
        )


@dataclass(frozen=True)
class TraceHeader:
    """Run-level metadata emitted once, before the event stream.

    The header carries everything the runtime knows about the instance
    (sizes, homes, color names, scheduler, seeds) plus free-form ``meta``
    contributed by callers via :meth:`repro.trace.sinks.TraceSink.annotate`
    — e.g. a graph spec that lets ``python -m repro.trace replay``
    reconstruct the instance from the file alone.
    """

    num_nodes: int
    num_edges: int
    num_agents: int
    homes: Tuple[int, ...]
    colors: Tuple[str, ...]
    scheduler: str = ""
    max_steps: int = 0
    port_shuffle_seed: int = 0
    meta: Dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, Any]:
        out = asdict(self)
        out["homes"] = list(self.homes)
        out["colors"] = list(self.colors)
        return out

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "TraceHeader":
        return cls(
            num_nodes=int(data["num_nodes"]),
            num_edges=int(data["num_edges"]),
            num_agents=int(data["num_agents"]),
            homes=tuple(data["homes"]),
            colors=tuple(data["colors"]),
            scheduler=str(data.get("scheduler", "")),
            max_steps=int(data.get("max_steps", 0)),
            port_shuffle_seed=int(data.get("port_shuffle_seed", 0)),
            meta=dict(data.get("meta", {})),
        )
