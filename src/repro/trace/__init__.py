"""Structured event tracing, deterministic replay, and invariant auditing.

The trace subsystem turns a :class:`~repro.sim.runtime.Simulation` run from
a black box into an explicit event sequence:

* :mod:`repro.trace.events` — the typed event model (wake/move/read/write/
  erase/acquire/wait/block/unblock/log/done) and the run header;
* :mod:`repro.trace.sinks` — pluggable destinations (memory ring buffer,
  JSONL file, tee), with a zero-cost default when no sink is attached;
* :mod:`repro.trace.replay` — schedule recovery and the
  :class:`~repro.trace.replay.ReplayScheduler` that re-drives a run
  bit-for-bit, plus self-describing trace files via
  :func:`~repro.trace.replay.record_run`/:func:`~repro.trace.replay.replay_trace`;
* :mod:`repro.trace.invariants` — trace-level audits (mutual exclusion,
  lifecycle, metrics agreement, the Theorem 3.1 ``O(r·|E|)`` bound);
* :mod:`repro.trace.summary` — aggregation and rendering.

Command line: ``python -m repro.trace summarize|check|replay|record …``.

Typical use::

    from repro import cycle_graph, Placement, run_elect
    from repro.trace import MemorySink, ReplayScheduler, assert_invariants

    sink = MemorySink()
    outcome = run_elect(cycle_graph(5), Placement.of([0, 1]), trace=sink)
    assert_invariants(sink.events, header=sink.header)

    # Reproduce the exact interleaving later:
    again = run_elect(cycle_graph(5), Placement.of([0, 1]),
                      scheduler=ReplayScheduler.from_events(sink.events))
    assert again.leader_color == outcome.leader_color
"""

from .events import (
    ACCESS_KINDS,
    ACQUIRE,
    BLOCK,
    DONE,
    ERASE,
    KINDS,
    LOG,
    MOVE,
    PRE_RUN_STEP,
    PRIMARY_KINDS,
    READ,
    RESTART,
    STALL,
    UNBLOCK,
    WAIT,
    WAKE,
    WRITE,
    TraceEvent,
    TraceHeader,
)
from .invariants import (
    THEOREM31_CONSTANT,
    InvariantReport,
    assert_invariants,
    audit_trace,
    check_accounting,
    check_lifecycle,
    check_mutual_exclusion,
    check_positions,
    check_restart_discipline,
    check_step_contiguity,
    check_theorem31,
)
from .replay import (
    GRAPH_BUILDERS,
    PROTOCOL_RUNNERS,
    ReplayResult,
    ReplayScheduler,
    build_network,
    record_run,
    replay_trace,
    schedule_of,
)
from .sinks import (
    JsonlSink,
    MemorySink,
    NullSink,
    TeeSink,
    TraceSink,
    dump_trace,
    load_trace,
)
from .summary import AgentSummary, TraceSummary, render_summary, summarize

__all__ = [
    # events
    "TraceEvent",
    "TraceHeader",
    "KINDS",
    "PRIMARY_KINDS",
    "ACCESS_KINDS",
    "PRE_RUN_STEP",
    "WAKE",
    "MOVE",
    "READ",
    "WRITE",
    "ERASE",
    "ACQUIRE",
    "WAIT",
    "BLOCK",
    "UNBLOCK",
    "LOG",
    "DONE",
    "STALL",
    "RESTART",
    # sinks
    "TraceSink",
    "NullSink",
    "MemorySink",
    "JsonlSink",
    "TeeSink",
    "load_trace",
    "dump_trace",
    # replay
    "ReplayScheduler",
    "ReplayResult",
    "schedule_of",
    "record_run",
    "replay_trace",
    "build_network",
    "GRAPH_BUILDERS",
    "PROTOCOL_RUNNERS",
    # invariants
    "InvariantReport",
    "THEOREM31_CONSTANT",
    "audit_trace",
    "assert_invariants",
    "check_step_contiguity",
    "check_mutual_exclusion",
    "check_positions",
    "check_lifecycle",
    "check_accounting",
    "check_restart_discipline",
    "check_theorem31",
    # summary
    "TraceSummary",
    "AgentSummary",
    "summarize",
    "render_summary",
]
