"""Trace tooling from the command line.

Usage::

    python -m repro.trace record --graph cycle --graph-args 6 \\
        --homes 0 1 --protocol elect --seed 0 --out run.jsonl
    python -m repro.trace summarize run.jsonl
    python -m repro.trace check run.jsonl
    python -m repro.trace replay run.jsonl

``record`` produces a self-describing JSONL trace of a registered
protocol on a registered graph family; ``summarize`` prints the aggregate
view; ``check`` runs the invariant audit; ``replay`` rebuilds the instance
from the header and re-drives it, verifying the replayed event stream is
identical to the recording.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from ..errors import ReproError, TraceError
from .invariants import audit_trace
from .replay import GRAPH_BUILDERS, PROTOCOL_RUNNERS, record_run, replay_trace
from .sinks import load_trace
from .summary import render_summary, summarize


def _cmd_summarize(args: argparse.Namespace) -> int:
    header, events = load_trace(args.trace)
    print(render_summary(summarize(events, header=header), header=header))
    return 0


def _cmd_check(args: argparse.Namespace) -> int:
    header, events = load_trace(args.trace)
    reports = audit_trace(events, header=header)
    failures = 0
    for report in reports:
        print(report)
        for key, value in sorted(report.stats.items()):
            print(f"    {key} = {value:g}")
        failures += not report.ok
    if failures:
        print(f"\n{failures} invariant(s) violated")
        return 1
    print(f"\nall {len(reports)} invariants hold over {len(events)} events")
    return 0


def _cmd_replay(args: argparse.Namespace) -> int:
    result = replay_trace(args.trace, verify=not args.no_verify)
    print(
        f"replayed {len(result.events)} events over "
        f"{result.outcome.steps} steps"
    )
    print(f"event streams identical: {result.matches}")
    leader = result.outcome.leader_color
    verdict = "elected" if result.outcome.elected else "failed"
    print(f"outcome: {verdict}" + (f" (leader {leader!r})" if leader else ""))
    return 0 if result.matches else 1


def _cmd_record(args: argparse.Namespace) -> int:
    outcome, _ = record_run(
        graph=args.graph,
        graph_args=args.graph_args,
        homes=args.homes,
        protocol=args.protocol,
        seed=args.seed,
        path=args.out,
    )
    verdict = "elected" if outcome.elected else "failed"
    print(
        f"recorded {args.protocol} on {args.graph}{tuple(args.graph_args)} "
        f"homes={args.homes} -> {verdict} "
        f"({outcome.steps} steps, {outcome.total_moves} moves) to {args.out}"
    )
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.trace",
        description="Record, summarize, audit, and replay simulation traces.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_sum = sub.add_parser("summarize", help="aggregate view of a trace")
    p_sum.add_argument("trace", help="JSONL trace file")
    p_sum.set_defaults(func=_cmd_summarize)

    p_check = sub.add_parser("check", help="run the invariant audit")
    p_check.add_argument("trace", help="JSONL trace file")
    p_check.set_defaults(func=_cmd_check)

    p_replay = sub.add_parser(
        "replay", help="rebuild the instance and re-drive the recorded run"
    )
    p_replay.add_argument("trace", help="JSONL trace file (with instance meta)")
    p_replay.add_argument(
        "--no-verify",
        action="store_true",
        help="do not raise when the replayed stream differs",
    )
    p_replay.set_defaults(func=_cmd_replay)

    p_rec = sub.add_parser("record", help="run a protocol and write a trace")
    p_rec.add_argument(
        "--graph",
        required=True,
        choices=sorted(GRAPH_BUILDERS),
        help="graph family",
    )
    p_rec.add_argument(
        "--graph-args",
        type=int,
        nargs="*",
        default=[],
        help="builder arguments (e.g. 6 for cycle, 3 for hypercube)",
    )
    p_rec.add_argument(
        "--homes", type=int, nargs="+", required=True, help="home-base nodes"
    )
    p_rec.add_argument(
        "--protocol",
        default="elect",
        choices=sorted(PROTOCOL_RUNNERS),
        help="which protocol to run",
    )
    p_rec.add_argument("--seed", type=int, default=0)
    p_rec.add_argument("--out", required=True, help="output JSONL path")
    p_rec.set_defaults(func=_cmd_record)

    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except (ReproError, OSError) as exc:
        # Bad instance specs and unreadable paths are user input problems,
        # not crashes: one line on stderr, distinct exit code.
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
