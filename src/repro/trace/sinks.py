"""Pluggable trace sinks: where a run's event stream goes.

The runtime's emit hooks are guarded by a single ``is not None`` test, so a
simulation constructed without a sink pays nothing for the instrumentation
(the "zero-cost default").  When a sink *is* attached, the runtime calls
:meth:`TraceSink.emit_header` once before the first event and
:meth:`TraceSink.emit` for every event, then :meth:`TraceSink.flush` when
the run ends (normally or via ``deadlock_ok``).

Shipped sinks:

* :class:`NullSink` — disabled sink; the runtime skips tracing entirely.
* :class:`MemorySink` — list or ring buffer (``capacity``) of events.
* :class:`JsonlSink` — one JSON object per line; first line is the header.
* :class:`TeeSink` — fan-out to several sinks (e.g. memory + file).

:func:`load_trace` reads a JSONL trace back into ``(header, events)``.
"""

from __future__ import annotations

import json
from collections import deque
from typing import IO, Any, Dict, Iterable, List, Optional, Sequence, Tuple, Union

from ..errors import TraceError
from .events import TraceEvent, TraceHeader


class TraceSink:
    """Base sink: receives a header then a stream of events.

    Subclasses override :meth:`emit` (and usually :meth:`emit_header`).
    ``annotations`` set via :meth:`annotate` are merged into the header's
    ``meta`` when the runtime emits it — the mechanism by which callers
    (e.g. :func:`repro.core.runner.run_election` or the record helpers in
    :mod:`repro.trace.replay`) attach instance provenance to a trace.
    """

    #: Disabled sinks (``enabled = False``) tell the runtime to skip event
    #: construction entirely — the run behaves as if untraced.
    enabled = True

    def __init__(self) -> None:
        self.annotations: Dict[str, Any] = {}
        self.header: Optional[TraceHeader] = None

    def annotate(self, meta: Dict[str, Any]) -> "TraceSink":
        """Merge ``meta`` into the (future) header's free-form metadata."""
        self.annotations.update(meta)
        return self

    def emit_header(self, header: TraceHeader) -> None:
        """Receive the run header (called once, before any event)."""
        if self.annotations:
            merged = dict(header.meta)
            merged.update(self.annotations)
            header = TraceHeader(
                num_nodes=header.num_nodes,
                num_edges=header.num_edges,
                num_agents=header.num_agents,
                homes=header.homes,
                colors=header.colors,
                scheduler=header.scheduler,
                max_steps=header.max_steps,
                port_shuffle_seed=header.port_shuffle_seed,
                meta=merged,
            )
        self.header = header
        self._write_header(header)

    def _write_header(self, header: TraceHeader) -> None:
        """Subclass hook: persist the (annotation-merged) header."""

    def emit(self, event: TraceEvent) -> None:
        raise NotImplementedError

    def flush(self) -> None:
        """Called when the run ends; also on context-manager exit."""

    def close(self) -> None:
        self.flush()

    def __enter__(self) -> "TraceSink":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()


class NullSink(TraceSink):
    """Discards every event.

    Declares ``enabled = False``, so the runtime short-circuits to the
    untraced path: a simulation handed a ``NullSink`` pays nothing for the
    instrumentation.  The explicit "tracing wired but not wanted"
    placeholder; fed events directly (e.g. under :class:`TeeSink`) it
    simply swallows them.
    """

    enabled = False

    def emit(self, event: TraceEvent) -> None:
        pass


class MemorySink(TraceSink):
    """Buffers events in memory.

    With ``capacity=None`` (default) the sink keeps the whole stream; with a
    positive ``capacity`` it becomes a ring buffer keeping only the most
    recent events (``dropped`` counts the evicted ones) — the flight-recorder
    mode for long runs where only the tail around a failure matters.
    """

    def __init__(self, capacity: Optional[int] = None) -> None:
        super().__init__()
        if capacity is not None and capacity <= 0:
            raise ValueError("capacity must be positive (or None for unbounded)")
        self.capacity = capacity
        self._events: deque = deque(maxlen=capacity)
        self.dropped = 0

    def emit(self, event: TraceEvent) -> None:
        if self.capacity is not None and len(self._events) == self.capacity:
            self.dropped += 1
        self._events.append(event)

    @property
    def events(self) -> Tuple[TraceEvent, ...]:
        """The buffered events, oldest first."""
        return tuple(self._events)

    def clear(self) -> None:
        self._events.clear()
        self.dropped = 0

    def __len__(self) -> int:
        return len(self._events)


class JsonlSink(TraceSink):
    """Writes the trace as JSON Lines: header first, then one event per line.

    Accepts a path (opened lazily, closed by :meth:`close`/``with``) or an
    already-open text file object (left open on close — caller owns it).
    """

    def __init__(self, path_or_file: Union[str, IO[str]]) -> None:
        super().__init__()
        if isinstance(path_or_file, str):
            self._path: Optional[str] = path_or_file
            self._file: Optional[IO[str]] = None
            self._owns_file = True
        else:
            self._path = None
            self._file = path_or_file
            self._owns_file = False
        self.events_written = 0

    def _out(self) -> IO[str]:
        if self._file is None:
            assert self._path is not None
            self._file = open(self._path, "w", encoding="utf-8")
        return self._file

    def _write_header(self, header: TraceHeader) -> None:
        record = {"type": "header"}
        record.update(header.to_dict())
        self._out().write(json.dumps(record) + "\n")

    def emit(self, event: TraceEvent) -> None:
        record = {"type": "event"}
        record.update(event.to_dict())
        self._out().write(json.dumps(record) + "\n")
        self.events_written += 1

    def flush(self) -> None:
        if self._file is not None:
            self._file.flush()

    def close(self) -> None:
        if self._file is not None:
            self._file.flush()
            if self._owns_file:
                self._file.close()
                self._file = None


class TeeSink(TraceSink):
    """Forwards the header and every event to several child sinks."""

    def __init__(self, *sinks: TraceSink) -> None:
        super().__init__()
        if not sinks:
            raise ValueError("TeeSink needs at least one child sink")
        self.sinks: Tuple[TraceSink, ...] = tuple(sinks)

    def emit_header(self, header: TraceHeader) -> None:
        super().emit_header(header)
        assert self.header is not None
        for sink in self.sinks:
            sink.emit_header(self.header)

    def emit(self, event: TraceEvent) -> None:
        for sink in self.sinks:
            sink.emit(event)

    def flush(self) -> None:
        for sink in self.sinks:
            sink.flush()

    def close(self) -> None:
        for sink in self.sinks:
            sink.close()


def load_trace(
    source: Union[str, IO[str], Iterable[str]],
) -> Tuple[Optional[TraceHeader], List[TraceEvent]]:
    """Read a JSONL trace into ``(header, events)``.

    ``source`` may be a path, an open text file, or any iterable of lines.
    The header is optional (a bare event stream loads with ``header=None``);
    a header appearing after events, or an unknown record type, raises
    :class:`~repro.errors.TraceError`.
    """
    if isinstance(source, str):
        with open(source, "r", encoding="utf-8") as fh:
            return load_trace(fh)
    header: Optional[TraceHeader] = None
    events: List[TraceEvent] = []
    for lineno, line in enumerate(source, start=1):
        line = line.strip()
        if not line:
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError as exc:
            raise TraceError(f"line {lineno}: invalid JSON ({exc})") from exc
        rtype = record.get("type", "event")
        if rtype == "header":
            if events or header is not None:
                raise TraceError(f"line {lineno}: header must be the first record")
            header = TraceHeader.from_dict(record)
        elif rtype == "event":
            events.append(TraceEvent.from_dict(record))
        else:
            raise TraceError(f"line {lineno}: unknown record type {rtype!r}")
    return header, events


def dump_trace(
    path: str,
    events: Sequence[TraceEvent],
    header: Optional[TraceHeader] = None,
) -> None:
    """Write an in-memory ``(header, events)`` pair to a JSONL file."""
    sink = JsonlSink(path)
    try:
        if header is not None:
            sink.emit_header(header)
        for event in events:
            sink.emit(event)
    finally:
        sink.close()
