"""Trace-level invariant auditing.

Aggregate counters can hide interleaving bugs; these checkers validate the
*event sequence itself*.  Each checker returns an :class:`InvariantReport`;
:func:`audit_trace` runs the applicable battery and
:func:`assert_invariants` raises :class:`~repro.errors.InvariantViolation`
on the first failure.

Shipped checkers:

* **step contiguity** — exactly one primary event per step ``0..steps-1``
  (the property that makes schedules recoverable from traces);
* **whiteboard mutual exclusion** — at most one whiteboard access per step,
  i.e. accesses are totally ordered by the step index (the paper's "fair
  mutual exclusion mechanism" observed at trace level);
* **positional consistency** — agents act only where they are: replaying
  just the ``move`` events from the header's homes predicts the node of
  every event;
* **lifecycle** — each agent wakes at most once, acts only after waking,
  and emits nothing after ``done``;
* **restart discipline** — watchdog ``stall``/``restart`` events only hit
  blocked agents, and every restart resumes at the agent's home-base
  checkpoint (given a header);
* **detection discipline** — every ``forge`` event annotates a concrete
  same-step write, and forged-provenance ``detect`` findings never precede
  the first forgery;
* **accounting agreement** — per-agent ``move``/access event counts equal
  the runtime's :class:`~repro.sim.runtime.SimulationResult` metrics (the
  counters and the trace tell the same story);
* **Theorem 3.1 audit** — total moves and accesses within ``C·r·|E|`` for
  a configurable constant (default mirrors the E7 benchmark's bound).
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from ..errors import InvariantViolation
from .events import (
    BLOCK,
    DETECT,
    DONE,
    FORGE,
    MOVE,
    PRE_RUN_STEP,
    RESTART,
    STALL,
    UNBLOCK,
    WAKE,
    WRITE,
    TraceEvent,
    TraceHeader,
)

#: Default constant for the Theorem 3.1 ``O(r·|E|)`` audit — matches the
#: bound the E7 complexity benchmark asserts across the instance sweep.
THEOREM31_CONSTANT = 15.0


@dataclass
class InvariantReport:
    """Outcome of one checker."""

    name: str
    ok: bool
    detail: str = ""
    stats: Dict[str, float] = field(default_factory=dict)

    def __str__(self) -> str:
        status = "ok" if self.ok else "VIOLATED"
        suffix = f" — {self.detail}" if self.detail else ""
        return f"{self.name}: {status}{suffix}"


def check_step_contiguity(events: Sequence[TraceEvent]) -> InvariantReport:
    """Exactly one primary event per step, steps contiguous from 0."""
    expected = 0
    for ev in events:
        if ev.step == PRE_RUN_STEP or not ev.is_primary:
            continue
        if ev.step != expected:
            return InvariantReport(
                "step-contiguity",
                False,
                f"expected primary event at step {expected}, got step "
                f"{ev.step} (agent {ev.agent}, {ev.kind})",
            )
        expected += 1
    return InvariantReport(
        "step-contiguity", True, stats={"steps": float(expected)}
    )


def check_mutual_exclusion(events: Sequence[TraceEvent]) -> InvariantReport:
    """At most one whiteboard access per step (atomicity, trace-level)."""
    accesses_at: Dict[int, TraceEvent] = {}
    total = 0
    for ev in events:
        if not ev.is_access:
            continue
        total += 1
        prev = accesses_at.get(ev.step)
        if prev is not None:
            return InvariantReport(
                "whiteboard-mutual-exclusion",
                False,
                f"step {ev.step}: two whiteboard accesses in one step "
                f"(agent {prev.agent} {prev.kind} and agent {ev.agent} "
                f"{ev.kind})",
            )
        accesses_at[ev.step] = ev
    return InvariantReport(
        "whiteboard-mutual-exclusion", True, stats={"accesses": float(total)}
    )


def check_positions(
    events: Sequence[TraceEvent], header: TraceHeader
) -> InvariantReport:
    """Every event happens at the node its agent actually occupies."""
    pos = {i: home for i, home in enumerate(header.homes)}
    for ev in events:
        if ev.agent < 0:
            # System events (churn drivers, cheat detectors) happen at a
            # node but are not performed by any positioned agent.
            continue
        where = pos.get(ev.agent)
        if where is None:
            return InvariantReport(
                "positional-consistency",
                False,
                f"step {ev.step}: unknown agent {ev.agent}",
            )
        if ev.node != where:
            return InvariantReport(
                "positional-consistency",
                False,
                f"step {ev.step}: agent {ev.agent} recorded at node "
                f"{ev.node} but occupies node {where}",
            )
        if ev.kind in (MOVE, RESTART):
            # A restart teleports the agent back to its home-base; the
            # event's ``dest`` records where, exactly like a move's.
            if ev.dest is None:
                return InvariantReport(
                    "positional-consistency",
                    False,
                    f"step {ev.step}: {ev.kind} event lacks a destination",
                )
            pos[ev.agent] = ev.dest
    return InvariantReport("positional-consistency", True)


def check_lifecycle(events: Sequence[TraceEvent]) -> InvariantReport:
    """Wake-once, act-only-awake, silent-after-done, per agent."""
    woke: Dict[int, int] = {}
    done: Dict[int, int] = {}
    for ev in events:
        if ev.agent < 0:
            continue
        if ev.agent in done:
            return InvariantReport(
                "agent-lifecycle",
                False,
                f"step {ev.step}: agent {ev.agent} emitted {ev.kind} after "
                f"terminating at step {done[ev.agent]}",
            )
        if ev.kind == WAKE:
            if ev.agent in woke:
                return InvariantReport(
                    "agent-lifecycle",
                    False,
                    f"step {ev.step}: agent {ev.agent} woke twice",
                )
            woke[ev.agent] = ev.step
        else:
            if ev.agent not in woke:
                return InvariantReport(
                    "agent-lifecycle",
                    False,
                    f"step {ev.step}: agent {ev.agent} acted ({ev.kind}) "
                    f"before waking",
                )
            if ev.kind == DONE:
                done[ev.agent] = ev.step
    return InvariantReport(
        "agent-lifecycle",
        True,
        stats={"woke": float(len(woke)), "done": float(len(done))},
    )


def check_restart_discipline(
    events: Sequence[TraceEvent],
    header: Optional[TraceHeader] = None,
) -> InvariantReport:
    """Watchdog interventions follow the recovery protocol.

    * a ``restart`` may only hit an agent whose most recent own event is a
      ``block`` or a ``stall`` classification (only stuck agents recover);
    * every ``restart`` carries a destination, and with a header available
      that destination must be the agent's home-base (checkpoint restarts
      always resume from the home whiteboard);
    * a ``stall`` may only be flagged for an agent that is currently
      blocked (its latest own event is ``block`` or another ``stall``).
    """
    last_kind: Dict[int, str] = {}
    restarts = 0
    stalls = 0
    for ev in events:
        if ev.agent < 0:
            continue
        if ev.kind == RESTART:
            restarts += 1
            prev = last_kind.get(ev.agent)
            if prev not in (BLOCK, STALL):
                return InvariantReport(
                    "restart-discipline",
                    False,
                    f"step {ev.step}: agent {ev.agent} restarted while its "
                    f"latest event was {prev or 'absent'!r}, not block/stall",
                )
            if ev.dest is None:
                return InvariantReport(
                    "restart-discipline",
                    False,
                    f"step {ev.step}: restart event lacks a destination",
                )
            if header is not None and ev.dest != header.homes[ev.agent]:
                return InvariantReport(
                    "restart-discipline",
                    False,
                    f"step {ev.step}: agent {ev.agent} restarted at node "
                    f"{ev.dest}, not its home-base {header.homes[ev.agent]}",
                )
        elif ev.kind == STALL:
            stalls += 1
            if last_kind.get(ev.agent) not in (BLOCK, STALL):
                return InvariantReport(
                    "restart-discipline",
                    False,
                    f"step {ev.step}: agent {ev.agent} flagged as stalled "
                    f"without being blocked",
                )
        last_kind[ev.agent] = ev.kind
    return InvariantReport(
        "restart-discipline",
        True,
        stats={"restarts": float(restarts), "stalls": float(stalls)},
    )


def check_detection_discipline(
    events: Sequence[TraceEvent],
) -> InvariantReport:
    """Byzantine evidence events obey the cause-before-detection protocol.

    * a ``forge`` event annotates a concrete write: the same (step, agent)
      must also carry a ``write`` event (the forged sign actually landing);
    * a ``detect`` finding of kind ``forged`` may only appear after at
      least one ``forge`` event — the detector cannot accuse anyone of
      forging before a forgery exists in the record.

    Consistency findings (``consistency:``/``strict:`` details) are exempt
    from the second rule: benign corruption can legitimately trigger them
    without any forge event.
    """
    writes = set()
    forges: List[TraceEvent] = []
    forged_seen = False
    detects = 0
    for ev in events:
        if ev.kind == WRITE:
            writes.add((ev.step, ev.agent))
        elif ev.kind == FORGE:
            forges.append(ev)
            forged_seen = True
        elif ev.kind == DETECT:
            detects += 1
            if ev.detail.startswith("forged") and not forged_seen:
                return InvariantReport(
                    "detection-discipline",
                    False,
                    f"step {ev.step}: forged-provenance finding "
                    f"({ev.detail!r}) precedes any forge event",
                )
    for ev in forges:
        if (ev.step, ev.agent) not in writes:
            return InvariantReport(
                "detection-discipline",
                False,
                f"step {ev.step}: forge event by agent {ev.agent} has no "
                f"matching write at the same step",
            )
    return InvariantReport(
        "detection-discipline",
        True,
        stats={"forges": float(len(forges)), "detections": float(detects)},
    )


def check_accounting(
    events: Sequence[TraceEvent],
    moves: Sequence[int],
    accesses: Sequence[int],
    steps: Optional[int] = None,
) -> InvariantReport:
    """Trace-derived per-agent metrics equal the runtime's counters.

    ``moves``/``accesses`` are the per-agent lists from a
    :class:`~repro.sim.runtime.SimulationResult` (or an
    :class:`~repro.core.result.ElectionOutcome`'s totals, summed).
    """
    ev_moves: Counter = Counter()
    ev_accesses: Counter = Counter()
    primaries = 0
    for ev in events:
        if ev.kind == MOVE:
            ev_moves[ev.agent] += 1
        if ev.is_access:
            ev_accesses[ev.agent] += 1
        if ev.is_primary:
            primaries += 1
    for i, expected in enumerate(moves):
        if ev_moves.get(i, 0) != expected:
            return InvariantReport(
                "metrics-trace-agreement",
                False,
                f"agent {i}: trace has {ev_moves.get(i, 0)} moves, "
                f"runtime counted {expected}",
            )
    for i, expected in enumerate(accesses):
        if ev_accesses.get(i, 0) != expected:
            return InvariantReport(
                "metrics-trace-agreement",
                False,
                f"agent {i}: trace has {ev_accesses.get(i, 0)} accesses, "
                f"runtime counted {expected}",
            )
    if steps is not None and primaries != steps:
        return InvariantReport(
            "metrics-trace-agreement",
            False,
            f"trace has {primaries} primary events, runtime took {steps} steps",
        )
    return InvariantReport(
        "metrics-trace-agreement",
        True,
        stats={
            "moves": float(sum(ev_moves.values())),
            "accesses": float(sum(ev_accesses.values())),
        },
    )


def check_theorem31(
    events: Sequence[TraceEvent],
    num_agents: int,
    num_edges: int,
    constant: float = THEOREM31_CONSTANT,
) -> InvariantReport:
    """Audit the Theorem 3.1 complexity bound on one run's trace.

    Total moves and total whiteboard accesses must not exceed
    ``constant · r · |E|``.  The report's stats carry the normalized ratios
    so sweeps can track how close runs come to the bound.
    """
    total_moves = sum(1 for ev in events if ev.kind == MOVE)
    total_accesses = sum(1 for ev in events if ev.is_access)
    budget = constant * num_agents * max(1, num_edges)
    r_moves = total_moves / (num_agents * max(1, num_edges))
    r_accesses = total_accesses / (num_agents * max(1, num_edges))
    stats = {
        "moves": float(total_moves),
        "accesses": float(total_accesses),
        "moves_ratio": r_moves,
        "accesses_ratio": r_accesses,
    }
    if total_moves > budget or total_accesses > budget:
        return InvariantReport(
            "theorem-3.1-bound",
            False,
            f"moves={total_moves}, accesses={total_accesses} exceed "
            f"{constant}·r·|E| = {budget:.0f} (r={num_agents}, |E|={num_edges})",
            stats=stats,
        )
    return InvariantReport("theorem-3.1-bound", True, stats=stats)


def audit_trace(
    events: Sequence[TraceEvent],
    header: Optional[TraceHeader] = None,
    moves: Optional[Sequence[int]] = None,
    accesses: Optional[Sequence[int]] = None,
    steps: Optional[int] = None,
    theorem31_constant: float = THEOREM31_CONSTANT,
) -> List[InvariantReport]:
    """Run every applicable checker; skip those lacking their inputs.

    The structural checkers (contiguity, mutual exclusion, lifecycle) need
    only the events; positional consistency and the Theorem 3.1 audit need
    a header; accounting agreement needs the runtime's per-agent counters.
    """
    reports = [
        check_step_contiguity(events),
        check_mutual_exclusion(events),
        check_lifecycle(events),
        check_restart_discipline(events, header=header),
        check_detection_discipline(events),
    ]
    if header is not None:
        reports.append(check_positions(events, header))
        reports.append(
            check_theorem31(
                events,
                num_agents=header.num_agents,
                num_edges=header.num_edges,
                constant=theorem31_constant,
            )
        )
    if moves is not None and accesses is not None:
        reports.append(check_accounting(events, moves, accesses, steps=steps))
    return reports


def assert_invariants(
    events: Sequence[TraceEvent],
    header: Optional[TraceHeader] = None,
    moves: Optional[Sequence[int]] = None,
    accesses: Optional[Sequence[int]] = None,
    steps: Optional[int] = None,
) -> List[InvariantReport]:
    """Like :func:`audit_trace`, but raise on the first violation."""
    reports = audit_trace(
        events, header=header, moves=moves, accesses=accesses, steps=steps
    )
    for report in reports:
        if not report.ok:
            raise InvariantViolation(str(report))
    return reports
