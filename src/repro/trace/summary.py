"""Trace aggregation: turn an event stream into a readable run summary.

Bridges the trace subsystem to the :mod:`repro.analysis` reporting helpers
(the same ASCII renderers the experiment harness uses), so ``python -m
repro.trace summarize run.jsonl`` and the analysis CLI's ``trace``
experiment print consistent artifacts.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..analysis.report import render_kv, render_table
from .events import (
    BLOCK,
    DONE,
    KINDS,
    MOVE,
    PRE_RUN_STEP,
    WAKE,
    TraceEvent,
    TraceHeader,
)


@dataclass
class AgentSummary:
    """Per-agent aggregates derived from the trace."""

    agent: int
    color: str = ""
    moves: int = 0
    accesses: int = 0
    blocks: int = 0
    wake_step: Optional[int] = None
    done_step: Optional[int] = None
    nodes_visited: int = 0


@dataclass
class TraceSummary:
    """Whole-run aggregates derived from the trace."""

    steps: int
    events_total: int
    num_agents: int
    by_kind: Dict[str, int] = field(default_factory=dict)
    agents: List[AgentSummary] = field(default_factory=list)
    nodes_touched: int = 0
    busiest_node: Optional[int] = None
    busiest_node_events: int = 0

    @property
    def total_moves(self) -> int:
        return sum(a.moves for a in self.agents)

    @property
    def total_accesses(self) -> int:
        return sum(a.accesses for a in self.agents)


def summarize(
    events: Sequence[TraceEvent], header: Optional[TraceHeader] = None
) -> TraceSummary:
    """Aggregate an event stream (and optional header) into a summary."""
    by_kind: Counter = Counter()
    per_node: Counter = Counter()
    agents: Dict[int, AgentSummary] = {}
    if header is not None:
        for i, name in enumerate(header.colors):
            agents[i] = AgentSummary(agent=i, color=name)
    visited: Dict[int, set] = {}
    steps = 0
    for ev in events:
        by_kind[ev.kind] += 1
        per_node[ev.node] += 1
        summary = agents.get(ev.agent)
        if summary is None:
            summary = agents[ev.agent] = AgentSummary(agent=ev.agent)
        if ev.color and not summary.color:
            summary.color = ev.color
        nodes = visited.setdefault(ev.agent, set())
        nodes.add(ev.node)
        if ev.kind == MOVE and ev.dest is not None:
            summary.moves += 1
            nodes.add(ev.dest)
        if ev.is_access:
            summary.accesses += 1
        if ev.kind == BLOCK:
            summary.blocks += 1
        if ev.kind == WAKE and summary.wake_step is None:
            summary.wake_step = ev.step
        if ev.kind == DONE:
            summary.done_step = ev.step
        if ev.is_primary and ev.step != PRE_RUN_STEP:
            steps = max(steps, ev.step + 1)
    for idx, summary in agents.items():
        summary.nodes_visited = len(visited.get(idx, ()))
    busiest = per_node.most_common(1)
    return TraceSummary(
        steps=steps,
        events_total=len(events),
        num_agents=len(agents),
        by_kind={k: by_kind[k] for k in KINDS if by_kind[k]},
        agents=[agents[i] for i in sorted(agents)],
        nodes_touched=len(per_node),
        busiest_node=busiest[0][0] if busiest else None,
        busiest_node_events=busiest[0][1] if busiest else 0,
    )


def render_summary(
    summary: TraceSummary, header: Optional[TraceHeader] = None
) -> str:
    """Render a summary as the analysis harness's ASCII artifacts."""
    pairs: List[Tuple[str, object]] = []
    if header is not None:
        pairs.extend(
            [
                ("nodes", header.num_nodes),
                ("edges", header.num_edges),
                ("scheduler", header.scheduler or "?"),
            ]
        )
        for key, value in sorted(header.meta.items()):
            pairs.append((key, value))
    pairs.extend(
        [
            ("agents", summary.num_agents),
            ("steps", summary.steps),
            ("events", summary.events_total),
            ("total moves", summary.total_moves),
            ("total accesses", summary.total_accesses),
            ("nodes touched", summary.nodes_touched),
            (
                "busiest node",
                f"{summary.busiest_node} ({summary.busiest_node_events} events)"
                if summary.busiest_node is not None
                else "-",
            ),
        ]
    )
    blocks = [render_kv("trace summary", pairs)]
    if summary.by_kind:
        blocks.append(
            render_table(
                ["event kind", "count"],
                [[k, v] for k, v in summary.by_kind.items()],
            )
        )
    if summary.agents:
        rows = [
            [
                a.agent,
                a.color or "-",
                a.moves,
                a.accesses,
                a.blocks,
                a.nodes_visited,
                "-" if a.wake_step is None else a.wake_step,
                "-" if a.done_step is None else a.done_step,
            ]
            for a in summary.agents
        ]
        blocks.append(
            render_table(
                ["agent", "color", "moves", "accesses", "blocks",
                 "nodes", "woke@", "done@"],
                rows,
            )
        )
    return "\n\n".join(blocks)
