"""Deterministic replay: re-drive a simulation from a recorded schedule.

The only nondeterminism in a :class:`~repro.sim.runtime.Simulation` run is
the scheduler's choice sequence (agent private RNGs and the port-shuffle
are seeded).  A trace therefore pins an execution completely: the schedule
— which agent acted at each step — is recoverable from the event stream
because every step emits exactly one primary event
(:func:`schedule_of`), and feeding it back through a
:class:`ReplayScheduler` reproduces the run bit-for-bit, including runs
that misbehaved under a :class:`~repro.sim.scheduler.RandomScheduler`.

Two layers:

* **In-memory** — build the same instance yourself and pass
  ``ReplayScheduler.from_events(recorded_events)`` as the scheduler.
* **From file** — :func:`record_run` writes a trace whose header ``meta``
  names the instance (graph family + args, homes, protocol, seeds);
  :func:`replay_trace` rebuilds it from the file alone and asserts the
  replayed stream matches.  This is what ``python -m repro.trace replay``
  uses.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple, Union

from ..core.placement import Placement
from ..core.result import ElectionOutcome
from ..core.runner import (
    run_cayley_elect,
    run_elect,
    run_petersen_duel,
    run_quantitative,
)
from ..errors import ReplayDivergence, TraceError
from ..graphs.builders import (
    complete_bipartite_graph,
    complete_graph,
    cycle_graph,
    grid_graph,
    path_graph,
    petersen_graph,
)
from ..graphs.cayley import hypercube_cayley, torus_cayley
from ..graphs.network import AnonymousNetwork
from ..sim.scheduler import RandomScheduler, Scheduler
from .events import PRE_RUN_STEP, TraceEvent, TraceHeader
from .sinks import JsonlSink, MemorySink, TraceSink, load_trace

# ---------------------------------------------------------------------------
# Schedule recovery
# ---------------------------------------------------------------------------


def schedule_of(events: Sequence[TraceEvent]) -> List[int]:
    """Recover the scheduler's choice sequence from an event stream.

    Relies on the runtime's one-primary-event-per-step discipline: the
    primary event of step ``s`` names the agent the scheduler chose at
    ``s``.  Raises :class:`~repro.errors.TraceError` if the stream is not a
    contiguous, single-primary-per-step record (a corrupted or hand-edited
    trace).
    """
    schedule: List[int] = []
    for ev in events:
        if ev.step == PRE_RUN_STEP or not ev.is_primary:
            continue
        if ev.step == len(schedule) - 1:
            raise TraceError(
                f"two primary events at step {ev.step} "
                f"(agents {schedule[-1]} and {ev.agent})"
            )
        if ev.step != len(schedule):
            raise TraceError(
                f"non-contiguous trace: expected step {len(schedule)}, "
                f"got {ev.step}"
            )
        schedule.append(ev.agent)
    return schedule


class ReplayScheduler(Scheduler):
    """Replays a recorded choice sequence, validating it as it goes.

    On the same instance (network, placements, agents, seeds) the recorded
    agent is runnable at every step and the run terminates exactly when the
    schedule is exhausted.  Any mismatch means the executions diverged and
    raises :class:`~repro.errors.ReplayDivergence` at the offending step —
    by construction replay failures are loud, never silently different.
    The error carries structured ``step`` / ``expected`` / ``runnable``
    fields so tools (the adversary minimizer, test harnesses) can inspect
    the divergence point without parsing the message.

    ``runnable_sizes`` (as recorded by
    :class:`~repro.sim.scheduler.RecordingScheduler`) enables a cheap
    self-check: a step whose live runnable set has a different size than
    the recording has already diverged even if the recorded agent happens
    to still be runnable.
    """

    def __init__(
        self,
        schedule: Sequence[int],
        runnable_sizes: Optional[Sequence[int]] = None,
    ):
        self.schedule: Tuple[int, ...] = tuple(schedule)
        self.runnable_sizes: Optional[Tuple[int, ...]] = (
            tuple(runnable_sizes) if runnable_sizes is not None else None
        )
        if (
            self.runnable_sizes is not None
            and len(self.runnable_sizes) != len(self.schedule)
        ):
            raise TraceError(
                f"runnable_sizes has {len(self.runnable_sizes)} entries for "
                f"a {len(self.schedule)}-step schedule"
            )
        self._next = 0

    @classmethod
    def from_events(cls, events: Sequence[TraceEvent]) -> "ReplayScheduler":
        return cls(schedule_of(events))

    @classmethod
    def from_trace(cls, path: str) -> "ReplayScheduler":
        _, events = load_trace(path)
        return cls(schedule_of(events))

    @classmethod
    def from_recording(
        cls, recorder: "object"
    ) -> "ReplayScheduler":
        """Build from a :class:`~repro.sim.scheduler.RecordingScheduler`
        (choices plus the runnable-size self-check)."""
        return cls(recorder.choices, runnable_sizes=recorder.runnable_sizes)

    def reset(self) -> None:
        self._next = 0

    @property
    def steps_replayed(self) -> int:
        return self._next

    def choose(self, runnable: Sequence[int], step: int) -> int:
        if self._next >= len(self.schedule):
            raise ReplayDivergence(
                f"replay ran past the recorded schedule "
                f"({len(self.schedule)} steps): the instance differs from "
                f"the recorded one",
                step=self._next,
                runnable=sorted(runnable),
            )
        idx = self.schedule[self._next]
        if idx not in runnable:
            raise ReplayDivergence(
                f"step {self._next}: recorded agent {idx} is not runnable "
                f"(runnable: {sorted(runnable)}); the instance differs from "
                f"the recorded one",
                step=self._next,
                expected=idx,
                runnable=sorted(runnable),
            )
        if (
            self.runnable_sizes is not None
            and len(runnable) != self.runnable_sizes[self._next]
        ):
            raise ReplayDivergence(
                f"step {self._next}: runnable set has {len(runnable)} "
                f"agents, the recording had "
                f"{self.runnable_sizes[self._next]}; the executions have "
                f"diverged",
                step=self._next,
                expected=self.runnable_sizes[self._next],
                runnable=sorted(runnable),
            )
        self._next += 1
        return idx

    def __repr__(self) -> str:
        return f"ReplayScheduler({len(self.schedule)} steps)"


# ---------------------------------------------------------------------------
# Instance registry (file-level replay)
# ---------------------------------------------------------------------------

#: Graph families reconstructible from a trace header's ``meta`` — each maps
#: a name to a builder taking the recorded ``graph_args``.
GRAPH_BUILDERS: Dict[str, Callable[..., AnonymousNetwork]] = {
    "cycle": cycle_graph,
    "path": path_graph,
    "complete": complete_graph,
    "grid": grid_graph,
    "complete_bipartite": complete_bipartite_graph,
    "petersen": lambda: petersen_graph(),
    "hypercube": lambda d: hypercube_cayley(d).network,
    "torus": lambda *dims: torus_cayley(list(dims)).network,
}

#: Protocols reconstructible by name (the one-call runners).
PROTOCOL_RUNNERS: Dict[str, Callable[..., ElectionOutcome]] = {
    "elect": run_elect,
    "cayley-elect": run_cayley_elect,
    "petersen-duel": run_petersen_duel,
    "quantitative": run_quantitative,
}


def build_network(graph: str, graph_args: Sequence[Any] = ()) -> AnonymousNetwork:
    """Build a registered graph family by name (replay reconstruction)."""
    try:
        builder = GRAPH_BUILDERS[graph]
    except KeyError:
        raise TraceError(
            f"unknown graph family {graph!r}; registered: "
            f"{', '.join(sorted(GRAPH_BUILDERS))}"
        ) from None
    try:
        return builder(*graph_args)
    except TypeError as exc:
        raise TraceError(
            f"graph family {graph!r} rejected args {list(graph_args)!r}: {exc}"
        ) from None


@dataclass
class ReplayResult:
    """What a file-level replay produced, next to the recording."""

    outcome: ElectionOutcome
    events: Tuple[TraceEvent, ...]
    header: TraceHeader
    recorded_events: Tuple[TraceEvent, ...]

    @property
    def matches(self) -> bool:
        """Serialized replayed stream identical to the recorded one."""
        if len(self.events) != len(self.recorded_events):
            return False
        return all(
            a.to_dict() == b.to_dict()
            for a, b in zip(self.events, self.recorded_events)
        )


def record_run(
    graph: str,
    graph_args: Sequence[Any],
    homes: Sequence[int],
    protocol: str = "elect",
    seed: int = 0,
    path: Optional[str] = None,
    sink: Optional[TraceSink] = None,
    scheduler: Optional[Scheduler] = None,
    **sim_kwargs: Any,
) -> Tuple[ElectionOutcome, TraceSink]:
    """Run a registered protocol on a registered instance, recording a trace.

    The sink's header ``meta`` receives the full instance spec, so the
    resulting trace is self-describing: :func:`replay_trace` (and the CLI's
    ``replay`` command) can rebuild the run from the file alone.
    Returns ``(outcome, sink)``; a path-backed sink is closed before return.
    """
    if protocol not in PROTOCOL_RUNNERS:
        raise TraceError(
            f"unknown protocol {protocol!r}; registered: "
            f"{', '.join(sorted(PROTOCOL_RUNNERS))}"
        )
    network = build_network(graph, graph_args)
    if sink is None:
        sink = JsonlSink(path) if path is not None else MemorySink()
    sink.annotate(
        {
            "graph": graph,
            "graph_args": list(graph_args),
            "homes": list(homes),
            "protocol": protocol,
            "seed": seed,
        }
    )
    runner = PROTOCOL_RUNNERS[protocol]
    try:
        outcome = runner(
            network,
            Placement.of(homes),
            scheduler=scheduler or RandomScheduler(seed=seed),
            seed=seed,
            trace=sink,
            **sim_kwargs,
        )
    finally:
        if path is not None:
            sink.close()
    return outcome, sink


def replay_trace(
    source: Union[str, Tuple[Optional[TraceHeader], Sequence[TraceEvent]]],
    verify: bool = True,
) -> ReplayResult:
    """Rebuild and re-run a recorded instance from its trace.

    ``source`` is a JSONL path or an already-loaded ``(header, events)``
    pair.  The header's ``meta`` must carry the instance spec written by
    :func:`record_run`.  With ``verify=True`` (default) a replayed stream
    that differs from the recording raises
    :class:`~repro.errors.ReplayDivergence` naming the first differing
    event.
    """
    if isinstance(source, str):
        header, recorded = load_trace(source)
    else:
        header, recorded = source[0], list(source[1])
    if header is None:
        raise TraceError("trace has no header; cannot reconstruct the instance")
    meta = header.meta
    missing = [k for k in ("graph", "homes", "protocol", "seed") if k not in meta]
    if missing:
        raise TraceError(
            f"trace header meta lacks {missing}; record with "
            f"repro.trace.replay.record_run to produce replayable traces"
        )
    network = build_network(meta["graph"], meta.get("graph_args", ()))
    sink = MemorySink()
    runner = PROTOCOL_RUNNERS[meta["protocol"]]
    outcome = runner(
        network,
        Placement.of(meta["homes"]),
        scheduler=ReplayScheduler.from_events(recorded),
        seed=meta["seed"],
        trace=sink,
        port_shuffle_seed=header.port_shuffle_seed,
        max_steps=header.max_steps or None,
    )
    result = ReplayResult(
        outcome=outcome,
        events=sink.events,
        header=header,
        recorded_events=tuple(recorded),
    )
    if verify and not result.matches:
        for i, (a, b) in enumerate(zip(result.events, result.recorded_events)):
            if a.to_dict() != b.to_dict():
                raise ReplayDivergence(
                    f"replayed event {i} differs from the recording: "
                    f"{a.to_dict()} != {b.to_dict()}"
                )
        raise ReplayDivergence(
            f"replayed stream has {len(result.events)} events, "
            f"recording has {len(result.recorded_events)}"
        )
    return result
