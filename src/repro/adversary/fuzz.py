"""The interleaving fuzzer: systematic exploration of schedule space.

The paper's correctness claims are universally quantified over fair
asynchronous schedules, but any test run only witnesses one interleaving.
The fuzzer sweeps a deterministic grid of
``(instance × scheduler spec × optional FaultPlan)`` cases on the
``perf.parallel`` workers, records every schedule through a
:class:`~repro.sim.scheduler.RecordingScheduler`, deduplicates explored
interleavings by *schedule signature* (a SHA-256 over the choice
sequence), and classifies every case against the schedule-independent
Theorem 3.1 prediction with the fault campaign's vocabulary:

* fault-free cases must land in ``elected-correctly`` — under a fair
  schedule with no faults, *any* exception is a protocol bug and lands in
  the extra ``schedule-failure`` bucket, and a wrong completed answer is a
  ``silent-wrong-answer``; either fails the sweep (exit 1 on the CLI);
* faulted cases reuse the campaign classifier unchanged
  (``recovered`` / ``detected-stall`` are acceptable, silence is not).

Failing rows retain their recorded choices and runnable sizes, ready for
:mod:`repro.adversary.minimize` to shrink into a reproducer artifact.

Determinism: per-case seeds derive from :func:`zlib.crc32` over
``(config.seed, case index, instance label, scheduler kind)`` and the
battery runner preserves input order, so a fuzz report is a pure function
of its configuration for any worker count.  The case seed also keys the
runtime's *port shuffle* — the other half of the environment's
nondeterminism.  With a frozen port order every agent's tour is identical
across runs and whole families of races (two searchers heading for the
same waiter first) are structurally unreachable no matter the schedule;
varying it per case puts those interleavings back in scope.
"""

from __future__ import annotations

import hashlib
import json
import random
import zlib
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..campaign.engine import (
    CampaignEngine,
    CampaignSpec,
    FailureKeeper,
    MetricsStage,
    OutcomeCounter,
    RowCollector,
    Shard,
    SignatureDedup,
    Stage,
)
from ..core.elect import ElectAgent
from ..core.feasibility import elect_prediction
from ..errors import AdversaryError, ReproError
from ..obs import flight
from ..obs.ledger import LedgerRow, RunLedger, open_ledger
from ..fault.campaign import (
    DETECTED,
    IMPOSSIBLE,
    OUTCOMES as CAMPAIGN_OUTCOMES,
    _classify_completion,
)
from ..fault.plan import FaultPlan, random_fault_plans
from ..fault.watchdog import DEFAULT_BACKOFF, Watchdog
from ..sim.runtime import Simulation
from ..sim.scheduler import RecordingScheduler
from ..trace.sinks import MemorySink
from .metrics import count_run, count_schedule
from .specs import InstanceSpec, build_scheduler, scheduler_specs, table1_battery

#: A fault-free case that raised: under a fair schedule with no injected
#: faults, every exception is a genuine protocol bug.  Extends the
#: campaign's vocabulary, and fails the sweep just like silence does.
FAILED = "schedule-failure"

OUTCOMES: Tuple[str, ...] = CAMPAIGN_OUTCOMES + (FAILED,)


def schedule_signature(choices: Sequence[int]) -> str:
    """Content hash of an interleaving (dedup / coverage key)."""
    digest = hashlib.sha256()
    for choice in choices:
        digest.update(choice.to_bytes(4, "big", signed=False))
    return digest.hexdigest()[:16]


@dataclass(frozen=True)
class FuzzConfig:
    """Sweep-wide policy: seeds, fault cadence, supervised-run limits."""

    seed: int = 0
    #: Every ``fault_every``-th case carries a random :class:`FaultPlan`
    #: (0 disables fault pairing: pure schedule exploration).
    fault_every: int = 0
    #: Test-only agent kwargs (e.g. ``(("matching", "toctou"),)``) — how
    #: the acceptance test injects a deliberately broken protocol variant.
    agent_kwargs: Tuple[Tuple[str, Any], ...] = ()
    #: Watchdog policy for faulted cases (fault-free cases run bare: any
    #: stall there is a bug, not something to recover from).
    timeout: int = 400
    max_restarts: int = 2
    backoff: Tuple[int, ...] = DEFAULT_BACKOFF
    #: Hard step budget per run (``None``: the runtime's size-derived cap).
    max_steps: Optional[int] = None

    def watchdog(self, case_seed: int) -> Watchdog:
        return Watchdog(
            timeout=self.timeout,
            max_restarts=self.max_restarts,
            backoff=self.backoff,
            seed=case_seed,
        )


@dataclass
class FuzzRow:
    """One classified fuzz case."""

    index: int
    spec: InstanceSpec
    scheduler: Dict[str, Any]
    plan: Optional[FaultPlan]
    case_seed: int
    predicted: bool
    outcome: str
    detail: str = ""
    steps: int = 0
    #: Total agent moves (deterministic per case; feeds the run ledger's
    #: moves-vs-budget column, deliberately absent from :meth:`to_dict`
    #: so existing report JSON stays byte-stable).
    moves: int = 0
    schedule_len: int = 0
    signature: str = ""
    #: Set by ``run_fuzz`` after signature dedup.
    distinct: bool = False
    #: Retained only for failing rows (minimizer input).
    choices: Optional[Tuple[int, ...]] = None
    runnable_sizes: Optional[Tuple[int, ...]] = None

    @property
    def failed(self) -> bool:
        return self.outcome in (FAILED, IMPOSSIBLE)

    def to_dict(self) -> Dict[str, Any]:
        out = {
            "index": self.index,
            "instance": self.spec.label,
            "scheduler": dict(self.scheduler),
            "plan": self.plan.describe() if self.plan is not None else None,
            "case_seed": self.case_seed,
            "predicted": self.predicted,
            "outcome": self.outcome,
            "detail": self.detail,
            "steps": self.steps,
            "schedule_len": self.schedule_len,
            "signature": self.signature,
            "distinct": self.distinct,
        }
        if self.choices is not None:
            out["choices"] = list(self.choices)
        return out


@dataclass
class FuzzReport:
    """All rows of one fuzz sweep plus the coverage counters.

    Like :class:`repro.fault.campaign.CampaignReport`, this has a legacy
    (collect) shape holding every row and a streaming shape holding only
    the failing rows, with the headline numbers carried by the engine's
    checkpointed counters in the ``streamed_*`` fields.
    """

    rows: List[FuzzRow]
    seed: int
    #: The sweep's agent kwargs — recorded so ``minimize`` can rebuild the
    #: exact failing configuration from the JSON report alone.
    agent_kwargs: Tuple[Tuple[str, Any], ...] = ()
    #: Streaming mode: outcome histogram from the engine (``None``: legacy).
    streamed_counts: Optional[Dict[str, int]] = None
    #: Streaming mode: total cases observed (resumed + evaluated).
    streamed_total: Optional[int] = None
    #: Streaming mode: distinct schedule signatures seen.
    streamed_distinct: Optional[int] = None

    @property
    def streamed(self) -> bool:
        return self.streamed_counts is not None

    @property
    def total_cases(self) -> int:
        if self.streamed_total is not None:
            return self.streamed_total
        return len(self.rows)

    @property
    def counts(self) -> Dict[str, int]:
        out = {name: 0 for name in OUTCOMES}
        if self.streamed_counts is not None:
            for name, n in self.streamed_counts.items():
                out[name] = out.get(name, 0) + int(n)
            return out
        for row in self.rows:
            out[row.outcome] = out.get(row.outcome, 0) + 1
        return out

    @property
    def failures(self) -> List[FuzzRow]:
        return [r for r in self.rows if r.failed]

    @property
    def distinct_schedules(self) -> int:
        if self.streamed_distinct is not None:
            return self.streamed_distinct
        return sum(1 for r in self.rows if r.distinct)

    @property
    def duplicate_schedules(self) -> int:
        return self.total_cases - self.distinct_schedules

    @property
    def ok(self) -> bool:
        """The sweep's verdict: no silent wrong answer, no schedule bug."""
        if self.streamed:
            counts = self.counts
            return (
                counts.get(FAILED, 0) == 0 and counts.get(IMPOSSIBLE, 0) == 0
            )
        return not self.failures

    def to_dict(self) -> Dict[str, Any]:
        return {
            "seed": self.seed,
            "agent_kwargs": dict(self.agent_kwargs),
            "cases": self.total_cases,
            "counts": self.counts,
            "distinct_schedules": self.distinct_schedules,
            "duplicate_schedules": self.duplicate_schedules,
            "ok": self.ok,
            "rows": [r.to_dict() for r in self.rows],
        }

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    def render(self) -> str:
        mode = " [streamed]" if self.streamed else ""
        lines = [
            f"interleaving fuzz: {self.total_cases} cases, "
            f"seed={self.seed}{mode}"
        ]
        counts = self.counts
        for name in OUTCOMES:
            lines.append(f"  {name:>22}: {counts.get(name, 0)}")
        lines.append(
            f"  distinct interleavings: {self.distinct_schedules}  "
            f"(dedup hits: {self.duplicate_schedules})"
        )
        for row in self.failures:
            lines.append(
                f"  FAILURE #{row.index} {row.spec.label} / "
                f"{row.scheduler.get('kind')}: {row.detail}"
            )
        lines.append("verdict: " + ("OK" if self.ok else "FAILED"))
        return "\n".join(lines)


def _case_seed(seed: int, index: int, label: str, kind: str) -> int:
    """Stable per-case seed (no ``hash()``: must survive process hopping)."""
    return zlib.crc32(f"{seed}:{index}:{label}:{kind}".encode("utf-8"))


def _case_context(
    seed: int, index: int, label: str, kind: str
) -> "flight.TraceContext":
    """The case's flight trace context — deterministic like the case seed,
    so ledger trace ids survive worker-count changes."""
    return flight.TraceContext.mint("fuzz-case", f"{seed}:{index}:{label}:{kind}")


def write_fuzz_ledger(
    ledger: Any,
    report: "FuzzReport",
    tasks: Sequence[
        Tuple[int, InstanceSpec, Dict[str, Any], Optional[FaultPlan], FuzzConfig]
    ],
    elapsed: float = 0.0,
) -> int:
    """Append one ``kind="fuzz"`` ledger row per fuzz case.

    Mirrors :func:`repro.fault.campaign.write_campaign_ledger`: every
    column but ``wall_ms`` is deterministic in the sweep config, so
    ledger digests are worker-count independent.  Returns the number of
    rows written.
    """
    from ..graphs.canonical import canonical_hash
    from ..trace.invariants import THEOREM31_CONSTANT

    led = open_ledger(ledger)
    campaign = f"fuzz:seed={report.seed}:runs={len(tasks)}"
    wall_each = (elapsed / len(tasks) * 1000.0) if tasks else 0.0
    cache: Dict[str, Tuple[str, float]] = {}  # label -> (chash, budget)
    rows: List[LedgerRow] = []
    for row, (index, spec, sched_spec, _plan, cfg) in zip(report.rows, tasks):
        cached = cache.get(spec.label)
        if cached is None:
            network, placement = spec.build()
            chash = canonical_hash(network, placement.bicoloring(network))
            budget = (
                THEOREM31_CONSTANT
                * placement.num_agents
                * max(1, network.num_edges)
            )
            cached = (chash, budget)
            cache[spec.label] = cached
        chash, budget = cached
        kind = str(sched_spec.get("kind"))
        ctx = _case_context(cfg.seed, index, spec.label, kind)
        rows.append(
            LedgerRow(
                kind="fuzz",
                campaign=campaign,
                case_index=row.index,
                instance=spec.label,
                family=kind,
                chash=chash,
                seed=row.case_seed,
                predicted="electable" if row.predicted else "impossible",
                outcome=row.outcome,
                detail=row.detail,
                moves=row.moves,
                budget=budget,
                steps=row.steps,
                wall_ms=round(wall_each, 3),
                trace_id=ctx.trace_id,
                span_id=ctx.span_id,
            )
        )
    written = led.append(rows)
    if not isinstance(ledger, RunLedger):
        led.close()
    return written


def failure_signature(exc: BaseException) -> str:
    """The identity of a loud failure: exception type plus message."""
    return f"{type(exc).__name__}: {exc}"


def _evaluate_case(
    task: Tuple[int, InstanceSpec, Dict[str, Any], Optional[FaultPlan], FuzzConfig]
) -> FuzzRow:
    """Run and classify one case.  Module-level: pickled to pool workers."""
    index, spec, sched_spec, plan, cfg = task
    case_seed = _case_seed(
        cfg.seed, index, spec.label, str(sched_spec.get("kind"))
    )
    network, placement = spec.build()
    predicted = elect_prediction(network, placement).succeeds

    colors = placement.fresh_colors()
    agent_kwargs = dict(cfg.agent_kwargs)
    agents = [
        ElectAgent(
            color, rng=random.Random(f"{case_seed}:{i}"), **agent_kwargs
        )
        for i, color in enumerate(colors)
    ]
    recorder = RecordingScheduler(build_scheduler(sched_spec))
    sink = MemorySink()
    sim = Simulation(
        network,
        list(zip(agents, placement.homes)),
        scheduler=recorder,
        trace=sink,
        fault=plan,
        watchdog=cfg.watchdog(case_seed) if plan is not None else None,
        max_steps=cfg.max_steps,
        port_shuffle_seed=case_seed,
    )

    row = FuzzRow(
        index=index,
        spec=spec,
        scheduler=dict(sched_spec),
        plan=plan,
        case_seed=case_seed,
        predicted=predicted,
        outcome=DETECTED,
    )
    try:
        result = sim.run()
    except ReproError as exc:
        if plan is not None:
            # Campaign semantics: under injected faults a loud failure is a
            # detection (classified stall, budget livelock, tripped check).
            row.outcome, row.detail = DETECTED, failure_signature(exc)
        else:
            row.outcome, row.detail = FAILED, failure_signature(exc)
    else:
        row.outcome, row.detail = _classify_completion(sim, result, predicted)
        row.steps = result.steps
        row.moves = result.total_moves
    row.schedule_len = len(recorder.choices)
    row.signature = schedule_signature(recorder.choices)
    if row.failed:
        row.choices = tuple(recorder.choices)
        row.runnable_sizes = tuple(recorder.runnable_sizes)
    return row


def build_cases(
    instances: Sequence[InstanceSpec],
    runs: int,
    config: FuzzConfig,
) -> List[Tuple[int, InstanceSpec, Dict[str, Any], Optional[FaultPlan], FuzzConfig]]:
    """The deterministic case grid: instances × scheduler specs (± plans)."""
    if not instances:
        raise AdversaryError("fuzz sweep needs at least one instance")
    if runs < 1:
        raise AdversaryError("fuzz sweep needs runs >= 1")
    specs = scheduler_specs(-(-runs // len(instances)), seed=config.seed)
    shapes = {inst.label: inst.build() for inst in instances}
    tasks = []
    for i in range(runs):
        inst = instances[i % len(instances)]
        sched = specs[i // len(instances)]
        plan: Optional[FaultPlan] = None
        if config.fault_every and (i + 1) % config.fault_every == 0:
            network, placement = shapes[inst.label]
            plan = random_fault_plans(
                1,
                num_agents=placement.num_agents,
                num_nodes=network.num_nodes,
                seed=_case_seed(
                    config.seed, i, inst.label, str(sched.get("kind"))
                ),
            )[0]
        tasks.append((i, inst, sched, plan, config))
    return tasks


class FuzzCampaignSpec(CampaignSpec):
    """The interleaving grid as a lazy :class:`~repro.campaign.CampaignSpec`.

    Same deterministic grid :func:`build_cases` materializes —
    ``instances[i % n] × scheduler_specs[i // n]`` with a plan on every
    ``fault_every``-th case — expressed case-by-case so a shard touches
    only the indices it owns.  Schedule-signature dedup runs as a
    checkpointed :class:`~repro.campaign.SignatureDedup` stage, so a
    resumed sweep's coverage counters continue from the committed prefix
    instead of resetting.
    """

    kind = "fuzz"
    span_name = "fuzz.case"

    def __init__(
        self,
        instances: Optional[Sequence[InstanceSpec]] = None,
        runs: int = 200,
        config: Optional[FuzzConfig] = None,
        quick: bool = False,
        collect: bool = False,
    ):
        self.config = config or FuzzConfig()
        if instances is None:
            instances = table1_battery(quick=quick)
        self.instances = list(instances)
        if not self.instances:
            raise AdversaryError("fuzz sweep needs at least one instance")
        if runs < 1:
            raise AdversaryError("fuzz sweep needs runs >= 1")
        self.runs = runs
        self.campaign = f"fuzz:seed={self.config.seed}:runs={runs}"
        self._specs = scheduler_specs(
            -(-runs // len(self.instances)), seed=self.config.seed
        )
        self._shape_cache: Dict[str, Tuple[Any, Any]] = {}
        self._ledger_cache: Dict[str, Tuple[str, float]] = {}
        self.counter = OutcomeCounter()
        self.dedup = SignatureDedup(attr="signature", flag="distinct")
        self.failures = FailureKeeper(self.case_failed)
        self.collector: Optional[RowCollector] = (
            RowCollector() if collect else None
        )

    @property
    def total(self) -> int:
        return self.runs

    def _shape(self, label: str, inst: InstanceSpec) -> Tuple[Any, Any]:
        shape = self._shape_cache.get(label)
        if shape is None:
            shape = inst.build()
            self._shape_cache[label] = shape
        return shape

    def task(
        self, index: int
    ) -> Tuple[int, InstanceSpec, Dict[str, Any], Optional[FaultPlan], FuzzConfig]:
        cfg = self.config
        inst = self.instances[index % len(self.instances)]
        sched = self._specs[index // len(self.instances)]
        plan: Optional[FaultPlan] = None
        if cfg.fault_every and (index + 1) % cfg.fault_every == 0:
            network, placement = self._shape(inst.label, inst)
            plan = random_fault_plans(
                1,
                num_agents=placement.num_agents,
                num_nodes=network.num_nodes,
                seed=_case_seed(
                    cfg.seed, index, inst.label, str(sched.get("kind"))
                ),
            )[0]
        return (index, inst, sched, plan, cfg)

    @property
    def evaluate(self) -> Any:
        return _evaluate_case

    def context(self, index: int) -> "flight.TraceContext":
        inst = self.instances[index % len(self.instances)]
        sched = self._specs[index // len(self.instances)]
        return _case_context(
            self.config.seed, index, inst.label, str(sched.get("kind"))
        )

    def ledger_row(self, index: int, row: FuzzRow) -> LedgerRow:
        from ..graphs.canonical import canonical_hash
        from ..trace.invariants import THEOREM31_CONSTANT

        spec = row.spec
        cached = self._ledger_cache.get(spec.label)
        if cached is None:
            network, placement = self._shape(spec.label, spec)
            chash = canonical_hash(network, placement.bicoloring(network))
            budget = (
                THEOREM31_CONSTANT
                * placement.num_agents
                * max(1, network.num_edges)
            )
            cached = (chash, budget)
            self._ledger_cache[spec.label] = cached
        chash, budget = cached
        kind = str(row.scheduler.get("kind"))
        ctx = _case_context(self.config.seed, index, spec.label, kind)
        return LedgerRow(
            kind=self.kind,
            campaign=self.campaign,
            case_index=row.index,
            instance=spec.label,
            family=kind,
            chash=chash,
            seed=row.case_seed,
            predicted="electable" if row.predicted else "impossible",
            outcome=row.outcome,
            detail=row.detail,
            moves=row.moves,
            budget=budget,
            steps=row.steps,
            trace_id=ctx.trace_id,
            span_id=ctx.span_id,
        )

    def spill_record(self, index: int, row: FuzzRow) -> Dict[str, Any]:
        record = row.to_dict()
        record["case_index"] = index
        return record

    def case_failed(self, row: FuzzRow) -> bool:
        return row.failed

    def stages(self) -> Sequence[Stage]:
        stages: List[Stage] = [
            self.counter,
            self.dedup,  # must precede metrics: it sets row.distinct
            MetricsStage(self._count),
            self.failures,
        ]
        if self.collector is not None:
            stages.append(self.collector)
        return stages

    @staticmethod
    def _count(row: FuzzRow) -> None:
        count_schedule(row.distinct)
        count_run(row.outcome)

    def describe(self) -> Dict[str, Any]:
        cfg = self.config
        return {
            "kind": self.kind,
            "campaign": self.campaign,
            "seed": cfg.seed,
            "runs": self.runs,
            "instances": [inst.label for inst in self.instances],
            "fault_every": cfg.fault_every,
            "agent_kwargs": repr(cfg.agent_kwargs),
            "timeout": cfg.timeout,
            "max_restarts": cfg.max_restarts,
            "backoff": list(cfg.backoff),
            "max_steps": cfg.max_steps,
        }


def run_fuzz(
    instances: Optional[Sequence[InstanceSpec]] = None,
    runs: int = 200,
    config: Optional[FuzzConfig] = None,
    workers: Optional[int] = 1,
    quick: bool = False,
    ledger: Optional[Any] = None,
    stream: bool = False,
    shard: Optional[Any] = None,
    resume: bool = False,
    checkpoint_every: int = 64,
    max_cases: Optional[int] = None,
    spill: Optional[str] = None,
) -> FuzzReport:
    """Sweep the interleaving grid; return the classified report.

    Deterministic in ``(instances, runs, config)`` — worker count only
    changes wall-clock time (the battery runner preserves input order and
    every seed derives per case).  The sweep runs on the
    :class:`~repro.campaign.CampaignEngine`:

    * ``stream=False`` (default) keeps the legacy full-report shape;
    * ``stream=True`` retains only failing rows (with their recorded
      choices, so :mod:`repro.adversary.minimize` still has its input)
      while counts and schedule coverage come from checkpointed stage
      counters — flat memory at any ``runs``;
    * ``shard`` / ``resume`` / ``checkpoint_every`` / ``max_cases`` /
      ``spill`` pass straight to the engine (``shard`` accepts a
      :class:`~repro.campaign.Shard` or an ``"i/N"`` string).

    ``ledger`` (a :class:`~repro.obs.ledger.RunLedger` or a path) appends
    one row per case, committed chunk-atomically with the shard's resume
    checkpoint; with the flight recorder on, each case also runs under
    its own deterministic trace context and ships its spans back to the
    sweep's recorder.
    """
    cfg = config or FuzzConfig()
    spec = FuzzCampaignSpec(
        instances=instances,
        runs=runs,
        config=cfg,
        quick=quick,
        collect=not stream,
    )
    if shard is None:
        shard = Shard()
    elif not isinstance(shard, Shard):
        shard = Shard.parse(shard)
    engine = CampaignEngine(
        spec,
        ledger=ledger,
        workers=workers,
        shard=shard,
        checkpoint_every=checkpoint_every,
        max_cases=max_cases,
        spill=spill,
    )
    result = engine.run(resume=resume)
    if stream:
        return FuzzReport(
            rows=list(spec.failures.kept),
            seed=cfg.seed,
            agent_kwargs=cfg.agent_kwargs,
            streamed_counts=dict(result.counts),
            streamed_total=result.resumed + result.processed,
            streamed_distinct=spec.dedup.distinct,
        )
    assert spec.collector is not None
    return FuzzReport(
        rows=list(spec.collector.rows),
        seed=cfg.seed,
        agent_kwargs=cfg.agent_kwargs,
    )
