"""Command-line adversary: ``python -m repro.adversary``.

Three subcommands:

* ``fuzz`` — sweep the interleaving grid over the Table-1 instance set,
  print the classified report, optionally write it as JSON and minimize
  any failures into reproducer artifacts; exits non-zero if any case
  lands in ``silent-wrong-answer`` or ``schedule-failure`` — the CI
  contract of the adversarial suite.
* ``minimize <report.json>`` — re-run ddmin on the failing rows of a fuzz
  report written with ``fuzz --out`` and save the reproducers.
* ``repro <artifact.json>`` — load a reproducer artifact, re-execute it,
  and exit non-zero unless the recorded failure signature fires again.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import Optional, Sequence

from ..errors import AdversaryError, CampaignError
from .artifact import Reproducer
from .fuzz import FuzzConfig, FuzzRow, run_fuzz
from .minimize import minimize_row, replay_reproducer
from .specs import table1_battery


def _minimize_and_save(
    rows, config: FuzzConfig, out_dir: str, budget: int
) -> int:
    os.makedirs(out_dir, exist_ok=True)
    saved = 0
    for row in rows:
        result = minimize_row(row, config=config, budget=budget)
        path = os.path.join(out_dir, f"repro-{row.index:04d}.json")
        result.reproducer.save(path)
        saved += 1
        print(
            f"minimized #{row.index}: {result.minimized_len}/"
            f"{result.original_len} decisions "
            f"({100 * result.reduction:.1f}%), "
            f"{result.probes} probes, "
            f"verified={result.verified} -> {path}"
        )
    return saved


def _cmd_fuzz(args: argparse.Namespace) -> int:
    config = FuzzConfig(
        seed=args.seed,
        fault_every=args.fault_every,
        max_steps=args.max_steps,
    )
    report = run_fuzz(
        runs=args.runs,
        config=config,
        workers=args.workers,
        quick=args.quick,
        ledger=args.ledger,
        stream=args.stream,
        shard=args.shard,
        resume=args.resume,
        max_cases=args.max_cases,
    )
    print(report.render())
    if args.out:
        with open(args.out, "w", encoding="utf-8") as fh:
            fh.write(report.to_json())
        print(f"report written to {args.out}")
    if args.artifacts and report.failures:
        _minimize_and_save(
            report.failures, config, args.artifacts, args.budget
        )
    return 0 if report.ok else 1


def _rows_from_report(path: str):
    with open(path, "r", encoding="utf-8") as fh:
        data = json.load(fh)
    agent_kwargs = tuple(sorted(data.get("agent_kwargs", {}).items()))
    rows = []
    # Instance specs are keyed by label in the Table-1 battery.
    by_label = {s.label: s for s in table1_battery()}
    for entry in data.get("rows", []):
        if "choices" not in entry:
            continue
        label = entry["instance"]
        if label not in by_label:
            continue
        rows.append(
            FuzzRow(
                index=entry["index"],
                spec=by_label[label],
                scheduler=entry["scheduler"],
                plan=None,
                case_seed=entry["case_seed"],
                predicted=entry["predicted"],
                outcome=entry["outcome"],
                detail=entry["detail"],
                steps=entry["steps"],
                schedule_len=entry["schedule_len"],
                signature=entry["signature"],
                choices=tuple(entry["choices"]),
            )
        )
    return rows, agent_kwargs


def _cmd_minimize(args: argparse.Namespace) -> int:
    rows, agent_kwargs = _rows_from_report(args.report)
    if not rows:
        print(f"no failing rows with recorded schedules in {args.report}")
        return 1
    config = FuzzConfig(
        seed=args.seed, agent_kwargs=agent_kwargs, max_steps=args.max_steps
    )
    _minimize_and_save(rows, config, args.artifacts, args.budget)
    return 0


def _cmd_repro(args: argparse.Namespace) -> int:
    rep = Reproducer.load(args.artifact)
    print(rep.describe())
    result = replay_reproducer(rep)
    reproduced = result.signature == rep.failure
    print(
        f"replayed {len(result.choices)} steps; failure "
        f"{'reproduced' if reproduced else 'DID NOT reproduce'}"
    )
    if not reproduced:
        print(f"  expected: {rep.failure}")
        print(f"  observed: {result.signature!r}")
    return 0 if reproduced else 1


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.adversary",
        description="Adversarial schedule exploration: fuzz interleavings, "
        "minimize failures, replay reproducers.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    fuzz = sub.add_parser("fuzz", help="sweep the interleaving grid")
    fuzz.add_argument("--runs", type=int, default=200)
    fuzz.add_argument("--seed", type=int, default=0)
    fuzz.add_argument("--workers", type=int, default=1)
    fuzz.add_argument(
        "--quick", action="store_true", help="small instance slice"
    )
    fuzz.add_argument(
        "--fault-every",
        type=int,
        default=0,
        help="pair every Nth case with a random fault plan (0: none)",
    )
    fuzz.add_argument("--max-steps", type=int, default=None)
    fuzz.add_argument("--out", type=str, default=None, help="JSON report path")
    fuzz.add_argument(
        "--artifacts",
        type=str,
        default=None,
        help="minimize failures and save reproducers into this directory",
    )
    fuzz.add_argument("--budget", type=int, default=2000)
    fuzz.add_argument(
        "--ledger",
        type=str,
        default=None,
        help="append one run-ledger row per case to this SQLite database "
        "(see python -m repro.obs ledger)",
    )
    fuzz.add_argument(
        "--stream",
        action="store_true",
        help="streaming report: retain only failing rows (their recorded "
        "choices still feed --artifacts); counts come from the campaign "
        "engine's checkpointed counters",
    )
    fuzz.add_argument(
        "--shard",
        type=str,
        default=None,
        metavar="i/N",
        help="run only case indices ≡ i (mod N) — see python -m repro.campaign",
    )
    fuzz.add_argument(
        "--resume",
        action="store_true",
        help="continue from the ledger's checkpoint for this shard",
    )
    fuzz.add_argument(
        "--max-cases",
        type=int,
        default=None,
        help="truncate the grid to its first N indices (before sharding)",
    )
    fuzz.set_defaults(func=_cmd_fuzz)

    minimize = sub.add_parser(
        "minimize", help="shrink the failing rows of a fuzz report"
    )
    minimize.add_argument("report", help="JSON report from fuzz --out")
    minimize.add_argument("--artifacts", type=str, default="reproducers")
    minimize.add_argument("--seed", type=int, default=0)
    minimize.add_argument("--max-steps", type=int, default=None)
    minimize.add_argument("--budget", type=int, default=2000)
    minimize.set_defaults(func=_cmd_minimize)

    repro = sub.add_parser("repro", help="re-execute a reproducer artifact")
    repro.add_argument("artifact", help="reproducer JSON path")
    repro.set_defaults(func=_cmd_repro)

    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except (AdversaryError, CampaignError, OSError, json.JSONDecodeError) as exc:
        # Misconfiguration (bad paths, malformed artifacts, bad specs)
        # exits 2, like the trace CLI; discovered failures exit 1.
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
