"""Adversary-layer metrics: an always-enabled ``"adversary"`` collector.

Mirrors :mod:`repro.fault.metrics`: the coverage counters of the
interleaving fuzzer and the ddmin minimizer live in a dedicated
always-enabled :class:`~repro.obs.registry.MetricsRegistry` registered as
the ``"adversary"`` collector, so they appear in
:func:`repro.obs.collect_snapshot` without the default registry being
switched on, and tests can assert on exploration coverage regardless of
global metrics state.

Metrics
-------
* ``fuzz_runs_total{outcome=…}`` — fuzz cases per outcome classification
  (``elected-correctly`` … ``silent-wrong-answer`` / ``schedule-failure``);
* ``fuzz_schedules_total{novelty=…}`` — explored interleavings, split into
  ``distinct`` (first time this schedule signature was seen) and
  ``duplicate`` (signature dedup hit: deterministic schedulers and
  converging random ones revisit interleavings);
* ``minimizer_probes_total{result=…}`` — ddmin probe runs, split into
  ``reproduced`` (the candidate subset still triggers the recorded
  failure) and ``vanished`` (it does not).
"""

from __future__ import annotations

from typing import Dict

from ..obs.registry import MetricsRegistry, register_collector

_metrics = MetricsRegistry(enabled=True)
register_collector("adversary", _metrics)

_runs = _metrics.counter(
    "fuzz_runs_total", help="fuzz cases, by outcome classification"
)
_schedules = _metrics.counter(
    "fuzz_schedules_total",
    help="explored interleavings, by signature novelty",
)
_probes = _metrics.counter(
    "minimizer_probes_total",
    help="ddmin probe runs, by whether the failure reproduced",
)


def count_run(outcome: str) -> None:
    """Record one classified fuzz case."""
    _runs.inc(outcome=outcome)


def count_schedule(distinct: bool) -> None:
    """Record one explored interleaving (novel signature or a dedup hit)."""
    _schedules.inc(novelty="distinct" if distinct else "duplicate")


def count_probe(reproduced: bool) -> None:
    """Record one minimizer probe run."""
    _probes.inc(result="reproduced" if reproduced else "vanished")


def _series(name: str, label: str) -> Dict[str, int]:
    data = _metrics.snapshot()["metrics"].get(name, {})
    out: Dict[str, int] = {}
    for series in data.get("series", []):
        out[series["labels"].get(label, "?")] = int(series["value"])
    return out


def fuzz_stats() -> Dict[str, Dict[str, int]]:
    """Snapshot of the adversary counters since the last reset."""
    return {
        "runs": _series("fuzz_runs_total", "outcome"),
        "schedules": _series("fuzz_schedules_total", "novelty"),
        "probes": _series("minimizer_probes_total", "result"),
    }


def reset() -> None:
    """Zero the adversary counters (explicit, like ``perf.cache.reset``)."""
    _metrics.reset()
