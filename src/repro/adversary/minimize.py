"""ddmin over adversarial schedules: shrink a failing run to its essence.

A failing fuzz case arrives as a complete recorded schedule — often
thousands of choices, almost all of them irrelevant.  Naive subsequence
shrinking cannot work here: deleting steps desynchronizes every later
recorded choice from the execution, and the number of steps a protocol
needs before a race can even fire is schedule-invariant.  Instead the
minimizer works over *pinned decisions*: the recorded schedule becomes a
``step -> agent`` constraint map, a :class:`PatchedScheduler` plays pinned
steps verbatim and fills every other step from a deterministic fallback
scheduler, and Zeller-style ddmin deletes constraints — not steps — while
the failure keeps reproducing.  The surviving pins are exactly the
scheduling decisions the bug needs, and their count is the reproducer's
length.

Verification closes the loop: the minimized run's *effective* schedule
(recorded while probing) is re-executed through a strict
:class:`~repro.trace.replay.ReplayScheduler` (with the runnable-size
self-check) and must raise the same failure with a byte-identical trace
event stream.  The result ships as a :class:`~repro.adversary.artifact.Reproducer`.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from ..core.elect import ElectAgent
from ..core.feasibility import elect_prediction
from ..errors import AdversaryError, ReproError
from ..fault.campaign import IMPOSSIBLE, _classify_completion
from ..fault.plan import FaultPlan
from ..sim.runtime import Simulation
from ..sim.scheduler import RecordingScheduler, Scheduler
from ..trace.replay import ReplayScheduler
from ..trace.sinks import MemorySink
from .artifact import Reproducer
from .fuzz import FAILED, FuzzConfig, FuzzRow, failure_signature
from .metrics import count_probe
from .specs import InstanceSpec, build_scheduler

#: Default fallback for unpinned steps: deterministic and maximally bursty,
#: i.e. as far as possible from the fine-grained interleavings that race
#: bugs need — so the fallback itself almost never re-triggers the failure
#: and the surviving pins are genuinely load-bearing.
DEFAULT_FALLBACK: Dict[str, Any] = {"kind": "greedy"}


class PatchedScheduler(Scheduler):
    """Play a sparse set of pinned decisions over a fallback scheduler.

    ``decisions`` maps a step index to the agent that must run there; any
    step without a pin (or whose pinned agent is not currently runnable)
    falls through to ``fallback``.  With a deterministic fallback the whole
    schedule is a pure function of the pin set, which is what makes ddmin
    probes and the final replay verification meaningful.
    """

    def __init__(self, decisions: Mapping[int, int], fallback: Scheduler):
        self.decisions = dict(decisions)
        self.fallback = fallback

    def reset(self) -> None:
        self.fallback.reset()

    def choose(self, runnable: Sequence[int], step: int) -> int:
        want = self.decisions.get(step)
        if want is not None and want in runnable:
            return want
        return self.fallback.choose(runnable, step)

    def __repr__(self) -> str:
        return (
            f"PatchedScheduler({len(self.decisions)} pins, "
            f"fallback={self.fallback!r})"
        )


@dataclass
class ProbeResult:
    """One probe run: did it fail, and exactly how."""

    signature: Optional[str]
    choices: Tuple[int, ...]
    runnable_sizes: Tuple[int, ...]
    events: Tuple[Any, ...]


@dataclass
class MinimizationResult:
    """What ddmin produced for one failing row."""

    reproducer: Reproducer
    original_len: int
    minimized_len: int
    probes: int
    verified: bool

    @property
    def reduction(self) -> float:
        """Minimized length as a fraction of the original schedule."""
        if self.original_len == 0:
            return 0.0
        return self.minimized_len / self.original_len


def row_failure_signature(row: FuzzRow) -> str:
    """The failure identity a minimization must preserve."""
    if row.outcome == FAILED:
        return row.detail
    if row.outcome == IMPOSSIBLE:
        return f"{IMPOSSIBLE}: {row.detail}"
    raise AdversaryError(
        f"row #{row.index} ({row.outcome!r}) is not a failure; only "
        f"{FAILED!r} and {IMPOSSIBLE!r} rows can be minimized"
    )


def _execute(
    instance: InstanceSpec,
    case_seed: int,
    agent_kwargs: Mapping[str, Any],
    scheduler: Scheduler,
    plan: Optional[FaultPlan],
    config: FuzzConfig,
) -> ProbeResult:
    """One deterministic supervised run under ``scheduler``."""
    network, placement = instance.build()
    predicted = elect_prediction(network, placement).succeeds
    colors = placement.fresh_colors()
    agents = [
        ElectAgent(
            color, rng=random.Random(f"{case_seed}:{i}"), **dict(agent_kwargs)
        )
        for i, color in enumerate(colors)
    ]
    recorder = RecordingScheduler(scheduler)
    sink = MemorySink()
    sim = Simulation(
        network,
        list(zip(agents, placement.homes)),
        scheduler=recorder,
        trace=sink,
        fault=plan,
        watchdog=config.watchdog(case_seed) if plan is not None else None,
        max_steps=config.max_steps,
        port_shuffle_seed=case_seed,
    )
    signature: Optional[str] = None
    try:
        result = sim.run()
    except ReproError as exc:
        signature = failure_signature(exc)
    else:
        outcome, detail = _classify_completion(sim, result, predicted)
        if outcome == IMPOSSIBLE:
            signature = f"{IMPOSSIBLE}: {detail}"
    return ProbeResult(
        signature=signature,
        choices=tuple(recorder.choices),
        runnable_sizes=tuple(recorder.runnable_sizes),
        events=tuple(sink.events),
    )


def _split(seq: List[int], n: int) -> List[List[int]]:
    """Partition ``seq`` into ``n`` contiguous, non-empty chunks."""
    size, rem = divmod(len(seq), n)
    chunks, start = [], 0
    for i in range(n):
        end = start + size + (1 if i < rem else 0)
        if end > start:
            chunks.append(seq[start:end])
        start = end
    return chunks


def minimize_row(
    row: FuzzRow,
    config: Optional[FuzzConfig] = None,
    fallback: Optional[Mapping[str, Any]] = None,
    budget: int = 2000,
) -> MinimizationResult:
    """Shrink one failing fuzz row into a verified reproducer.

    ``config`` must be the :class:`FuzzConfig` the sweep ran with (it
    carries the agent kwargs and supervised-run limits the failure depends
    on).  ``budget`` caps the number of probe executions; on exhaustion the
    smallest constraint set found so far is kept.
    """
    if row.choices is None:
        raise AdversaryError(
            f"row #{row.index} carries no recorded schedule; only failing "
            f"rows retain their choices"
        )
    cfg = config or FuzzConfig()
    fallback_spec = dict(fallback or DEFAULT_FALLBACK)
    target = row_failure_signature(row)
    schedule = row.choices
    probes = 0
    memo: Dict[Tuple[int, ...], bool] = {}

    def reproduces(positions: Sequence[int], plan: Optional[FaultPlan]) -> bool:
        nonlocal probes
        key = tuple(positions)
        if plan is row.plan and key in memo:
            return memo[key]
        if probes >= budget:
            return False
        probes += 1
        result = _execute(
            row.spec,
            row.case_seed,
            dict(cfg.agent_kwargs),
            PatchedScheduler(
                {i: schedule[i] for i in positions},
                build_scheduler(fallback_spec),
            ),
            plan,
            cfg,
        )
        hit = result.signature == target
        count_probe(hit)
        if plan is row.plan:
            memo[key] = hit
        return hit

    positions = list(range(len(schedule)))
    if not reproduces(positions, row.plan):
        raise AdversaryError(
            f"row #{row.index}: the fully-pinned schedule does not "
            f"reproduce {target!r} under fallback {fallback_spec!r}; "
            f"pick a different fallback"
        )

    # Zeller ddmin over the pinned positions.
    n = 2
    while len(positions) >= 2 and probes < budget:
        chunks = _split(positions, n)
        reduced = False
        for chunk in chunks:
            if reproduces(chunk, row.plan):
                positions, n, reduced = chunk, 2, True
                break
        if not reduced:
            for i in range(len(chunks)):
                complement = [
                    p for j, c in enumerate(chunks) if j != i for p in c
                ]
                if reproduces(complement, row.plan):
                    positions = complement
                    n = max(n - 1, 2)
                    reduced = True
                    break
        if not reduced:
            if n >= len(positions):
                break
            n = min(len(positions), 2 * n)
    # Try dropping positions one by one (1-minimality on small remainders).
    if len(positions) <= 16:
        for p in list(positions):
            candidate = [q for q in positions if q != p]
            if candidate and reproduces(candidate, row.plan):
                positions = candidate

    # Shrink the fault plan the same way: drop specs that are not needed.
    plan = row.plan
    if plan is not None and len(plan.faults) > 1:
        for spec in list(plan.faults):
            if len(plan.faults) == 1:
                break
            candidate = FaultPlan(
                tuple(s for s in plan.faults if s is not spec),
                name=plan.name,
            )
            if reproduces(positions, candidate):
                plan = candidate
    if plan is not None and len(plan.faults) == 1 and reproduces(positions, None):
        plan = None

    reproducer = Reproducer(
        instance=row.spec,
        case_seed=row.case_seed,
        decisions=tuple((i, schedule[i]) for i in sorted(positions)),
        fallback=tuple(sorted(fallback_spec.items())),
        failure=target,
        agent_kwargs=tuple(sorted(dict(cfg.agent_kwargs).items())),
        plan=plan,
        original_len=len(schedule),
        max_steps=cfg.max_steps,
    )
    verified = verify_reproducer(reproducer, config=cfg)
    return MinimizationResult(
        reproducer=reproducer,
        original_len=len(schedule),
        minimized_len=len(positions),
        probes=probes,
        verified=verified,
    )


def replay_reproducer(
    rep: Reproducer, config: Optional[FuzzConfig] = None
) -> ProbeResult:
    """Re-execute a reproducer artifact; returns the probe result.

    The caller checks ``result.signature == rep.failure`` (the CLI's
    ``repro`` command exits non-zero when it does not).
    """
    cfg = config or FuzzConfig(
        agent_kwargs=rep.agent_kwargs, max_steps=rep.max_steps
    )
    return _execute(
        rep.instance,
        rep.case_seed,
        dict(rep.agent_kwargs),
        PatchedScheduler(
            dict(rep.decisions), build_scheduler(dict(rep.fallback))
        ),
        rep.plan,
        cfg,
    )


def verify_reproducer(
    rep: Reproducer, config: Optional[FuzzConfig] = None
) -> bool:
    """Byte-identical verification of a reproducer.

    Runs the patched schedule once to obtain the *effective* full schedule
    and its trace, then re-executes that schedule through a strict
    :class:`~repro.trace.replay.ReplayScheduler` (runnable-size self-check
    armed).  Verified means: same failure signature, and the two trace
    event streams serialize identically up to the failure point.
    """
    cfg = config or FuzzConfig(
        agent_kwargs=rep.agent_kwargs, max_steps=rep.max_steps
    )
    patched = replay_reproducer(rep, config=cfg)
    if patched.signature != rep.failure:
        return False
    replayed = _execute(
        rep.instance,
        rep.case_seed,
        dict(rep.agent_kwargs),
        ReplayScheduler(patched.choices, runnable_sizes=patched.runnable_sizes),
        rep.plan,
        cfg,
    )
    if replayed.signature != rep.failure:
        return False
    if len(patched.events) != len(replayed.events):
        return False
    return all(
        a.to_dict() == b.to_dict()
        for a, b in zip(patched.events, replayed.events)
    )
